module T = Proto.Tree
module D = Prob.Dist_exact
module Dg = Analysis.Depgraph

let bit_domain = [| 0; 1 |]

(* slot0: player 0 posts its bit.
   slot1: player 0 speaks again, const 0 in branch 0, const 1 in branch 1.
   slot2: player 1 speaks, identity law in branch 0, NEGATED law in branch 1.
   Player 1's slot-2 law depends on the branch -> it must read slot 0 or 1. *)
let tree =
  T.speak ~speaker:0 ~emit:D.return
    [|
      T.speak ~speaker:0 ~emit:(fun _ -> D.return 0)
        [|
          T.speak_det ~speaker:1 ~f:(fun b -> b) [| T.output 0; T.output 1 |];
          T.output 9;
        |];
      T.speak ~speaker:0 ~emit:(fun _ -> D.return 1)
        [|
          T.output 9;
          T.speak_det ~speaker:1 ~f:(fun b -> 1 - b) [| T.output 2; T.output 3 |];
        |];
    |]

let () =
  let dg = Dg.analyze ~domain:bit_domain tree in
  Printf.printf "slots=%d waves=%d certified=%b widened=%b law_failures=%d\n"
    dg.Dg.slots (Dg.wave_count dg) (Dg.certificate dg <> None)
    dg.Dg.widened dg.Dg.law_failures;
  Array.iteri
    (fun t rs ->
      Printf.printf "slot %d reads {%s} speakers {%s} out_rel=%b\n" t
        (String.concat "," (List.map string_of_int rs))
        (String.concat "," (List.map string_of_int dg.Dg.speakers.(t)))
        dg.Dg.output_relevant.(t))
    dg.Dg.reads
