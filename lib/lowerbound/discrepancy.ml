(** The Braverman-Weinstein discrepancy lower bound (arXiv:1112.2000)
    over the leaf summaries of {!Analysis.Infoflow} — the second
    information lower-bound engine beside Lemma 5.

    Braverman-Weinstein bound the information cost of any protocol that
    computes [f] against the {e discrepancy} of [f]: every transcript of
    a protocol induces a combinatorial rectangle of inputs, and a
    rectangle on which the protocol is (nearly) committed to an answer
    cannot carry much more probability mass than the discrepancy allows,
    so the transcript distribution has min-entropy — hence information
    cost — at least [log2 (1 / disc_mu(f))]. This module implements the
    zero-error specialization of that argument, where it is exact and
    fully certifiable with rational arithmetic:

    - For a {e deterministic} protocol tree, the transcript is a
      function of the inputs, so [IC_mu = I(T;X) = H(T)], and
      [H(T) >= log2 (1 / max_l mass_l)] — the {e partition bound},
      computable from the leaf masses alone, protocol by protocol.
    - For any deterministic tree that computes [f] with zero error,
      every reachable leaf rectangle is monochromatic under [f], so
      [max_l mass_l <= mono_mu(f)], the largest mass of any
      [f]-monochromatic product rectangle — giving the {e
      protocol-independent} bound [IC_mu >= log2 (1 / mono_mu(f))].
      A monochromatic rectangle [R] has
      [|mu(R inter f^-1(1)) - mu(R inter f^-1(0))| = mu(R)], so always
      [mono_mu(f) <= disc_mu(f)] and this specialization dominates the
      generic [log2 (1 / disc)] form, which is also provided.

    Both [mono_mu] and [disc_mu] are computed {e exactly} by enumerating
    every product rectangle of the (tiny) domain — [(2^d - 1)^k]
    rectangles of up to [d^k] points — behind a work cap that returns
    [None] rather than stalling on large domains. All logarithms go
    through {!Infotheory.Rlog.log2_lo}, so every returned bound is a
    sound rational. *)

module R = Exact.Rational
module F = Analysis.Infoflow

let default_work_cap = 160_000_000

(* ------------------------------------------------------------------ *)
(* Partition bound: per-protocol, from the leaf masses                 *)
(* ------------------------------------------------------------------ *)

let partition_bound ?prec (flow : F.t) =
  if flow.F.sound && flow.F.deterministic && R.sign flow.F.max_leaf_mass > 0
  then Some (Infotheory.Rlog.log2_lo ?prec (R.inv flow.F.max_leaf_mass))
  else None

(* ------------------------------------------------------------------ *)
(* Exact rectangle sweeps                                              *)
(* ------------------------------------------------------------------ *)

(* Fold [score] over every positive-mass product rectangle, given as
   (per-player subset members, rectangle mu-mass); rectangles are
   products of nonempty per-player domain subsets (bitmask-encoded).
   Returns None when the sweep would blow the work cap. *)
let fold_rectangles ~work_cap ~players ~domain_size ~mu ~score =
  let d = domain_size and k = players in
  if d <= 0 || k <= 0 || d > Sys.int_size - 2 then None
  else begin
    let subsets = (1 lsl d) - 1 in
    (* rectangles x points-per-rectangle, overflow-safe in floats *)
    let work =
      (float_of_int subsets ** float_of_int k)
      *. (float_of_int d ** float_of_int k)
    in
    if work > float_of_int work_cap then None
    else begin
      let subset_mass = Array.make (subsets + 1) R.zero in
      let members = Array.make (subsets + 1) [] in
      for m = 1 to subsets do
        let mass = ref R.zero and mem = ref [] in
        for v = d - 1 downto 0 do
          if m land (1 lsl v) <> 0 then begin
            mass := R.add !mass mu.(v);
            mem := v :: !mem
          end
        done;
        subset_mass.(m) <- !mass;
        members.(m) <- !mem
      done;
      let best = ref R.zero in
      let axes = Array.make k [] in
      let rec rects p mass =
        if p = k then best := R.max !best (score ~axes ~mass)
        else
          for m = 1 to subsets do
            let mass' = R.mul mass subset_mass.(m) in
            if R.sign mass' > 0 then begin
              axes.(p) <- members.(m);
              rects (p + 1) mass'
            end
          done
      in
      rects 0 R.one;
      Some !best
    end
  end

(* Per-call tables over the [d^k] points of the full domain cube: the
   color [f x] and the signed point mass [+-mu(x)], indexed by the
   mixed-radix point code [sum_p x_p d^p]. Rectangle scores then run on
   int compares and rational additions alone — the inner loops make no
   [f] calls and no rational multiplications, which is what lets the
   work cap sit 16x higher than the naive per-rectangle re-evaluation
   allowed. Built lazily, only once the cap check has passed. *)
let point_tables ~players:k ~domain_size:d ~mu ~f =
  let npoints =
    let rec pw acc e = if e = 0 then acc else pw (acc * d) (e - 1) in
    pw 1 k
  in
  let stride = Array.make k 1 in
  for p = 1 to k - 1 do
    stride.(p) <- stride.(p - 1) * d
  done;
  let color = Array.make npoints 0 in
  let signed = Array.make npoints R.zero in
  let profile = Array.make k 0 in
  let rec fill p idx mass =
    if p = k then begin
      let c = f profile in
      color.(idx) <- c;
      signed.(idx) <- (if c = 1 then mass else R.neg mass)
    end
    else
      for v = 0 to d - 1 do
        profile.(p) <- v;
        fill (p + 1) (idx + (v * stride.(p))) (R.mul mass mu.(v))
      done
  in
  fill 0 0 R.one;
  (color, signed, stride)

let mono_mass ?(work_cap = default_work_cap) ~players ~domain_size ~mu ~f () =
  let tables = lazy (point_tables ~players ~domain_size ~mu ~f) in
  fold_rectangles ~work_cap ~players ~domain_size ~mu ~score:(fun ~axes ~mass ->
      let color, _, stride = Lazy.force tables in
      let k = Array.length axes in
      let idx0 =
        let i = ref 0 in
        Array.iteri (fun p ax -> i := !i + (List.hd ax * stride.(p))) axes;
        !i
      in
      let c0 = color.(idx0) in
      let rec mono p idx =
        if p = k then color.(idx) = c0
        else
          List.for_all (fun v -> mono (p + 1) (idx + (v * stride.(p)))) axes.(p)
      in
      if mono 0 0 then mass else R.zero)

let disc ?(work_cap = default_work_cap) ~players ~domain_size ~mu ~f () =
  let tables = lazy (point_tables ~players ~domain_size ~mu ~f) in
  fold_rectangles ~work_cap ~players ~domain_size ~mu ~score:(fun ~axes ~mass:_ ->
      let _, signed, stride = Lazy.force tables in
      let k = Array.length axes in
      let rec total p idx acc =
        if p = k then R.add acc signed.(idx)
        else
          List.fold_left
            (fun acc v -> total (p + 1) (idx + (v * stride.(p))) acc)
            acc axes.(p)
      in
      R.abs (total 0 0 R.zero))

let log_inv ?prec x =
  if R.sign x > 0 && R.compare x R.one <= 0 then
    Some (Infotheory.Rlog.log2_lo ?prec (R.inv x))
  else None

let mono_bound ?work_cap ?prec ~players ~domain_size ~mu ~f () =
  Option.bind (mono_mass ?work_cap ~players ~domain_size ~mu ~f ())
    (log_inv ?prec)

let disc_bound ?work_cap ?prec ~players ~domain_size ~mu ~f () =
  Option.bind (disc ?work_cap ~players ~domain_size ~mu ~f ())
    (log_inv ?prec)

(* ------------------------------------------------------------------ *)
(* The pluggable engine                                                *)
(* ------------------------------------------------------------------ *)

let engine ?work_cap ?prec ~zero_error_spec (flow : F.t) =
  let acc = [] in
  let acc =
    match partition_bound ?prec flow with
    | Some b -> ("bw-partition", b) :: acc
    | None -> acc
  in
  let acc =
    match zero_error_spec with
    | Some f when flow.F.sound && flow.F.deterministic ->
        let players = flow.F.players
        and domain_size = flow.F.domain_size
        and mu = flow.F.mu in
        let acc =
          match
            mono_bound ?work_cap ?prec ~players ~domain_size ~mu ~f ()
          with
          | Some b -> ("bw-mono-rectangle", b) :: acc
          | None -> acc
        in
        (match disc_bound ?work_cap ?prec ~players ~domain_size ~mu ~f () with
        | Some b -> ("bw-discrepancy", b) :: acc
        | None -> acc)
    | _ -> acc
  in
  List.rev acc
