(** Braverman-Weinstein discrepancy information lower bounds
    (arXiv:1112.2000), zero-error specialization, over
    {!Analysis.Infoflow} summaries. Every returned rational is a sound
    lower bound on the external information cost; all logarithms go
    through {!Infotheory.Rlog}, so nothing on this path is a float.
    See the implementation header for the derivation chain
    [log2(1/disc) <= log2(1/mono) <= log2(1/max leaf mass) <= H(T) =
    IC] and its side conditions. *)

module R := Exact.Rational

val default_work_cap : int
(** Cap on (rectangles x points) for the exact sweeps (1.6 x 10^8; the
    per-rectangle inner loops run off precomputed per-point color and
    signed-mass tables, so a work unit is an int compare or a rational
    addition, not an [f] call). *)

val partition_bound : ?prec:int -> Analysis.Infoflow.t -> R.t option
(** [log2 (1 / max leaf mass)]: sound for sound {e deterministic}
    analyses, where the transcript is a function of the input and
    [IC = H(T) >=] the min-entropy of the leaf partition. [None] when
    the summary is unsound, randomized, or leafless. *)

val mono_mass :
  ?work_cap:int ->
  players:int ->
  domain_size:int ->
  mu:R.t array ->
  f:(int array -> int) ->
  unit ->
  R.t option
(** Exact largest [mu]-mass of an [f]-monochromatic product rectangle
    ([f] over domain {e indices}). [None] when the exhaustive sweep
    would exceed [work_cap]. *)

val disc :
  ?work_cap:int ->
  players:int ->
  domain_size:int ->
  mu:R.t array ->
  f:(int array -> int) ->
  unit ->
  R.t option
(** Exact discrepancy [disc_mu(f) = max_R |mu(R inter f^-1(1)) -
    mu(R setminus f^-1(1))|] over product rectangles. *)

val mono_bound :
  ?work_cap:int ->
  ?prec:int ->
  players:int ->
  domain_size:int ->
  mu:R.t array ->
  f:(int array -> int) ->
  unit ->
  R.t option
(** [log2 (1 / mono_mass)]: a {e protocol-independent} lower bound on
    the information cost of every deterministic zero-error protocol
    for [f] under product [mu]. *)

val disc_bound :
  ?work_cap:int ->
  ?prec:int ->
  players:int ->
  domain_size:int ->
  mu:R.t array ->
  f:(int array -> int) ->
  unit ->
  R.t option
(** [log2 (1 / disc)] — the generic Braverman-Weinstein form; always
    dominated by {!mono_bound} in the zero-error setting but reported
    for comparison with the paper's statement. *)

val engine :
  ?work_cap:int ->
  ?prec:int ->
  zero_error_spec:(int array -> int) option ->
  Analysis.Infoflow.t ->
  (string * R.t) list
(** The pluggable engine consumed by {!Analysis.Certify.certify_ic}
    (via the CLI and the verify sweep — {!Analysis} cannot depend on
    this library, so callers inject it): named sound external-IC lower
    bounds, among ["bw-partition"], ["bw-mono-rectangle"] and
    ["bw-discrepancy"]. Pass [zero_error_spec] (over domain indices)
    {e only} for trees already certified zero-error for that spec; the
    rectangle bounds are unsound otherwise and are skipped when the
    summary is randomized or unsound. *)
