(** The process-global trace: a current sink and a monotonic sequence
    counter.

    Library code calls [if Trace.enabled () then Trace.emit (...)] —
    the guard comes first so a disabled trace never even allocates the
    payload (the overhead policy of DESIGN.md section 8). {!emit}
    itself re-checks, so an unguarded emit on a null sink is still a
    no-op, just not an allocation-free one. Sequence numbers increase
    only while a sink is installed, so [seq] gaps never occur within
    one trace. *)

val set_sink : Sink.t -> unit
val sink : unit -> Sink.t

val enabled : unit -> bool
(** One load + one branch; the hot-path guard. *)

val reset : unit -> unit
(** Null sink, sequence counter back to 0. *)

val emit : Event.payload -> unit
(** Stamp with the next sequence number and send to the current sink;
    no-op (without stamping) when the null sink is installed. *)

val next_seq : unit -> int
(** Sequence number of the last emitted event (0 if none). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Bracket [f] in [Span_start]/[Span_end] events (CPU-second
    duration); transparent when tracing is disabled. The end event is
    emitted even if [f] raises. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Install a sink for the extent of [f], flushing it and restoring the
    previous sink on the way out (also on exceptions). *)
