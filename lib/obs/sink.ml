type ring = {
  buf : Event.t option array;
  mutable next : int;  (** slot the next event lands in *)
  mutable stored : int;  (** total events ever sent *)
}

type t =
  | Null
  | Memory of ring
  | Jsonl of out_channel
  | Custom of (Event.t -> unit)

let null = Null

let memory ~capacity =
  if capacity <= 0 then invalid_arg "Sink.memory: capacity must be positive";
  Memory { buf = Array.make capacity None; next = 0; stored = 0 }

let jsonl oc = Jsonl oc
let custom f = Custom f
let is_null = function Null -> true | _ -> false

let send t ev =
  match t with
  | Null -> ()
  | Memory r ->
      r.buf.(r.next) <- Some ev;
      r.next <- (r.next + 1) mod Array.length r.buf;
      r.stored <- r.stored + 1
  | Jsonl oc ->
      Jsonw.to_channel oc (Event.to_json ev);
      output_char oc '\n'
  | Custom f -> f ev

let events = function
  | Memory r ->
      let cap = Array.length r.buf in
      let count = min r.stored cap in
      let start = (r.next - count + cap) mod cap in
      List.init count (fun i ->
          match r.buf.((start + i) mod cap) with
          | Some ev -> ev
          | None -> assert false)
  | Null | Jsonl _ | Custom _ -> []

let dropped = function
  | Memory r -> max 0 (r.stored - Array.length r.buf)
  | Null | Jsonl _ | Custom _ -> 0

let flush = function
  | Jsonl oc -> Stdlib.flush oc
  | Null | Memory _ | Custom _ -> ()
