type payload =
  | Round_start of { round : int }
  | Round_end of { round : int; bits : int }
  | Broadcast of { player : int; bits : int; label : string }
  | Sampler_accept of { block : int; log_ratio : int; bits : int }
  | Sampler_reject of { block : int }
  | Sampler_abort of { bits : int }
  | Sampler_budget of { divergence : float; eps : float }
  | Codec_emit of { code : string; bits : int }
  | Span_start of { name : string }
  | Span_end of { name : string; seconds : float }
  | Mark of { name : string }
  | Rbc_send of { slot : int; src : int; dst : int; bits : int }
  | Rbc_echo of { slot : int; src : int; dst : int; bits : int }
  | Rbc_ready of { slot : int; src : int; dst : int; bits : int }
  | Rbc_deliver of { slot : int; player : int; bits : int }
  | Net_drop of { slot : int; src : int; dst : int }
  | Wave_start of { wave : int; first_slot : int; slots : int }
  | Wave_end of { wave : int; first_slot : int; delivered : int }

type t = { seq : int; payload : payload }

let kind = function
  | Round_start _ -> "round-start"
  | Round_end _ -> "round-end"
  | Broadcast _ -> "broadcast"
  | Sampler_accept _ -> "sampler-accept"
  | Sampler_reject _ -> "sampler-reject"
  | Sampler_abort _ -> "sampler-abort"
  | Sampler_budget _ -> "sampler-budget"
  | Codec_emit _ -> "codec-emit"
  | Span_start _ -> "span-start"
  | Span_end _ -> "span-end"
  | Mark _ -> "mark"
  | Rbc_send _ -> "rbc-send"
  | Rbc_echo _ -> "rbc-echo"
  | Rbc_ready _ -> "rbc-ready"
  | Rbc_deliver _ -> "rbc-deliver"
  | Net_drop _ -> "net-drop"
  | Wave_start _ -> "wave-start"
  | Wave_end _ -> "wave-end"

let board_bits = function
  | Broadcast { bits; _ } -> bits
  | _ -> 0

let fields = function
  | Round_start { round } -> [ ("round", Jsonw.Int round) ]
  | Round_end { round; bits } ->
      [ ("round", Jsonw.Int round); ("bits", Jsonw.Int bits) ]
  | Broadcast { player; bits; label } ->
      ("player", Jsonw.Int player) :: ("bits", Jsonw.Int bits)
      :: (if label = "" then [] else [ ("label", Jsonw.String label) ])
  | Sampler_accept { block; log_ratio; bits } ->
      [
        ("block", Jsonw.Int block);
        ("log_ratio", Jsonw.Int log_ratio);
        ("bits", Jsonw.Int bits);
      ]
  | Sampler_reject { block } -> [ ("block", Jsonw.Int block) ]
  | Sampler_abort { bits } -> [ ("bits", Jsonw.Int bits) ]
  | Sampler_budget { divergence; eps } ->
      [ ("divergence", Jsonw.Float divergence); ("eps", Jsonw.Float eps) ]
  | Codec_emit { code; bits } ->
      [ ("code", Jsonw.String code); ("bits", Jsonw.Int bits) ]
  | Span_start { name } -> [ ("name", Jsonw.String name) ]
  | Span_end { name; seconds } ->
      [ ("name", Jsonw.String name); ("seconds", Jsonw.Float seconds) ]
  | Mark { name } -> [ ("name", Jsonw.String name) ]
  | Rbc_send { slot; src; dst; bits }
  | Rbc_echo { slot; src; dst; bits }
  | Rbc_ready { slot; src; dst; bits } ->
      [
        ("slot", Jsonw.Int slot);
        ("src", Jsonw.Int src);
        ("dst", Jsonw.Int dst);
        ("bits", Jsonw.Int bits);
      ]
  | Rbc_deliver { slot; player; bits } ->
      [
        ("slot", Jsonw.Int slot);
        ("player", Jsonw.Int player);
        ("bits", Jsonw.Int bits);
      ]
  | Net_drop { slot; src; dst } ->
      [ ("slot", Jsonw.Int slot); ("src", Jsonw.Int src); ("dst", Jsonw.Int dst) ]
  | Wave_start { wave; first_slot; slots } ->
      [
        ("wave", Jsonw.Int wave);
        ("first_slot", Jsonw.Int first_slot);
        ("slots", Jsonw.Int slots);
      ]
  | Wave_end { wave; first_slot; delivered } ->
      [
        ("wave", Jsonw.Int wave);
        ("first_slot", Jsonw.Int first_slot);
        ("delivered", Jsonw.Int delivered);
      ]

let to_json { seq; payload } =
  Jsonw.Obj
    (("seq", Jsonw.Int seq)
    :: ("ev", Jsonw.String (kind payload))
    :: fields payload)
