let current : Sink.t ref = ref Sink.null
let seq = ref 0

let set_sink s = current := s
let sink () = !current
let enabled () = not (Sink.is_null !current)

let reset () =
  current := Sink.null;
  seq := 0

let emit payload =
  let s = !current in
  if not (Sink.is_null s) then begin
    incr seq;
    Sink.send s { Event.seq = !seq; payload }
  end

let next_seq () = !seq

let with_span name f =
  if Sink.is_null !current then f ()
  else begin
    emit (Event.Span_start { name });
    let t0 = Sys.time () in
    match f () with
    | v ->
        emit (Event.Span_end { name; seconds = Sys.time () -. t0 });
        v
    | exception e ->
        emit (Event.Span_end { name; seconds = Sys.time () -. t0 });
        raise e
  end

let with_sink s f =
  let saved = !current in
  current := s;
  match f () with
  | v ->
      Sink.flush s;
      current := saved;
      v
  | exception e ->
      Sink.flush s;
      current := saved;
      raise e
