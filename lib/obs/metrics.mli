(** Named counters, gauges, and histograms with exact-int accounting.

    Everything is an OCaml [int]: bit counts are exact integers in this
    repo (the blackboard charges whole bits), so metrics never round.
    Histograms bucket by power of two (bucket [i] holds observations of
    bit-length [i]), giving a shape summary that merges exactly.

    {!snapshot} freezes a registry into an immutable value; {!merge}
    combines snapshots — counters add, gauges take the maximum,
    histograms merge component-wise, so merging is associative and
    commutative (shard-then-combine is well defined in any order).

    Instrumented library code reports through the {e installed}
    registry ({!install}/{!bump}/{!gauge}/{!record}); when none is
    installed those are single-branch no-ops, same policy as the null
    trace sink. *)

type t

val create : unit -> t
val clear : t -> unit

val add : t -> string -> int -> unit
(** Add to a counter (created at 0 on first use). *)

val set_gauge : t -> string -> int -> unit

val observe : t -> string -> int -> unit
(** Record a non-negative observation into a histogram.
    @raise Invalid_argument on a negative value. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;  (** [max_int] when [count = 0] *)
  max : int;  (** [min_int] when [count = 0] *)
  buckets : int array;  (** bucket [i]: observations of bit-length [i] *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  hists : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
val empty_snapshot : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative with {!empty_snapshot} as identity:
    counters add, gauges max, histograms merge component-wise. *)

val counter_value : snapshot -> string -> int
(** 0 for an absent counter. *)

val gauge_value : snapshot -> string -> int option
val hist_value : snapshot -> string -> hist_snapshot option

val to_json : snapshot -> Jsonw.t

(** {1 The installed registry}

    A process-global slot the instrumented libraries report to. *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
val enabled : unit -> bool

val bump : string -> int -> unit
(** Counter add on the installed registry; no-op when none is. *)

val gauge : string -> int -> unit
val record : string -> int -> unit
