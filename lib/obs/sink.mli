(** Pluggable event sinks.

    - {!null}: discards everything. The overhead policy (DESIGN.md
      section 8) requires instrumented paths to test {!is_null} (via
      [Trace.enabled]) {e before} constructing a payload, so a disabled
      trace costs one load and one predictable branch and allocates
      nothing.
    - {!memory}: a fixed-capacity ring buffer; once full, the oldest
      events are overwritten (total sent minus capacity = {!dropped}).
      For tests and in-process inspection.
    - {!jsonl}: one compact JSON object per line on an [out_channel]
      (the [trace.jsonl] format consumed by tooling). Call {!flush}
      before closing the channel.
    - {!custom}: arbitrary callback (counting, filtering, fan-out). *)

type t

val null : t

val memory : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val jsonl : out_channel -> t
val custom : (Event.t -> unit) -> t
val is_null : t -> bool

val send : t -> Event.t -> unit

val events : t -> Event.t list
(** Memory sink: retained events, oldest first. Other sinks: []. *)

val dropped : t -> int
(** Memory sink: events overwritten by ring wrap-around. *)

val flush : t -> unit
