(** Typed trace events.

    One constructor per thing the instrumented layers can report:
    per-cycle boundaries ([Round_start]/[Round_end]), charged board
    writes ([Broadcast] — the only payload carrying {e charged} bits,
    see {!board_bits}), the Lemma-7 sampler's accept/reject/abort and
    divergence-budget telemetry, self-delimiting-code emissions, and
    generic spans/marks. Events carry a monotonic sequence number
    assigned by {!Trace.emit}; ordering within a trace is by [seq], not
    by wall clock (the subsystem is clock-free by design — see
    DESIGN.md section 8). *)

type payload =
  | Round_start of { round : int }
  | Round_end of { round : int; bits : int }
      (** [bits]: board bits charged during the round *)
  | Broadcast of { player : int; bits : int; label : string }
      (** a charged write on the blackboard *)
  | Sampler_accept of { block : int; log_ratio : int; bits : int }
  | Sampler_reject of { block : int }  (** a whole block without acceptance *)
  | Sampler_abort of { bits : int }  (** fallback path taken *)
  | Sampler_budget of { divergence : float; eps : float }
      (** the [D(eta||nu)] a transmission is entitled to spend *)
  | Codec_emit of { code : string; bits : int }
      (** one self-delimiting integer code written ("gamma", "fixed", ...) *)
  | Span_start of { name : string }
  | Span_end of { name : string; seconds : float }
      (** [seconds]: CPU seconds elapsed since the matching start *)
  | Mark of { name : string }
  | Rbc_send of { slot : int; src : int; dst : int; bits : int }
      (** one point-to-point SEND of a reliable-broadcast slot *)
  | Rbc_echo of { slot : int; src : int; dst : int; bits : int }
  | Rbc_ready of { slot : int; src : int; dst : int; bits : int }
  | Rbc_deliver of { slot : int; player : int; bits : int }
      (** [player] delivered the slot's value ([bits] = payload bits) *)
  | Net_drop of { slot : int; src : int; dst : int }
      (** a message eaten by the injected drop fault *)
  | Wave_start of { wave : int; first_slot : int; slots : int }
      (** a pipelined batch of [slots] concurrent RBC instances starting
          at board slot [first_slot] goes in flight *)
  | Wave_end of { wave : int; first_slot : int; delivered : int }
      (** the wave's barrier: [delivered] of its slots were committed *)

type t = { seq : int; payload : payload }

val kind : payload -> string
(** Stable kebab-case tag, the ["ev"] field of the JSON encoding. *)

val board_bits : payload -> int
(** Charged blackboard bits this event accounts for: [bits] of a
    [Broadcast], 0 for everything else. Summing [board_bits] over a
    trace reproduces [Board.total_bits] of the traced run. *)

val to_json : t -> Jsonw.t
(** One flat object: [{"seq":..,"ev":..,<payload fields>}]. *)
