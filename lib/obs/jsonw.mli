(** A tiny hand-rolled JSON writer (and reader, for validation).

    The observability subsystem must serialize traces and metrics
    without adding opam dependencies, so this module implements the
    small fragment of JSON the repo needs: a value type, a writer with
    correct string escaping, and a recursive-descent parser used by the
    tests (round-trips) and by tooling that wants to validate a
    [BENCH.json] or a trace line before archiving it.

    Numbers: [Int] serializes exactly; [Float] uses a shortest-ish
    ["%.12g"] rendering, and non-finite floats (which JSON cannot
    represent) serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
val list : t list -> t

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal (including the surrounding quotes)
    encoding the argument: ["\""], ["\\"], control characters as
    [\u00XX] or the short escapes; everything else passes through, so
    UTF-8 payloads stay UTF-8. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents by two spaces. *)

val to_channel : out_channel -> t -> unit
(** Compact rendering, no trailing newline. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] ([None] on anything else). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (surrounding whitespace allowed).
    Numbers without [./e/E] that fit in an OCaml [int] parse as [Int],
    everything else as [Float]. Errors carry a byte offset. *)
