type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields
let list items = List items

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity literals; render them as null so a trace
   line with a degenerate measurement stays machine-parseable. *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    (* "%.12g" may print "1e+06": valid JSON. "1" is valid too. *)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape_to_buffer buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to_buffer buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let rec pretty_to_buffer buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty_to_buffer buf (indent + 2) v)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          escape_to_buffer buf k;
          Buffer.add_string buf ": ";
          pretty_to_buffer buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  if pretty then pretty_to_buffer buf 0 v else to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.output_buffer oc buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser — recursive descent over the string, used by tests and by    *)
(* tooling validating BENCH.json / trace lines.                        *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               let v = parse_hex4 () in
               (* Encode the code point as UTF-8; surrogate pairs in
                  trace data never arise (we only escape controls), so
                  lone surrogates are passed through as-is. *)
               if v < 0x80 then Buffer.add_char buf (Char.chr v)
               else if v < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if not has_frac then
      match int_of_string_opt lit with
      | Some v -> Int v
      | None -> (
          match float_of_string_opt lit with
          | Some v -> Float v
          | None -> fail ("bad number " ^ lit))
    else
      match float_of_string_opt lit with
      | Some v -> Float v
      | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
