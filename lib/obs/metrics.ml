(* Histograms bucket by bit length: bucket [i] counts observations [v]
   with [bit_length v = i] (bucket 0 is exactly v = 0), i.e. power-of-two
   buckets [2^(i-1) .. 2^i - 1]. 63 buckets cover every non-negative
   OCaml int. *)
let hist_buckets = 63

let bucket_of v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;  (** [max_int] while empty *)
  mutable h_max : int;  (** [min_int] while empty *)
  h_bucket : int array;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  (* Registry sweeps run instrumented code from several domains (see
     {!Par}); the mutation paths take this lock. The disabled path in
     [bump]/[gauge]/[record] stays lock-free. *)
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.gauges;
      Hashtbl.reset t.hists)

let add t name delta =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + delta
      | None -> Hashtbl.add t.counters name (ref delta))

let set_gauge t name v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add t.gauges name (ref v))

let observe t name v =
  if v < 0 then invalid_arg "Metrics.observe: negative observation";
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists name with
        | Some h -> h
        | None ->
            let h =
              {
                h_count = 0;
                h_sum = 0;
                h_min = max_int;
                h_max = min_int;
                h_bucket = Array.make hist_buckets 0;
              }
            in
            Hashtbl.add t.hists name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_bucket.(b) <- h.h_bucket.(b) + 1)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : int array;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot (t : t) =
  with_lock t (fun () ->
      {
        counters =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
          |> List.sort by_name;
        gauges =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
          |> List.sort by_name;
        hists =
          Hashtbl.fold
            (fun k h acc ->
              ( k,
                {
                  count = h.h_count;
                  sum = h.h_sum;
                  min = h.h_min;
                  max = h.h_max;
                  buckets = Array.copy h.h_bucket;
                } )
              :: acc)
            t.hists []
          |> List.sort by_name;
      })

let empty_snapshot = { counters = []; gauges = []; hists = [] }

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let gauge_value snap name = List.assoc_opt name snap.gauges
let hist_value snap name = List.assoc_opt name snap.hists

(* Merge of two sorted-by-name assoc lists with a per-value combiner;
   keeps the result sorted so merge is closed over snapshots. *)
let merge_alist combine xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (kx, vx) :: xs', (ky, vy) :: ys' ->
        let c = compare (kx : string) ky in
        if c = 0 then go xs' ys' ((kx, combine vx vy) :: acc)
        else if c < 0 then go xs' ys ((kx, vx) :: acc)
        else go xs ys' ((ky, vy) :: acc)
  in
  go xs ys []

let merge_hist a b =
  {
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min = Stdlib.min a.min b.min;
    max = Stdlib.max a.max b.max;
    buckets = Array.init hist_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

(* Counters add, gauges keep the maximum, histograms merge bucketwise —
   all three combiners are associative and commutative, so [merge] is
   too (tested in test_obs.ml). *)
let merge a b =
  {
    counters = merge_alist ( + ) a.counters b.counters;
    gauges = merge_alist Stdlib.max a.gauges b.gauges;
    hists = merge_alist merge_hist a.hists b.hists;
  }

let hist_to_json h =
  (* Trailing all-zero buckets are elided: the bucket list is exactly
     long enough to cover the largest observation. *)
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i + 1) h.buckets;
  Jsonw.Obj
    [
      ("count", Jsonw.Int h.count);
      ("sum", Jsonw.Int h.sum);
      ("min", if h.count = 0 then Jsonw.Null else Jsonw.Int h.min);
      ("max", if h.count = 0 then Jsonw.Null else Jsonw.Int h.max);
      ( "buckets",
        Jsonw.List
          (List.init !last (fun i -> Jsonw.Int h.buckets.(i))) );
    ]

let to_json snap =
  Jsonw.Obj
    [
      ( "counters",
        Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Int v)) snap.counters) );
      ( "gauges",
        Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Int v)) snap.gauges) );
      ( "histograms",
        Jsonw.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) snap.hists) );
    ]

(* ------------------------------------------------------------------ *)
(* The installed registry — what instrumented library code reports to.  *)
(* ------------------------------------------------------------------ *)

let installed_slot : t option ref = ref None

let install t = installed_slot := Some t
let uninstall () = installed_slot := None
let installed () = !installed_slot
let enabled () = !installed_slot <> None

let bump name delta =
  match !installed_slot with None -> () | Some t -> add t name delta

let gauge name v =
  match !installed_slot with None -> () | Some t -> set_gauge t name v

let record name v =
  match !installed_slot with None -> () | Some t -> observe t name v
