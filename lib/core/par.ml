(** Domain-pool parallel map for embarrassingly parallel sweeps.

    A single order-preserving [parallel_map] over a shared work queue.
    Degrades to plain [List.map] when only one domain is available (or
    requested), so callers can use it unconditionally: on a one-core
    machine the behavior and the allocation profile are those of the
    sequential loop.

    Workers pull indices from an atomic counter, so uneven per-item cost
    load-balances automatically. Used by the verification and lint
    registry sweeps and by the per-input loops of the benchmark
    experiments — all of which apply a pure-ish function independently
    per element (any shared mutable state they touch must be
    thread-safe; see {!Obs.Metrics} and {!Coding.Bitbuf}). *)

let default_domains () =
  match Sys.getenv_opt "BROADCAST_PAR_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(** [parallel_map ?domains f xs] is [List.map f xs], computed by a pool
    of [domains] domains (default: [BROADCAST_PAR_DOMAINS] if set, else
    [Domain.recommended_domain_count ()]). Results are returned in input
    order regardless of completion order.

    If any application of [f] raises, one of the raised exceptions is
    re-raised (with its backtrace) after all domains have stopped;
    remaining queued items are not started. *)
let parallel_map ?domains f xs =
  let workers =
    match domains with Some d -> Stdlib.max d 1 | None -> default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  if workers <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f input.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              continue := false
      done
    in
    (* The calling domain participates, so spawn one fewer. *)
    let spawned =
      Array.init (Stdlib.min workers n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) results)
  end

(** [parallel_iter ?domains f xs] runs [f] on every element for its
    effects, with the same pool, ordering of completion unspecified. *)
let parallel_iter ?domains f xs =
  ignore (parallel_map ?domains f xs : unit list)
