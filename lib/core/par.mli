(** Domain-pool parallel map for embarrassingly parallel sweeps.

    Order-preserving [List.map] over a pool of domains, degrading to the
    sequential loop when only one domain is available or requested, so
    callers can use it unconditionally. Elements must be independent;
    any shared mutable state touched by [f] must be thread-safe. *)

val default_domains : unit -> int
(** Pool size used when [?domains] is omitted: the
    [BROADCAST_PAR_DOMAINS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?domains f xs] is [List.map f xs] computed by a pool
    of [domains] domains. Results come back in input order regardless of
    completion order; workers pull from a shared atomic queue, so uneven
    per-item cost load-balances. If an application of [f] raises, one of
    the raised exceptions is re-raised with its backtrace after all
    domains have stopped, and remaining items are not started. *)

val parallel_iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
