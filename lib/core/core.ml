(** Broadcast information complexity — public API facade.

    Reproduction of Braverman & Oshman, "On Information Complexity in
    the Broadcast Model" (PODC 2015). The sub-libraries are re-exported
    here under one roof; see each module's documentation for details.

    {2 Layering}

    - {!Exact}: arbitrary-precision integers and rationals (built from
      scratch) for exact probability computations.
    - {!Prob}: deterministic PRNG, finite distributions (float and
      exact-rational), joint-distribution operations, fast samplers.
    - {!Infotheory}: entropy, KL divergence, (conditional) mutual
      information over finite distributions.
    - {!Coding}: bit buffers, self-delimiting integer codes, and the
      combinatorial subset codec used by the Section-5 protocol.
    - {!Proto}: exact protocol-tree semantics of the broadcast model —
      transcript laws, communication cost, error probabilities, external
      and conditional information cost, and the Lemma-3/4
      [q]-decomposition.
    - {!Blackboard}: the operational shared-blackboard runtime with real
      bit accounting.
    - {!Netsim}: the asynchronous faulty-broadcast runtime — a seeded
      discrete-event network simulator, Bracha '87 ECHO/READY reliable
      broadcast, and a board emulation that runs engine-hosted
      protocols unchanged on top, with crash/drop/delay/equivocation
      fault injection and exact wire-bit accounting.
    - {!Protocols}: concrete protocols — sequential/broadcast [AND_k],
      the Section-5 batched disjointness protocol and its baselines, the
      hard distributions of Sections 4 and 6.
    - {!Compress}: the Lemma-7 point-sampling compressor and the
      Theorem-3 amortized parallel compression.
    - {!Lowerbound}: the Section-4 lower-bound machinery as exact
      computations — good-transcript classification, Lemma-2 and
      eq.(3)-(7) checks, the Lemma-1 direct-sum embedding, the Lemma-6
      fooling argument.
    - {!Analysis}: proto-lint — static well-formedness analysis of
      protocol trees (distribution validity, schedule consistency, bit
      accounting, state-space budgets) with structured diagnostics;
      runs over the {!Protocols.Registry} in CI.
    - {!Obs}: observability — typed trace events with pluggable sinks
      (null / ring buffer / line-JSON), exact-int metrics with
      snapshot-and-merge, and the hand-rolled JSON writer behind
      [BENCH.json] and [broadcast_cli trace]. Dependency-free and
      zero-cost when disabled.
    - {!Par}: domain-pool [parallel_map] used by the verification and
      lint registry sweeps and the benchmark experiment loops; runs
      sequentially when only one domain is available.

    {2 Quickstart}

    {[
      let k = 6 in
      let tree = Core.Protocols.And_protocols.sequential k in
      let mu = Core.Protocols.Hard_dist.mu_and ~k in
      let ic = Core.Proto.Information.external_ic tree mu in
      Format.printf "IC of sequential AND_%d: %.4f bits@." k ic
    ]} *)

module Exact = Exact
module Prob = Prob
module Infotheory = Infotheory
module Coding = Coding
module Proto = Proto
module Blackboard = Blackboard
module Netsim = Netsim
module Protocols = Protocols
module Compress = Compress
module Lowerbound = Lowerbound
module Analysis = Analysis
module Obs = Obs
module Par = Par

let version = "1.0.0"
