(** Orbit-weighted symmetric input distributions.

    Collapsed representation of a distribution over player-input
    profiles ['a array] that is exchangeable within declared blocks of
    players: per-block value {e compositions} (how many players of each
    block hold each domain value) with one exact per-member weight per
    composition class. For fully symmetric 0/1 inputs a class is a
    Hamming-weight level, so a [2^k] law becomes [k + 1] terms. This is
    the input format of the orbit evaluation engine ({!Proto.Orbit}). *)

type comp = int array array
(** [comp.(b).(v)] = number of block-[b] players holding domain value
    index [v]. *)

type 'a t

val domain : 'a t -> 'a array
val blocks : 'a t -> int array
(** Player index to block id ([0 .. n_blocks - 1]). *)

val players : 'a t -> int

val classes : 'a t -> (comp * Exact.Rational.t) list
(** Support classes with their per-{e member} weights (multiply by
    {!comp_orbit_size} for the class mass). *)

val binom : int -> int -> Exact.Rational.t
(** Exact binomial coefficient (an integer, as a rational). *)

val multinomial : int -> int array -> Exact.Rational.t
(** [multinomial n counts] = [n! / prod counts.(v)!].
    @raise Invalid_argument if the counts do not sum to [n]. *)

val comp_orbit_size : int array -> comp -> Exact.Rational.t
(** Orbit size of a composition under the block-wise symmetric group:
    the product of per-block multinomials. First argument: block sizes. *)

val comp_key : comp -> string
(** Canonical string key of a composition (hashable, comparable). *)

val comp_of_profile :
  blocks:int array -> n_blocks:int -> n_values:int -> int array -> comp
(** Composition of a profile given as domain {e indices}. *)

val mass_of_comp : 'a t -> comp -> Exact.Rational.t
(** Per-member weight of the class; zero off the support. *)

val mass_of_profile : 'a t -> 'a array -> Exact.Rational.t
(** Per-member weight of an explicit profile. *)

val all_comps : block_sizes:int array -> n_values:int -> comp list
(** Every composition of the given blocks over [n_values] values, in a
    fixed lexicographic order. *)

val of_classes :
  domain:'a array ->
  blocks:int array ->
  (comp * Exact.Rational.t) list ->
  'a t
(** Build from explicit classes (per-member weights). Validates block
    structure and that the total mass [sum_c w_c * |orbit c|] is exactly
    1. Zero-weight classes are dropped.
    @raise Invalid_argument on malformed input. *)

val iid_blocks :
  domain:'a array ->
  blocks:int array ->
  Exact.Rational.t array array ->
  'a t
(** Independent players, identically distributed within each block:
    [weights.(b).(v)] is the probability a block-[b] player holds
    [domain.(v)]. *)

val uniform : domain:'a array -> blocks:int array -> 'a t
(** Uniform iid over the domain. *)

val to_dist : 'a t -> 'a array Dist_exact.t
(** Expand to the explicit law — exponential in the player count;
    differential tests only. *)

val of_dist :
  domain:'a array ->
  blocks:int array ->
  'a array Dist_exact.t ->
  ('a t, 'a array * 'a array) result
(** Collapse an explicit law, {e refusing} laws that are not actually
    block-exchangeable: [Error (x, x')] returns a concrete witness —
    two profiles in the same orbit carrying different masses (or a
    class only partially covered by the support). *)
