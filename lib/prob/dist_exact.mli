(** Exact-rational finite probability distributions.

    Same operations as {!Dist} (see there for documentation), with
    weights in {!Exact.Rational}: total masses are exactly 1, transcript
    probabilities are exact products, and conditioning never loses
    precision. The protocol semantics ({!Proto}) lives entirely on this
    instance. *)

type weight = Exact.Rational.t

type 'a t = 'a Dist_core.Make(Weight.Exact).t

val of_weighted : ('a * weight) list -> 'a t
val return : 'a -> 'a t
val uniform : 'a list -> 'a t
val bernoulli : weight -> bool t
val map : ('a -> 'b) -> 'a t -> 'b t
val map_injective : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val bind_disjoint : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val product : 'a t -> 'b t -> ('a * 'b) t
val product_array : 'a t array -> 'a array t
val iid : int -> 'a t -> 'a array t
val to_alist : 'a t -> ('a * weight) list
val support : 'a t -> 'a list
val size : 'a t -> int
val is_point : 'a t -> bool
val prob : 'a t -> ('a -> bool) -> weight
val prob_of : 'a t -> 'a -> weight
val mass : 'a t -> weight
val condition : 'a t -> ('a -> bool) -> 'a t option
val condition_exn : 'a t -> ('a -> bool) -> 'a t
val expectation_with : ('a -> float) -> 'a t -> float
val total_variation : 'a t -> 'a t -> float

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

(** {1 Bridges} *)

val to_float_dist : 'a t -> 'a Dist.t
(** Forget exactness (for sampling and float-side measurements). *)

val uniform_of_ratio : 'a list -> 'a t
val prob_float : 'a t -> ('a -> bool) -> float
