(** Orbit-weighted symmetric input distributions.

    A distribution over input profiles [x : 'a array] (one value per
    player) that is exchangeable within declared {e blocks} of players
    is determined by far less data than its [2^k]-point law: the
    per-member weight of a profile depends only on its {e composition}
    — for each block, how many players hold each domain value. This
    module stores exactly that collapsed representation: the domain,
    the player-to-block assignment, and one exact-rational per-member
    weight per composition class. For symmetric 0/1 inputs under the
    full group a class is a Hamming-weight level, so the [2^k] sweep
    becomes [k + 1] weighted terms.

    The orbit evaluation engine ({!Proto.Orbit}) consumes this
    representation directly; {!to_dist} expands it back to an explicit
    {!Dist_exact} law for differential tests, and {!of_dist} aggregates
    an explicit law, {e refusing} (with a concrete witness pair) any
    law that is not actually block-exchangeable — the distribution-side
    soundness check of declared symmetry. *)

module D = Dist_exact
module R = Exact.Rational

(** A composition class: [comp.(b).(v)] players of block [b] hold
    domain value (index) [v]. *)
type comp = int array array

type 'a t = {
  domain : 'a array;
  blocks : int array;  (** player index -> block id, [0 .. n_blocks-1] *)
  block_sizes : int array;
  classes : (comp * R.t) list;
      (** class composition, per-{e member} weight (not class mass) *)
  mass_tbl : (string, R.t) Hashtbl.t;  (** keyed on {!comp_key} *)
}

let domain t = t.domain
let blocks t = t.blocks
let players t = Array.length t.blocks
let classes t = t.classes

(* ------------------------------------------------------------------ *)
(* Exact counting: binomials and multinomials as rationals (they are   *)
(* integers, but staying in R avoids a separate bigint path and the    *)
(* engine multiplies them into rational weights anyway).               *)
(* ------------------------------------------------------------------ *)

let binom n k =
  if k < 0 || k > n then R.zero
  else begin
    let acc = ref R.one in
    for i = 0 to k - 1 do
      acc := R.div_int (R.mul_int !acc (n - i)) (i + 1)
    done;
    !acc
  end

(** Number of ways to assign values to [n] interchangeable players so
    that value [v] is held by [counts.(v)] players: the multinomial
    [n! / prod counts.(v)!]. *)
let multinomial n counts =
  let acc = ref R.one and left = ref n in
  Array.iter
    (fun c ->
      acc := R.mul !acc (binom !left c);
      left := !left - c)
    counts;
  if !left <> 0 then invalid_arg "Symdist.multinomial: counts do not sum to n";
  !acc

(** Orbit size of a composition: independent multinomials per block. *)
let comp_orbit_size block_sizes comp =
  let acc = ref R.one in
  Array.iteri
    (fun b counts -> acc := R.mul !acc (multinomial block_sizes.(b) counts))
    comp;
  !acc

let comp_key (comp : comp) =
  String.concat "|"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat "," (Array.to_list (Array.map string_of_int row)))
          comp))

let comp_of_profile ~blocks ~n_blocks ~n_values profile_indices =
  let comp = Array.init n_blocks (fun _ -> Array.make n_values 0) in
  Array.iteri
    (fun i v -> comp.(blocks.(i)).(v) <- comp.(blocks.(i)).(v) + 1)
    profile_indices;
  comp

(** Per-member weight of the class containing the given composition;
    zero off the support. *)
let mass_of_comp t comp =
  Option.value ~default:R.zero (Hashtbl.find_opt t.mass_tbl (comp_key comp))

let block_sizes_of blocks =
  let n_blocks =
    Array.fold_left (fun acc b -> max acc (b + 1)) 0 blocks
  in
  let sizes = Array.make n_blocks 0 in
  Array.iter
    (fun b ->
      if b < 0 then invalid_arg "Symdist: negative block id";
      sizes.(b) <- sizes.(b) + 1)
    blocks;
  Array.iteri
    (fun b n ->
      if n = 0 then
        invalid_arg (Printf.sprintf "Symdist: block %d has no players" b))
    sizes;
  sizes

(* All compositions of [n] into [d] parts, lexicographic. *)
let rec compositions n d =
  if d = 1 then [ [ n ] ]
  else
    List.concat_map
      (fun c -> List.map (fun rest -> c :: rest) (compositions (n - c) (d - 1)))
      (List.init (n + 1) (fun i -> i))

let all_comps ~block_sizes ~n_values =
  let per_block =
    Array.to_list
      (Array.map
         (fun n -> List.map Array.of_list (compositions n n_values))
         block_sizes)
  in
  let rec cross = function
    | [] -> [ [] ]
    | choices :: rest ->
        List.concat_map
          (fun c -> List.map (fun tail -> c :: tail) (cross rest))
          choices
  in
  List.map Array.of_list (cross per_block)

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let of_classes ~domain ~blocks classes =
  if Array.length domain = 0 then invalid_arg "Symdist.of_classes: empty domain";
  if Array.length blocks = 0 then
    invalid_arg "Symdist.of_classes: no players";
  let block_sizes = block_sizes_of blocks in
  let n_values = Array.length domain in
  let classes =
    List.filter (fun (_, w) -> not (R.is_zero w)) classes
  in
  let mass_tbl = Hashtbl.create 16 in
  let total = ref R.zero in
  List.iter
    (fun (comp, w) ->
      if Array.length comp <> Array.length block_sizes then
        invalid_arg "Symdist.of_classes: composition has wrong block count";
      Array.iteri
        (fun b row ->
          if Array.length row <> n_values then
            invalid_arg "Symdist.of_classes: composition has wrong value count";
          let s = Array.fold_left ( + ) 0 row in
          if s <> block_sizes.(b) then
            invalid_arg "Symdist.of_classes: composition does not fill its block")
        comp;
      if R.sign w < 0 then
        invalid_arg "Symdist.of_classes: negative class weight";
      let key = comp_key comp in
      if Hashtbl.mem mass_tbl key then
        invalid_arg "Symdist.of_classes: duplicate composition class";
      Hashtbl.add mass_tbl key w;
      total := R.add !total (R.mul w (comp_orbit_size block_sizes comp)))
    classes;
  if not (R.is_one !total) then
    invalid_arg
      (Printf.sprintf "Symdist.of_classes: total mass %s, expected 1"
         (R.to_string !total));
  { domain; blocks; block_sizes; classes; mass_tbl }

(** Independent players, identically distributed {e within} each block:
    [weights.(b).(v)] is the probability that a block-[b] player holds
    [domain.(v)]. The collapsed classes are exactly the product-law
    masses [prod_b prod_v weights.(b).(v)^comp.(b).(v)]. *)
let iid_blocks ~domain ~blocks weights =
  let block_sizes = block_sizes_of blocks in
  let n_values = Array.length domain in
  if Array.length weights <> Array.length block_sizes then
    invalid_arg "Symdist.iid_blocks: weights have wrong block count";
  Array.iter
    (fun row ->
      if Array.length row <> n_values then
        invalid_arg "Symdist.iid_blocks: weights have wrong value count";
      let s = Array.fold_left R.add R.zero row in
      if not (R.is_one s) then
        invalid_arg "Symdist.iid_blocks: block weights do not sum to 1")
    weights;
  let classes =
    List.filter_map
      (fun comp ->
        let w = ref R.one in
        Array.iteri
          (fun b row ->
            Array.iteri
              (fun v c -> if c > 0 then w := R.mul !w (R.pow weights.(b).(v) c))
              row)
          comp;
        if R.is_zero !w then None else Some (comp, !w))
      (all_comps ~block_sizes ~n_values)
  in
  of_classes ~domain ~blocks classes

let uniform ~domain ~blocks =
  let n = Array.length domain in
  let n_blocks = Array.length (block_sizes_of blocks) in
  let w = Array.make n (R.of_ints 1 n) in
  iid_blocks ~domain ~blocks (Array.init n_blocks (fun _ -> w))

(* ------------------------------------------------------------------ *)
(* Bridges to explicit laws                                            *)
(* ------------------------------------------------------------------ *)

let index_of_value domain v =
  let n = Array.length domain in
  let rec go i =
    if i = n then invalid_arg "Symdist: profile value outside the domain"
    else if Stdlib.compare domain.(i) v = 0 then i
    else go (i + 1)
  in
  go 0

(** Per-member weight of an explicit profile (its class weight). *)
let mass_of_profile t x =
  if Array.length x <> players t then
    invalid_arg "Symdist.mass_of_profile: wrong profile length";
  let idx = Array.map (index_of_value t.domain) x in
  mass_of_comp t
    (comp_of_profile ~blocks:t.blocks
       ~n_blocks:(Array.length t.block_sizes)
       ~n_values:(Array.length t.domain) idx)

(** Expand to the explicit [2^k]-style law — differential tests only;
    exponential in the player count. *)
let to_dist t =
  let k = players t in
  let n = Array.length t.domain in
  let rec profiles i =
    if i = k then [ [] ]
    else
      List.concat_map
        (fun rest -> List.init n (fun v -> v :: rest))
        (profiles (i + 1))
  in
  let pairs =
    List.filter_map
      (fun idx_list ->
        let idx = Array.of_list idx_list in
        let w =
          mass_of_comp t
            (comp_of_profile ~blocks:t.blocks
               ~n_blocks:(Array.length t.block_sizes) ~n_values:n idx)
        in
        if R.is_zero w then None
        else Some (Array.map (fun v -> t.domain.(v)) idx, w))
      (profiles 0)
  in
  D.of_weighted pairs

(** Collapse an explicit law into classes, checking exchangeability:
    every profile in a class must carry exactly the class weight.
    Returns [Error (x, x')] with two same-class profiles of different
    mass when the law is not block-exchangeable — the concrete witness
    that a symmetry declaration is unsound. *)
let of_dist ~domain ~blocks dist =
  let block_sizes = block_sizes_of blocks in
  let n_blocks = Array.length block_sizes in
  let n_values = Array.length domain in
  let seen : (string, 'a array * R.t) Hashtbl.t = Hashtbl.create 16 in
  let witness = ref None in
  let expected = ref [] in
  List.iter
    (fun (x, w) ->
      match !witness with
      | Some _ -> ()
      | None ->
          let idx = Array.map (index_of_value domain) x in
          let comp = comp_of_profile ~blocks ~n_blocks ~n_values idx in
          let key = comp_key comp in
          (match Hashtbl.find_opt seen key with
          | None ->
              Hashtbl.add seen key (x, w);
              expected := (comp, w, R.one) :: !expected
          | Some (x0, w0) ->
              if not (R.equal w0 w) then witness := Some (x0, x)
              else
                expected :=
                  List.map
                    (fun (c, cw, n) ->
                      if comp_key c = key then (c, cw, R.add n R.one)
                      else (c, cw, n))
                    !expected))
    (D.to_alist dist);
  match !witness with
  | Some (x, x') -> Error (x, x')
  | None ->
      (* A class whose orbit is only partially covered by the support is
         fine only if the missing members have weight zero — but then the
         covered members must make the class mass check fail, because the
         per-member weight times the full orbit size overshoots. Catch it
         here with a per-class cardinality check instead of deep in
         [of_classes]. *)
      let bad =
        List.find_opt
          (fun (comp, _, n) ->
            not (R.equal n (comp_orbit_size block_sizes comp)))
          !expected
      in
      (match bad with
      | Some (comp, _, _) ->
          let x0, _ = Hashtbl.find seen (comp_key comp) in
          Error (x0, x0)
      | None ->
          Ok
            (of_classes ~domain ~blocks
               (List.rev_map (fun (c, w, _) -> (c, w)) !expected)))
