(** Finite discrete probability distributions, as a functor over the
    weight semifield (see {!Weight}).

    A distribution is a finite list of [(value, weight)] pairs with
    positive weights summing to one. Values are deduplicated with
    polymorphic structural equality (via [Hashtbl]), which is adequate
    for the ground types used throughout this reproduction (ints, bools,
    int arrays, lists and tuples thereof — never functions or cyclic
    values). *)

module Make (W : Weight.S) = struct
  type weight = W.t

  type 'a t = {
    items : ('a * W.t) array;
    (* memoized value -> weight index so that [prob_of] is O(1); built
       lazily because most distributions are tiny and never queried *)
    mutable index : ('a, W.t) Hashtbl.t option;
  }

  (* Deduplicate in one hash lookup per pair: the table maps a value to
     its mutable weight cell, so repeated values accumulate in place and
     no second lookup is needed to read the weights back. [order] holds
     the [(value, cell)] pairs in reverse insertion order. *)
  let dedupe_cells pairs =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    let n = ref 0 in
    List.iter
      (fun (v, w) ->
        if W.compare w W.zero > 0 then
          match Hashtbl.find_opt tbl v with
          | Some cell -> cell := W.add !cell w
          | None ->
              let cell = ref w in
              Hashtbl.add tbl v cell;
              order := (v, cell) :: !order;
              incr n)
      pairs;
    (!order, !n)

  let total pairs = List.fold_left (fun acc (_, w) -> W.add acc w) W.zero pairs

  let total_arr items =
    Array.fold_left (fun acc (_, w) -> W.add acc w) W.zero items

  (* Renormalize in place only when the mass isn't already exactly one
     ([W.is_one] is O(1); on the exact instance this skips allocating a
     division closure per item for the common mass-preserving case). *)
  let normalize_arr items =
    let z = total_arr items in
    if W.compare z W.zero <= 0 then
      invalid_arg "Dist.of_weighted: no positive mass";
    if W.is_one z then items
    else Array.map (fun (v, w) -> (v, W.div w z)) items

  let of_weighted pairs =
    let rev_order, n = dedupe_cells pairs in
    if n = 0 then invalid_arg "Dist.of_weighted: no positive mass";
    (* Fill the items array back-to-front straight from the reversed
       insertion list — no intermediate forward list. *)
    let items =
      match rev_order with
      | [] -> assert false
      | (v0, c0) :: tl ->
          let arr = Array.make n (v0, !c0) in
          let i = ref (n - 2) in
          List.iter
            (fun (v, c) ->
              arr.(!i) <- (v, !c);
              decr i)
            tl;
          arr
    in
    { items = normalize_arr items; index = None }

  let return v = { items = [| (v, W.one) |]; index = None }

  let to_alist d = Array.to_list d.items
  let support d = Array.to_list (Array.map fst d.items)
  let size d = Array.length d.items

  let is_point d = Array.length d.items = 1

  let prob d pred =
    Array.fold_left
      (fun acc (v, w) -> if pred v then W.add acc w else acc)
      W.zero d.items

  let prob_of d v =
    let index =
      match d.index with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create (Array.length d.items) in
          Array.iter (fun (x, w) -> Hashtbl.replace tbl x w) d.items;
          d.index <- Some tbl;
          tbl
    in
    Option.value ~default:W.zero (Hashtbl.find_opt index v)

  let map f d =
    of_weighted (List.map (fun (v, w) -> (f v, w)) (to_alist d))

  (* [map_injective f d] equals [map f d] when [f] is injective on the
     support of [d]: the image has no duplicates and carries the same
     weights, so deduplication and renormalization are skipped. Item
     order is preserved exactly (downstream float folds are
     order-sensitive). Unchecked — callers own the injectivity proof. *)
  let map_injective f d =
    { items = Array.map (fun (v, w) -> (f v, w)) d.items; index = None }

  let bind d f =
    let pieces =
      List.concat_map
        (fun (v, w) ->
          List.map (fun (u, wu) -> (u, W.mul w wu)) (to_alist (f v)))
        (to_alist d)
    in
    of_weighted pieces

  (* [bind_disjoint d f] equals [bind d f] when the supports of [f v]
     are pairwise disjoint across the support of [d]: the concatenation
     is duplicate-free and its mass is exactly the product mass (one on
     the exact instance), so deduplication and renormalization are
     skipped. Items appear in the same concatenation order as [bind]'s.
     Unchecked — callers own the disjointness proof. On the float
     instance the skipped renormalization can leave mass 1 only up to
     rounding; use [bind] unless bit-compatibility is the point. *)
  let bind_disjoint d f =
    let pieces =
      List.concat_map
        (fun (v, w) ->
          List.map (fun (u, wu) -> (u, W.mul w wu)) (to_alist (f v)))
        (to_alist d)
    in
    { items = Array.of_list pieces; index = None }

  let ( let* ) = bind

  let product a b =
    let* x = a in
    let* y = b in
    return (x, y)

  let uniform = function
    | [] -> invalid_arg "Dist.uniform: empty support"
    | vs ->
        let n = List.length vs in
        of_weighted (List.map (fun v -> (v, W.of_int_ratio 1 n)) vs)

  let bernoulli w =
    if W.compare w W.zero < 0 || W.compare w W.one > 0 then
      invalid_arg "Dist.bernoulli: weight out of range";
    if W.equal w W.one then return true
    else if W.equal w W.zero then return false
    else of_weighted [ (true, w); (false, W.sub W.one w) ]

  (* Items are already deduplicated, so conditioning only filters and
     renormalizes — no hash pass. *)
  let condition d pred =
    let kept =
      Array.of_list (List.filter (fun (v, _) -> pred v) (to_alist d))
    in
    if Array.length kept = 0 || W.compare (total_arr kept) W.zero <= 0 then
      None
    else Some { items = normalize_arr kept; index = None }

  let condition_exn d pred =
    match condition d pred with
    | Some d -> d
    | None -> invalid_arg "Dist.condition_exn: conditioning on a null event"

  (* n-fold product over an array of distributions; values come out as
     arrays indexed like the input. *)
  let product_array ds =
    let n = Array.length ds in
    let rec go i acc_val acc_w acc =
      if i = n then (Array.of_list (List.rev acc_val), acc_w) :: acc
      else
        Array.fold_left
          (fun acc (v, w) -> go (i + 1) (v :: acc_val) (W.mul acc_w w) acc)
          acc ds.(i).items
    in
    of_weighted (go 0 [] W.one [])

  let iid n d =
    if n < 0 then invalid_arg "Dist.iid";
    product_array (Array.make n d)

  let expectation_with f d =
    Array.fold_left
      (fun acc (v, w) -> acc +. (W.to_float w *. f v))
      0. d.items

  let total_variation a b =
    let vals = List.sort_uniq compare (support a @ support b) in
    let s =
      List.fold_left
        (fun acc v ->
          acc
          +. Float.abs (W.to_float (prob_of a v) -. W.to_float (prob_of b v)))
        0. vals
    in
    s /. 2.

  let mass d = total (to_alist d)

  let pp pp_v fmt d =
    Format.fprintf fmt "@[<v>";
    Array.iteri
      (fun i (v, w) ->
        if i > 0 then Format.fprintf fmt "@,";
        Format.fprintf fmt "%a -> %a" pp_v v W.pp w)
      d.items;
    Format.fprintf fmt "@]"
end
