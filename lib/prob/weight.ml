(** Weight semifields for distributions.

    {!Dist_core.Make} is a functor over this signature, instantiated at
    floats ({!Dist}) for measurement-scale work and at exact rationals
    ({!Dist_exact}) for the protocol semantics, where probabilities are
    products and sums of rationals and equality checks must be exact. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val is_one : t -> bool
  (** O(1) test for exactly one — the fast path {!Dist_core.Make} uses
      to skip renormalization when a total mass is already 1. Must
      agree with [equal one]. *)

  val of_int_ratio : int -> int -> t
  (** [of_int_ratio a b] embeds the rational [a/b]. *)

  val to_float : t -> float
  val pp : Format.formatter -> t -> unit
end

module Float : S with type t = float = struct
  type t = float

  let zero = 0.
  let one = 1.
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let compare = Float.compare
  let equal = Float.equal
  let is_one x = x = 1.0
  let of_int_ratio a b = float_of_int a /. float_of_int b
  let to_float x = x
  let pp fmt x = Format.fprintf fmt "%.6g" x
end

module Exact : S with type t = Exact.Rational.t = struct
  include Exact.Rational

  let add = Exact.Rational.add
  let of_int_ratio = Exact.Rational.of_ints
end
