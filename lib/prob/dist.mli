(** Float-weighted finite probability distributions.

    The measurement-scale workhorse: protocols' empirical laws,
    samplers' inputs, experiment statistics. For exact-rational
    probabilities (used throughout the protocol semantics) see
    {!Dist_exact}; both share the functorized core {!Dist_core.Make}, so
    the operations below are documented once here.

    A distribution is a normalized finite list of [(value, weight)]
    pairs with strictly positive weights. Values are deduplicated with
    structural equality; ground data types only (ints, bools, arrays,
    lists, tuples — never functions). *)

type weight = float

type 'a t = 'a Dist_core.Make(Weight.Float).t
(** Equal to the functor instance's type so that code generic over
    {!Dist_core.Make} (e.g. {!Infotheory.Measures}) interoperates. *)

(** {1 Construction} *)

val of_weighted : ('a * float) list -> 'a t
(** Deduplicate, drop non-positive weights, normalize to total mass 1.
    @raise Invalid_argument if no positive mass remains. *)

val return : 'a -> 'a t
(** Point mass. *)

val uniform : 'a list -> 'a t
(** @raise Invalid_argument on an empty list. *)

val bernoulli : float -> bool t
(** [bernoulli p] is [true] with probability [p].
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val categorical : float array -> int t
(** Values are indices into the weight array. *)

val binomial : int -> float -> int t
val geometric_truncated : float -> int -> int t
(** [geometric_truncated p n]: unnormalized geometric restricted to
    [\[0, n)] and renormalized. *)

val of_fun : 'a list -> ('a -> float) -> 'a t

(** {1 Monadic structure} *)

val map : ('a -> 'b) -> 'a t -> 'b t

val map_injective : ('a -> 'b) -> 'a t -> 'b t
(** [map f d] when [f] is injective on the support of [d]: skips
    deduplication and renormalization, preserving item order and
    weights exactly. Unchecked precondition. *)

val bind : 'a t -> ('a -> 'b t) -> 'b t

val bind_disjoint : 'a t -> ('a -> 'b t) -> 'b t
(** [bind d f] when the supports of [f v] are pairwise disjoint across
    the support of [d]: skips deduplication and renormalization.
    Unchecked precondition; on float weights prefer {!bind} unless
    bit-exact item order matters. *)

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val product : 'a t -> 'b t -> ('a * 'b) t
val product_array : 'a t array -> 'a array t
val iid : int -> 'a t -> 'a array t
(** [iid n d]: [n] independent copies, as arrays. *)

(** {1 Queries} *)

val to_alist : 'a t -> ('a * float) list
val support : 'a t -> 'a list
val size : 'a t -> int
val is_point : 'a t -> bool
val prob : 'a t -> ('a -> bool) -> float
val prob_of : 'a t -> 'a -> float
val mass : 'a t -> float
(** Total mass; 1 up to float rounding (exactly 1 for {!Dist_exact}). *)

val condition : 'a t -> ('a -> bool) -> 'a t option
(** Conditional distribution; [None] on a null event. *)

val condition_exn : 'a t -> ('a -> bool) -> 'a t

val expectation_with : ('a -> float) -> 'a t -> float
val expectation : float t -> float
val variance : float t -> float
val total_variation : 'a t -> 'a t -> float

(** {1 Sampling} *)

val sample : Rng.t -> 'a t -> 'a
(** Inverse-CDF; O(support) per draw. Prefer {!Sampler} for repeated
    draws from one distribution. *)

val sample_n : Rng.t -> 'a t -> int -> 'a list

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
