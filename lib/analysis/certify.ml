(** Correctness certification for deterministic protocol trees.

    {!Absint.analyze} turns a deterministic tree into a symbolic output
    map: reachable leaves with the input rectangle that reaches each.
    Because each input profile follows exactly one path, those
    rectangles partition the input space — so checking a declared spec
    against the map is a complete procedure, not a sampled one: either
    every rectangle agrees with the spec everywhere (a machine-checkable
    certificate) or some profile disagrees (a concrete counterexample
    input, found without executing the protocol).

    Randomized trees, trees whose laws raised or overflowed their
    arity, and analyses cut short by the node budget are reported
    {e inconclusive} — never silently certified. *)

type counterexample = {
  input_indices : int array;
      (** per-player index into the domain: a real falsifying profile *)
  expected : int;  (** what the spec demands on that profile *)
  actual : int;  (** what the protocol outputs (the leaf it reaches) *)
  at_leaf : Path.t;
}

let pp_counterexample fmt c =
  Format.fprintf fmt
    "input indices [%s] reach leaf %a with output %d, spec expects %d"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int c.input_indices)))
    Path.pp c.at_leaf c.actual c.expected

let counterexample_to_string c = Format.asprintf "%a" pp_counterexample c

let inputs_of_counterexample ~domain c =
  Array.map (fun ix -> domain.(ix)) c.input_indices

type outcome =
  | Certified
  | Refuted of counterexample
  | Inconclusive of string

let outcome_label = function
  | Certified -> "certified"
  | Refuted _ -> "refuted"
  | Inconclusive _ -> "inconclusive"

(** Exit-code contract of [broadcast_cli verify]: 0 certified,
    1 refuted, 3 inconclusive (2 is the usage-error convention). *)
let exit_code = function
  | Certified -> 0
  | Refuted _ -> 1
  | Inconclusive _ -> 3

type t = {
  outcome : outcome;
  summary : Absint.t;
  checked_profiles : int;
      (** spec evaluations performed; for a certified tree this is
          exactly [domain_size ^ players] — every profile, once *)
}

exception Found of counterexample
exception Budget

let check_leaves ~budget ~spec ~domain (summary : Absint.t) =
  let checked = ref 0 in
  let choice = Array.make summary.Absint.players 0 in
  let check (leaf : Absint.leaf) =
    let axes = Array.map Array.of_list leaf.Absint.rect in
    let k = Array.length axes in
    let rec enum p =
      if p = k then begin
        incr checked;
        if !checked > budget then raise Budget;
        let inputs = Array.init k (fun i -> domain.(choice.(i))) in
        let expected = spec inputs in
        if expected <> leaf.Absint.output then
          raise
            (Found
               {
                 input_indices = Array.sub choice 0 k;
                 expected;
                 actual = leaf.Absint.output;
                 at_leaf = leaf.Absint.leaf_path;
               })
      end
      else
        Array.iter
          (fun ix ->
            choice.(p) <- ix;
            enum (p + 1))
          axes.(p)
    in
    enum 0
  in
  match List.iter check summary.Absint.leaves with
  | () ->
      (* Coverage: a deterministic tree routes every profile to exactly
         one leaf, so anything short of the full product means profiles
         were lost (an empty-support law) and nothing was proven about
         them. *)
      let total =
        let n = summary.Absint.domain_size in
        let rec pow acc i =
          if i = 0 then acc
          else if acc > max_int / (max n 1) then max_int
          else pow (acc * n) (i - 1)
        in
        pow 1 summary.Absint.players
      in
      if !checked = total then (Certified, !checked)
      else
        ( Inconclusive
            (Printf.sprintf
               "only %d of %d input profiles reach a leaf; the rest are \
                lost to empty-support laws"
               !checked total),
          !checked )
  | exception Found c -> (Refuted c, !checked)
  | exception Budget ->
      ( Inconclusive
          (Printf.sprintf "spec-evaluation budget (%d) exhausted" budget),
        !checked )
  | exception e ->
      ( Inconclusive
          (Printf.sprintf "spec raised %s during certification"
             (Printexc.to_string e)),
        !checked )

let certify ?budget ?players ~spec ~domain tree =
  let summary = Absint.analyze ?budget ?players ~domain tree in
  let budget = Option.value ~default:Absint.default_budget budget in
  let outcome, checked_profiles =
    if summary.Absint.widened then
      ( Inconclusive
          (Printf.sprintf
             "node budget exhausted after %d nodes (%d widenings); the \
              output map is incomplete"
             summary.Absint.nodes summary.Absint.widenings),
        0 )
    else if summary.Absint.law_failures > 0 then
      ( Inconclusive
          (Printf.sprintf
             "%d emit-law evaluations raised or overflowed their arity; \
              run proto-lint"
             summary.Absint.law_failures),
        0 )
    else if not summary.Absint.deterministic then
      ( Inconclusive
          "protocol is randomized; zero-error certification covers \
           deterministic trees",
        0 )
    else check_leaves ~budget ~spec ~domain summary
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.bump ("absint." ^ outcome_label outcome) 1;
  { outcome; summary; checked_profiles }

(* ------------------------------------------------------------------ *)
(* Information-cost certification                                      *)
(* ------------------------------------------------------------------ *)

module R = Exact.Rational

type ic_certificate = {
  flow : Infoflow.t;
  ic_external : Infoflow.bound;
  ic_internal : Infoflow.bound;
  lower_bounds : (string * R.t) list;
      (** named engine bounds folded into [ic_external.lo] *)
}

type ic_outcome =
  | Ic_certified of ic_certificate
  | Ic_inconclusive of {
      flow : Infoflow.t;
      reason : string;
      inconsistent : bool;
          (** true when an injected lower bound {e exceeded} the sound
              upper bound — a soundness bug somewhere, never silently
              resolved by picking a side *)
    }

let ic_outcome_label = function
  | Ic_certified _ -> "ic-certified"
  | Ic_inconclusive _ -> "ic-inconclusive"

let certify_ic ?budget ?players ?prec ?mu ?(lower = fun _ -> []) ~domain tree
    =
  let flow = Infoflow.analyze ?budget ?players ?prec ?mu ~domain tree in
  let outcome =
    match Infoflow.soundness_reason flow with
    | Some reason -> Ic_inconclusive { flow; reason; inconsistent = false }
    | None -> (
        let lbs = lower flow in
        let hi = flow.Infoflow.external_ic.Infoflow.hi in
        (* Cross-check the injected engines against the independent
           upper bound: both sides are certified sound, so a crossing
           proves a bug and must surface, not be maxed away. *)
        match List.filter (fun (_, b) -> R.compare b hi > 0) lbs with
        | (name, b) :: _ ->
            Ic_inconclusive
              {
                flow;
                reason =
                  Printf.sprintf
                    "lower-bound engine %s claims %s, above the sound \
                     upper bound %s — one of the two is unsound"
                    name (R.to_string b) (R.to_string hi);
                inconsistent = true;
              }
        | [] ->
            let lo =
              List.fold_left
                (fun acc (_, b) -> R.max acc b)
                flow.Infoflow.external_ic.Infoflow.lo lbs
            in
            let scale = max 0 (flow.Infoflow.players - 1) in
            Ic_certified
              {
                flow;
                ic_external = { Infoflow.lo; hi };
                ic_internal =
                  {
                    Infoflow.lo = R.mul_int lo scale;
                    hi = R.mul_int hi scale;
                  };
                lower_bounds = lbs;
              })
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.bump ("infoflow." ^ ic_outcome_label outcome) 1;
  outcome
