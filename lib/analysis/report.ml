(** Structured diagnostics for the protocol-tree analyzer.

    A report is an ordered collection of diagnostics, each carrying a
    severity, the identifier of the rule that produced it, the path of
    the offending node, and a human-readable message. The exit-code
    policy is the contract between the analyzer and CI: errors are
    well-formedness violations (the tree is not a broadcast protocol,
    or its declared measures are wrong) and fail the run; warnings are
    legal-but-suspect constructions (dead branches, state-space blowup)
    and fail only under [--strict]. *)

type severity = Info | Warning | Error

(* Higher is worse; used both for sorting and for the exit policy. *)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp_severity fmt s = Format.pp_print_string fmt (severity_to_string s)

type diagnostic = {
  severity : severity;
  rule : string;  (** rule identifier, e.g. ["dist-normalized"] *)
  path : Path.t;  (** offending node *)
  message : string;
}

let diagnostic ~severity ~rule ~path message =
  { severity; rule; path; message }

let pp_diagnostic fmt d =
  Format.fprintf fmt "%a[%s] at %a: %s" pp_severity d.severity d.rule
    Path.pp d.path d.message

type t = diagnostic list

let empty : t = []
let of_list ds : t = ds
let to_list (r : t) = r
let append (a : t) (b : t) : t = a @ b
let concat rs : t = List.concat rs
let count (r : t) = List.length r

let count_severity sev r =
  List.length (List.filter (fun d -> d.severity = sev) r)

let errors r = List.filter (fun d -> d.severity = Error) r
let warnings r = List.filter (fun d -> d.severity = Warning) r
let has_errors r = List.exists (fun d -> d.severity = Error) r

let max_severity (r : t) =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s -> if compare_severity d.severity s > 0 then Some d.severity else Some s)
    None r

(** Worst first; ties broken by rule id, then by node position. *)
let sorted (r : t) =
  List.stable_sort
    (fun a b ->
      match compare_severity b.severity a.severity with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> Path.compare a.path b.path
          | c -> c)
      | c -> c)
    r

(** [is_clean r] holds when nothing at Warning severity or above was
    reported — the bar shipped protocols are held to. *)
let is_clean r =
  match max_severity r with
  | None | Some Info -> true
  | Some (Warning | Error) -> false

(** Exit-code policy: 0 when acceptable, 1 otherwise. Errors always
    fail; [strict] promotes warnings to failures. *)
let exit_code ?(strict = false) r =
  if has_errors r then 1
  else if strict && not (is_clean r) then 1
  else 0

(** The one JSON shape for a diagnostic, shared by [lint --json] and
    [verify --json] so downstream tooling parses a single schema.
    [diagnostic_fields] is exposed so callers can prepend context
    (e.g. the protocol name) without re-encoding. *)
let diagnostic_fields d =
  Obs.Jsonw.
    [
      ("severity", String (severity_to_string d.severity));
      ("rule", String d.rule);
      ("path", String (Path.to_string d.path));
      ("message", String d.message);
    ]

let diagnostic_to_json d = Obs.Jsonw.obj (diagnostic_fields d)

let to_json (r : t) = Obs.Jsonw.list (List.map diagnostic_to_json (sorted r))

let pp fmt (r : t) =
  match r with
  | [] -> Format.fprintf fmt "no diagnostics"
  | ds ->
      Format.fprintf fmt "@[<v>";
      List.iteri
        (fun i d ->
          if i > 0 then Format.fprintf fmt "@,";
          pp_diagnostic fmt d)
        (sorted ds);
      Format.fprintf fmt "@]"

let to_string r = Format.asprintf "%a" pp r
