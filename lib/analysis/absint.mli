(** Abstract interpretation over protocol trees: per-node cost
    intervals, reachability rectangles, and the symbolic output map the
    certifier ({!Certify}) consumes.

    The reachability abstraction is exact for broadcast trees: a
    message law depends only on the speaker's own input and the board
    contents, so the input profiles consistent with a transcript prefix
    form a product of per-player sets (the combinatorial rectangle of
    the Lemma-6 fooling argument). A branch reported dead is therefore
    {e proven} unreachable — by zero coin probability or by
    contradiction with the transcript prefix — not heuristically
    flagged. *)

type interval = { lo : int; hi : int }
(** Inclusive bit-cost bounds over reachable executions. *)

val pp_interval : Format.formatter -> interval -> unit
val interval_to_string : interval -> string
val mem_interval : int -> interval -> bool

type rect = int list array
(** One sorted list of domain indices per player: the inputs still
    consistent with the transcript prefix. *)

type leaf = {
  leaf_path : Path.t;
  output : int;
  rect : rect;
      (** per-player sorted domain indices consistent with reaching
          this leaf *)
}

type t = {
  cost : interval;
      (** exact [\[min, max\]] charged bits over reachable executions,
          under the fixed-width [ceil(log2 arity)] charging of
          {!Proto.Tree.communication_cost} and
          {!Blackboard.Board.post} *)
  struct_max : int;
      (** structural worst case ignoring reachability
          (= {!Proto.Tree.communication_cost}); [cost.hi <= struct_max],
          strictly below it exactly when dead branches carry the
          structural maximum *)
  nodes : int;  (** nodes visited before any widening cut in *)
  widenings : int;  (** subtrees summarized after budget exhaustion *)
  dead : Path.t list;
      (** proven-dead child edges (zero-probability coin branches and
          input-contradictory message branches), sorted in pre-order;
          dead subtrees are not descended into *)
  deterministic : bool;
      (** every live message law is a point mass and every chance node
          has a single live branch; [false] whenever [widened] *)
  law_failures : int;
      (** emit-law evaluations that raised or placed mass outside the
          arity; both make certification inconclusive *)
  widened : bool;  (** the node budget ran out somewhere *)
  leaves : leaf list;
      (** reachable leaves with their rectangles, in pre-order; for a
          deterministic, unwidened tree these partition the input-
          profile space — the symbolic output map *)
  players : int;  (** rectangle axes (declared count or inferred) *)
  domain_size : int;
}

val default_budget : int

val rect_profiles : rect -> int
(** Number of input profiles in a rectangle (product of axis sizes),
    saturating at [max_int]. *)

val analyze : ?budget:int -> ?players:int -> domain:'a array -> 'a Proto.Tree.t -> t
(** [analyze ~domain tree] runs the abstract interpreter from the full
    rectangle ([players] axes, each the whole domain). [players]
    defaults to the inferred count (one past the largest speaker) and
    is raised to it when declared too small. [budget] bounds nodes
    visited (default {!default_budget}); past it, remaining subtrees
    widen to [\[0, struct_max\]] and the result is marked [widened].
    Reports [absint.nodes] / [absint.widenings] / [absint.runs] to the
    installed {!Obs.Metrics} registry and runs in an [absint/analyze]
    span when tracing is enabled.
    @raise Invalid_argument on an empty domain or non-positive budget. *)
