(** Correctness certification for deterministic protocol trees.

    Checks a declared spec against the symbolic output map
    {!Absint.analyze} derives (reachable leaves x input rectangles,
    which partition the input space for deterministic trees). The
    procedure is complete: it either certifies the protocol on every
    input profile or returns a concrete falsifying input — and it never
    executes the protocol. Randomized trees, malformed laws, and
    budget-cut analyses are {e inconclusive}, never silently
    certified. *)

type counterexample = {
  input_indices : int array;
      (** per-player index into the domain: a real falsifying profile *)
  expected : int;  (** what the spec demands on that profile *)
  actual : int;  (** what the protocol outputs (the leaf it reaches) *)
  at_leaf : Path.t;
}

val pp_counterexample : Format.formatter -> counterexample -> unit
val counterexample_to_string : counterexample -> string

val inputs_of_counterexample : domain:'a array -> counterexample -> 'a array
(** Decode the per-player indices back to actual inputs, e.g. to replay
    the counterexample through {!Proto.Semantics}. *)

type outcome =
  | Certified
  | Refuted of counterexample
  | Inconclusive of string  (** reason; nothing was proven *)

val outcome_label : outcome -> string
(** ["certified"] / ["refuted"] / ["inconclusive"]. *)

val exit_code : outcome -> int
(** Exit-code contract of [broadcast_cli verify]: 0 certified,
    1 refuted, 3 inconclusive (2 is the usage-error convention). *)

type t = {
  outcome : outcome;
  summary : Absint.t;  (** the underlying abstract interpretation *)
  checked_profiles : int;
      (** spec evaluations performed; for a certified tree, exactly
          [domain_size ^ players] — every profile, once *)
}

val certify :
  ?budget:int ->
  ?players:int ->
  spec:('a array -> int) ->
  domain:'a array ->
  'a Proto.Tree.t ->
  t
(** [certify ~spec ~domain tree] abstractly interprets [tree]
    ({!Absint.analyze}, same [budget] and [players] defaulting) and
    checks [spec] over the resulting output map. [budget] also bounds
    spec evaluations. Bumps [absint.certified] / [absint.refuted] /
    [absint.inconclusive] on the installed {!Obs.Metrics} registry.
    @raise Invalid_argument on an empty domain or non-positive budget. *)
