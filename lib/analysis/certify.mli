(** Correctness certification for deterministic protocol trees.

    Checks a declared spec against the symbolic output map
    {!Absint.analyze} derives (reachable leaves x input rectangles,
    which partition the input space for deterministic trees). The
    procedure is complete: it either certifies the protocol on every
    input profile or returns a concrete falsifying input — and it never
    executes the protocol. Randomized trees, malformed laws, and
    budget-cut analyses are {e inconclusive}, never silently
    certified. *)

type counterexample = {
  input_indices : int array;
      (** per-player index into the domain: a real falsifying profile *)
  expected : int;  (** what the spec demands on that profile *)
  actual : int;  (** what the protocol outputs (the leaf it reaches) *)
  at_leaf : Path.t;
}

val pp_counterexample : Format.formatter -> counterexample -> unit
val counterexample_to_string : counterexample -> string

val inputs_of_counterexample : domain:'a array -> counterexample -> 'a array
(** Decode the per-player indices back to actual inputs, e.g. to replay
    the counterexample through {!Proto.Semantics}. *)

type outcome =
  | Certified
  | Refuted of counterexample
  | Inconclusive of string  (** reason; nothing was proven *)

val outcome_label : outcome -> string
(** ["certified"] / ["refuted"] / ["inconclusive"]. *)

val exit_code : outcome -> int
(** Exit-code contract of [broadcast_cli verify]: 0 certified,
    1 refuted, 3 inconclusive (2 is the usage-error convention). *)

type t = {
  outcome : outcome;
  summary : Absint.t;  (** the underlying abstract interpretation *)
  checked_profiles : int;
      (** spec evaluations performed; for a certified tree, exactly
          [domain_size ^ players] — every profile, once *)
}

val certify :
  ?budget:int ->
  ?players:int ->
  spec:('a array -> int) ->
  domain:'a array ->
  'a Proto.Tree.t ->
  t
(** [certify ~spec ~domain tree] abstractly interprets [tree]
    ({!Absint.analyze}, same [budget] and [players] defaulting) and
    checks [spec] over the resulting output map. [budget] also bounds
    spec evaluations. Bumps [absint.certified] / [absint.refuted] /
    [absint.inconclusive] on the installed {!Obs.Metrics} registry.
    @raise Invalid_argument on an empty domain or non-positive budget. *)

(** {1 Information-cost certification}

    The information analogue of {!certify}: instead of an output map
    checked against a spec, {!Infoflow.analyze}'s transcript-
    distribution summary yields a sound rational [[lo, hi]] bracket of
    the external (and internal) information cost, or an inconclusive
    verdict when widening or malformed laws void the masses. *)

type ic_certificate = {
  flow : Infoflow.t;  (** the underlying transcript-distribution run *)
  ic_external : Infoflow.bound;
      (** sound bracket of [IC_mu]; lower edge already folded with the
          injected engines *)
  ic_internal : Infoflow.bound;
      (** [(players - 1)] times [ic_external] — exact under product
          [mu] *)
  lower_bounds : (string * Exact.Rational.t) list;
      (** the named engine bounds that were folded in *)
}

type ic_outcome =
  | Ic_certified of ic_certificate
  | Ic_inconclusive of {
      flow : Infoflow.t;
      reason : string;
      inconsistent : bool;
          (** an injected lower bound exceeded the sound upper bound —
              a soundness bug somewhere, surfaced rather than maxed
              away *)
    }

val ic_outcome_label : ic_outcome -> string
(** ["ic-certified"] / ["ic-inconclusive"]. *)

val certify_ic :
  ?budget:int ->
  ?players:int ->
  ?prec:int ->
  ?mu:Exact.Rational.t array ->
  ?lower:(Infoflow.t -> (string * Exact.Rational.t) list) ->
  domain:'a array ->
  'a Proto.Tree.t ->
  ic_outcome
(** [certify_ic ~domain tree] runs {!Infoflow.analyze} (same [budget],
    [players], [prec], [mu] defaulting) and packages the result as a
    certificate. [lower] injects extra {e sound} named lower bounds on
    the external cost — e.g. [Lowerbound.Discrepancy.engine], which
    this library cannot depend on, partially applied by the caller;
    each injected bound is cross-checked against the certified upper
    bound and a crossing yields [Ic_inconclusive] with [inconsistent]
    set. Bumps [infoflow.ic-certified] / [infoflow.ic-inconclusive]. *)
