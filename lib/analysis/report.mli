(** Structured diagnostics for the protocol-tree analyzer.

    Severity policy: [Error] means the tree is not a well-formed
    broadcast protocol (or a declared measure is wrong) and must fail
    CI; [Warning] means the tree is legal but suspect (dead branches,
    exact-semantics blowup); [Info] is advisory. *)

type severity = Info | Warning | Error

val compare_severity : severity -> severity -> int
(** Orders by badness: [Info < Warning < Error]. *)

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

type diagnostic = {
  severity : severity;
  rule : string;  (** rule identifier, e.g. ["dist-normalized"] *)
  path : Path.t;  (** offending node *)
  message : string;
}

val diagnostic :
  severity:severity -> rule:string -> path:Path.t -> string -> diagnostic

val pp_diagnostic : Format.formatter -> diagnostic -> unit

type t = diagnostic list

val empty : t
val of_list : diagnostic list -> t
val to_list : t -> diagnostic list
val append : t -> t -> t
val concat : t list -> t
val count : t -> int
val count_severity : severity -> t -> int
val errors : t -> diagnostic list
val warnings : t -> diagnostic list
val has_errors : t -> bool
val max_severity : t -> severity option

val sorted : t -> diagnostic list
(** Worst first; ties by rule id, then node position. *)

val is_clean : t -> bool
(** True when nothing at Warning severity or above was reported — the
    bar shipped protocols are held to by the registry sweep. *)

val exit_code : ?strict:bool -> t -> int
(** 0 when acceptable, 1 otherwise. Errors always fail; [strict]
    promotes warnings to failures. *)

val diagnostic_fields : diagnostic -> (string * Obs.Jsonw.t) list
(** The canonical JSON fields of one diagnostic ([severity], [rule],
    [path], [message]) — exposed so callers can prepend context fields
    (e.g. a protocol name) without re-encoding. *)

val diagnostic_to_json : diagnostic -> Obs.Jsonw.t
(** One flat object; the single diagnostic schema shared by
    [broadcast_cli lint --json] and [broadcast_cli verify --json]. *)

val to_json : t -> Obs.Jsonw.t
(** The report as a JSON list, worst first ({!sorted}). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
