(** The proto-lint rule catalog.

    Each rule is an independent static pass over a protocol tree: it
    never samples and never executes the protocol, it only inspects the
    tree structure and evaluates message laws pointwise on the declared
    input domain. Rules return plain diagnostic lists so they can be
    tested one by one; {!Analyzer.analyze} runs them all.

    The analyzer walks the {e unfolded} tree (shared subtrees are
    visited once per occurrence), which matches how the exact semantics
    charges them; it is meant for the same small-parameter regime as
    {!Proto.Semantics}. The one rule that must stay cheap on blow-up
    trees — {!state_space} — caps its own traversal at the budget. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

(* ------------------------------------------------------------------ *)
(* Rule identifiers                                                    *)
(* ------------------------------------------------------------------ *)

let id_dist_normalized = "dist-normalized"
let id_support_in_arity = "support-in-arity"
let id_speaker_bounds = "speaker-bounds"
let id_broadcast_consistency = "broadcast-consistency"
let id_dead_branch = "dead-branch"
let id_bit_accounting = "bit-accounting"
let id_state_space = "state-space-budget"
let id_unreachable_output = "unreachable-output"
let id_redundant_slot = "redundant-slot"

let all_ids =
  [
    id_dist_normalized;
    id_support_in_arity;
    id_speaker_bounds;
    id_broadcast_consistency;
    id_dead_branch;
    id_bit_accounting;
    id_state_space;
    id_unreachable_output;
    id_redundant_slot;
  ]

(* ------------------------------------------------------------------ *)
(* Shared traversal machinery (see {!Walk})                            *)
(* ------------------------------------------------------------------ *)

let fold_nodes = Walk.fold_nodes

let err ~rule ~path msg =
  Report.diagnostic ~severity:Report.Error ~rule ~path msg

let warn ~rule ~path msg =
  Report.diagnostic ~severity:Report.Warning ~rule ~path msg

(* Message laws are arbitrary closures; evaluating one may raise (the
   {!Proto.Tree.speak} smart constructor itself raises on out-of-arity
   support). Only {!dist_normalized} reports evaluation failures, so a
   broken law yields one diagnostic rather than one per rule. *)
let eval_emit emit x =
  match emit x with d -> Ok d | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* (1) dist-normalized                                                 *)
(* ------------------------------------------------------------------ *)

(** Every message law and every public coin must be an exact
    probability distribution: total mass 1 in rationals, no negative
    weights, for every input in the declared domain. The public
    constructors of {!Prob.Dist_exact} guarantee this; hand-built
    distributions (the underlying record type is exposed) and foreign
    bindings do not. *)
let dist_normalized ~domain tree =
  let check_mass ~rule ~path ~what d acc =
    let bad_weight =
      List.exists (fun (_, w) -> R.sign w <= 0) (D.to_alist d)
    in
    let mass = D.mass d in
    let acc =
      if bad_weight then
        err ~rule ~path
          (Printf.sprintf "%s carries a zero or negative weight" what)
        :: acc
      else acc
    in
    if R.equal mass R.one then acc
    else
      err ~rule ~path
        (Printf.sprintf "%s has total mass %s, expected 1" what
           (R.to_string mass))
      :: acc
  in
  let rule = id_dist_normalized in
  fold_nodes
    (fun acc path t ->
      match t with
      | T.Output _ -> acc
      | T.Chance { coin; _ } ->
          check_mass ~rule ~path ~what:"public coin" coin acc
      | T.Speak { emit; _ } ->
          let acc = ref acc in
          Array.iteri
            (fun i x ->
              match eval_emit emit x with
              | Ok d ->
                  acc :=
                    check_mass ~rule ~path
                      ~what:(Printf.sprintf "emit law on domain input #%d" i)
                      d !acc
              | Error e ->
                  acc :=
                    err ~rule ~path
                      (Printf.sprintf
                         "emit law raised on domain input #%d: %s" i e)
                    :: !acc)
            domain;
          !acc)
    [] tree
  |> List.rev |> Report.of_list

(* ------------------------------------------------------------------ *)
(* (2) support-in-arity                                                *)
(* ------------------------------------------------------------------ *)

(** No message law (or coin) may place mass on a symbol outside
    [[0, Array.length children)]: such a symbol has no continuation
    subtree and the semantics would index out of bounds. *)
let support_in_arity ~domain tree =
  let rule = id_support_in_arity in
  let check_support ~path ~what ~arity d acc =
    List.fold_left
      (fun acc s ->
        if s < 0 || s >= arity then
          err ~rule ~path
            (Printf.sprintf "%s places mass on symbol %d outside arity %d"
               what s arity)
          :: acc
        else acc)
      acc (D.support d)
  in
  fold_nodes
    (fun acc path t ->
      match t with
      | T.Output _ -> acc
      | T.Chance { coin; children } ->
          check_support ~path ~what:"public coin"
            ~arity:(Array.length children) coin acc
      | T.Speak { emit; children; _ } ->
          let arity = Array.length children in
          let seen = Hashtbl.create 4 in
          let acc = ref acc in
          Array.iteri
            (fun i x ->
              match eval_emit emit x with
              | Error _ -> () (* reported by dist-normalized *)
              | Ok d ->
                  List.iter
                    (fun s ->
                      if (s < 0 || s >= arity) && not (Hashtbl.mem seen s)
                      then begin
                        Hashtbl.add seen s ();
                        acc :=
                          err ~rule ~path
                            (Printf.sprintf
                               "emit law places mass on symbol %d outside \
                                arity %d (first seen on domain input #%d)"
                               s arity i)
                          :: !acc
                      end)
                    (D.support d))
            domain;
          !acc)
    [] tree
  |> List.rev |> Report.of_list

(* ------------------------------------------------------------------ *)
(* (3) speaker-bounds                                                  *)
(* ------------------------------------------------------------------ *)

(** Speaker indices must name real players: non-negative always, and
    below the declared player count when one is given. *)
let speaker_bounds ?players tree =
  let rule = id_speaker_bounds in
  fold_nodes
    (fun acc path t ->
      match t with
      | T.Output _ | T.Chance _ -> acc
      | T.Speak { speaker; _ } ->
          if speaker < 0 then
            err ~rule ~path
              (Printf.sprintf "negative speaker index %d" speaker)
            :: acc
          else (
            match players with
            | Some k when speaker >= k ->
                err ~rule ~path
                  (Printf.sprintf
                     "speaker %d out of range for %d declared players"
                     speaker k)
                :: acc
            | _ -> acc))
    [] tree
  |> List.rev |> Report.of_list

(* ------------------------------------------------------------------ *)
(* (4) broadcast-consistency                                           *)
(* ------------------------------------------------------------------ *)

(* The shape of the next charged event reachable through chance-only
   paths: who writes next and at what arity, or termination. *)
type next_shape = Halts | Writes of int * int  (** speaker, arity *)

let compare_shape a b =
  match (a, b) with
  | Halts, Halts -> 0
  | Halts, Writes _ -> -1
  | Writes _, Halts -> 1
  | Writes (s1, a1), Writes (s2, a2) ->
      if s1 <> s2 then Int.compare s1 s2 else Int.compare a1 a2

let shape_to_string = function
  | Halts -> "halt"
  | Writes (s, a) -> Printf.sprintf "p%d@arity %d" s a

(* Set (sorted list) of next-event shapes reachable from a subtree with
   positive coin probability before any message is written. *)
let rec next_shapes t =
  match t with
  | T.Output _ -> [ Halts ]
  | T.Speak { speaker; children; _ } ->
      [ Writes (speaker, Array.length children) ]
  | T.Chance { coin; children } ->
      let acc = ref [] in
      Array.iteri
        (fun i c ->
          if R.sign (D.prob_of coin i) > 0 then acc := next_shapes c @ !acc)
        children;
      List.sort_uniq compare_shape !acc

(** Section 3's schedule condition: whose turn it is to speak — and the
    alphabet they write from — is a function of the {e charged} board
    contents alone. Within one tree, distinct message prefixes reach
    distinct nodes, so the condition is structural — except across
    public coins, which write nothing chargeable: every
    positive-probability branch of a [Chance] node must lead to the
    same next charged event (same speaker and arity, or termination in
    every branch). Hand-merged trees that steer the schedule by a free
    coin violate exactly this. *)
let broadcast_consistency tree =
  let rule = id_broadcast_consistency in
  fold_nodes
    (fun acc path t ->
      match t with
      | T.Output _ | T.Speak _ -> acc
      | T.Chance { coin; children } ->
          let sigs =
            Array.to_list children
            |> List.mapi (fun i c -> (i, c))
            |> List.filter (fun (i, _) -> R.sign (D.prob_of coin i) > 0)
            |> List.map (fun (i, c) -> (i, next_shapes c))
          in
          let distinct =
            List.sort_uniq compare (List.map snd sigs)
          in
          if List.length distinct <= 1 then acc
          else
            let show (i, shapes) =
              Printf.sprintf "branch %d -> {%s}" i
                (String.concat ", " (List.map shape_to_string shapes))
            in
            err ~rule ~path
              (Printf.sprintf
                 "schedule depends on a free public coin: %s"
                 (String.concat "; " (List.map show sigs)))
            :: acc)
    [] tree
  |> List.rev |> Report.of_list

(* ------------------------------------------------------------------ *)
(* (5) dead-branch                                                     *)
(* ------------------------------------------------------------------ *)

(** A child is dead when no input in the domain gives its symbol
    positive probability (for coins: the coin itself). Dead children
    are legal but inflate [communication_cost] and the
    [bits_of_arity] charge of their parent — the symbol could be
    removed and the alphabet shrunk. Reported once per dead child;
    the dead subtree itself is not descended into. *)
let dead_branch ~domain tree =
  let rule = id_dead_branch in
  let diags = ref [] in
  let rec go path t =
    match t with
    | T.Output _ -> ()
    | T.Chance { coin; children } ->
        Array.iteri
          (fun i c ->
            if R.sign (D.prob_of coin i) > 0 then go (Path.child path i) c
            else
              diags :=
                warn ~rule ~path:(Path.child path i)
                  (Printf.sprintf
                     "coin branch %d has probability 0; it still inflates \
                      the tree"
                     i)
                :: !diags)
          children
    | T.Speak { emit; children; _ } ->
        let laws =
          Array.to_list domain
          |> List.filter_map (fun x ->
                 match eval_emit emit x with Ok d -> Some d | Error _ -> None)
        in
        (* A law that raises makes reachability unknown; stay silent
           (dist-normalized already reported the raise). *)
        let complete = List.length laws = Array.length domain in
        Array.iteri
          (fun i c ->
            let reachable =
              List.exists (fun d -> R.sign (D.prob_of d i) > 0) laws
            in
            if reachable || not complete then go (Path.child path i) c
            else
              diags :=
                warn ~rule ~path:(Path.child path i)
                  (Printf.sprintf
                     "child %d is unreachable under every domain input; it \
                      inflates the arity charge (%d bits) of its parent"
                     i
                     (T.bits_of_arity (Array.length children)))
                :: !diags)
          children
  in
  go Path.root tree;
  Report.of_list (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* (6) bit-accounting                                                  *)
(* ------------------------------------------------------------------ *)

(* Independent re-derivation of the per-message charge: the number of
   bits b with 2^b >= n. Deliberately not Coding.Intcode.fixed_width —
   the point is to cross-check it. *)
let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let bits = ref 0 and cap = ref 1 in
    while !cap < n do
      incr bits;
      cap := !cap * 2
    done;
    !bits
  end

let rec worst_case_bits = function
  | T.Output _ -> 0
  | T.Speak { children; _ } ->
      ceil_log2 (Array.length children)
      + Array.fold_left (fun acc c -> max acc (worst_case_bits c)) 0 children
  | T.Chance { children; _ } ->
      Array.fold_left (fun acc c -> max acc (worst_case_bits c)) 0 children

(** Recompute the worst-case communication cost from raw arities and
    cross-check {!Tree.communication_cost} (and, when given, a declared
    cost such as a registry entry's) against it. *)
let bit_accounting ?declared_cost tree =
  let rule = id_bit_accounting in
  let recomputed = worst_case_bits tree in
  let reported = T.communication_cost tree in
  let acc =
    if reported <> recomputed then
      [
        err ~rule ~path:Path.root
          (Printf.sprintf
             "Tree.communication_cost reports %d bits but arity accounting \
              gives %d"
             reported recomputed);
      ]
    else []
  in
  let acc =
    match declared_cost with
    | Some c when c < 0 ->
        (* A dedicated diagnostic, not an exception: a negative
           declaration is a caller bug the analyzer must survive and
           report like any other wrong measure. *)
        err ~rule ~path:Path.root
          (Printf.sprintf
             "declared worst-case cost %d is negative; bit costs are \
              non-negative (arity accounting gives %d)"
             c recomputed)
        :: acc
    | Some c when c <> recomputed ->
        err ~rule ~path:Path.root
          (Printf.sprintf
             "declared worst-case cost %d bits but arity accounting gives %d"
             c recomputed)
        :: acc
    | _ -> acc
  in
  Report.of_list (List.rev acc)

(* ------------------------------------------------------------------ *)
(* (7) state-space-budget                                              *)
(* ------------------------------------------------------------------ *)

let default_state_budget = 1_000_000

(* Leaf count with a cap: stops as soon as the count can no longer stay
   under the cap, so the pass is cheap even on blow-up trees. *)
let count_leaves_capped ~cap tree =
  let count = ref 0 in
  let rec go t =
    if !count <= cap then
      match t with
      | T.Output _ -> incr count
      | T.Speak { children; _ } | T.Chance { children; _ } ->
          Array.iter go children
  in
  go tree;
  (!count, !count > cap)

(** Estimate the state space of an exact [Semantics.joint] run —
    (inputs in the domain product) x (transcript leaves) — and warn
    when it exceeds the budget. This is the exponential-blowup failure
    mode of [bench/e2_disj_scaling.ml]: the walk is legal but will not
    finish; use the operational {!Blackboard} runtime instead, or raise
    the budget knowingly. *)
let state_space ?(budget = default_state_budget) ~players ~domain tree =
  let rule = id_state_space in
  let inputs_f = float_of_int (Array.length domain) ** float_of_int players in
  let budget_f = float_of_int budget in
  let cap =
    if inputs_f >= budget_f then 0
    else min budget (int_of_float (budget_f /. inputs_f)) + 1
  in
  let leaves, capped = count_leaves_capped ~cap tree in
  let estimate = float_of_int leaves *. inputs_f in
  if estimate <= budget_f then Report.empty
  else
    Report.of_list
      [
        warn ~rule ~path:Path.root
          (Printf.sprintf
             "exact joint-law enumeration needs %s%.3g states (%d players x \
              %d domain points -> %.3g input profiles, x %s%d transcript \
              leaves), over the budget of %d; exact semantics will blow up \
              — use the operational runtime or raise the budget"
             (if capped then ">= " else "")
             estimate players (Array.length domain) inputs_f
             (if capped then ">= " else "")
             leaves budget);
      ]

(* ------------------------------------------------------------------ *)
(* (8) unreachable-output                                               *)
(* ------------------------------------------------------------------ *)

(** An output value that appears at some leaf but is {e provably} never
    produced: no input profile in the domain reaches any leaf carrying
    it. The proof obligation is discharged by {!Absint.analyze}, whose
    reachable-leaf rectangles are exact (Lemma-6 products), so a value
    flagged here is dead under every execution — typically a symptom of
    a mis-wired branch or an over-wide output alphabet. Reported once
    per value, at its first declaring leaf. Stays silent when the
    abstract interpretation widened or saw failing laws, since
    reachability is then unknown. *)
let unreachable_output ?budget ?players ~domain tree =
  let rule = id_unreachable_output in
  let summary = Absint.analyze ?budget ?players ~domain tree in
  if summary.Absint.widened || summary.Absint.law_failures > 0 then
    Report.empty
  else begin
    let reachable = Hashtbl.create 8 in
    List.iter
      (fun (l : Absint.leaf) -> Hashtbl.replace reachable l.Absint.output ())
      summary.Absint.leaves;
    (* First declaring leaf of each output value, in pre-order. *)
    let declared = ref [] in
    let seen = Hashtbl.create 8 in
    ignore
      (fold_nodes
         (fun () path t ->
           match t with
           | T.Output v when not (Hashtbl.mem seen v) ->
               Hashtbl.add seen v ();
               declared := (v, path) :: !declared
           | _ -> ())
         () tree);
    List.rev !declared
    |> List.filter_map (fun (v, path) ->
           if Hashtbl.mem reachable v then None
           else
             Some
               (warn ~rule ~path
                  (Printf.sprintf
                     "output value %d is declared here but proven \
                      unreachable: no domain input profile reaches any \
                      leaf producing it"
                     v)))
    |> Report.of_list
  end

(* ------------------------------------------------------------------ *)
(* (9) redundant-slot                                                  *)
(* ------------------------------------------------------------------ *)

(** A board slot whose posted value no later emit law or branch can
    observe and that cannot influence the output is pure waste: the
    protocol would compute the same function without charging for it.
    Derived from the {!Depgraph} read-sets, so proven-dead readers do
    not keep a slot alive; silent when the dependency analysis widened
    or laws failed, since the read-sets are then incomplete. *)
let redundant_slot ?budget ?players ~domain tree =
  let rule = id_redundant_slot in
  let dg = Depgraph.analyze ?budget ?players ~domain tree in
  if dg.Depgraph.widened || dg.Depgraph.law_failures > 0 then Report.empty
  else begin
    let read = Array.make (max dg.Depgraph.slots 1) false in
    Array.iter
      (fun rs -> List.iter (fun s -> read.(s) <- true) rs)
      dg.Depgraph.reads;
    let ds = ref [] in
    for s = dg.Depgraph.slots - 1 downto 0 do
      if (not read.(s)) && not dg.Depgraph.output_relevant.(s) then
        ds :=
          warn ~rule ~path:Path.root
            (Printf.sprintf
               "slot %d (speakers {%s}) is redundant: no later emit law or \
                branch reads it and it cannot influence the output"
               s
               (String.concat ","
                  (List.map string_of_int dg.Depgraph.speakers.(s))))
          :: !ds
    done;
    Report.of_list !ds
  end

(* ------------------------------------------------------------------ *)
(* Player inference                                                    *)
(* ------------------------------------------------------------------ *)

let inferred_players = Walk.inferred_players
