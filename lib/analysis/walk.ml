(** Shared tree-traversal helpers for the static analyses.

    Both the lint catalog ({!Rules}) and the abstract interpreters
    ({!Absint}, {!Infoflow}) need the same pre-order walk and
    player-count inference; keeping them here lets rules depend on the
    interpreters (the [unreachable-output] rule consumes {!Absint}
    leaves) without a module cycle. *)

module T = Proto.Tree

(** Pre-order fold with the path to each node. *)
let fold_nodes f init tree =
  let rec go acc path t =
    let acc = f acc path t in
    match t with
    | T.Output _ -> acc
    | T.Speak { children; _ } | T.Chance { children; _ } ->
        let acc = ref acc in
        Array.iteri (fun i c -> acc := go !acc (Path.child path i) c) children;
        !acc
  in
  go init Path.root tree

(** Smallest player count consistent with the tree: one past the
    largest speaker index (0 for speaker-free trees). *)
let inferred_players tree =
  fold_nodes
    (fun acc _ t ->
      match t with
      | T.Speak { speaker; _ } -> max acc (speaker + 1)
      | T.Output _ | T.Chance _ -> acc)
    0 tree
