(** Static information-cost certification via abstract transcript
    distributions.

    Propagates exact per-player weight vectors (the probabilistic
    refinement of {!Absint}'s Lemma-6 rectangles) through a protocol
    tree under a declared product input distribution, and derives sound
    rational bounds on the external and internal information cost — no
    floats anywhere on the certification path, no joint enumeration of
    input profiles. See the implementation header for the abstract
    domain, the per-(leaf, player) KL decomposition behind the bounds,
    and the widening/soundness argument (also DESIGN.md §12). *)

module R := Exact.Rational

type bound = { lo : R.t; hi : R.t }

val pp_bound : Format.formatter -> bound -> unit
val bound_to_string : bound -> string
val bound_width : bound -> R.t
val mem_bound : R.t -> bound -> bool

type leaf = {
  leaf_path : Path.t;
  output : int;
  bits : int;  (** charged bits along the path to this leaf *)
  mass : R.t;  (** exact transcript probability under [mu] *)
}

type t = {
  players : int;
  domain_size : int;
  prec : int;  (** {!Infotheory.Rlog} fraction bits used for logs *)
  mu : R.t array;  (** the per-player marginal the analysis ran under *)
  leaves : leaf list;  (** reachable leaves in pre-order *)
  total_mass : R.t;  (** exactly 1 whenever [sound] *)
  nodes : int;  (** nodes visited before any widening *)
  struct_max : int;  (** worst-case communication cost in bits *)
  widened : bool;  (** node budget hit; masses incomplete *)
  law_failures : int;
      (** emission laws that raised, overflowed their arity, or were
          not exactly normalized *)
  deterministic : bool;
      (** the transcript is a function of the input profile: no live
          public randomness and every live emission is a point mass *)
  sound : bool;
      (** true iff not widened, no law failures, and the leaf masses
          sum to exactly 1; when false every bound below degrades to
          the trivial [[0, struct_max]] fallback *)
  external_ic : bound;  (** sound bracket of [IC_mu(Pi) = I(T ; X)] *)
  internal_ic : bound;
      (** sound bracket of [sum_i I(T ; X_{-i} | X_i)]; exactly
          [(players - 1)] times [external_ic] under product [mu] *)
  expected_bits : R.t;  (** exact [E[charged bits]]; 0 unless [sound] *)
  entropy_hi : R.t;
      (** sound upper bound on the transcript entropy [H(T)]; 0 unless
          [sound] *)
  max_leaf_mass : R.t;
      (** largest single leaf probability — what the partition /
          discrepancy lower-bound engine consumes; 0 unless [sound] *)
}

val default_prec : int
(** Fraction bits for the certified logarithms (16: interval width a
    few [2^-16] per term — and exactly 0 on power-of-two ratios, e.g.
    deterministic trees over power-of-two domains under uniform mu). *)

val uniform_mu : int -> R.t array
(** [uniform_mu n] is the uniform marginal over an [n]-point domain. *)

val soundness_reason : t -> string option
(** [None] when [sound]; otherwise a human-readable reason suitable for
    an inconclusive certificate. *)

val analyze :
  ?budget:int ->
  ?players:int ->
  ?prec:int ->
  ?mu:R.t array ->
  domain:'a array ->
  'a Proto.Tree.t ->
  t
(** [analyze ~domain tree] runs the transcript-distribution abstract
    interpretation under the product of per-player marginals [mu]
    (default uniform over [domain]). [budget] caps visited nodes
    (default {!Absint.default_budget}; exceeding it widens), [players]
    widens the declared player count ({!Walk.inferred_players} is the
    floor), [prec] the log precision. Runs in an [infoflow/analyze]
    trace span and bumps [infoflow.*] metrics when {!Obs} is live.
    @raise Invalid_argument on an empty domain, non-positive budget or
    prec, or a [mu] that is negative somewhere, has the wrong length,
    or does not sum to 1. *)
