(** Tree paths for diagnostics: the sequence of child indices from the
    root to a node. Paths are built child-index-by-child-index during
    traversal (cheapest as a reversed cons list) and rendered
    root-first, e.g. ["root/2/0"]. *)

type t = int list
(** Reversed: head is the child index taken {e last}. *)

let root : t = []
let child path i : t = i :: path
let depth = List.length

(** Root-first child indices. *)
let to_list path = List.rev path

let to_string path =
  match to_list path with
  | [] -> "root"
  | steps ->
      "root/" ^ String.concat "/" (List.map string_of_int steps)

let pp fmt path = Format.pp_print_string fmt (to_string path)

(** Lexicographic order on root-first index sequences — the order a
    pre-order traversal visits nodes, used to sort diagnostics. *)
let compare a b = compare (to_list a) (to_list b)
