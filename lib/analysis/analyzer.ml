(** Proto-lint entry point: run the whole rule catalog over a tree.

    [analyze] verifies protocol well-formedness {e statically} — the
    protocol is never executed; laws are evaluated pointwise on the
    declared domain and everything else is tree structure. A clean
    report is the precondition the exact machinery
    ({!Proto.Semantics}, {!Proto.Information}) assumes and, until this
    pass existed, only discovered by crashing mid-walk or silently
    mis-charging. *)

type config = {
  players : int option;
      (** declared player count; inferred from speakers when absent *)
  declared_cost : int option;
      (** externally declared worst-case bit cost to cross-check *)
  state_budget : int;  (** node budget for exact-semantics estimates *)
}

let default_config =
  {
    players = None;
    declared_cost = None;
    state_budget = Rules.default_state_budget;
  }

let analyze_with config ~domain tree =
  if Array.length domain = 0 then
    invalid_arg "Analysis.Analyzer.analyze: empty domain";
  let players =
    match config.players with
    | Some k -> k
    | None -> Rules.inferred_players tree
  in
  Report.concat
    [
      Rules.dist_normalized ~domain tree;
      Rules.support_in_arity ~domain tree;
      Rules.speaker_bounds ?players:config.players tree;
      Rules.broadcast_consistency tree;
      Rules.dead_branch ~domain tree;
      Rules.bit_accounting ?declared_cost:config.declared_cost tree;
      Rules.state_space ~budget:config.state_budget ~players ~domain tree;
      Rules.unreachable_output ?players:config.players ~domain tree;
      Rules.redundant_slot ?players:config.players ~domain tree;
    ]

let analyze ?players ?declared_cost ?state_budget ~domain tree =
  let config =
    {
      players;
      declared_cost;
      state_budget =
        Option.value ~default:Rules.default_state_budget state_budget;
    }
  in
  analyze_with config ~domain tree
