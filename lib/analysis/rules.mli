(** The proto-lint rule catalog: independent static passes over a
    protocol tree. None of them executes the protocol — message laws
    are only evaluated pointwise on the declared domain of per-player
    inputs. See {!Analyzer.analyze} for the all-rules entry point and
    DESIGN.md for the rule catalog's rationale. *)

(** {1 Rule identifiers} *)

val id_dist_normalized : string
val id_support_in_arity : string
val id_speaker_bounds : string
val id_broadcast_consistency : string
val id_dead_branch : string
val id_bit_accounting : string
val id_state_space : string
val id_unreachable_output : string
val id_redundant_slot : string

val all_ids : string list
(** All eight, in catalog order. *)

(** {1 Rules} *)

val dist_normalized : domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (1) Every emit law (on every domain input) and every public coin
    is an exact probability distribution: positive weights, total mass
    exactly 1 in rationals. Also the single reporter of emit laws that
    raise. Errors. *)

val support_in_arity : domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (2) No law places mass on a symbol outside [[0, arity)] — such a
    symbol has no continuation subtree. Errors, one per distinct bad
    symbol per node. *)

val speaker_bounds : ?players:int -> 'a Proto.Tree.t -> Report.t
(** (3) Speaker indices are non-negative and, when [players] is given,
    below it. Errors. *)

val broadcast_consistency : 'a Proto.Tree.t -> Report.t
(** (4) The schedule is a function of the charged board contents alone:
    every positive-probability branch of a [Chance] node must lead to
    the same next charged event (speaker and arity, or termination),
    since a free coin writes nothing the schedule may depend on.
    Errors. *)

val dead_branch : domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (5) Children reachable with probability 0 under every domain input
    (for coins: the coin law itself). Legal but they inflate
    [communication_cost] and the per-message arity charge. Warnings;
    dead subtrees are not descended into. *)

val bit_accounting : ?declared_cost:int -> 'a Proto.Tree.t -> Report.t
(** (6) Recompute the worst-case cost from raw arities with an
    independent [ceil(log2)] and cross-check
    {!Proto.Tree.communication_cost} — and [declared_cost] when given —
    against it. Errors. *)

val state_space :
  ?budget:int -> players:int -> domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (7) Estimate the state space of an exact joint-law enumeration
    ([|domain|^players] input profiles x transcript leaves) and warn
    when it exceeds [budget] (default {!default_state_budget}) — the
    blowup failure mode of [bench/e2_disj_scaling.ml]. The pass caps
    its own traversal so it stays cheap on exactly the trees it is
    meant to flag. Warning. *)

val default_state_budget : int

val unreachable_output :
  ?budget:int -> ?players:int -> domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (8) Output values declared at some leaf but {e proven} unreachable
    by {!Absint.analyze}'s exact leaf rectangles: no domain input
    profile produces them. Warnings, one per value at its first
    declaring leaf; silent when the abstract interpretation widened
    ([budget], default {!Absint.default_budget}) or laws failed, since
    reachability is then unknown. *)

val redundant_slot :
  ?budget:int -> ?players:int -> domain:'a array -> 'a Proto.Tree.t -> Report.t
(** (9) Board slots whose value no later emit law or branch can observe
    and that cannot influence the output — pure charged waste, derived
    from the {!Depgraph} read-sets (proven-dead readers pruned).
    Warnings, one per redundant slot; silent when the dependency
    analysis widened ([budget], default {!Depgraph.default_budget}) or
    laws failed, since the read-sets are then incomplete. *)

(** {1 Helpers} *)

val inferred_players : 'a Proto.Tree.t -> int
(** One past the largest speaker index; 0 for speaker-free trees. *)

val ceil_log2 : int -> int
(** The analyzer's own arity-to-bits charge (cross-checks
    {!Coding.Intcode.fixed_width}). *)
