(** Slot-dependency analysis: per-slot read-sets, the happens-before
    DAG, and the pipelining certificate consumed by
    [Netsim.Board_emu]'s pipelined mode.

    Slot [t] {e reads} slot [s] when the value posted at [s] can change
    anything observable about the schedule at [t] (speaker, arity, a
    later emit or coin law, the existence of slot [t]) or the protocol's
    output. Read-sets are an over-approximation computed with the same
    exact reachability rectangles as {!Absint} — proven-dead
    dependencies are pruned, and any divergence the matched descent
    cannot track is closed off conservatively. The wave partition
    derived from them is sound by construction: every slot's reads lie
    strictly before its own wave, so running a whole wave's reliable
    broadcasts concurrently (barriers only between waves) cannot let a
    slot be spoken before everything it reads was delivered. *)

type t = {
  slots : int;  (** reachable slot positions (0 when the tree is a leaf) *)
  reads : int list array;
      (** per slot, the sorted earlier slots it may read (the
          happens-before DAG: edge [s -> t] iff [s] in [reads.(t)]) *)
  speakers : int list array;
      (** per slot, the sorted set of players that can speak there *)
  output_relevant : bool array;
      (** per slot, whether the posted value can influence the output;
          conservatively [true] on any closed-off divergence. A slot
          with no outgoing edge and [output_relevant = false] is
          provably redundant (lint rule [redundant-slot]). *)
  waves : int array;
      (** ascending wave-start boundaries; [waves.(0) = 0] when
          [slots > 0], empty otherwise *)
  nodes : int;  (** walk + matched-descent steps before any widening *)
  widened : bool;  (** the node budget ran out somewhere *)
  law_failures : int;
      (** emit-law evaluations that raised or placed mass outside the
          arity; either withholds the certificate *)
  players : int;
  domain_size : int;
}

val default_budget : int
(** Same default node budget as {!Absint.default_budget}. *)

val analyze : ?budget:int -> ?players:int -> domain:'a array -> 'a Proto.Tree.t -> t
(** [analyze ~domain tree] computes read-sets, speakers, output
    relevance and the wave partition. [players] defaults to the
    inferred count; [budget] bounds walk plus matched-descent steps
    (default {!default_budget}) — past it the result is [widened] and
    the certificate is withheld. Reports [depgraph.nodes] /
    [depgraph.runs] to the installed {!Obs.Metrics} registry and runs
    in a [depgraph/analyze] span when tracing is enabled.
    @raise Invalid_argument on an empty domain or non-positive budget. *)

val certificate : t -> int array option
(** The wave-start boundaries, or [None] when the analysis widened or
    saw a misbehaving emit law (the read-sets may then be incomplete,
    so no pipelining claim is made and consumers must stay
    sequential). *)

val wave_count : t -> int

val wave_of_slot : int array -> int -> int
(** [wave_of_slot waves slot] is the index of the wave containing
    [slot] (the number of boundaries at or before it, minus one). *)

val to_json : t -> Obs.Jsonw.t
(** Schema [broadcast-ic/depgraph/v1]: summary fields plus a per-slot
    table of speakers, reads, wave index and output relevance. *)

val pp : Format.formatter -> t -> unit
