(** Slot-dependency analysis over protocol trees: per-slot read-sets, a
    happens-before DAG, and a pipelining certificate.

    A board slot [t] {e reads} an earlier slot [s] when the value posted
    at [s] can change anything the schedule does at [t]: the speaker
    identity, the message arity, the emit law another player applies, a
    coin law, whether slot [t] exists at all — or the protocol's output.
    Slots that read nothing still live may have their reliable-broadcast
    instances in flight concurrently ({!Netsim.Board_emu}'s pipelined
    mode); the per-slot barrier of the sequential emulation is only
    required where a dependency edge crosses it.

    The analysis walks the tree with the same exact per-player
    reachability rectangles as {!Absint} (a branch declared dead is
    proven dead, so proven-dead dependencies are pruned). At every
    reachable [Speak] node with two or more live children it runs a
    {e matched descent} over each pair of live sibling subtrees: both
    subtrees are walked in lockstep, and as long as the slot signatures
    agree — same speaker, same arity, extensionally equal emit laws on
    the inputs still live for every player other than the branching
    speaker, equal coin laws — the transcript suffix cannot reveal which
    sibling was taken, so no edge is needed. At the first divergence the
    analysis {e closes off}: it conservatively adds an edge from the
    branching slot to every slot position the two suffixes could still
    occupy (and marks the branching slot output-relevant), which keeps
    the read-sets an over-approximation without inspecting the diverged
    suffixes further. Physically shared sibling subtrees short-circuit:
    identical continuations cannot expose the branching symbol.

    From the read-sets a greedy left-to-right partition into {e waves}
    is derived: a new wave starts at slot [t] exactly when [t] reads a
    slot at or past the current wave's start, so every slot's reads lie
    strictly before its own wave. That partition is the pipelining
    certificate. It is withheld ([certificate] returns [None]) whenever
    the node budget widened the walk or an emit law misbehaved
    (raised, or placed mass outside the arity) — in both cases the
    read-sets may be incomplete and the consumer must fall back to the
    sequential per-slot path. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

type t = {
  slots : int;  (** reachable slot positions (0 when the tree is a leaf) *)
  reads : int list array;
      (** per slot, the sorted earlier slots it may read (the
          happens-before DAG: edge [s -> t] iff [s] in [reads.(t)]) *)
  speakers : int list array;
      (** per slot, the sorted set of players that can speak there *)
  output_relevant : bool array;
      (** per slot, whether the posted value can influence the output *)
  waves : int array;
      (** ascending wave-start boundaries; [waves.(0) = 0] when
          [slots > 0], empty otherwise *)
  nodes : int;  (** walk + matched-descent steps before any widening *)
  widened : bool;  (** the node budget ran out somewhere *)
  law_failures : int;
      (** emit-law evaluations that raised or placed mass outside the
          arity; either withholds the certificate *)
  players : int;
  domain_size : int;
}

let default_budget = Absint.default_budget

let wave_count t = Array.length t.waves

let certificate t =
  if t.widened || t.law_failures > 0 then None else Some t.waves

(* Wave index of a slot under the boundary array: the number of
   boundaries at or before it, minus one. *)
let wave_of_slot waves slot =
  let w = ref 0 in
  Array.iteri (fun i b -> if b <= slot then w := i) waves;
  !w

let analyze ?(budget = default_budget) ?players ~domain tree =
  if Array.length domain = 0 then invalid_arg "Depgraph.analyze: empty domain";
  if budget < 1 then invalid_arg "Depgraph.analyze: budget must be positive";
  let players =
    let inferred = Walk.inferred_players tree in
    match players with Some k -> max k inferred | None -> inferred
  in
  let max_slots = T.round_count tree in
  let n = max max_slots 1 in
  let deps = Array.make_matrix n n false in
  (* deps.(t).(s) = slot t may read slot s *)
  let speakers_at = Array.make n [] in
  let out_rel = Array.make n false in
  let nodes = ref 0
  and law_failures = ref 0
  and max_slot_seen = ref 0 in
  let widened = ref false in
  let tick () =
    if !nodes >= budget then begin
      widened := true;
      false
    end
    else begin
      incr nodes;
      true
    end
  in
  (* Which of the speaker's inputs [ixs] stay live under each symbol of
     [emit]. Raising laws go to top (every symbol keeps all inputs) so
     liveness stays an over-approximation; [count] gates the failure
     counter so the matched descent does not double-count laws the main
     walk already reported. *)
  let live_by_symbol ~count emit arity ixs =
    let by = Array.make arity [] in
    let top = ref false in
    List.iter
      (fun ix ->
        match emit domain.(ix) with
        | d ->
            List.iter
              (fun s ->
                if R.sign (D.prob_of d s) > 0 then
                  if s >= 0 && s < arity then by.(s) <- ix :: by.(s)
                  else if count then incr law_failures)
              (D.support d)
        | exception _ ->
            if count then incr law_failures;
            top := true)
      ixs;
    if !top then Array.map (fun _ -> ixs) by else Array.map List.rev by
  in
  (* Extensional equality of two message/coin laws on the first [arity]
     symbols, requiring all mass inside the arity. *)
  let dists_equal da db arity =
    let inside d =
      List.for_all
        (fun s -> (s >= 0 && s < arity) || R.is_zero (D.prob_of d s))
        (D.support d)
    in
    let rec eq m =
      m >= arity || (R.equal (D.prob_of da m) (D.prob_of db m) && eq (m + 1))
    in
    inside da && inside db && eq 0
  in
  let laws_equal emit_a emit_b arity ixs =
    List.for_all
      (fun ix ->
        match (emit_a domain.(ix), emit_b domain.(ix)) with
        | da, db -> dists_equal da db arity
        | exception _ -> false)
      ixs
  in
  (* Divergence at slot position [slot] between sibling suffixes [a] and
     [b]: every slot either suffix can still occupy may read [src], and
     the output may too. *)
  let close_off ~src ~slot a b =
    out_rel.(src) <- true;
    let d = max (T.round_count a) (T.round_count b) in
    for t = slot to min (slot + d) max_slots - 1 do
      deps.(t).(src) <- true
    done
  in
  (* Matched descent over two live sibling subtrees of the Speak at slot
     [src] (branching speaker [v], whose live inputs are [la] in [a] and
     [lb] in [b]; every other player's axis is in [shared], where
     [shared.(v)] is stale and never read). *)
  let rec cmp ~src ~v ~la ~lb ~shared ~slot a b =
    if a == b then ()
    else if not (tick ()) then close_off ~src ~slot a b
    else
      match (a, b) with
      | T.Output va, T.Output vb -> if va <> vb then out_rel.(src) <- true
      | ( T.Chance { coin = ca; children = xa },
          T.Chance { coin = cb; children = xb } )
        when Array.length xa = Array.length xb
             && dists_equal ca cb (Array.length xa) ->
          Array.iteri
            (fun i ai ->
              if R.sign (D.prob_of ca i) > 0 then
                cmp ~src ~v ~la ~lb ~shared ~slot ai xb.(i))
            xa
      | ( T.Speak { speaker = ua; emit = ea; children = xa },
          T.Speak { speaker = ub; emit = eb; children = xb } )
        when ua = ub && Array.length xa = Array.length xb ->
          let u = ua and arity = Array.length xa in
          if u <> v then begin
            (* Same inputs on both sides: the laws must agree on them,
               else the posted symbol distribution betrays the branch. *)
            let ixs = shared.(u) in
            if not (laws_equal ea eb arity ixs) then close_off ~src ~slot a b
            else
              let by = live_by_symbol ~count:false ea arity ixs in
              Array.iteri
                (fun m live_m ->
                  if live_m <> [] then begin
                    let shared' = Array.copy shared in
                    shared'.(u) <- live_m;
                    cmp ~src ~v ~la ~lb ~shared:shared' ~slot:(slot + 1)
                      xa.(m) xb.(m)
                  end)
                by
          end
          else begin
            (* The branching speaker speaks again. Its symbol here is a
               function of its own input only, so the slot signature is
               the same in both branches; recurse per symbol live in
               both (a symbol live in only one branch has no sibling
               pair to distinguish). *)
            let by_a = live_by_symbol ~count:false ea arity la in
            let by_b = live_by_symbol ~count:false eb arity lb in
            for m = 0 to arity - 1 do
              match (by_a.(m), by_b.(m)) with
              | [], _ | _, [] -> ()
              | la', lb' ->
                  cmp ~src ~v ~la:la' ~lb:lb' ~shared ~slot:(slot + 1)
                    xa.(m) xb.(m)
            done
          end
      | _ -> close_off ~src ~slot a b
  in
  let rec go ~slot rect t =
    if tick () then
      match t with
      | T.Output _ -> if slot > !max_slot_seen then max_slot_seen := slot
      | T.Chance { coin; children } ->
          Array.iteri
            (fun i c ->
              if R.sign (D.prob_of coin i) > 0 then go ~slot rect c)
            children
      | T.Speak { speaker; emit; children } ->
          if slot < n && not (List.mem speaker speakers_at.(slot)) then
            speakers_at.(slot) <- speaker :: speakers_at.(slot);
          let arity = Array.length children in
          let by = live_by_symbol ~count:true emit arity rect.(speaker) in
          let live = ref [] in
          Array.iteri
            (fun m l -> if l <> [] then live := (m, l) :: !live)
            by;
          let live = List.rev !live in
          (* Every live sibling pair gets a matched descent; pairwise
             (not just against the first) because liveness on the
             branching speaker's axis differs per sibling. *)
          let rec pairs = function
            | [] -> ()
            | (mi, li) :: rest ->
                List.iter
                  (fun (mj, lj) ->
                    cmp ~src:slot ~v:speaker ~la:li ~lb:lj ~shared:rect
                      ~slot:(slot + 1) children.(mi) children.(mj))
                  rest;
                pairs rest
          in
          pairs live;
          List.iter
            (fun (m, l) ->
              let rect' = Array.copy rect in
              rect'.(speaker) <- l;
              go ~slot:(slot + 1) rect' children.(m))
            live
  in
  let all_indices = List.init (Array.length domain) Fun.id in
  let full_rect = Array.init players (fun _ -> all_indices) in
  let run () = go ~slot:0 full_rect tree in
  if Obs.Trace.enabled () then Obs.Trace.with_span "depgraph/analyze" run
  else run ();
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "depgraph.runs" 1;
    Obs.Metrics.bump "depgraph.nodes" !nodes
  end;
  let slots = if !widened then max_slots else !max_slot_seen in
  let reads =
    Array.init slots (fun t ->
        let acc = ref [] in
        for s = n - 1 downto 0 do
          if deps.(t).(s) && s < t then acc := s :: !acc
        done;
        !acc)
  in
  let speakers =
    Array.init slots (fun t -> List.sort compare speakers_at.(t))
  in
  let output_relevant = Array.init slots (fun t -> out_rel.(t)) in
  let waves =
    if slots = 0 then [||]
    else begin
      let bounds = ref [ 0 ]
      and start = ref 0 in
      for t = 1 to slots - 1 do
        if List.exists (fun s -> s >= !start) reads.(t) then begin
          bounds := t :: !bounds;
          start := t
        end
      done;
      Array.of_list (List.rev !bounds)
    end
  in
  {
    slots;
    reads;
    speakers;
    output_relevant;
    waves;
    nodes = !nodes;
    widened = !widened;
    law_failures = !law_failures;
    players;
    domain_size = Array.length domain;
  }

let to_json t =
  let open Obs.Jsonw in
  let ints l = List (List.map (fun i -> Int i) l) in
  obj
    [
      ("schema", String "broadcast-ic/depgraph/v1");
      ("slots", Int t.slots);
      ("waves", Int (wave_count t));
      ("certified", Bool (certificate t <> None));
      ("widened", Bool t.widened);
      ("law_failures", Int t.law_failures);
      ("nodes", Int t.nodes);
      ("players", Int t.players);
      ("wave_starts", ints (Array.to_list t.waves));
      ( "slot_table",
        List
          (List.init t.slots (fun s ->
               obj
                 [
                   ("slot", Int s);
                   ("speakers", ints t.speakers.(s));
                   ("reads", ints t.reads.(s));
                   ("wave", Int (wave_of_slot t.waves s));
                   ("output_relevant", Bool t.output_relevant.(s));
                 ])) );
    ]

let pp fmt t =
  Format.fprintf fmt "slots=%d waves=%d certified=%b" t.slots (wave_count t)
    (certificate t <> None);
  for s = 0 to t.slots - 1 do
    Format.fprintf fmt "@.  slot %d: wave %d, speakers {%s}, reads {%s}%s" s
      (wave_of_slot t.waves s)
      (String.concat "," (List.map string_of_int t.speakers.(s)))
      (String.concat "," (List.map string_of_int t.reads.(s)))
      (if t.output_relevant.(s) then "" else ", not output-relevant")
  done
