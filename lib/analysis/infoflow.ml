(** Static information-cost certification: abstract interpretation over
    protocol trees whose abstract state is a {e transcript-distribution
    summary}.

    {!Absint} answers "which leaf rectangles are reachable"; this engine
    additionally answers "with what probability" — under a declared
    product input distribution [mu] — and from that derives {e sound}
    rational bounds on the external and internal information cost
    without ever enumerating input profiles jointly.

    {2 The abstract domain}

    Fix a per-player marginal [mu] over the domain (the input profile is
    the product [mu^k]; the broadcast lower bounds of the paper are
    proven against product-like distributions for exactly the reason
    this analysis exploits). For a transcript prefix [t], the
    restriction of the joint input law to "executions consistent with
    [t]" {e factorizes per player} — the same Lemma-6 structure behind
    {!Absint}'s rectangles, refined from sets to weights:

    [Pr[X = x, T follows t] = cm_t * prod_i mu(x_i) * w_{t,i}(x_i)]

    where [cm_t] is the product of public-coin probabilities along [t]
    and [w_{t,i}(v)] is the product of player [i]'s emission
    probabilities along [t] when holding input [v]. The abstract state
    pushed down the tree is exactly [(cm, w)]: one rational per player
    per domain point. It is {e exact} — no abstraction loss — because a
    message law depends only on the speaker's own input and the board.

    {2 The derived bounds}

    At each leaf, let [s_i = sum_v mu(v) w_i(v)]; the leaf's transcript
    probability is [mass = cm * prod_i s_i]. External information cost
    decomposes exactly over (leaf, player):

    [IC_ext = sum_l cm_l * sum_j (prod_{i<>j} s_{l,i})
                * sum_v mu(v) w_{l,j}(v) log2 (w_{l,j}(v) / s_{l,j})]

    and each inner sum is a Kullback-Leibler form, hence non-negative.
    Every quantity except the [log2] is an exact rational; bracketing
    each logarithm with {!Infotheory.Rlog} (all coefficients are
    non-negative, and the inner sums may additionally be clamped at 0)
    yields sound lower {e and} upper bounds whose gap vanishes like
    [2^-prec] — and is exactly zero when every ratio is a power of two,
    as happens for deterministic trees over power-of-two domains under
    uniform [mu]. Two independent upper bounds tighten the cap:
    [E[charged bits]] (Kraft: [I(T;X) = I(M;X|coins) <= H(M|coins) <=
    E[bits]], a pure rational, no logs) and the partition entropy
    [H(T) = sum_l mass_l log2 (1/mass_l) >= I(T;X)].

    Internal information cost needs no separate traversal: summing the
    chain rule [I(T;X) = I(T;X_i) + I(T;X_{-i}|X_i)] over [i] and
    evaluating both sides with the factorization above gives the exact
    identity [sum_i I(T;X_{-i}|X_i) = (k-1) * I(T;X)] under product
    [mu], so the internal interval is [(k-1)] times the external one.

    {2 Widening and soundness}

    The traversal walks the unfolded tree under the same node budget as
    {!Absint}; past it the analysis {e widens}: the only still-sound
    summary is the trivial [[0, CC(tree)]] (information never exceeds
    communication), the result is flagged [widened] and {!Certify}
    reports it inconclusive. Emission laws that raise, overflow their
    arity, or are not exactly normalized likewise poison soundness
    ([law_failures]) and trigger the same fallback — never a silently
    wrong certificate. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module L = Infotheory.Rlog
module T = Proto.Tree

type bound = { lo : R.t; hi : R.t }

let pp_bound fmt { lo; hi } =
  Format.fprintf fmt "[%s, %s]" (R.to_string lo) (R.to_string hi)

let bound_to_string b = Format.asprintf "%a" pp_bound b
let bound_width { lo; hi } = R.sub hi lo
let mem_bound x { lo; hi } = R.compare lo x <= 0 && R.compare x hi <= 0

type leaf = {
  leaf_path : Path.t;
  output : int;
  bits : int;  (** charged bits along the path to this leaf *)
  mass : R.t;  (** exact transcript probability under [mu] *)
}

type t = {
  players : int;
  domain_size : int;
  prec : int;
  mu : R.t array;  (** the per-player marginal the analysis ran under *)
  leaves : leaf list;
  total_mass : R.t;  (** exactly 1 whenever [sound] *)
  nodes : int;
  struct_max : int;
  widened : bool;
  law_failures : int;
  deterministic : bool;
      (** the transcript is a function of the input profile: no live
          public randomness and every live emission is a point mass *)
  sound : bool;
      (** the intervals below are the tight decomposition bounds; when
          false they are the trivial fallback [[0, struct_max]] *)
  external_ic : bound;
  internal_ic : bound;
  expected_bits : R.t;  (** exact [E[charged bits]]; 0 unless [sound] *)
  entropy_hi : R.t;
      (** sound upper bound on the transcript entropy [H(T)]; 0 unless
          [sound] *)
  max_leaf_mass : R.t;
      (** largest leaf probability; the discrepancy / partition lower
          bound engine ({!Lowerbound.Discrepancy}) feeds on it. 0
          unless [sound] or there are no leaves *)
}

let default_prec = L.default_prec

let uniform_mu n = Array.make n (R.of_ints 1 n)

let soundness_reason a =
  if a.widened then
    Some
      (Printf.sprintf
         "node budget exhausted after %d nodes; transcript masses are \
          incomplete"
         a.nodes)
  else if a.law_failures > 0 then
    Some
      (Printf.sprintf
         "%d emission laws raised, overflowed their arity, or were not \
          exactly normalized; run proto-lint"
         a.law_failures)
  else if not (R.equal a.total_mass R.one) then
    Some
      (Printf.sprintf "leaf masses sum to %s, not 1"
         (R.to_string a.total_mass))
  else None

(* Rlog calls dominate the post-walk arithmetic and the same ratios
   recur across leaves (deterministic subtrees yield few distinct
   ratios), so memoize per analysis. Keys go through [R.to_string]: the
   canonical decimal form is representation-independent, unlike the
   structural equality Hashtbl would apply to the dual small/big
   representation. *)
let memoized_log2_bounds ~prec =
  let memo = Hashtbl.create 64 in
  fun x ->
    let key = R.to_string x in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        let b = L.log2_bounds ~prec x in
        Hashtbl.add memo key b;
        b

let analyze ?(budget = Absint.default_budget) ?players
    ?(prec = default_prec) ?mu ~domain tree =
  let d = Array.length domain in
  if d = 0 then invalid_arg "Infoflow.analyze: empty domain";
  if budget < 1 then invalid_arg "Infoflow.analyze: budget must be positive";
  if prec < 1 then invalid_arg "Infoflow.analyze: prec must be positive";
  let mu =
    match mu with
    | None -> uniform_mu d
    | Some m ->
        if Array.length m <> d then
          invalid_arg "Infoflow.analyze: mu length differs from domain";
        Array.iter
          (fun p ->
            if R.sign p < 0 then
              invalid_arg "Infoflow.analyze: mu carries a negative weight")
          m;
        if not (R.equal (R.sum (Array.to_list m)) R.one) then
          invalid_arg "Infoflow.analyze: mu does not sum to 1";
        m
  in
  let players =
    let inferred = Walk.inferred_players tree in
    match players with Some k -> max k inferred | None -> inferred
  in
  let struct_max = T.communication_cost tree in
  let nodes = ref 0
  and law_failures = ref 0 in
  let widened = ref false
  and deterministic = ref true in
  (* Raw leaves carry the per-player weight vectors; masses and bounds
     are derived after the walk. *)
  let raw_leaves = ref [] in
  let init_w = Array.init players (fun _ -> Array.make d R.one) in
  let rec go path w cm bits t =
    if !nodes >= budget then widened := true
    else begin
      incr nodes;
      match t with
      | T.Output v -> raw_leaves := (path, v, bits, cm, w) :: !raw_leaves
      | T.Chance { coin; children } ->
          if not (R.equal (D.mass coin) R.one) then incr law_failures
          else begin
            let live = ref 0 in
            Array.iteri
              (fun i _ ->
                if R.sign (D.prob_of coin i) > 0 then incr live)
              children;
            if !live > 1 then deterministic := false;
            Array.iteri
              (fun i c ->
                let p = D.prob_of coin i in
                if R.sign p > 0 then
                  go (Path.child path i) w (R.mul cm p) bits c)
              children
          end
      | T.Speak { speaker; emit; children } ->
          let arity = Array.length children in
          let charge = T.bits_of_arity arity in
          (* Per-symbol weight row for the speaker; other players' rows
             are unchanged and shared (rows are immutable once built). *)
          let rows = Array.init arity (fun _ -> Array.make d R.zero) in
          let any = Array.make arity false in
          Array.iteri
            (fun v wv ->
              if R.sign wv > 0 then
                match emit domain.(v) with
                | exception _ -> incr law_failures
                | law ->
                    if not (R.equal (D.mass law) R.one) then
                      incr law_failures
                    else begin
                      let supp =
                        List.filter
                          (fun s -> R.sign (D.prob_of law s) > 0)
                          (D.support law)
                      in
                      if List.length supp > 1 then deterministic := false;
                      List.iter
                        (fun s ->
                          if s < 0 || s >= arity then incr law_failures
                          else begin
                            rows.(s).(v) <- R.mul wv (D.prob_of law s);
                            any.(s) <- true
                          end)
                        supp
                    end)
            w.(speaker);
          Array.iteri
            (fun m c ->
              if any.(m) then begin
                let w' = Array.copy w in
                w'.(speaker) <- rows.(m);
                go (Path.child path m) w' cm (bits + charge) c
              end)
            children
    end
  in
  let run () = go Path.root init_w R.one 0 tree in
  (if Obs.Trace.enabled () then Obs.Trace.with_span "infoflow/analyze" run
   else run ());
  (* ---------------- derive masses and bounds ---------------- *)
  let log2_bounds = memoized_log2_bounds ~prec in
  let total_mass = ref R.zero
  and max_leaf_mass = ref R.zero
  and expected_bits = ref R.zero
  and entropy_hi = ref R.zero
  and ext_lo = ref R.zero
  and ext_hi = ref R.zero in
  let leaves =
    List.rev_map
      (fun (leaf_path, output, bits, cm, w) ->
        let s =
          Array.init players (fun i ->
              let acc = ref R.zero in
              Array.iteri
                (fun v wv ->
                  if R.sign wv > 0 && R.sign mu.(v) > 0 then
                    acc := R.add !acc (R.mul mu.(v) wv))
                w.(i);
              !acc)
        in
        let mass =
          if Array.exists R.is_zero s then R.zero
          else Array.fold_left R.mul cm s
        in
        if R.sign mass > 0 then begin
          total_mass := R.add !total_mass mass;
          max_leaf_mass := R.max !max_leaf_mass mass;
          expected_bits := R.add !expected_bits (R.mul_int mass bits);
          let hlo, _ = log2_bounds mass in
          (* log2_hi (1/mass) = -(log2_lo mass), avoiding an inversion *)
          entropy_hi := R.sub !entropy_hi (R.mul mass hlo);
          for j = 0 to players - 1 do
            (* coefficient cm * prod_{i<>j} s_i, as mass / s_j *)
            let coeff = R.div mass s.(j) in
            let inner_lo = ref R.zero
            and inner_hi = ref R.zero in
            Array.iteri
              (fun v wv ->
                if R.sign wv > 0 && R.sign mu.(v) > 0 then begin
                  let a = R.mul mu.(v) wv in
                  let llo, lhi = log2_bounds (R.div wv s.(j)) in
                  inner_lo := R.add !inner_lo (R.mul a llo);
                  inner_hi := R.add !inner_hi (R.mul a lhi)
                end)
              w.(j);
            (* the inner sum is a KL form, hence truly >= 0 *)
            let inner_lo = R.max R.zero !inner_lo in
            ext_lo := R.add !ext_lo (R.mul coeff inner_lo);
            ext_hi := R.add !ext_hi (R.mul coeff !inner_hi)
          done
        end;
        { leaf_path; output; bits; mass })
      !raw_leaves
  in
  let leaves = List.rev leaves in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "infoflow.runs" 1;
    Obs.Metrics.bump "infoflow.nodes" !nodes;
    if !widened then Obs.Metrics.bump "infoflow.widenings" 1
  end;
  let partial =
    {
      players;
      domain_size = d;
      prec;
      mu;
      leaves;
      total_mass = !total_mass;
      nodes = !nodes;
      struct_max;
      widened = !widened;
      law_failures = !law_failures;
      deterministic = !deterministic && not !widened;
      sound = false;
      external_ic = { lo = R.zero; hi = R.of_int struct_max };
      internal_ic =
        { lo = R.zero; hi = R.mul_int (R.of_int struct_max) (max 0 (players - 1)) };
      expected_bits = R.zero;
      entropy_hi = R.zero;
      max_leaf_mass = R.zero;
    }
  in
  match soundness_reason partial with
  | Some _ ->
      (* Unsound masses: keep only the trivial IC <= CC fallback. *)
      partial
  | None ->
      let ext_hi = R.min !ext_hi (R.min !expected_bits !entropy_hi) in
      let ext = { lo = !ext_lo; hi = ext_hi } in
      let scale = max 0 (players - 1) in
      {
        partial with
        sound = true;
        external_ic = ext;
        internal_ic =
          { lo = R.mul_int ext.lo scale; hi = R.mul_int ext.hi scale };
        expected_bits = !expected_bits;
        entropy_hi = !entropy_hi;
        max_leaf_mass = !max_leaf_mass;
      }
