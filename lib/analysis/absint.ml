(** Abstract interpretation over protocol trees.

    Where proto-lint ({!Rules}) checks pointwise well-formedness, this
    engine derives {e whole-execution} guarantees without enumeration of
    runs: per node it propagates

    - an exact [\[min, max\]] bit-cost interval under the Section-3
      fixed-width charging ([ceil(log2 arity)] per message — the same
      charge {!Blackboard.Board.post} applies operationally and
      {!Proto.Tree.communication_cost} applies structurally), restricted
      to {e reachable} executions;
    - a reachability abstraction: for each player, the set of domain
      inputs still consistent with the transcript prefix. Because a
      message law depends only on the speaker's own input and the board
      contents, the set of input profiles consistent with a transcript
      is exactly the product of the per-player sets — the combinatorial
      rectangle behind the Lemma-6 fooling argument — so this
      "abstraction" loses nothing: a branch it declares dead is {e
      proven} dead, not heuristically flagged;
    - a symbolic output map for deterministic trees: the reachable
      leaves together with their rectangles, which partition the input
      space and are what {!Certify} checks a declared spec against.

    The traversal walks the unfolded tree. A node budget keeps it total
    on blow-up (DAG-shared) trees: past the budget each remaining
    subtree is {e widened} to the trivially sound summary
    [\[0, structural max\]] with reachability top, and the analysis
    reports itself inconclusive for certification purposes. Nodes
    visited and widenings performed flow into {!Obs.Metrics} (keys
    [absint.*]) and the whole analysis runs in an [absint/analyze]
    trace span when a sink is installed. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

type interval = { lo : int; hi : int }

let pp_interval fmt { lo; hi } = Format.fprintf fmt "[%d, %d]" lo hi
let interval_to_string iv = Format.asprintf "%a" pp_interval iv
let mem_interval x { lo; hi } = lo <= x && x <= hi

type rect = int list array

type leaf = {
  leaf_path : Path.t;
  output : int;
  rect : rect;
      (** per-player sorted domain indices consistent with reaching
          this leaf *)
}

type t = {
  cost : interval;
  struct_max : int;
  nodes : int;
  widenings : int;
  dead : Path.t list;
  deterministic : bool;
  law_failures : int;
  widened : bool;
  leaves : leaf list;
  players : int;
  domain_size : int;
}

let default_budget = 200_000

let rect_profiles rect =
  Array.fold_left
    (fun acc live ->
      let n = List.length live in
      if acc > max_int / (max n 1) then max_int else acc * n)
    1 rect

let analyze ?(budget = default_budget) ?players ~domain tree =
  if Array.length domain = 0 then invalid_arg "Absint.analyze: empty domain";
  if budget < 1 then invalid_arg "Absint.analyze: budget must be positive";
  let players =
    (* The rectangle needs one axis per speaker even if the declared
       player count is too small; soundness beats the declaration. *)
    let inferred = Walk.inferred_players tree in
    match players with Some k -> max k inferred | None -> inferred
  in
  let struct_max = T.communication_cost tree in
  let nodes = ref 0
  and widenings = ref 0
  and law_failures = ref 0 in
  let dead = ref []
  and leaves = ref [] in
  let deterministic = ref true
  and widened = ref false in
  let all_indices = List.init (Array.length domain) Fun.id in
  let full_rect = Array.init players (fun _ -> all_indices) in
  let rec go path rect t =
    if !nodes >= budget then begin
      (* Widening: summarize the whole remaining subtree by the
         trivially sound interval. The structural max of the full tree
         bounds every suffix cost (a suffix extends to a root-to-leaf
         path of at least its own cost). *)
      incr widenings;
      widened := true;
      { lo = 0; hi = struct_max }
    end
    else begin
      incr nodes;
      match t with
      | T.Output v ->
          leaves := { leaf_path = path; output = v; rect } :: !leaves;
          { lo = 0; hi = 0 }
      | T.Chance { coin; children } ->
          let live = ref [] in
          Array.iteri
            (fun i c ->
              if R.sign (D.prob_of coin i) > 0 then live := (i, c) :: !live
              else dead := Path.child path i :: !dead)
            children;
          let live = List.rev !live in
          if List.length live > 1 then deterministic := false;
          List.fold_left
            (fun acc (i, c) ->
              let iv = go (Path.child path i) rect c in
              match acc with
              | None -> Some iv
              | Some a -> Some { lo = min a.lo iv.lo; hi = max a.hi iv.hi })
            None live
          |> Option.value ~default:{ lo = 0; hi = 0 }
      | T.Speak { speaker; emit; children } ->
          let arity = Array.length children in
          let charge = T.bits_of_arity arity in
          (* Which of the speaker's still-live inputs can emit each
             symbol. Reversed-cons over an ascending index list keeps
             each child's live set sorted after the final reverse. *)
          let child_live = Array.make arity [] in
          let top = ref false in
          List.iter
            (fun ix ->
              match emit domain.(ix) with
              | d ->
                  let supp =
                    List.filter (fun s -> R.sign (D.prob_of d s) > 0) (D.support d)
                  in
                  if List.length supp > 1 then deterministic := false;
                  List.iter
                    (fun s ->
                      if s >= 0 && s < arity then
                        child_live.(s) <- ix :: child_live.(s)
                      else
                        (* Out-of-arity mass has no continuation; the
                           tree is malformed (support-in-arity reports
                           it) and certification must not trust it. *)
                        incr law_failures)
                    supp
              | exception _ ->
                  (* A raising law could emit anything: go to top for
                     this input so reachability stays an over-
                     approximation. *)
                  incr law_failures;
                  deterministic := false;
                  top := true)
            rect.(speaker);
          if !top then
            Array.iteri
              (fun m _ -> child_live.(m) <- List.rev rect.(speaker))
              child_live;
          let acc = ref None in
          Array.iteri
            (fun m c ->
              match child_live.(m) with
              | [] -> dead := Path.child path m :: !dead
              | live_ix ->
                  let rect' = Array.copy rect in
                  rect'.(speaker) <- List.rev live_ix;
                  let iv = go (Path.child path m) rect' c in
                  acc :=
                    Some
                      (match !acc with
                      | None -> iv
                      | Some a ->
                          { lo = min a.lo iv.lo; hi = max a.hi iv.hi }))
            children;
          (match !acc with
          | None ->
              (* No live continuation at all (every live law has empty
                 support): the message is still charged, then the
                 execution is stuck. Certification coverage catches the
                 lost profiles. *)
              { lo = charge; hi = charge }
          | Some a -> { lo = charge + a.lo; hi = charge + a.hi })
    end
  in
  let run () = go Path.root full_rect tree in
  let cost =
    if Obs.Trace.enabled () then Obs.Trace.with_span "absint/analyze" run
    else run ()
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "absint.runs" 1;
    Obs.Metrics.bump "absint.nodes" !nodes;
    Obs.Metrics.bump "absint.widenings" !widenings
  end;
  {
    cost = { cost with hi = min cost.hi struct_max };
    struct_max;
    nodes = !nodes;
    widenings = !widenings;
    dead = List.sort_uniq Path.compare !dead;
    deterministic = !deterministic && not !widened;
    law_failures = !law_failures;
    widened = !widened;
    leaves = List.rev !leaves;
    players;
    domain_size = Array.length domain;
  }
