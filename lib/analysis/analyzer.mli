(** Proto-lint entry point: run the whole rule catalog of {!Rules}
    over a protocol tree, without executing it. *)

type config = {
  players : int option;
      (** declared player count; inferred from speakers when absent *)
  declared_cost : int option;
      (** externally declared worst-case bit cost to cross-check *)
  state_budget : int;  (** node budget for exact-semantics estimates *)
}

val default_config : config

val analyze_with : config -> domain:'a array -> 'a Proto.Tree.t -> Report.t
(** @raise Invalid_argument on an empty domain. *)

val analyze :
  ?players:int ->
  ?declared_cost:int ->
  ?state_budget:int ->
  domain:'a array ->
  'a Proto.Tree.t ->
  Report.t
(** [analyze ~domain tree] runs every rule with [domain] as the set of
    possible per-player inputs. [players] enables the speaker upper
    bound and sharpens the state-space estimate (otherwise inferred as
    one past the largest speaker). [declared_cost] cross-checks an
    externally declared worst-case bit cost. [state_budget] bounds the
    estimated exact-semantics state space (default
    {!Rules.default_state_budget}).
    @raise Invalid_argument on an empty domain. *)
