let fixed_width n =
  if n <= 1 then 0
  else
    let rec go w v = if v >= n then w else go (w + 1) (v * 2) in
    go 0 1

(* One Codec_emit trace event per top-level code written. Codes built
   from other codes (gamma = unary + fixed tail, delta = gamma + tail)
   go through raw helpers below so a single write emits a single
   event. *)
let emit_codec code bits =
  if Obs.Trace.enabled () then Obs.Trace.emit (Obs.Event.Codec_emit { code; bits })

let write_fixed w ~bound v =
  if v < 0 || v >= bound then invalid_arg "Intcode.write_fixed: out of range";
  Bitbuf.Writer.add_bits w v (fixed_width bound);
  emit_codec "fixed" (fixed_width bound)

let read_fixed r ~bound = Bitbuf.Reader.read_bits r (fixed_width bound)

let unary_raw w n =
  Bitbuf.Writer.add_run w true n;
  Bitbuf.Writer.add_bit w false

let write_unary w n =
  if n < 0 then invalid_arg "Intcode.write_unary";
  unary_raw w n;
  emit_codec "unary" (n + 1)

let read_unary r =
  let rec go acc = if Bitbuf.Reader.read_bit r then go (acc + 1) else acc in
  go 0

let bit_length n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let gamma_raw w n =
  let len = bit_length n in
  unary_raw w (len - 1);
  (* Low len-1 bits; the leading 1 is implied by the unary prefix. *)
  Bitbuf.Writer.add_bits w (n - (1 lsl (len - 1))) (len - 1)

let write_gamma w n =
  if n < 1 then invalid_arg "Intcode.write_gamma: requires n >= 1";
  gamma_raw w n;
  emit_codec "gamma" ((2 * bit_length n) - 1)

let read_gamma r =
  let len1 = read_unary r in
  (1 lsl len1) lor Bitbuf.Reader.read_bits r len1

let write_gamma0 w n = write_gamma w (n + 1)
let read_gamma0 r = read_gamma r - 1

let write_delta w n =
  if n < 1 then invalid_arg "Intcode.write_delta: requires n >= 1";
  let len = bit_length n in
  gamma_raw w len;
  Bitbuf.Writer.add_bits w (n - (1 lsl (len - 1))) (len - 1);
  emit_codec "delta" ((2 * bit_length len) - 1 + len - 1)

let read_delta r =
  let len = read_gamma r in
  (1 lsl (len - 1)) lor Bitbuf.Reader.read_bits r (len - 1)

let zigzag n = if n >= 0 then 2 * n else (-2 * n) - 1
let unzigzag n = if n land 1 = 0 then n / 2 else -((n + 1) / 2)
let write_signed_gamma w n = write_gamma0 w (zigzag n)
let read_signed_gamma r = unzigzag (read_gamma0 r)

let write_rice w ~k n =
  if n < 0 || k < 0 then invalid_arg "Intcode.write_rice";
  unary_raw w (n lsr k);
  Bitbuf.Writer.add_bits w (n land ((1 lsl k) - 1)) k;
  emit_codec "rice" ((n lsr k) + 1 + k)

let read_rice r ~k =
  let q = read_unary r in
  (q lsl k) lor Bitbuf.Reader.read_bits r k

let gamma_cost n =
  if n < 1 then invalid_arg "Intcode.gamma_cost";
  (2 * bit_length n) - 1

let delta_cost n =
  if n < 1 then invalid_arg "Intcode.delta_cost";
  let len = bit_length n in
  gamma_cost len + len - 1
