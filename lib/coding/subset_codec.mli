(** Combinatorial-number-system codec for fixed-size subsets.

    The Section-5 disjointness protocol "packs together" batches of
    [z/k] zero-coordinates and writes them "encoded as a subset of
    [Z_i]"; the optimal such encoding indexes the subset among all
    [choose z m] possibilities, costing [ceil(log2 (choose z m))] bits —
    the [ (z/k) log(ek) ] of the paper. This module implements that
    encoding exactly, with bigint ranks so that [z] in the tens of
    thousands is fine. *)

val rank : z:int -> int list -> Exact.Bigint.t
(** [rank ~z subset] maps a strictly-increasing list of elements of
    [\[0, z)] to its index in the colexicographic order of all
    [|subset|]-subsets.
    @raise Invalid_argument if the list is not strictly increasing or
    out of range. *)

val unrank : z:int -> m:int -> Exact.Bigint.t -> int list
(** Inverse of [rank] for [m]-subsets of [\[0, z)]. *)

val code_bits : z:int -> m:int -> int
(** Exact bit width of the encoding: [ceil(log2 (choose z m))]. *)

val write : Bitbuf.Writer.t -> z:int -> int list -> unit
(** Encode a subset (the size [m] must be known to the reader from
    context, as in the protocol). *)

val read : Bitbuf.Reader.t -> z:int -> m:int -> int list

(** {1 Testing hooks}

    Two reference tiers for the chunked fast path: the pre-accumulator
    scans on the immutable bigint API, and the per-factor in-place
    accumulator scans they were first replaced by. The production
    dispatch uses chunked multi-limb scans; the differential suite
    checks all three agree. *)

module For_testing : sig
  val rank_reference : z:int -> int list -> Exact.Bigint.t
  val unrank_reference : z:int -> m:int -> Exact.Bigint.t -> int list

  val rank_acc : z:int -> int list -> Exact.Bigint.t
  (** Per-factor in-place scan (one [mul_small] + [div_exact_small] per
      position of [\[0, z)]) — the mid-tier reference. *)

  val unrank_acc : z:int -> m:int -> Exact.Bigint.t -> int list

  val code_bits_uncached : z:int -> m:int -> int
  (** {!code_bits} without the one-slot memo. *)
end
