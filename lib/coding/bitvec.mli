(** Immutable packed bit vectors: the wire representation of every
    message posted on the blackboard.

    A [Bitvec.t] is a [Bytes]-backed bit string (bit [i] lives at byte
    [i/8], LSB first — the same layout as {!Bitbuf.Writer}), frozen at
    construction. [Bitbuf.Writer.freeze] produces one in O(1) by handing
    over the writer's backing buffer, so a posted message is never
    re-boxed bit by bit; [append]/[extract]/[equal] work a byte (or a
    whole [Bytes.blit]) at a time. *)

type t

val empty : t
val length : t -> int

val get : t -> int -> bool
(** [get t i] is bit [i]. @raise Invalid_argument out of bounds. *)

val append : t -> t -> t
(** Concatenation. O(len) byte-level blits, not per-bit. *)

val extract : t -> pos:int -> len:int -> t
(** [extract t ~pos ~len] copies bits [pos, pos+len) into a fresh
    vector. @raise Invalid_argument out of bounds. *)

val equal : t -> t -> bool
(** Byte-level comparison (lengths, then packed words). *)

(** {1 Whole-word access}

    56-bit windows onto the packed representation: the widest chunk a
    single unaligned 8-byte load can serve within OCaml's 63-bit native
    int. The bit-sliced protocol VM and the word-level intersection
    scans consume vectors this way, ~56 bits per load instead of one
    {!get} per bit. *)

val word_bits : int
(** Bits per word: 56. *)

val word_count : t -> int
(** [ceil (length t / word_bits)]. *)

val word_at : t -> int -> int
(** [word_at t w] is bits [56w, 56w+56) of [t] packed LSB-first into a
    native int, zero-padded past [length t].
    @raise Invalid_argument unless [0 <= 56w < length t]. *)

val of_string : string -> t
(** Parse a ['0'/'1'] string. @raise Invalid_argument on other chars. *)

val to_string : t -> string
(** ['0'/'1'] rendering, for tests and traces. *)

val pp : Format.formatter -> t -> unit

val unsafe_of_bytes : Bytes.t -> len:int -> t
(** Ownership transfer: wrap [data] as a vector of [len] bits without
    copying. The caller must never mutate [data] afterwards, and every
    bit at index [>= len] within the first [(len+7)/8] bytes must be
    zero. This is the zero-copy freeze hook used by {!Bitbuf.Writer};
    prefer that entry point. *)

val unsafe_data : t -> Bytes.t
(** The backing buffer (bit [i] at byte [i/8], LSB first; may be longer
    than [(length t + 7) / 8]). Read-only by contract — this is how
    {!Bitbuf.Reader} wraps a vector without copying. *)

val unsafe_blit : Bytes.t -> int -> Bytes.t -> int -> int -> unit
(** [unsafe_blit src spos dst dpos len] ORs [len] bits of [src] starting
    at bit [spos] into [dst] at bit [dpos]; the destination bits must be
    zero. Byte-at-a-time (whole-[Bytes.blit] when both sides are
    byte-aligned). Shared with {!Bitbuf.Writer.append}; no bounds
    checks. *)

module For_testing : sig
  val of_bool_list : bool list -> t
  val to_bool_list : t -> bool list
  (** Boxed reference representation — differential oracle only. *)
end
