(** Bit-level buffers: an append-only writer and a cursor-based reader.

    Every message a protocol writes on the blackboard goes through these,
    so the bit accounting of the experiments is the real length of a real
    encoding, not a formula. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  (** Number of bits written so far. *)

  type stats = { writers : int; bits : int }

  val stats : unit -> stats
  (** Process-wide emit counts since start (or the last
      {!reset_stats}): writers created and bits appended across all
      writers. Surfaced as gauges by the benchmark/CLI observability
      exports. *)

  val reset_stats : unit -> unit

  val add_bit : t -> bool -> unit
  val add_bits : t -> int -> int -> unit
  (** [add_bits w v n] appends the [n] low bits of [v], most significant
      first. Requires [0 <= n <= 62] and [v >= 0]. *)

  val add_bigint_bits : t -> Exact.Bigint.t -> int -> unit
  (** Append the [n] low bits of a non-negative bigint, most significant
      first. *)

  val append : t -> t -> unit
  (** [append dst src] appends all bits of [src]. *)

  val to_bool_list : t -> bool list
  val to_string : t -> string
  (** ['0'/'1'] rendering, for tests and traces. *)
end

module Reader : sig
  type t

  val of_writer : Writer.t -> t
  val of_bool_list : bool list -> t
  val pos : t -> int
  val remaining : t -> int

  val read_bit : t -> bool
  (** @raise Invalid_argument past the end of the buffer. *)

  val read_bits : t -> int -> int
  (** Read [n <= 62] bits, most significant first. *)

  val read_bigint_bits : t -> int -> Exact.Bigint.t
end
