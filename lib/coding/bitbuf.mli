(** Bit-level buffers: an append-only writer and a cursor-based reader.

    Every message a protocol writes on the blackboard goes through these,
    so the bit accounting of the experiments is the real length of a real
    encoding, not a formula. Both sides are packed: the writer appends
    into a [Bytes] buffer a register chunk at a time, and
    {!Writer.freeze} hands the buffer to an immutable {!Bitvec.t} in
    O(1), so a posted message is never re-boxed per bit. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  (** Number of bits written so far. *)

  type stats = { writers : int; bits : int }

  val stats : unit -> stats
  (** Process-wide emit counts since start (or the last
      {!reset_stats}): writers created and bits appended across all
      writers. Surfaced as gauges by the benchmark/CLI observability
      exports. Multi-bit appends publish their whole span with a single
      atomic add (never one RMW per bit), so the totals are exact at
      every call boundary. *)

  val reset_stats : unit -> unit

  val add_bit : t -> bool -> unit
  val add_bits : t -> int -> int -> unit
  (** [add_bits w v n] appends the [n] low bits of [v], most significant
      first. Requires [0 <= n <= 62] and [v >= 0]. Word-level: one
      masked OR per touched byte. *)

  val add_bigint_bits : t -> Exact.Bigint.t -> int -> unit
  (** Append the [n] low bits of a non-negative bigint, most significant
      first. *)

  val add_run : t -> bool -> int -> unit
  (** [add_run w b n] appends [n] copies of [b] (byte-filled, one stats
      publish). *)

  val add_bools : t -> bool array -> unit
  (** Append a whole characteristic vector, packed a byte at a time. *)

  val append : t -> t -> unit
  (** [append dst src] appends all bits of [src]. Byte-level blit. *)

  val add_vec : t -> Bitvec.t -> unit
  (** Append a frozen vector. Byte-level blit, one stats publish. *)

  val freeze : t -> Bitvec.t
  (** O(1), zero-copy: hand the backing buffer over as an immutable
      {!Bitvec.t}. The writer is frozen — any further append raises
      [Invalid_argument]. This is what {!Blackboard.Board.post} does
      with every message. *)

  val extract : t -> pos:int -> len:int -> Bitvec.t
  (** Copy bits [pos, pos+len) out as a vector without freezing — for
      slicing a round out of a long-lived stream writer.
      @raise Invalid_argument out of bounds. *)

  val to_string : t -> string
  (** ['0'/'1'] rendering, for tests and traces. *)
end

module Reader : sig
  type t

  val of_writer : Writer.t -> t
  (** Zero-copy snapshot of the bits written so far (the writer may keep
      appending; this reader sees the prefix). *)

  val of_vec : Bitvec.t -> t
  (** Zero-copy cursor over a frozen vector. *)

  val pos : t -> int
  val remaining : t -> int

  val read_bit : t -> bool
  (** @raise Invalid_argument past the end of the buffer. *)

  val read_bits : t -> int -> int
  (** Read [n <= 62] bits, most significant first; gathered from the
      packed buffer a byte at a time. *)

  val read_bigint_bits : t -> int -> Exact.Bigint.t
end

module For_testing : sig
  val writer_to_bool_list : Writer.t -> bool list
  val reader_of_bool_list : bool list -> Reader.t
  (** Boxed bool-list views — differential reference only. *)
end
