module Writer = struct
  type t = { mutable data : Bytes.t; mutable len : int (* in bits *) }

  (* Process-wide emit counts, read by the observability layer. Atomic
     because writers are created and fed from several domains during
     parallel registry sweeps; uncontended atomic increments stay cheap
     enough for the per-bit path. *)
  let stat_writers = Atomic.make 0
  let stat_bits = Atomic.make 0

  type stats = { writers : int; bits : int }

  let stats () = { writers = Atomic.get stat_writers; bits = Atomic.get stat_bits }

  let reset_stats () =
    Atomic.set stat_writers 0;
    Atomic.set stat_bits 0

  let create () =
    Atomic.incr stat_writers;
    { data = Bytes.make 16 '\000'; len = 0 }

  let length t = t.len

  let ensure t bits =
    let needed = (t.len + bits + 7) / 8 in
    if needed > Bytes.length t.data then begin
      let cap = ref (Bytes.length t.data) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let fresh = Bytes.make !cap '\000' in
      Bytes.blit t.data 0 fresh 0 (Bytes.length t.data);
      t.data <- fresh
    end

  let add_bit t b =
    ensure t 1;
    if b then begin
      let byte = t.len / 8 and bit = t.len mod 8 in
      Bytes.set t.data byte
        (Char.chr (Char.code (Bytes.get t.data byte) lor (1 lsl bit)))
    end;
    t.len <- t.len + 1;
    Atomic.incr stat_bits

  let add_bits t v n =
    if n < 0 || n > 62 then invalid_arg "Bitbuf.add_bits: width";
    if v < 0 then invalid_arg "Bitbuf.add_bits: negative value";
    for i = n - 1 downto 0 do
      add_bit t ((v lsr i) land 1 = 1)
    done

  let add_bigint_bits t v n =
    if Exact.Bigint.sign v < 0 then invalid_arg "Bitbuf.add_bigint_bits";
    for i = n - 1 downto 0 do
      add_bit t (Exact.Bigint.testbit v i)
    done

  let get_bit t i =
    let byte = i / 8 and bit = i mod 8 in
    (Char.code (Bytes.get t.data byte) lsr bit) land 1 = 1

  let append dst src =
    for i = 0 to src.len - 1 do
      add_bit dst (get_bit src i)
    done

  let to_bool_list t = List.init t.len (get_bit t)

  let to_string t =
    String.init t.len (fun i -> if get_bit t i then '1' else '0')
end

module Reader = struct
  type t = { bits : bool array; mutable pos : int }

  let of_writer w = { bits = Array.of_list (Writer.to_bool_list w); pos = 0 }
  let of_bool_list l = { bits = Array.of_list l; pos = 0 }
  let pos t = t.pos
  let remaining t = Array.length t.bits - t.pos

  let read_bit t =
    if t.pos >= Array.length t.bits then
      invalid_arg "Bitbuf.Reader.read_bit: past end";
    let b = t.bits.(t.pos) in
    t.pos <- t.pos + 1;
    b

  let read_bits t n =
    if n < 0 || n > 62 then invalid_arg "Bitbuf.Reader.read_bits: width";
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor if read_bit t then 1 else 0
    done;
    !v

  let read_bigint_bits t n =
    let v = ref Exact.Bigint.zero in
    for _ = 1 to n do
      v := Exact.Bigint.shift_left !v 1;
      if read_bit t then v := Exact.Bigint.add !v Exact.Bigint.one
    done;
    !v
end
