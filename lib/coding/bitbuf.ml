module Writer = struct
  type t = {
    mutable data : Bytes.t;
    mutable len : int; (* in bits *)
    mutable frozen : bool;
  }

  (* Process-wide emit counts, read by the observability layer. Atomic
     because writers are created and fed from several domains during
     parallel registry sweeps. The multi-bit entry points below publish
     once per call ([Atomic.fetch_and_add] of the whole span), never per
     bit, so the accounting stays exact without a per-bit RMW on the hot
     path. *)
  let stat_writers = Atomic.make 0
  let stat_bits = Atomic.make 0

  type stats = { writers : int; bits : int }

  let stats () = { writers = Atomic.get stat_writers; bits = Atomic.get stat_bits }

  let reset_stats () =
    Atomic.set stat_writers 0;
    Atomic.set stat_bits 0

  let publish n = if n > 0 then ignore (Atomic.fetch_and_add stat_bits n)

  let create () =
    Atomic.incr stat_writers;
    { data = Bytes.make 16 '\000'; len = 0; frozen = false }

  let length t = t.len

  let ensure t bits =
    if t.frozen then invalid_arg "Bitbuf.Writer: frozen";
    let needed = (t.len + bits + 7) / 8 in
    if needed > Bytes.length t.data then begin
      let cap = ref (Bytes.length t.data) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let fresh = Bytes.make !cap '\000' in
      Bytes.blit t.data 0 fresh 0 (Bytes.length t.data);
      t.data <- fresh
    end

  (* Append one bit with no stats accounting; every public entry point
     below publishes its whole span in one shot. *)
  let raw_add_bit t b =
    ensure t 1;
    if b then begin
      let byte = t.len lsr 3 and bit = t.len land 7 in
      Bytes.unsafe_set t.data byte
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.data byte) lor (1 lsl bit)))
    end;
    t.len <- t.len + 1

  let add_bit t b =
    raw_add_bit t b;
    publish 1

  (* OR the low [n] bits of [chunk] — already in LSB-first stream order —
     at the end of the buffer, a byte at a time. *)
  let or_chunk t chunk n =
    ensure t n;
    let pos = t.len in
    let byte = ref (pos lsr 3) in
    let off = pos land 7 in
    let first = min n (8 - off) in
    Bytes.unsafe_set t.data !byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.data !byte)
         lor ((chunk land ((1 lsl first) - 1)) lsl off)));
    incr byte;
    let c = ref (chunk lsr first) and rem = ref (n - first) in
    while !rem > 0 do
      let take = min 8 !rem in
      Bytes.unsafe_set t.data !byte
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get t.data !byte)
           lor (!c land ((1 lsl take) - 1))));
      c := !c lsr take;
      rem := !rem - take;
      incr byte
    done;
    t.len <- pos + n

  (* The stream writes values most-significant bit first while bytes
     pack LSB-first, so the in-register chunk is the bit-reversal of the
     value's low [n] bits. *)
  let rev_bits v n =
    let r = ref 0 and v = ref v in
    for _ = 1 to n do
      r := (!r lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    !r

  let add_bits t v n =
    if n < 0 || n > 62 then invalid_arg "Bitbuf.add_bits: width";
    if v < 0 then invalid_arg "Bitbuf.add_bits: negative value";
    if n > 0 then begin
      or_chunk t (rev_bits v n) n;
      publish n
    end

  let add_bigint_bits t v n =
    if Exact.Bigint.sign v < 0 then invalid_arg "Bitbuf.add_bigint_bits";
    for i = n - 1 downto 0 do
      raw_add_bit t (Exact.Bigint.testbit v i)
    done;
    publish n

  let add_run t b n =
    if n < 0 then invalid_arg "Bitbuf.add_run";
    if n > 0 then begin
      if not b then begin
        ensure t n;
        t.len <- t.len + n
      end
      else begin
        let rem = ref n in
        while !rem > 0 do
          let take = min 8 !rem in
          or_chunk t ((1 lsl take) - 1) take;
          rem := !rem - take
        done
      end;
      publish n
    end

  let add_bools t arr =
    let n = Array.length arr in
    ensure t n;
    let i = ref 0 in
    while !i < n do
      let take = min 8 (n - !i) in
      let chunk = ref 0 in
      for j = take - 1 downto 0 do
        chunk := (!chunk lsl 1) lor if Array.unsafe_get arr (!i + j) then 1 else 0
      done;
      or_chunk t !chunk take;
      i := !i + take
    done;
    publish n

  let get_bit t i =
    let byte = i lsr 3 and bit = i land 7 in
    (Char.code (Bytes.unsafe_get t.data byte) lsr bit) land 1 = 1

  let append dst src =
    let n = src.len in
    ensure dst n;
    Bitvec.unsafe_blit src.data 0 dst.data dst.len n;
    dst.len <- dst.len + n;
    publish n

  let add_vec t v =
    let n = Bitvec.length v in
    ensure t n;
    Bitvec.unsafe_blit (Bitvec.unsafe_data v) 0 t.data t.len n;
    t.len <- t.len + n;
    publish n

  let freeze t =
    t.frozen <- true;
    Bitvec.unsafe_of_bytes t.data ~len:t.len

  let extract t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.len then
      invalid_arg "Bitbuf.Writer.extract: out of bounds";
    if len = 0 then Bitvec.empty
    else begin
      let data = Bytes.make ((len + 7) lsr 3) '\000' in
      Bitvec.unsafe_blit t.data pos data 0 len;
      Bitvec.unsafe_of_bytes data ~len
    end

  let to_string t = String.init t.len (fun i -> if get_bit t i then '1' else '0')
end

module Reader = struct
  type t = { data : Bytes.t; len : int; mutable pos : int }

  (* Zero-copy snapshot: the writer only ever appends (growth swaps in a
     fresh buffer, leaving this one intact), so bits below the snapshot
     length never change under the reader. *)
  let of_writer (w : Writer.t) = { data = w.Writer.data; len = w.Writer.len; pos = 0 }
  let of_vec v = { data = Bitvec.unsafe_data v; len = Bitvec.length v; pos = 0 }
  let pos t = t.pos
  let remaining t = t.len - t.pos

  let read_bit t =
    if t.pos >= t.len then invalid_arg "Bitbuf.Reader.read_bit: past end";
    let p = t.pos in
    t.pos <- p + 1;
    (Char.code (Bytes.unsafe_get t.data (p lsr 3)) lsr (p land 7)) land 1 = 1

  let read_bits t n =
    if n < 0 || n > 62 then invalid_arg "Bitbuf.Reader.read_bits: width";
    if t.pos + n > t.len then invalid_arg "Bitbuf.Reader.read_bit: past end";
    if n = 0 then 0
    else begin
      let pos = t.pos in
      (* Gather the n stream bits LSB-first into a register... *)
      let byte = ref (pos lsr 3) in
      let off = pos land 7 in
      let u = ref (Char.code (Bytes.unsafe_get t.data !byte) lsr off) in
      let got = ref (8 - off) in
      while !got < n do
        u := !u lor (Char.code (Bytes.unsafe_get t.data (!byte + 1)) lsl !got);
        incr byte;
        got := !got + 8
      done;
      (* ...then reverse to the MSB-first value the stream encodes. *)
      let v = ref 0 and uu = ref !u in
      for _ = 1 to n do
        v := (!v lsl 1) lor (!uu land 1);
        uu := !uu lsr 1
      done;
      t.pos <- pos + n;
      !v
    end

  let read_bigint_bits t n =
    let v = ref Exact.Bigint.zero in
    let rem = ref n in
    while !rem > 0 do
      let take = min 62 !rem in
      let chunk = read_bits t take in
      v := Exact.Bigint.add (Exact.Bigint.shift_left !v take) (Exact.Bigint.of_int chunk);
      rem := !rem - take
    done;
    !v
end

module For_testing = struct
  (* The boxed bool-list API survives only here, as the differential
     reference the qcheck suite drives the packed paths against. *)
  let writer_to_bool_list (w : Writer.t) =
    List.init w.Writer.len (Writer.get_bit w)

  let reader_of_bool_list l =
    Reader.of_vec (Bitvec.For_testing.of_bool_list l)
end
