module B = Exact.Bigint

let check_sorted ~z subset =
  let rec go prev = function
    | [] -> ()
    | x :: rest ->
        if x <= prev || x >= z then
          invalid_arg "Subset_codec: not strictly increasing in [0, z)";
        go x rest
  in
  go (-1) subset

(* Colexicographic combinadic: with the subset sorted increasingly as
   c_0 < c_1 < ... < c_{m-1}, the rank is sum_i C(c_i, i+1).

   Computed in one scan over positions, maintaining b = C(c, j) (where
   j-1 elements have been consumed) by small-integer multiply/divide
   steps — O(z) bigint-by-word operations total, instead of m
   from-scratch binomials:
     advance position:  C(c+1, j) = C(c, j) * (c+1) / (c+1-j)
     consume element:   C(c, j+1) = C(c, j) * (c-j) / (j+1)

   The running binomial lives in a {!B.Acc} mutated in place, so the
   scan allocates only when an element is consumed (to add into the
   rank), not on every one of the z steps. *)
let rank_acc ~z subset =
  check_sorted ~z subset;
  let b = B.Acc.create () in
  (* b = C(c, j) throughout; starts at C(0, 1) = 0 *)
  let rank = ref B.zero in
  let rec go c j rem =
    match rem with
    | [] -> !rank
    | e :: rest ->
        if c = e then begin
          if not (B.Acc.is_zero b) then rank := B.add !rank (B.Acc.to_t b);
          (if c < j + 1 then B.Acc.set_int b 0
           else begin
             B.Acc.mul_small b (c - j);
             B.Acc.div_exact_small b (j + 1)
           end);
          go c (j + 1) rest
        end
        else begin
          (if c + 1 < j then B.Acc.set_int b 0
           else if c + 1 = j then B.Acc.set_int b 1
           else begin
             B.Acc.mul_small b (c + 1);
             B.Acc.div_exact_small b (c + 1 - j)
           end);
          go (c + 1) j rem
        end
  in
  go 0 1 subset

(* The pre-Acc scan on the immutable API: two fresh magnitudes per
   step. Kept as the differential reference. *)
let rank_reference ~z subset =
  check_sorted ~z subset;
  let rec go c j b rem rank =
    (* b = C(c, j); rem = elements still to consume (ascending) *)
    match rem with
    | [] -> rank
    | e :: rest ->
        if c = e then begin
          let rank = B.add rank b in
          let b' =
            if c < j + 1 then B.zero
            else B.div (B.mul_int b (c - j)) (B.of_int (j + 1))
          in
          go c (j + 1) b' rest rank
        end
        else
          let b' =
            if c + 1 < j then B.zero
            else if c + 1 = j then B.one
            else B.div (B.mul_int b (c + 1)) (B.of_int (c + 1 - j))
          in
          go (c + 1) j b' rem rank
  in
  go 0 1 B.zero subset B.zero

let rank ~z subset =
  (* Acc factors must be single-limb; z in the billions falls back. *)
  if z < 1 lsl 30 then rank_acc ~z subset else rank_reference ~z subset

(* Greedy from the largest element down, maintaining the running
   binomial incrementally (each step is an in-place small-int
   multiply/divide on a {!B.Acc}), so the whole unrank is O(z + m)
   bigint-by-word operations and O(m) allocations:
     C(c-1, i) = C(c, i) * (c - i) / c        (decrement c)
     C(c, i-1) = C(c, i) * i / (c - i + 1)    (decrement i)  *)
let unrank_acc ~z ~m index =
  if m = 0 then []
  else begin
    let b = B.Acc.of_t (B.binomial (z - 1) m) in
    let rem = ref index in
    (* Invariant: b = C(c, i), all elements selected so far exceed c. *)
    let rec go i c acc =
      if B.Acc.compare_t b !rem <= 0 then begin
        rem := B.sub !rem (B.Acc.to_t b);
        if i = 1 then c :: acc
        else begin
          B.Acc.mul_small b i;
          B.Acc.div_exact_small b c (* C(c-1, i-1) *);
          go (i - 1) (c - 1) (c :: acc)
        end
      end
      else begin
        B.Acc.mul_small b (c - i);
        B.Acc.div_exact_small b c (* C(c-1, i) *);
        go i (c - 1) acc
      end
    in
    go m (z - 1) []
  end

let unrank_reference ~z ~m index =
  if m < 0 || m > z then invalid_arg "Subset_codec.unrank: bad m";
  let rec go i c b rem acc =
    if B.compare b rem <= 0 then begin
      let rem = B.sub rem b in
      if i = 1 then c :: acc
      else
        let b' = B.div (B.mul_int b i) (B.of_int c) (* C(c-1, i-1) *) in
        go (i - 1) (c - 1) b' rem (c :: acc)
    end
    else
      let b' = B.div (B.mul_int b (c - i)) (B.of_int c) (* C(c-1, i) *) in
      go i (c - 1) b' rem acc
  in
  if m = 0 then [] else go m (z - 1) (B.binomial (z - 1) m) index []

let unrank ~z ~m index =
  if m < 0 || m > z then invalid_arg "Subset_codec.unrank: bad m";
  if z < 1 lsl 30 then unrank_acc ~z ~m index
  else unrank_reference ~z ~m index

(* One-slot memo: within a protocol cycle every batch shares (z, m) up
   to the ragged last batch, and the matching read recomputes the same
   width, so caching the last answer removes most from-scratch
   binomials. Atomic because parameter sweeps run under Par domains. *)
let code_bits_memo = Atomic.make (-1, -1, 0)

let code_bits_uncached ~z ~m =
  let count = B.binomial z m in
  if B.compare count B.one <= 0 then 0
  else B.num_bits (B.sub count B.one)

let code_bits ~z ~m =
  let zc, mc, bits = Atomic.get code_bits_memo in
  if zc = z && mc = m then bits
  else begin
    let bits = code_bits_uncached ~z ~m in
    Atomic.set code_bits_memo (z, m, bits);
    bits
  end

let write w ~z subset =
  let m = List.length subset in
  let bits = code_bits ~z ~m in
  Bitbuf.Writer.add_bigint_bits w (rank ~z subset) bits

let read r ~z ~m =
  let bits = code_bits ~z ~m in
  unrank ~z ~m (Bitbuf.Reader.read_bigint_bits r bits)

module For_testing = struct
  let rank_reference = rank_reference
  let unrank_reference = unrank_reference
  let code_bits_uncached = code_bits_uncached
end
