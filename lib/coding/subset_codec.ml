module B = Exact.Bigint

let check_sorted ~z subset =
  let rec go prev = function
    | [] -> ()
    | x :: rest ->
        if x <= prev || x >= z then
          invalid_arg "Subset_codec: not strictly increasing in [0, z)";
        go x rest
  in
  go (-1) subset

(* Colexicographic combinadic: with the subset sorted increasingly as
   c_0 < c_1 < ... < c_{m-1}, the rank is sum_i C(c_i, i+1).

   Computed in one scan over positions, maintaining b = C(c, j) (where
   j-1 elements have been consumed) by small-integer multiply/divide
   steps — O(z) bigint-by-word operations total, instead of m
   from-scratch binomials:
     advance position:  C(c+1, j) = C(c, j) * (c+1) / (c+1-j)
     consume element:   C(c, j+1) = C(c, j) * (c-j) / (j+1)

   The running binomial lives in a {!B.Acc} mutated in place, so the
   scan allocates only when an element is consumed (to add into the
   rank), not on every one of the z steps. *)
let rank_acc ~z subset =
  check_sorted ~z subset;
  let b = B.Acc.create () in
  (* b = C(c, j) throughout; starts at C(0, 1) = 0 *)
  let rank = ref B.zero in
  let rec go c j rem =
    match rem with
    | [] -> !rank
    | e :: rest ->
        if c = e then begin
          if not (B.Acc.is_zero b) then rank := B.add !rank (B.Acc.to_t b);
          (if c < j + 1 then B.Acc.set_int b 0
           else begin
             B.Acc.mul_small b (c - j);
             B.Acc.div_exact_small b (j + 1)
           end);
          go c (j + 1) rest
        end
        else begin
          (if c + 1 < j then B.Acc.set_int b 0
           else if c + 1 = j then B.Acc.set_int b 1
           else begin
             B.Acc.mul_small b (c + 1);
             B.Acc.div_exact_small b (c + 1 - j)
           end);
          go (c + 1) j rem
        end
  in
  go 0 1 subset

(* The pre-Acc scan on the immutable API: two fresh magnitudes per
   step. Kept as the differential reference. *)
let rank_reference ~z subset =
  check_sorted ~z subset;
  let rec go c j b rem rank =
    (* b = C(c, j); rem = elements still to consume (ascending) *)
    match rem with
    | [] -> rank
    | e :: rest ->
        if c = e then begin
          let rank = B.add rank b in
          let b' =
            if c < j + 1 then B.zero
            else B.div (B.mul_int b (c - j)) (B.of_int (j + 1))
          in
          go c (j + 1) b' rest rank
        end
        else
          let b' =
            if c + 1 < j then B.zero
            else if c + 1 = j then B.one
            else B.div (B.mul_int b (c + 1)) (B.of_int (c + 1 - j))
          in
          go (c + 1) j b' rem rank
  in
  go 0 1 B.zero subset B.zero

(* ------------------------------------------------------------------ *)
(* Chunked fast paths.                                                 *)
(*                                                                     *)
(* The scans above pay three accumulator passes (one multiply, two     *)
(* inside the exact division) per {e position} of [0, z). The chunked  *)
(* variants batch each run of advance steps into two multi-limb        *)
(* products — numerator [prod (c+1 .. c+g)] and denominator            *)
(* [prod (c+1-j .. c+g-j)] — and pay one multiply and one exact        *)
(* division per {e run}, cutting limb work by ~2.5x on the E2          *)
(* combinatorial batches where the running binomial is ~20k bits.      *)
(* Results are bit-identical: the same integers, computed through the  *)
(* same algebraic identities, just regrouped.                          *)
(* ------------------------------------------------------------------ *)

(* Cap on factors per chunk: bounds the temporary product size (and the
   float-drift window of the guided unrank) without hurting the common
   short runs. *)
let chunk_max = 256

(* Certainty margin (in log2) for the float-guided unrank: the jump
   estimator only skips a position when the approximate log-gap between
   the running binomial and the remaining index exceeds this. The
   accumulated float error per chunk is < 1e-11, so 1e-6 is sound by
   five orders of magnitude; every selection is still decided by exact
   comparison. *)
let jump_eps = 1e-6

let ntz x =
  let n = ref 0 and v = ref x in
  while !v land 1 = 0 do
    incr n;
    v := !v lsr 1
  done;
  !n

(* Shared chunk state, so a whole scan reuses four buffers. *)
type chunk_state = {
  p1 : B.Acc.acc;  (* numerator product *)
  p2 : B.Acc.acc;  (* odd part of the denominator product *)
  scratch : B.Acc.acc;
}

let make_chunk_state () =
  { p1 = B.Acc.create (); p2 = B.Acc.create (); scratch = B.Acc.create () }

(* b <- b * prod_t num(t) / prod_t den(t) for t in [0, g): one multiply,
   one shift, one odd exact division. All factors must be positive and
   single-limb; the quotient must be integral (binomial identities
   guarantee it at every call site). *)
let chunk_apply st b ~g ~num ~den =
  B.Acc.set_int st.p1 1;
  B.Acc.set_int st.p2 1;
  let twos = ref 0 in
  for t = 0 to g - 1 do
    B.Acc.mul_small st.p1 (num t);
    let f = den t in
    let s = ntz f in
    twos := !twos + s;
    B.Acc.mul_small st.p2 (f lsr s)
  done;
  B.Acc.mul_acc ~scratch:st.scratch b st.p1;
  B.Acc.shift_right_exact b !twos;
  B.Acc.div_exact_acc b st.p2

let rank_chunked ~z subset =
  check_sorted ~z subset;
  let b = B.Acc.create () in
  let rank = B.Acc.create () in
  let st = make_chunk_state () in
  (* State: b = C(c, j) with j = one more than the elements consumed;
     b = 0 iff c < j, exactly as in {!rank_acc}. *)
  let c = ref 0 and j = ref 1 in
  let advance_to e =
    if B.Acc.is_zero b then begin
      (* c < j. If the target clears the diagonal, rebuild C(e, j) from
         scratch (j small-factor steps); otherwise it is still 0. *)
      if e >= !j then begin
        B.Acc.set_int b 1;
        for i = 0 to !j - 1 do
          B.Acc.mul_small b (e - i);
          B.Acc.div_exact_small b (i + 1)
        done
      end;
      c := e
    end
    else
      while !c < e do
        let g = Stdlib.min (e - !c) chunk_max in
        let c0 = !c and j0 = !j in
        (* C(c+g, j) = C(c, j) * prod (c+1 .. c+g) / prod (c+1-j .. c+g-j);
           all denominator factors are >= 1 because b <> 0 forces c >= j. *)
        chunk_apply st b ~g
          ~num:(fun t -> c0 + 1 + t)
          ~den:(fun t -> c0 + 1 + t - j0);
        c := c0 + g
      done
  in
  List.iter
    (fun e ->
      advance_to e;
      if not (B.Acc.is_zero b) then B.Acc.add_acc rank b;
      if !c < !j + 1 then B.Acc.set_int b 0
      else begin
        B.Acc.mul_small b (!c - !j);
        B.Acc.div_exact_small b (!j + 1)
      end;
      incr j)
    subset;
  B.Acc.to_t rank

let unrank_chunked ~z ~m index =
  if m = 0 then []
  else begin
    let b = B.Acc.of_t (B.binomial (z - 1) m) in
    let rem = B.Acc.of_t index in
    let st = make_chunk_state () in
    let lb = ref (B.Acc.log2_approx b) in
    let lr = ref (B.Acc.log2_approx rem) in
    let c = ref (z - 1) and i = ref m in
    let acc = ref [] in
    let finished = ref false in
    (* One exact greedy step: select c when C(c, i) <= rem, else step
       down to C(c-1, i) — byte-for-byte the {!unrank_acc} recurrence. *)
    let single_step () =
      if B.Acc.compare_acc b rem <= 0 then begin
        B.Acc.sub_acc rem b;
        lr := B.Acc.log2_approx rem;
        acc := !c :: !acc;
        if !i = 1 then finished := true
        else begin
          B.Acc.mul_small b !i;
          B.Acc.div_exact_small b !c (* C(c-1, i-1) *);
          decr i;
          decr c;
          lb := B.Acc.log2_approx b
        end
      end
      else begin
        B.Acc.mul_small b (!c - !i);
        B.Acc.div_exact_small b !c (* C(c-1, i) *);
        decr c;
        lb := B.Acc.log2_approx b
      end
    in
    while not !finished do
      if !lb > !lr +. jump_eps && !c > !i then begin
        (* Certainly no selection here. Estimate how many descent steps
           keep it certain, then take them as one chunk:
           C(c-g, i) = C(c, i) * prod (c-i-t) / prod (c-t), t in [0, g). *)
        let gmax = Stdlib.min chunk_max (!c - !i) in
        let g = ref 0 and est = ref !lb in
        let continue = ref true in
        while !continue && !g < gmax do
          let cc = !c - !g in
          let next =
            !est
            +. Float.log2 (float_of_int (cc - !i))
            -. Float.log2 (float_of_int cc)
          in
          if next > !lr +. jump_eps then begin
            est := next;
            incr g
          end
          else continue := false
        done;
        if !g > 0 then begin
          let c0 = !c and i0 = !i and g = !g in
          chunk_apply st b ~g
            ~num:(fun t -> c0 - t - i0)
            ~den:(fun t -> c0 - t);
          c := c0 - g;
          (* Re-anchor the estimate on the exact value: float drift
             never accumulates across chunks. *)
          lb := B.Acc.log2_approx b
        end
        else single_step ()
      end
      else single_step ()
    done;
    !acc
  end

let rank ~z subset =
  (* Acc factors must be single-limb; z in the billions falls back. *)
  if z < 1 lsl 30 then rank_chunked ~z subset else rank_reference ~z subset

(* Greedy from the largest element down, maintaining the running
   binomial incrementally (each step is an in-place small-int
   multiply/divide on a {!B.Acc}), so the whole unrank is O(z + m)
   bigint-by-word operations and O(m) allocations:
     C(c-1, i) = C(c, i) * (c - i) / c        (decrement c)
     C(c, i-1) = C(c, i) * i / (c - i + 1)    (decrement i)  *)
let unrank_acc ~z ~m index =
  if m = 0 then []
  else begin
    let b = B.Acc.of_t (B.binomial (z - 1) m) in
    let rem = ref index in
    (* Invariant: b = C(c, i), all elements selected so far exceed c. *)
    let rec go i c acc =
      if B.Acc.compare_t b !rem <= 0 then begin
        rem := B.sub !rem (B.Acc.to_t b);
        if i = 1 then c :: acc
        else begin
          B.Acc.mul_small b i;
          B.Acc.div_exact_small b c (* C(c-1, i-1) *);
          go (i - 1) (c - 1) (c :: acc)
        end
      end
      else begin
        B.Acc.mul_small b (c - i);
        B.Acc.div_exact_small b c (* C(c-1, i) *);
        go i (c - 1) acc
      end
    in
    go m (z - 1) []
  end

let unrank_reference ~z ~m index =
  if m < 0 || m > z then invalid_arg "Subset_codec.unrank: bad m";
  let rec go i c b rem acc =
    if B.compare b rem <= 0 then begin
      let rem = B.sub rem b in
      if i = 1 then c :: acc
      else
        let b' = B.div (B.mul_int b i) (B.of_int c) (* C(c-1, i-1) *) in
        go (i - 1) (c - 1) b' rem (c :: acc)
    end
    else
      let b' = B.div (B.mul_int b (c - i)) (B.of_int c) (* C(c-1, i) *) in
      go i (c - 1) b' rem acc
  in
  if m = 0 then [] else go m (z - 1) (B.binomial (z - 1) m) index []

let unrank ~z ~m index =
  if m < 0 || m > z then invalid_arg "Subset_codec.unrank: bad m";
  if z < 1 lsl 30 then unrank_chunked ~z ~m index
  else unrank_reference ~z ~m index

(* One-slot memo: within a protocol cycle every batch shares (z, m) up
   to the ragged last batch, and the matching read recomputes the same
   width, so caching the last answer removes most from-scratch
   binomials. Atomic because parameter sweeps run under Par domains. *)
let code_bits_memo = Atomic.make (-1, -1, 0)

let code_bits_uncached ~z ~m =
  let count = B.binomial z m in
  if B.compare count B.one <= 0 then 0
  else B.num_bits (B.sub count B.one)

let code_bits ~z ~m =
  let zc, mc, bits = Atomic.get code_bits_memo in
  if zc = z && mc = m then bits
  else begin
    let bits = code_bits_uncached ~z ~m in
    Atomic.set code_bits_memo (z, m, bits);
    bits
  end

(* One-slot decode memo. [unrank] is a pure function of the public
   triple (z, m, index); in a protocol run every write is decoded right
   back off the board by the listening players, so caching the last
   (triple -> subset) pair at encode time turns those decodes into an
   exact-match check (a limb compare) instead of a second full scan.
   A miss — decoding a vector this process never encoded — falls
   through to the real [unrank]. Atomic for the same reason as the
   width memo above. *)
let unrank_memo = Atomic.make None

let write w ~z subset =
  let m = List.length subset in
  let bits = code_bits ~z ~m in
  let index = rank ~z subset in
  Bitbuf.Writer.add_bigint_bits w index bits;
  Atomic.set unrank_memo (Some (z, m, index, subset))

let read r ~z ~m =
  let bits = code_bits ~z ~m in
  let index = Bitbuf.Reader.read_bigint_bits r bits in
  match Atomic.get unrank_memo with
  | Some (z', m', index', subset)
    when z' = z && m' = m && Exact.Bigint.equal index' index ->
      subset
  | _ -> unrank ~z ~m index

module For_testing = struct
  let rank_reference = rank_reference
  let unrank_reference = unrank_reference
  let rank_acc = rank_acc
  let unrank_acc = unrank_acc
  let code_bits_uncached = code_bits_uncached
end
