type tree = Leaf of int | Node of tree * tree

type t = {
  tree : tree;
  codes : Bitvec.t array;  (** packed codeword per symbol, root-to-leaf *)
}

(* Build by repeatedly merging the two lightest subtrees. A sorted-list
   "priority queue" is fine at these alphabet sizes. *)
let build probs =
  let n = Array.length probs in
  if n = 0 then invalid_arg "Huffman.build: empty alphabet";
  if n = 1 then begin
    (* degenerate: one symbol, zero-length codeword *)
    { tree = Leaf 0; codes = [| Bitvec.empty |] }
  end
  else begin
    let items = List.init n (fun i -> (probs.(i), Leaf i)) in
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) items in
    let rec insert ((w, _) as x) = function
      | [] -> [ x ]
      | ((w', _) as y) :: rest ->
          if w <= w' then x :: y :: rest else y :: insert x rest
    in
    let rec merge = function
      | [] -> assert false
      | [ (_, t) ] -> t
      | (w1, t1) :: (w2, t2) :: rest ->
          merge (insert (w1 +. w2, Node (t1, t2)) rest)
    in
    let tree = merge sorted in
    let codes = Array.make n Bitvec.empty in
    (* Pack a root-to-leaf path (held reversed) straight into a vector;
       codebook construction must not go through a Writer, whose
       process-wide stats count only charged communication. *)
    let vec_of_rev_prefix prefix =
      let bits = List.rev prefix in
      let len = List.length bits in
      let data = Bytes.make ((len + 7) / 8) '\000' in
      List.iteri
        (fun i b ->
          if b then
            Bytes.set_uint8 data (i / 8)
              (Bytes.get_uint8 data (i / 8) lor (1 lsl (i land 7))))
        bits;
      Bitvec.unsafe_of_bytes data ~len
    in
    let rec walk prefix = function
      | Leaf i -> codes.(i) <- vec_of_rev_prefix prefix
      | Node (l, r) ->
          walk (false :: prefix) l;
          walk (true :: prefix) r
    in
    walk [] tree;
    { tree; codes }
  end

let code_lengths t = Array.map Bitvec.length t.codes

let expected_length t probs =
  let acc = ref 0. in
  Array.iteri
    (fun i p -> acc := !acc +. (p *. float_of_int (Bitvec.length t.codes.(i))))
    probs;
  !acc

let kraft_sum t =
  Array.fold_left
    (fun acc code -> acc +. Float.pow 2. (-.float_of_int (Bitvec.length code)))
    0. t.codes

let encode t w symbol =
  if symbol < 0 || symbol >= Array.length t.codes then
    invalid_arg "Huffman.encode: bad symbol";
  Bitbuf.Writer.add_vec w t.codes.(symbol)

let decode t r =
  let rec go = function
    | Leaf i -> i
    | Node (l, right) -> go (if Bitbuf.Reader.read_bit r then right else l)
  in
  go t.tree
