type t = { data : Bytes.t; len : int }

(* Representation invariants:
   - [data] holds bit [i] at byte [i/8], bit position [i mod 8]
     (LSB-first within a byte), the same layout as [Bitbuf.Writer];
   - [Bytes.length data >= (len + 7) / 8] — the buffer may be longer
     than needed (a frozen writer hands over its whole backing store);
   - every bit at index [>= len] inside the first [(len + 7) / 8] bytes
     is zero, so [equal] can compare raw bytes. *)

let empty = { data = Bytes.empty; len = 0 }
let length t = t.len
let bytes_needed bits = (bits + 7) lsr 3

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) lsr (i land 7) land 1 = 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get: index out of bounds";
  unsafe_get t i

let unsafe_data t = t.data

let unsafe_of_bytes data ~len =
  if len < 0 || bytes_needed len > Bytes.length data then
    invalid_arg "Bitvec.unsafe_of_bytes: bad length";
  { data; len }

(* ------------------------------------------------------------------ *)
(* Whole-word access.                                                  *)
(*                                                                     *)
(* 56-bit words (seven bytes) are the widest window that a single      *)
(* unaligned [Bytes.get_int64_le] can serve while the result — and     *)
(* every shifted intermediate — still fits OCaml's 63-bit native int.  *)
(* Bit [i] of [word_at t w] is bit [56*w + i] of the vector, matching  *)
(* the LSB-first byte layout, so whole-word consumers (the bit-sliced  *)
(* VM, the trivial-protocol intersection) see the same bit order as    *)
(* [get].                                                              *)
(* ------------------------------------------------------------------ *)

let word_bits = 56
let word_mask = (1 lsl word_bits) - 1
let word_count t = (t.len + word_bits - 1) / word_bits

let word_at t w =
  let bit = w * word_bits in
  if w < 0 || bit >= t.len then invalid_arg "Bitvec.word_at: out of bounds";
  let byte = w * 7 in
  let raw =
    if byte + 8 <= Bytes.length t.data then
      (* One unaligned load; [Int64.to_int] keeps the low 63 bits and
         the mask below keeps 56, so the dropped sign bit is harmless. *)
      Int64.to_int (Bytes.get_int64_le t.data byte) land word_mask
    else begin
      (* Tail of the buffer: gather the in-range bytes. *)
      let hi = Stdlib.min 7 (Bytes.length t.data - byte) in
      let u = ref 0 in
      for i = hi - 1 downto 0 do
        u := (!u lsl 8) lor Char.code (Bytes.unsafe_get t.data (byte + i))
      done;
      !u
    end
  in
  (* Zero-pad past [len]: bytes beyond [bytes_needed len] are not
     governed by the trailing-zero invariant. *)
  let live = t.len - bit in
  if live >= word_bits then raw else raw land ((1 lsl live) - 1)

(* OR [len] bits of [src] starting at bit [spos] into [dst] starting at
   bit [dpos]. The destination bits must currently be zero (the callers
   below always blit into fresh zeroed buffers). Works a byte at a time:
   gather eight source bits (from at most two source bytes), scatter
   them into at most two destination bytes. The fully byte-aligned case
   drops to [Bytes.blit]. *)
let unsafe_blit src spos dst dpos len =
  if len > 0 then
    if spos land 7 = 0 && dpos land 7 = 0 then begin
      let full = len lsr 3 in
      Bytes.blit src (spos lsr 3) dst (dpos lsr 3) full;
      let rem = len land 7 in
      if rem > 0 then begin
        let u =
          Char.code (Bytes.unsafe_get src ((spos lsr 3) + full))
          land ((1 lsl rem) - 1)
        in
        let db = (dpos lsr 3) + full in
        Bytes.unsafe_set dst db
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst db) lor u))
      end
    end
    else begin
      let srclen = Bytes.length src in
      let dstlen = Bytes.length dst in
      let i = ref 0 in
      (* Whole-word path: 48 bits per iteration via unaligned 8-byte
         loads/stores. 48 = the widest chunk whose shifted image
         [u lsl d_o] (d_o <= 7) still fits a native int. Falls back to
         the byte loop when either 8-byte window would run off a
         buffer, and for the sub-word tail. *)
      while
        len - !i >= 48
        && ((spos + !i) lsr 3) + 8 <= srclen
        && ((dpos + !i) lsr 3) + 8 <= dstlen
      do
        let sp = spos + !i in
        let sb = sp lsr 3 and so = sp land 7 in
        let u =
          Int64.to_int
            (Int64.shift_right_logical (Bytes.get_int64_le src sb) so)
          land 0xFFFF_FFFF_FFFF
        in
        let dp = dpos + !i in
        let db = dp lsr 3 and d_o = dp land 7 in
        Bytes.set_int64_le dst db
          (Int64.logor (Bytes.get_int64_le dst db) (Int64.of_int (u lsl d_o)));
        i := !i + 48
      done;
      while !i < len do
        let chunk = min 8 (len - !i) in
        let sp = spos + !i in
        let sb = sp lsr 3 and so = sp land 7 in
        let u = Char.code (Bytes.unsafe_get src sb) lsr so in
        let u =
          if so = 0 || sb + 1 >= srclen then u
          else u lor (Char.code (Bytes.unsafe_get src (sb + 1)) lsl (8 - so))
        in
        let u = u land ((1 lsl chunk) - 1) in
        let dp = dpos + !i in
        let db = dp lsr 3 and d_o = dp land 7 in
        Bytes.unsafe_set dst db
          (Char.unsafe_chr
             ((Char.code (Bytes.unsafe_get dst db) lor (u lsl d_o)) land 0xff));
        if chunk > 8 - d_o then
          Bytes.unsafe_set dst (db + 1)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get dst (db + 1)) lor (u lsr (8 - d_o))));
        i := !i + chunk
      done
    end

let append a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else begin
    let len = a.len + b.len in
    let data = Bytes.make (bytes_needed len) '\000' in
    unsafe_blit a.data 0 data 0 a.len;
    unsafe_blit b.data 0 data a.len b.len;
    { data; len }
  end

let extract t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Bitvec.extract: out of bounds";
  if len = 0 then empty
  else begin
    let data = Bytes.make (bytes_needed len) '\000' in
    unsafe_blit t.data pos data 0 len;
    { data; len }
  end

let equal a b =
  a.len = b.len
  &&
  let nbytes = bytes_needed a.len in
  let rec go i =
    i >= nbytes
    || (Bytes.unsafe_get a.data i = Bytes.unsafe_get b.data i && go (i + 1))
  in
  go 0

let of_string s =
  let len = String.length s in
  let data = Bytes.make (bytes_needed len) '\000' in
  String.iteri
    (fun i c ->
      match c with
      | '1' ->
          Bytes.unsafe_set data (i lsr 3)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get data (i lsr 3)) lor (1 lsl (i land 7))))
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string: expected '0'/'1'")
    s;
  { data; len }

let to_string t = String.init t.len (fun i -> if unsafe_get t i then '1' else '0')

let pp fmt t = Format.pp_print_string fmt (to_string t)

module For_testing = struct
  (* Boxed reference representation, kept as the differential oracle for
     the packed operations (the qcheck suite drives both in lockstep). *)
  let of_bool_list l =
    let len = List.length l in
    let data = Bytes.make (bytes_needed len) '\000' in
    List.iteri
      (fun i b ->
        if b then
          Bytes.unsafe_set data (i lsr 3)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get data (i lsr 3))
               lor (1 lsl (i land 7)))))
      l;
    { data; len }

  let to_bool_list t = List.init t.len (unsafe_get t)
end
