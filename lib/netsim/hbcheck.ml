(** Dynamic happens-before checker for pipelined board emulation.

    The static analysis ([Analysis.Depgraph]) proves which earlier
    slots each slot may read and partitions slots into waves; this
    module is the {e runtime oracle} for that claim. It watches the
    network-level lifecycle of every reliable-broadcast instance —
    when a slot's initial SEND fan-out is launched and when each player
    delivers it — and flags a race whenever a slot is launched while
    some slot it reads has not yet been delivered {e at the launching
    speaker}. In a faithful distributed deployment the speaker could
    not have computed that payload; the orchestrated emulation masks
    the problem (it computes payloads sequentially), so this checker is
    what keeps the pipelined mode honest. [check] hard-errors on any
    recorded race.

    The certificate is carried as plain arrays so the netsim layer
    stays independent of the analysis library; [validate_cert] checks
    the structural soundness invariant (every slot's reads lie strictly
    before its own wave) that makes a wave partition race-free by
    construction. *)

type cert = {
  slots : int;  (** slots covered by the analysis *)
  reads : int array array;
      (** per covered slot, the earlier slots it may read *)
  waves : int array;
      (** ascending wave-start boundaries, first is 0 when [slots > 0] *)
}

let sequential_cert ~slots =
  {
    slots;
    reads = Array.init slots (fun t -> Array.init t Fun.id);
    waves = Array.init slots Fun.id;
  }

let wave_start_of waves slot =
  let w = ref 0 in
  Array.iter (fun b -> if b <= slot then w := b) waves;
  !w

let validate_cert c =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if c.slots < 0 then err "negative slot count"
  else if c.slots > 0 && (Array.length c.waves = 0 || c.waves.(0) <> 0) then
    err "waves must start at slot 0"
  else if Array.length c.reads <> c.slots then
    err "reads table covers %d slots, certificate declares %d"
      (Array.length c.reads) c.slots
  else begin
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i b ->
        if i > 0 && b <= c.waves.(i - 1) then
          ok := err "wave boundaries not strictly ascending at %d" b;
        if b < 0 || b >= max c.slots 1 then
          ok := err "wave boundary %d out of range" b)
      c.waves;
    Array.iteri
      (fun t rs ->
        let w = wave_start_of c.waves t in
        Array.iter
          (fun s ->
            if s < 0 || s >= t then
              ok := err "slot %d reads non-earlier slot %d" t s
            else if s >= w then
              ok :=
                err
                  "slot %d reads slot %d inside its own wave (start %d): \
                   pipelining would race"
                  t s w)
          rs)
      c.reads;
    !ok
  end

type race = { slot : int; speaker : int; missing : int }

type t = {
  cert : cert;
  k : int;
  delivered : (int * int, unit) Hashtbl.t;  (** (slot, player) delivered *)
  launched : (int, unit) Hashtbl.t;
  mutable races : race list;
  mutable launches : int;
  mutable deliveries : int;
}

let create cert ~k =
  {
    cert;
    k;
    delivered = Hashtbl.create 64;
    launched = Hashtbl.create 16;
    races = [];
    launches = 0;
    deliveries = 0;
  }

let race_message { slot; speaker; missing } =
  Printf.sprintf
    "hbcheck: slot %d launched by player %d before slot %d (which it reads) \
     was delivered at that player"
    slot speaker missing

(* Slots past the analyzed range are treated as reading every earlier
   slot — the conservative fallback the pipelined runtime also applies
   (it runs them as singleton waves). *)
let reads_of t slot =
  if slot < t.cert.slots then t.cert.reads.(slot)
  else Array.init slot Fun.id

let note_launch t ~slot ~speaker =
  if not (Hashtbl.mem t.launched slot) then begin
    Hashtbl.replace t.launched slot ();
    t.launches <- t.launches + 1;
    Array.iter
      (fun s ->
        if not (Hashtbl.mem t.delivered (s, speaker)) then
          t.races <- { slot; speaker; missing = s } :: t.races)
      (reads_of t slot)
  end

let note_deliver t ~slot ~player =
  Hashtbl.replace t.delivered (slot, player) ();
  t.deliveries <- t.deliveries + 1

let observe t payload =
  match payload with
  | Obs.Event.Rbc_send { slot; src; _ } -> note_launch t ~slot ~speaker:src
  | Obs.Event.Rbc_deliver { slot; player; _ } -> note_deliver t ~slot ~player
  | _ -> ()

let races t = List.rev t.races
let ok t = t.races = []

let check t =
  match races t with
  | [] -> ()
  | r :: _ as all ->
      failwith
        (Printf.sprintf "%s (%d race(s) total)" (race_message r)
           (List.length all))
