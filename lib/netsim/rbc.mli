(** Bracha '87 reliable broadcast, one slot, one player's state machine.

    The blackboard's "write one message all k players see" becomes, on a
    faulty message-passing network, one ECHO/READY instance per board
    slot (Bracha, "Asynchronous Byzantine agreement protocols", 1987 —
    the same machine as the SNIPPETS.md exemplars):

    - the slot's speaker SENDs its payload to everyone;
    - on the first SEND, a player ECHOs the payload to everyone;
    - on [echo_threshold n f] = ⌈(n+f+1)/2⌉ ECHOs of one value, or on
      [f+1] READYs of one value (amplification), a player sends READY
      for that value (once);
    - on [2f+1] READYs of one value, it {e delivers} that value.

    With [n > 3f] this guarantees: if the speaker is honest every
    correct player delivers its payload, and no two correct players ever
    deliver different values — even under equivocation, which is what
    makes a per-slot delivered log a faithful blackboard.

    The machine is pure message-in/actions-out: no network, no clock.
    Duplicate and conflicting messages from one sender count once (the
    first wins), so Byzantine double-voting is inert. *)

type phase = Send | Echo | Ready

val phase_to_string : phase -> string

(** What the host must do after feeding a message in. *)
type action =
  | Broadcast of phase * Coding.Bitvec.t  (** send to every player *)
  | Deliver of Coding.Bitvec.t  (** this player delivers the slot value *)

type t

val create : n:int -> f:int -> unit -> t
(** A fresh per-slot machine for one player among [n] with fault
    tolerance [f]. @raise Invalid_argument unless [n > 3f >= 0]. *)

val handle : t -> from:int -> phase -> Coding.Bitvec.t -> action list
(** Feed one received message; returns the follow-up actions in order
    (a READY amplification always precedes the Deliver it enables).
    @raise Invalid_argument on an out-of-range sender. *)

val delivered : t -> Coding.Bitvec.t option

val echo_threshold : n:int -> f:int -> int
(** ⌈(n+f+1)/2⌉ — ECHOs of one value needed to turn READY. *)

val ready_amplify : f:int -> int
(** [f+1] — READYs of one value that force READY even without the echo
    quorum. *)

val deliver_threshold : f:int -> int
(** [2f+1] — READYs of one value needed to deliver. *)
