type phase = Send | Echo | Ready

let phase_to_string = function
  | Send -> "send"
  | Echo -> "echo"
  | Ready -> "ready"

type action = Broadcast of phase * Coding.Bitvec.t | Deliver of Coding.Bitvec.t

(* Votes for one value: how many distinct senders echoed / readied it.
   Values are keyed by their packed bit rendering; payloads are small
   (a board message), so the string key costs nothing measurable. *)
type votes = { value : Coding.Bitvec.t; mutable echoes : int; mutable readies : int }

type t = {
  n : int;
  f : int;
  votes : (string, votes) Hashtbl.t;
  echoed_from : bool array;  (* sender already cast its one ECHO vote *)
  readied_from : bool array;
  mutable sent_echo : bool;
  mutable sent_ready : bool;
  mutable delivered : Coding.Bitvec.t option;
}

let echo_threshold ~n ~f = ((n + f) / 2) + 1
let ready_amplify ~f = f + 1
let deliver_threshold ~f = (2 * f) + 1

let create ~n ~f () =
  if f < 0 then invalid_arg "Rbc.create: negative f";
  if n <= 3 * f then invalid_arg "Rbc.create: need n > 3f";
  {
    n;
    f;
    votes = Hashtbl.create 4;
    echoed_from = Array.make n false;
    readied_from = Array.make n false;
    sent_echo = false;
    sent_ready = false;
    delivered = None;
  }

let votes_for t value =
  let key = Coding.Bitvec.to_string value in
  match Hashtbl.find_opt t.votes key with
  | Some v -> v
  | None ->
      let v = { value; echoes = 0; readies = 0 } in
      Hashtbl.add t.votes key v;
      v

let delivered t = t.delivered

(* Threshold reactions shared by the ECHO and READY counting paths:
   turning READY is one-shot, delivery is one-shot, and an enabling
   READY is emitted before the Deliver it makes possible. *)
let react t v =
  let acts = ref [] in
  if
    (not t.sent_ready)
    && (v.echoes >= echo_threshold ~n:t.n ~f:t.f
       || v.readies >= ready_amplify ~f:t.f)
  then begin
    t.sent_ready <- true;
    acts := Broadcast (Ready, v.value) :: !acts
  end;
  if t.delivered = None && v.readies >= deliver_threshold ~f:t.f then begin
    t.delivered <- Some v.value;
    acts := Deliver v.value :: !acts
  end;
  List.rev !acts

let handle t ~from phase value =
  if from < 0 || from >= t.n then invalid_arg "Rbc.handle: bad sender";
  match phase with
  | Send ->
      (* Only the first SEND triggers the echo; an equivocator's second
         value reaches us only through other players' echoes. *)
      if t.sent_echo then []
      else begin
        t.sent_echo <- true;
        [ Broadcast (Echo, value) ]
      end
  | Echo ->
      if t.echoed_from.(from) then []
      else begin
        t.echoed_from.(from) <- true;
        let v = votes_for t value in
        v.echoes <- v.echoes + 1;
        react t v
      end
  | Ready ->
      if t.readied_from.(from) then []
      else begin
        t.readied_from.(from) <- true;
        let v = votes_for t value in
        v.readies <- v.readies + 1;
        react t v
      end
