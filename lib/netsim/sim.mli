(** Deterministic seeded discrete-event network simulator.

    The asynchronous counterpart of the free-read blackboard: players
    exchange explicit point-to-point messages through a pending-message
    queue. Delivery order is {e adversarial but fair}: each message's
    delivery time is its (causal) send time plus one plus a seeded
    uniform jitter, ties broken by send sequence — so orderings are
    arbitrary within the jitter window, every queued message is
    eventually delivered, and the whole execution (including the drop
    fault) replays exactly from the creation seed.

    The simulator is payload-generic and knows nothing about RBC or
    faults beyond message drop/delay; crash and equivocation are
    semantics of the {e senders} and live in {!Board_emu}. *)

type 'a t

type 'a envelope = { src : int; dst : int; payload : 'a; bits : int }

val create : ?drop_prob:float -> ?max_jitter:int -> seed:int -> unit -> 'a t
(** A fresh empty network. [drop_prob] (default 0) is the independent
    per-message loss probability; [max_jitter] (default 0) bounds the
    extra delivery delay drawn per message.
    @raise Invalid_argument on [drop_prob] outside [0, 1] or negative
    [max_jitter]. *)

val send : 'a t -> src:int -> dst:int -> bits:int -> 'a -> bool
(** Enqueue a message ([bits] is its exact wire length, accounted by the
    caller's encoder). Returns [false] when the drop fault eats it —
    the message is counted as dropped and never delivered. *)

val run : 'a t -> deliver:('a envelope -> unit) -> unit
(** Drain to quiescence: repeatedly pop the pending message with the
    smallest (delivery time, sequence) and hand it to [deliver], which
    may {!send} more. Terminates when the queue is empty (fairness:
    jitter is bounded, so nothing starves). *)

val now : 'a t -> int
(** Virtual time of the last delivery. *)

val sent : 'a t -> int
(** Messages accepted into the queue (drops excluded). *)

val dropped : 'a t -> int
val delivered : 'a t -> int

val bits_sent : 'a t -> int
(** Total wire bits of accepted messages. *)
