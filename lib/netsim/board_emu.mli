(** The shared blackboard, emulated on a faulty asynchronous network.

    [run] has the same shape as {!Blackboard.Engine.run} — a
    board-driven [schedule] and an array of [speak]/[observe] players —
    so every engine-hosted protocol runs {e unchanged}; only the
    substrate differs. Each scheduled write becomes one Bracha
    ECHO/READY reliable-broadcast slot ({!Rbc}) over the seeded
    discrete-event network ({!Sim}): the speaker SENDs its packed
    message point-to-point to all [k] players, everyone echoes and
    readies, and the slot's delivered value is appended to the
    (canonical) delivered board that all honest players share — Bracha
    agreement with [k > 3f] is exactly what makes one shared log a
    faithful replica of every honest player's view.

    Totality contract: with no injected faults the delivered board is
    byte-identical to the board {!Blackboard.Engine.run} builds from the
    same schedule and players (same writes, same packed payloads, same
    labels), for {e any} delivery order the seed produces. The emulation
    {e cost} is everything the blackboard abstraction hides: [O(k^2)]
    point-to-point messages per write, each re-carrying the payload —
    measured exactly in {!stats} and reported by the E14 experiment.

    Determinism/replay: a run is a pure function of [(k, schedule,
    players, config)]. All randomness — delivery jitter, drop faults —
    is drawn from streams split off [config.seed]; re-running with the
    same seed replays the identical execution, message for message. *)

type config = {
  f : int;  (** fault tolerance the RBC thresholds assume; needs [k > 3f] *)
  seed : int;  (** delivery-ordering and fault randomness *)
  faults : Fault.plan;
}

type stats = {
  net_bits : int;  (** exact wire bits of all accepted messages *)
  net_messages : int;
  sends : int;  (** point-to-point SEND messages accepted *)
  echoes : int;
  readies : int;
  drops : int;  (** messages eaten by the drop fault *)
  crashed : int;  (** players dead by the end of the run *)
  waves : int;
      (** network barriers paid: quiescence waits, one per slot
          sequentially, one per wave when pipelined — the
          simulated-network-depth measure E15 reports *)
}

type stall_reason =
  | Speaker_crashed  (** the scheduled speaker was already dead *)
  | No_quorum
      (** the network went quiescent before every live player delivered
          (crash mid-broadcast, drops, or an equivocation split) *)

type outcome =
  | Delivered of { board : Blackboard.Board.t; writes : int; stats : stats }
      (** the schedule completed: every slot delivered at every live
          player *)
  | Stalled of {
      board : Blackboard.Board.t;  (** slots delivered before the stall *)
      delivered_slots : int;
      speaker : int;  (** the stalled slot's scheduled speaker *)
      reason : stall_reason;
      stats : stats;
    }

type error =
  | Insufficient_honest of { k : int; f : int }
      (** [k <= 3f]: Bracha cannot guarantee agreement; refusing to run
          (rather than hanging or equivocating) is the contract *)
  | Engine_error of Blackboard.Engine.error
      (** schedule bugs, surfaced exactly as the sync engine types them *)

val error_message : error -> string

val run :
  k:int ->
  schedule:(Blackboard.Board.t -> int option) ->
  players:Blackboard.Engine.player array ->
  ?max_writes:int ->
  ?cert:Hbcheck.cert ->
  config:config ->
  unit ->
  (outcome, error) result
(** Drive the async runtime to completion or stall. Every point-to-point
    message is a real packed {!Coding.Bitvec.t} (2-bit phase tag, gamma
    slot number, length-prefixed payload), so [stats.net_bits] is the
    length of a real encoding, not a formula. With a trace sink
    installed, typed [Rbc_send]/[Rbc_echo]/[Rbc_ready]/[Rbc_deliver]/
    [Net_drop] events stream out per message, and metrics land under the
    ["netsim.*"] prefix — both zero-cost when disabled.

    [cert] switches on the {e pipelined} mode: all RBC instances of a
    certificate wave go in flight concurrently over one shared network,
    with a quiescence barrier only between waves (slots past the
    analyzed range run as singleton waves; no certificate = the
    sequential per-slot path). Payloads are still computed in slot
    order, one [speak] per slot, against a scratch replay of the
    committed board, so {e fault-free} pipelined runs stay
    byte-identical to {!Blackboard.Engine.run}; the {!Hbcheck} oracle
    watches the actual launch/deliver order and the run hard-errors
    ([Failure]) if the certificate let a slot launch before a slot it
    reads was delivered at its speaker. A crashed speaker stalls its
    wave at its slot with the same typed [Stalled] outcome as the
    sequential mode; slots of the wave before it are still committed.
    Under fault injection the two modes may diverge (crash budgets and
    drops hit a different interleaving); byte-identity is only
    contracted fault-free. With tracing on, [Wave_start]/[Wave_end]
    events bracket each wave.
    @raise Invalid_argument if [cert] fails {!Hbcheck.validate_cert}. *)
