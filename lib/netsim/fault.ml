type spec =
  | Crash of { player : int; after_sends : int }
  | Drop of { prob : float }
  | Delay of { max_jitter : int }
  | Equivocate of { player : int }

type plan = spec list

let none = []

let parse_item item =
  match String.index_opt item ':' with
  | None -> Error (Printf.sprintf "fault %S: expected kind:value" item)
  | Some i -> (
      let kind = String.sub item 0 i in
      let value = String.sub item (i + 1) (String.length item - i - 1) in
      match kind with
      | "crash" -> (
          match String.index_opt value '@' with
          | None -> (
              match int_of_string_opt value with
              | Some p when p >= 0 -> Ok (Crash { player = p; after_sends = 0 })
              | _ -> Error (Printf.sprintf "crash:%s: bad player index" value))
          | Some j -> (
              let p = String.sub value 0 j in
              let s = String.sub value (j + 1) (String.length value - j - 1) in
              match (int_of_string_opt p, int_of_string_opt s) with
              | Some p, Some s when p >= 0 && s >= 0 ->
                  Ok (Crash { player = p; after_sends = s })
              | _ -> Error (Printf.sprintf "crash:%s: expected P@S" value)))
      | "drop" -> (
          match float_of_string_opt value with
          | Some p when p >= 0. && p <= 1. -> Ok (Drop { prob = p })
          | _ ->
              Error (Printf.sprintf "drop:%s: expected probability in [0,1]" value))
      | "delay" -> (
          match int_of_string_opt value with
          | Some j when j >= 0 -> Ok (Delay { max_jitter = j })
          | _ -> Error (Printf.sprintf "delay:%s: bad jitter bound" value))
      | "equiv" -> (
          match int_of_string_opt value with
          | Some p when p >= 0 -> Ok (Equivocate { player = p })
          | _ -> Error (Printf.sprintf "equiv:%s: bad player index" value))
      | other ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (expected crash, drop, delay, equiv)"
               other))

(* Two crash (or two equivocation) specs naming the same player have no
   single sensible meaning — min-budget, last-wins and first-wins are
   all defensible — so the DSL rejects the ambiguity outright instead
   of silently picking one. *)
let duplicate_player plan spec =
  match spec with
  | Crash { player = p; _ } ->
      if List.exists (function Crash { player; _ } -> player = p | _ -> false) plan
      then Some (Printf.sprintf "duplicate crash spec for player %d" p)
      else None
  | Equivocate { player = p } ->
      if List.exists (function Equivocate { player } -> player = p | _ -> false) plan
      then Some (Printf.sprintf "duplicate equiv spec for player %d" p)
      else None
  | Drop _ | Delay _ -> None

let parse s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left
         (fun acc item ->
           match (acc, parse_item item) with
           | Error e, _ -> Error e
           | Ok _, Error e -> Error e
           | Ok plan, Ok spec -> (
               match duplicate_player plan spec with
               | Some e -> Error e
               | None -> Ok (spec :: plan)))
         (Ok [])
    |> Result.map List.rev

let spec_to_string = function
  | Crash { player; after_sends = 0 } -> Printf.sprintf "crash:%d" player
  | Crash { player; after_sends } -> Printf.sprintf "crash:%d@%d" player after_sends
  | Drop { prob } -> Printf.sprintf "drop:%g" prob
  | Delay { max_jitter } -> Printf.sprintf "delay:%d" max_jitter
  | Equivocate { player } -> Printf.sprintf "equiv:%d" player

let to_string plan = String.concat "," (List.map spec_to_string plan)

let drop_prob plan =
  List.fold_left
    (fun acc -> function Drop { prob } -> prob | _ -> acc)
    0. plan

let max_jitter plan =
  List.fold_left
    (fun acc -> function Delay { max_jitter } -> max_jitter | _ -> acc)
    0 plan

let check_player ~k p =
  if p < 0 || p >= k then
    invalid_arg (Printf.sprintf "Fault: player %d out of range [0, %d)" p k)

(* Any player named anywhere in the plan must exist: both accessors
   validate the whole plan, so a bad index surfaces no matter which one
   the runtime consults first. *)
let validate plan ~k =
  List.iter
    (function
      | Crash { player; _ } | Equivocate { player } -> check_player ~k player
      | Drop _ | Delay _ -> ())
    plan

let crash_budget plan ~k =
  validate plan ~k;
  let budget = Array.make k max_int in
  List.iter
    (function
      | Crash { player; after_sends } ->
          budget.(player) <- min budget.(player) after_sends
      | _ -> ())
    plan;
  budget

let equivocators plan ~k =
  validate plan ~k;
  let flags = Array.make k false in
  List.iter
    (function Equivocate { player } -> flags.(player) <- true | _ -> ())
    plan;
  flags
