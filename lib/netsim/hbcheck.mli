(** Dynamic happens-before checker: the runtime oracle for the
    pipelining certificate.

    [Analysis.Depgraph] claims which earlier slots each slot may read
    and which slots may share a wave; this module replays the actual
    RBC lifecycle (launches and per-player deliveries, either fed
    directly by {!Board_emu} or replayed from recorded {!Obs.Event}
    streams) and records a {e race} whenever a slot is launched while a
    slot it reads is undelivered at the launching speaker. The
    emulation computes payloads sequentially, so a race never corrupts
    a board — but it means a faithful distributed deployment could not
    have produced that payload, i.e. the certificate was wrong.
    {!check} hard-errors in that case. *)

type cert = {
  slots : int;  (** slots covered by the analysis *)
  reads : int array array;
      (** per covered slot, the earlier slots it may read *)
  waves : int array;
      (** ascending wave-start boundaries, first is 0 when [slots > 0] *)
}
(** A pipelining certificate in plain arrays (the netsim layer does not
    depend on the analysis library; see
    [Protocols.Verify_registry.sched_cert] for the conversion). Slots
    at or past [slots] are treated as reading every earlier slot. *)

val sequential_cert : slots:int -> cert
(** The trivial certificate: every slot its own wave, reading the full
    prefix. Always valid; pipelines nothing. *)

val validate_cert : cert -> (unit, string) result
(** Structural soundness: boundaries strictly ascending from 0, every
    read strictly earlier than the reader, and no read inside the
    reader's own wave. A certificate passing this check cannot race
    under between-wave barriers. *)

type race = { slot : int; speaker : int; missing : int }
(** [slot] was launched by [speaker] before [missing] (a slot it
    reads) was delivered at that speaker. *)

val race_message : race -> string

type t

val create : cert -> k:int -> t
val note_launch : t -> slot:int -> speaker:int -> unit
(** Record the initial SEND fan-out of a slot's RBC instance
    (idempotent per slot); checks the slot's read-set at this moment. *)

val note_deliver : t -> slot:int -> player:int -> unit

val observe : t -> Obs.Event.payload -> unit
(** Replay a recorded event: [Rbc_send] (first one per slot counts as
    its launch), [Rbc_deliver]; everything else is ignored. *)

val races : t -> race list
(** Races in the order they were detected. *)

val ok : t -> bool

val check : t -> unit
(** @raise Failure describing the first race, if any were recorded. *)
