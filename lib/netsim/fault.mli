(** Fault-injection plans for the asynchronous runtime.

    A plan is a list of independent fault specs, all driven by the run's
    single seed so every faulty execution is replayable:

    - [Crash]: crash-stop — the player stops sending (and processing)
      after its [after_sends]-th point-to-point send; [after_sends = 0]
      means it is dead from the start. A crash can land mid-broadcast,
      so partial ECHO fan-outs are exercised.
    - [Drop]: each point-to-point message is independently eaten with
      probability [prob] (seeded Bernoulli in {!Sim}).
    - [Delay]: delivery jitter — each message's delivery time is pushed
      back by a uniform draw in [0, max_jitter], widening the space of
      adversarial-but-fair orderings.
    - [Equivocate]: Byzantine broadcaster — when this player initiates a
      slot it SENDs the true payload to even-indexed peers and a
      corrupted payload (first bit flipped) to odd-indexed peers.
      Bracha agreement must still hold: honest players deliver at most
      one value (possibly none — the slot stalls).

    The CLI surface is a compact spec string, e.g.
    ["crash:2@5,drop:0.05,delay:8,equiv:0"]. *)

type spec =
  | Crash of { player : int; after_sends : int }
  | Drop of { prob : float }
  | Delay of { max_jitter : int }
  | Equivocate of { player : int }

type plan = spec list

val none : plan

val parse : string -> (plan, string) result
(** Parse a comma-separated spec string: [crash:P] (dead from the
    start), [crash:P@S] (crash after [S] sends), [drop:F] with
    [0 <= F <= 1], [delay:J], [equiv:P]. The empty string is the empty
    plan. Two [crash] specs (or two [equiv] specs) naming the same
    player are rejected as ambiguous — there is no single sensible
    merge — while repeated [drop]/[delay] specs stay legal (the last
    one wins, see {!drop_prob}/{!max_jitter}). [Error] carries a usage
    message naming the offending item or duplicated player. *)

val to_string : plan -> string
(** Inverse of {!parse} (canonical form). *)

val drop_prob : plan -> float
(** Combined drop probability (0 when no [Drop] spec; the last one wins
    otherwise). *)

val max_jitter : plan -> int
(** Delivery jitter bound (0 when no [Delay] spec). *)

val crash_budget : plan -> k:int -> int array
(** Per-player send budget: [max_int] for healthy players, the
    [after_sends] of their [Crash] spec otherwise.
    @raise Invalid_argument if a spec names a player outside [0, k). *)

val equivocators : plan -> k:int -> bool array
(** Per-player Byzantine-equivocation flags.
    @raise Invalid_argument if a spec names a player outside [0, k). *)
