type 'a envelope = { src : int; dst : int; payload : 'a; bits : int }

(* Pending message: delivery time, then send sequence as the
   deterministic tie-break. *)
type 'a pending = { time : int; seq : int; env : 'a envelope }

type 'a t = {
  rng : Prob.Rng.t;
  drop_prob : float;
  max_jitter : int;
  mutable heap : 'a pending array;  (* binary min-heap in [0, size) *)
  mutable size : int;
  mutable now : int;
  mutable next_seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bits_sent : int;
}

let create ?(drop_prob = 0.) ?(max_jitter = 0) ~seed () =
  if drop_prob < 0. || drop_prob > 1. then
    invalid_arg "Sim.create: drop_prob outside [0, 1]";
  if max_jitter < 0 then invalid_arg "Sim.create: negative max_jitter";
  {
    rng = Prob.Rng.of_int_seed seed;
    drop_prob;
    max_jitter;
    heap = [||];
    size = 0;
    now = 0;
    next_seq = 0;
    sent = 0;
    dropped = 0;
    delivered = 0;
    bits_sent = 0;
  }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t p =
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * Array.length t.heap) in
    let heap = Array.make cap p in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- p;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
    done
  end;
  top

let send t ~src ~dst ~bits payload =
  if t.drop_prob > 0. && Prob.Rng.bernoulli t.rng t.drop_prob then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let jitter =
      if t.max_jitter = 0 then 0 else Prob.Rng.int t.rng (t.max_jitter + 1)
    in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.sent <- t.sent + 1;
    t.bits_sent <- t.bits_sent + bits;
    push t
      { time = t.now + 1 + jitter; seq; env = { src; dst; payload; bits } };
    true
  end

let run t ~deliver =
  while t.size > 0 do
    let p = pop t in
    t.now <- max t.now p.time;
    t.delivered <- t.delivered + 1;
    deliver p.env
  done

let now t = t.now
let sent t = t.sent
let dropped t = t.dropped
let delivered t = t.delivered
let bits_sent t = t.bits_sent
