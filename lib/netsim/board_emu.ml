module Board = Blackboard.Board
module Engine = Blackboard.Engine

type config = { f : int; seed : int; faults : Fault.plan }

type stats = {
  net_bits : int;
  net_messages : int;
  sends : int;
  echoes : int;
  readies : int;
  drops : int;
  crashed : int;
  waves : int;
}

type stall_reason = Speaker_crashed | No_quorum

type outcome =
  | Delivered of { board : Board.t; writes : int; stats : stats }
  | Stalled of {
      board : Board.t;
      delivered_slots : int;
      speaker : int;
      reason : stall_reason;
      stats : stats;
    }

type error =
  | Insufficient_honest of { k : int; f : int }
  | Engine_error of Engine.error

let error_message = function
  | Insufficient_honest { k; f } ->
      Printf.sprintf
        "insufficient honest players: k = %d <= 3f = %d (Bracha reliable \
         broadcast needs k > 3f)"
        k (3 * f)
  | Engine_error e -> Engine.error_message e

(* ------------------------------------------------------------------ *)
(* Wire format: every point-to-point message is a real packed bit      *)
(* string — 2-bit phase tag, gamma0 slot number, gamma0 payload        *)
(* length, payload — so the measured overhead is the length of an      *)
(* actual self-delimiting encoding.                                    *)
(* ------------------------------------------------------------------ *)

let encode ~slot phase value =
  let w = Coding.Bitbuf.Writer.create () in
  let tag = match phase with Rbc.Send -> 0 | Rbc.Echo -> 1 | Rbc.Ready -> 2 in
  Coding.Bitbuf.Writer.add_bits w tag 2;
  Coding.Intcode.write_gamma0 w slot;
  Coding.Intcode.write_gamma0 w (Coding.Bitvec.length value);
  Coding.Bitbuf.Writer.add_vec w value;
  Coding.Bitbuf.Writer.freeze w

let decode wire =
  let r = Coding.Bitbuf.Reader.of_vec wire in
  let tag = Coding.Bitbuf.Reader.read_bits r 2 in
  let slot = Coding.Intcode.read_gamma0 r in
  let len = Coding.Intcode.read_gamma0 r in
  let value = Coding.Bitvec.extract wire ~pos:(Coding.Bitbuf.Reader.pos r) ~len in
  let phase =
    match tag with
    | 0 -> Rbc.Send
    | 1 -> Rbc.Echo
    | 2 -> Rbc.Ready
    | _ -> invalid_arg "Board_emu.decode: bad phase tag"
  in
  (phase, slot, value)

(* An equivocator's second personality: same length, first bit flipped
   (a 0-bit payload has a single possible value — nothing to equivocate
   about). *)
let corrupt v =
  let n = Coding.Bitvec.length v in
  if n = 0 then v
  else begin
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w (not (Coding.Bitvec.get v 0));
    for i = 1 to n - 1 do
      Coding.Bitbuf.Writer.add_bit w (Coding.Bitvec.get v i)
    done;
    Coding.Bitbuf.Writer.freeze w
  end

let run ~k ~schedule ~players ?(max_writes = 1_000_000) ?cert ~config () =
  if k <= 3 * config.f then
    Error (Insufficient_honest { k; f = config.f })
  else if Array.length players <> k then
    Error
      (Engine_error
         (Engine.Size_mismatch { expected = k; got = Array.length players }))
  else begin
    let crash_budget = Fault.crash_budget config.faults ~k in
    let equivocator = Fault.equivocators config.faults ~k in
    let drop_prob = Fault.drop_prob config.faults in
    let max_jitter = Fault.max_jitter config.faults in
    let crashed = Array.make k false in
    let sends_by = Array.make k 0 in
    Array.iteri (fun p b -> if b <= 0 then crashed.(p) <- true) crash_budget;
    let board = Board.create ~k in
    (* Per-slot network seeds split deterministically off the run seed,
       so the whole execution replays from [config.seed] alone. *)
    let seed_master = Prob.Rng.of_int_seed config.seed in
    let sends = ref 0 and echoes = ref 0 and readies = ref 0 in
    let net_bits = ref 0 and drops = ref 0 in
    let waves_run = ref 0 in
    let stats () =
      {
        net_bits = !net_bits;
        net_messages = !sends + !echoes + !readies;
        sends = !sends;
        echoes = !echoes;
        readies = !readies;
        drops = !drops;
        crashed =
          Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed;
        waves = !waves_run;
      }
    in
    let publish_metrics () =
      if Obs.Metrics.enabled () then begin
        let s = stats () in
        Obs.Metrics.bump "netsim.bits" s.net_bits;
        Obs.Metrics.bump "netsim.messages" s.net_messages;
        Obs.Metrics.bump "netsim.sends" s.sends;
        Obs.Metrics.bump "netsim.echoes" s.echoes;
        Obs.Metrics.bump "netsim.readies" s.readies;
        Obs.Metrics.bump "netsim.drops" s.drops;
        Obs.Metrics.bump "netsim.slots" (Board.write_count board)
      end
    in
    (* One Bracha instance per board slot, run to network quiescence —
       the slot barrier that makes "write t+1 may depend on write t"
       well defined on an asynchronous substrate. *)
    let run_slot ~slot ~speaker payload =
      incr waves_run;
      let sim =
        Sim.create ~drop_prob ~max_jitter
          ~seed:(Prob.Rng.bits62 (Prob.Rng.split seed_master))
          ()
      in
      let machines =
        Array.init k (fun _ -> Rbc.create ~n:k ~f:config.f ())
      in
      let delivered_at = Array.make k None in
      let traced = Obs.Trace.enabled () in
      let count_phase phase bits =
        (match phase with
        | Rbc.Send -> incr sends
        | Rbc.Echo -> incr echoes
        | Rbc.Ready -> incr readies);
        net_bits := !net_bits + bits
      in
      let emit_sent phase ~src ~dst ~bits =
        Obs.Trace.emit
          (match phase with
          | Rbc.Send -> Obs.Event.Rbc_send { slot; src; dst; bits }
          | Rbc.Echo -> Obs.Event.Rbc_echo { slot; src; dst; bits }
          | Rbc.Ready -> Obs.Event.Rbc_ready { slot; src; dst; bits })
      in
      let rec do_actions p actions =
        List.iter
          (function
            | Rbc.Deliver v ->
                delivered_at.(p) <- Some v;
                if traced then
                  Obs.Trace.emit
                    (Obs.Event.Rbc_deliver
                       { slot; player = p; bits = Coding.Bitvec.length v })
            | Rbc.Broadcast (phase, v) -> broadcast_from p phase v)
          actions
      and broadcast_from p phase v =
        if not crashed.(p) then begin
          (* A player processes its own message locally, free of charge
             (loopback); only cross-player traffic hits the wire. *)
          do_actions p (Rbc.handle machines.(p) ~from:p phase v);
          let wire = encode ~slot phase v in
          let wire_alt =
            if phase = Rbc.Send && equivocator.(p) then
              Some (encode ~slot phase (corrupt v))
            else None
          in
          let dst = ref 0 in
          while !dst < k && not crashed.(p) do
            if !dst <> p then begin
              if sends_by.(p) >= crash_budget.(p) then crashed.(p) <- true
              else begin
                sends_by.(p) <- sends_by.(p) + 1;
                let wire =
                  match wire_alt with
                  | Some alt when !dst mod 2 = 1 -> alt
                  | _ -> wire
                in
                let bits = Coding.Bitvec.length wire in
                if Sim.send sim ~src:p ~dst:!dst ~bits wire then begin
                  count_phase phase bits;
                  if traced then emit_sent phase ~src:p ~dst:!dst ~bits
                end
                else begin
                  incr drops;
                  if traced then
                    Obs.Trace.emit
                      (Obs.Event.Net_drop { slot; src = p; dst = !dst })
                end
              end
            end;
            incr dst
          done
        end
      in
      broadcast_from speaker Rbc.Send payload;
      Sim.run sim ~deliver:(fun env ->
          if not crashed.(env.Sim.dst) then begin
            let phase, slot', value = decode env.Sim.payload in
            assert (slot' = slot);
            do_actions env.Sim.dst
              (Rbc.handle machines.(env.Sim.dst) ~from:env.Sim.src phase value)
          end);
      (* Slot verdict: every live player must have delivered, and — the
         Bracha agreement property, enforced rather than assumed — all
         delivered values must coincide. *)
      let value = ref None in
      let complete = ref true in
      for p = 0 to k - 1 do
        if not crashed.(p) then
          match (delivered_at.(p), !value) with
          | None, _ -> complete := false
          | Some v, None -> value := Some v
          | Some v, Some v0 ->
              if not (Coding.Bitvec.equal v v0) then
                failwith
                  (Printf.sprintf
                     "Board_emu: agreement violation in slot %d (n > 3f \
                      should make this unreachable)"
                     slot)
      done;
      if !complete then !value else None
    in
    let rec slots slot =
      match schedule board with
      | None ->
          publish_metrics ();
          Ok (Delivered { board; writes = slot; stats = stats () })
      | Some i when i < 0 || i >= k ->
          Error (Engine_error (Engine.Bad_speaker { index = i; k; at_write = slot }))
      | Some _ when slot >= max_writes ->
          Error (Engine_error (Engine.Runaway { max_writes }))
      | Some i when crashed.(i) ->
          publish_metrics ();
          Ok
            (Stalled
               {
                 board;
                 delivered_slots = slot;
                 speaker = i;
                 reason = Speaker_crashed;
                 stats = stats ();
               })
      | Some i -> (
          let traced = Obs.Trace.enabled () in
          if traced then Obs.Trace.emit (Obs.Event.Round_start { round = slot });
          let payload = Coding.Bitbuf.Writer.freeze (players.(i).Engine.speak board) in
          match run_slot ~slot ~speaker:i payload with
          | Some value ->
              Board.post_vec board ~player:i value;
              if traced then
                Obs.Trace.emit
                  (Obs.Event.Round_end
                     { round = slot; bits = Coding.Bitvec.length value });
              Array.iteri
                (fun p pl -> if not crashed.(p) then pl.Engine.observe board)
                players;
              slots (slot + 1)
          | None ->
              publish_metrics ();
              Ok
                (Stalled
                   {
                     board;
                     delivered_slots = slot;
                     speaker = i;
                     reason = No_quorum;
                     stats = stats ();
                   }))
    in
    (* ---------------------------------------------------------------- *)
    (* Pipelined mode: one RBC instance per slot of the current wave,    *)
    (* all in flight over a single shared network, barriers only between *)
    (* waves. Payloads are still computed sequentially (slot order, one  *)
    (* [speak] per slot) on a scratch replay of the committed board, so  *)
    (* fault-free runs stay byte-identical to the sequential engine by   *)
    (* construction; the {!Hbcheck} oracle then verifies that the        *)
    (* network-level launch/deliver order respected the certificate's    *)
    (* read-sets — i.e. that a faithful distributed deployment could     *)
    (* have produced the same payloads.                                  *)
    (* ---------------------------------------------------------------- *)
    let run_pipelined cert =
      (match Hbcheck.validate_cert cert with
      | Ok () -> ()
      | Error m ->
          invalid_arg ("Board_emu.run: invalid pipelining certificate: " ^ m));
      let hb = Hbcheck.create cert ~k in
      (* End of the wave starting at [w]: the next boundary, the end of
         the analyzed range, or a singleton past it. *)
      let wave_end w =
        let e = ref (max cert.Hbcheck.slots (w + 1)) in
        Array.iter
          (fun b -> if b > w && b < !e then e := b)
          cert.Hbcheck.waves;
        if w >= cert.Hbcheck.slots then w + 1 else !e
      in
      (* Speculative payload computation for one wave, on a scratch
         replay of the committed board. Each slot's [speak] runs exactly
         once, in slot order — the same call sequence as the sequential
         driver, so hosted schedules sample identically. *)
      let collect wstart wend =
        let scratch = Board.create ~k in
        List.iter
          (fun w ->
            Board.post_vec scratch ~player:w.Board.player ~label:w.Board.label
              w.Board.vec)
          (Board.writes board);
        let rec go t acc =
          if t >= wend then Ok (List.rev acc)
          else
            match schedule scratch with
            | None -> Ok (List.rev acc)
            | Some i when i < 0 || i >= k ->
                Error
                  (Engine_error (Engine.Bad_speaker { index = i; k; at_write = t }))
            | Some _ when t >= max_writes ->
                Error (Engine_error (Engine.Runaway { max_writes }))
            | Some i when crashed.(i) -> Ok (List.rev acc)
            | Some i ->
                let payload =
                  Coding.Bitbuf.Writer.freeze (players.(i).Engine.speak scratch)
                in
                Board.post_vec scratch ~player:i payload;
                go (t + 1) ((t, i, payload) :: acc)
        in
        go wstart []
      in
      (* Run one wave's RBC instances concurrently over a shared
         network; returns per-slot agreed values (None = no quorum). *)
      let run_batch launches =
        let sim =
          Sim.create ~drop_prob ~max_jitter
            ~seed:(Prob.Rng.bits62 (Prob.Rng.split seed_master))
            ()
        in
        let insts = Hashtbl.create 8 in
        List.iter
          (fun (slot, _, _) ->
            Hashtbl.replace insts slot
              ( Array.init k (fun _ -> Rbc.create ~n:k ~f:config.f ()),
                Array.make k None ))
          launches;
        let traced = Obs.Trace.enabled () in
        let count_phase phase bits =
          (match phase with
          | Rbc.Send -> incr sends
          | Rbc.Echo -> incr echoes
          | Rbc.Ready -> incr readies);
          net_bits := !net_bits + bits
        in
        let emit_sent ~slot phase ~src ~dst ~bits =
          Obs.Trace.emit
            (match phase with
            | Rbc.Send -> Obs.Event.Rbc_send { slot; src; dst; bits }
            | Rbc.Echo -> Obs.Event.Rbc_echo { slot; src; dst; bits }
            | Rbc.Ready -> Obs.Event.Rbc_ready { slot; src; dst; bits })
        in
        let rec do_actions ~slot p actions =
          List.iter
            (function
              | Rbc.Deliver v ->
                  (snd (Hashtbl.find insts slot)).(p) <- Some v;
                  Hbcheck.note_deliver hb ~slot ~player:p;
                  if traced then
                    Obs.Trace.emit
                      (Obs.Event.Rbc_deliver
                         { slot; player = p; bits = Coding.Bitvec.length v })
              | Rbc.Broadcast (phase, v) -> broadcast_from ~slot p phase v)
            actions
        and broadcast_from ~slot p phase v =
          if not crashed.(p) then begin
            let machines, _ = Hashtbl.find insts slot in
            do_actions ~slot p (Rbc.handle machines.(p) ~from:p phase v);
            let wire = encode ~slot phase v in
            let wire_alt =
              if phase = Rbc.Send && equivocator.(p) then
                Some (encode ~slot phase (corrupt v))
              else None
            in
            let dst = ref 0 in
            while !dst < k && not crashed.(p) do
              if !dst <> p then begin
                if sends_by.(p) >= crash_budget.(p) then crashed.(p) <- true
                else begin
                  sends_by.(p) <- sends_by.(p) + 1;
                  let wire =
                    match wire_alt with
                    | Some alt when !dst mod 2 = 1 -> alt
                    | _ -> wire
                  in
                  let bits = Coding.Bitvec.length wire in
                  if Sim.send sim ~src:p ~dst:!dst ~bits wire then begin
                    count_phase phase bits;
                    if traced then emit_sent ~slot phase ~src:p ~dst:!dst ~bits
                  end
                  else begin
                    incr drops;
                    if traced then
                      Obs.Trace.emit
                        (Obs.Event.Net_drop { slot; src = p; dst = !dst })
                  end
                end
              end;
              incr dst
            done
          end
        in
        List.iter
          (fun (slot, speaker, payload) ->
            Hbcheck.note_launch hb ~slot ~speaker;
            broadcast_from ~slot speaker Rbc.Send payload)
          launches;
        Sim.run sim ~deliver:(fun env ->
            if not crashed.(env.Sim.dst) then begin
              let phase, slot', value = decode env.Sim.payload in
              match Hashtbl.find_opt insts slot' with
              | None -> ()
              | Some _ ->
                  do_actions ~slot:slot' env.Sim.dst
                    (Rbc.handle
                       (fst (Hashtbl.find insts slot')).(env.Sim.dst)
                       ~from:env.Sim.src phase value)
            end);
        fun slot ->
          let _, delivered_at = Hashtbl.find insts slot in
          let value = ref None in
          let complete = ref true in
          for p = 0 to k - 1 do
            if not crashed.(p) then
              match (delivered_at.(p), !value) with
              | None, _ -> complete := false
              | Some v, None -> value := Some v
              | Some v, Some v0 ->
                  if not (Coding.Bitvec.equal v v0) then
                    failwith
                      (Printf.sprintf
                         "Board_emu: agreement violation in slot %d (n > 3f \
                          should make this unreachable)"
                         slot)
          done;
          if !complete then !value else None
      in
      let traced = Obs.Trace.enabled () in
      let rec waves_loop wstart =
        match collect wstart (wave_end wstart) with
        | Error e -> Error e
        | Ok [] -> (
            match schedule board with
            | None ->
                publish_metrics ();
                Ok (Delivered { board; writes = wstart; stats = stats () })
            | Some i ->
                assert (i >= 0 && i < k && crashed.(i));
                publish_metrics ();
                Ok
                  (Stalled
                     {
                       board;
                       delivered_slots = wstart;
                       speaker = i;
                       reason = Speaker_crashed;
                       stats = stats ();
                     }))
        | Ok launches -> (
            let wave_ix = !waves_run in
            incr waves_run;
            if traced then
              Obs.Trace.emit
                (Obs.Event.Wave_start
                   {
                     wave = wave_ix;
                     first_slot = wstart;
                     slots = List.length launches;
                   });
            let verdict = run_batch launches in
            (* Commit delivered slots in order; the first incomplete slot
               stalls the run there (later deliveries are dropped so the
               committed board stays a prefix of the sync board). *)
            let rec commit = function
              | [] -> None
              | (slot, speaker, _) :: rest -> (
                  match verdict slot with
                  | Some value ->
                      if traced then
                        Obs.Trace.emit (Obs.Event.Round_start { round = slot });
                      Board.post_vec board ~player:speaker value;
                      if traced then
                        Obs.Trace.emit
                          (Obs.Event.Round_end
                             { round = slot; bits = Coding.Bitvec.length value });
                      Array.iteri
                        (fun p pl ->
                          if not crashed.(p) then pl.Engine.observe board)
                        players;
                      commit rest
                  | None -> Some (slot, speaker))
            in
            let stalled = commit launches in
            if traced then
              Obs.Trace.emit
                (Obs.Event.Wave_end
                   {
                     wave = wave_ix;
                     first_slot = wstart;
                     delivered = Board.write_count board - wstart;
                   });
            (* The oracle's verdict on this wave: a race here means the
               certificate allowed a slot in flight before its reads
               were delivered — a bug worth a hard stop, not a result. *)
            Hbcheck.check hb;
            match stalled with
            | Some (slot, speaker) ->
                publish_metrics ();
                Ok
                  (Stalled
                     {
                       board;
                       delivered_slots = slot;
                       speaker;
                       reason = No_quorum;
                       stats = stats ();
                     })
            | None -> waves_loop (Board.write_count board))
      in
      waves_loop 0
    in
    Obs.Trace.with_span "netsim.run" (fun () ->
        match cert with None -> slots 0 | Some c -> run_pipelined c)
  end
