(** The shared blackboard of the broadcast model (Section 3).

    An append-only log of bit-string writes. Every player can read the
    whole board for free; writing is charged per bit. The experiment
    harnesses read the communication cost of a run straight off the
    board, so no protocol can under-count its own communication.

    Messages are stored packed: a posted write holds the
    {!Coding.Bitvec.t} frozen out of the writer (zero-copy), never a
    boxed per-bit structure. *)

type t

type write = {
  player : int;  (** who wrote *)
  vec : Coding.Bitvec.t;  (** the payload, packed, in board order *)
  label : string;  (** free-form tag for traces ("pass", "batch", ...) *)
}

val create : k:int -> t
(** A fresh board for [k] players. *)

val players : t -> int

val post : t -> player:int -> ?label:string -> Coding.Bitbuf.Writer.t -> unit
(** Append a write, freezing the writer in O(1) (it cannot be appended
    to afterwards). @raise Invalid_argument for an out-of-range
    player. *)

val post_vec : t -> player:int -> ?label:string -> Coding.Bitvec.t -> unit
(** Append an already-frozen payload. *)

val writes : t -> write list
(** All writes, oldest first. *)

val total_bits : t -> int
val write_count : t -> int
val bits_by : t -> int -> int
(** Bits contributed by one player. *)

val last_write : t -> write option

val equal : t -> t -> bool
(** Byte-identical boards: same player count and the same sequence of
    writes (speaker, packed payload, label). This is the totality
    check's notion of "the emulation delivered the same board". *)

val reader_of_write : write -> Coding.Bitbuf.Reader.t
(** Re-read a write's payload (what the other players do). Zero-copy:
    a cursor over the stored packed vector. *)

val pp : Format.formatter -> t -> unit
