(** A generic state-machine engine for operational broadcast protocols.

    Section 3's discipline, enforced by types: at each point the
    {e public board alone} determines whose turn it is (the [schedule]
    function gets nothing else), and the chosen player produces its
    message from its own closure state (input + private randomness) plus
    the board. Every other player observes each write, so protocol
    logic that "everyone tracks the covered set" lives in [observe]
    callbacks rather than in shared mutable state.

    The hand-written protocols in {!Protocols} inline this loop for
    speed; the engine exists for protocols built at runtime and as the
    reference discipline (tests check the inlined protocols against
    engine-hosted reimplementations). *)

type player = {
  speak : Board.t -> Coding.Bitbuf.Writer.t;
      (** called when scheduled; must not mutate the board directly *)
  observe : Board.t -> unit;
      (** called after every write (including the player's own) *)
}

type outcome = { board : Board.t; writes : int }

(** Why a run could not complete. The same conditions {!run} reports as
    [Invalid_argument], as data: drivers (the CLI, the async emulation)
    turn these into clean diagnostics instead of uncaught backtraces. *)
type error =
  | Size_mismatch of { expected : int; got : int }
      (** player array length does not match [k] *)
  | Bad_speaker of { index : int; k : int; at_write : int }
      (** the schedule yielded an out-of-range index *)
  | Runaway of { max_writes : int }
      (** [max_writes] writes without the schedule yielding [None] *)

val error_message : error -> string
(** Human-readable one-line diagnostic ("schedule yielded speaker 5 of
    k=3 at write 7", ...). *)

val run_result :
  k:int ->
  schedule:(Board.t -> int option) ->
  players:player array ->
  ?max_writes:int ->
  unit ->
  (outcome, error) result
(** Like {!run}, but runaway protection and schedule errors come back as
    a typed [Error] instead of raising. The board built so far is
    discarded on error. *)

val run :
  k:int ->
  schedule:(Board.t -> int option) ->
  players:player array ->
  ?max_writes:int ->
  unit ->
  outcome
(** Drive the loop: while [schedule board] yields a player, let it
    speak, post the write, notify all observers. Stops when the
    schedule yields [None].
    @raise Invalid_argument if the player array has the wrong size, a
    scheduled index is out of range, or [max_writes] (default
    [1_000_000]) is exceeded — runaway protection for buggy
    schedules. *)

(** {1 Ready-made schedules} *)

val round_robin_n_writes : k:int -> total:int -> Board.t -> int option
(** Players [0..k-1] in cyclic order until [total] writes occurred. *)

val one_pass : k:int -> Board.t -> int option
(** Each player speaks exactly once, in order. *)
