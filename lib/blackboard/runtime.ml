(** Driver utilities for operational protocol runs.

    A protocol run is a loop in which, at each step, the current board
    contents determine whose turn it is to speak; the chosen player
    writes a message computed from its own input, its private
    randomness, and the board. These helpers keep the concrete protocols
    in {!Protocols} honest about that structure and collect run
    statistics. *)

type stats = {
  bits : int;  (** total bits written on the board *)
  messages : int;  (** number of writes *)
  rounds : int;  (** protocol-defined cycles, if it reports them *)
}

let stats_of_board ?(rounds = 0) board =
  { bits = Board.total_bits board; messages = Board.write_count board; rounds }

(** Publish a run's stats as gauges on the installed metrics registry
    ([<prefix>.bits], [<prefix>.messages], [<prefix>.rounds]); no-op
    when none is installed. Gauges merge by [max], so the registry
    retains the largest run recorded under one prefix. *)
let record_stats ?(prefix = "run") stats =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.gauge (prefix ^ ".bits") stats.bits;
    Obs.Metrics.gauge (prefix ^ ".messages") stats.messages;
    Obs.Metrics.gauge (prefix ^ ".rounds") stats.rounds
  end

(** Private randomness for [k] players, split deterministically from a
    public seed so runs are reproducible and players' streams are
    independent. *)
let private_rngs ~seed ~k =
  let master = Prob.Rng.of_int_seed seed in
  Array.init k (fun _ -> Prob.Rng.split master)

(** Public randomness stream shared by all players (and by the referee):
    derived from the seed by a distinct split so it never collides with
    a private stream. *)
let public_rng ~seed =
  let master = Prob.Rng.of_int_seed (seed lxor 0x5DEECE66D) in
  Prob.Rng.split master

(** [turn_robin ~k step] runs player-indexed steps [0, 1, ..., k-1] and
    returns the first [Some] result, or [None] after a full cycle. *)
let turn_robin ~k step =
  let rec go i = if i = k then None else
    match step i with Some r -> Some r | None -> go (i + 1)
  in
  go 0
