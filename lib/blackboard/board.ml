type write = { player : int; vec : Coding.Bitvec.t; label : string }

type t = {
  k : int;
  mutable rev_writes : write list;
  mutable total : int;
  by_player : int array;
}

let create ~k =
  if k <= 0 then invalid_arg "Board.create: need at least one player";
  { k; rev_writes = []; total = 0; by_player = Array.make k 0 }

let players t = t.k

let post_vec t ~player ?(label = "") vec =
  if player < 0 || player >= t.k then invalid_arg "Board.post: bad player";
  let n = Coding.Bitvec.length vec in
  t.rev_writes <- { player; vec; label } :: t.rev_writes;
  t.total <- t.total + n;
  t.by_player.(player) <- t.by_player.(player) + n;
  (* Observability: every charged write in the repo funnels through
     here, so the trace's Broadcast events and the "board.*" counters
     are complete by construction — one event and one bump per message,
     never per bit. Guards first: with the null sink and no registry
     installed this is two predictable branches. *)
  if Obs.Trace.enabled () then
    Obs.Trace.emit (Obs.Event.Broadcast { player; bits = n; label });
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "board.bits" n;
    Obs.Metrics.bump "board.messages" 1
  end

let post t ~player ?label w =
  (* Zero-copy: freezing hands the writer's packed buffer straight to
     the board; the message is never re-boxed on its way across. *)
  post_vec t ~player ?label (Coding.Bitbuf.Writer.freeze w)

let writes t = List.rev t.rev_writes
let total_bits t = t.total
let write_count t = List.length t.rev_writes
let bits_by t i = t.by_player.(i)
let last_write t = match t.rev_writes with [] -> None | w :: _ -> Some w

let equal a b =
  a.k = b.k && a.total = b.total
  && List.length a.rev_writes = List.length b.rev_writes
  && List.for_all2
       (fun x y ->
         x.player = y.player && x.label = y.label
         && Coding.Bitvec.equal x.vec y.vec)
       a.rev_writes b.rev_writes
let reader_of_write w = Coding.Bitbuf.Reader.of_vec w.vec

let pp fmt t =
  Format.fprintf fmt "@[<v>board (%d players, %d bits):@," t.k t.total;
  List.iter
    (fun w ->
      Format.fprintf fmt "  p%d%s: %s@," w.player
        (if w.label = "" then "" else " [" ^ w.label ^ "]")
        (Coding.Bitvec.to_string w.vec))
    (writes t);
  Format.fprintf fmt "@]"
