(** Driver utilities for operational protocol runs: reproducible
    private/public randomness and small scheduling helpers. See
    {!Engine} for the full state-machine driver. *)

type stats = { bits : int; messages : int; rounds : int }

val stats_of_board : ?rounds:int -> Board.t -> stats

val record_stats : ?prefix:string -> stats -> unit
(** Publish stats as [<prefix>.bits] / [.messages] / [.rounds] gauges
    on the installed {!Obs.Metrics} registry (default prefix ["run"]);
    no-op when none is installed. *)

val private_rngs : seed:int -> k:int -> Prob.Rng.t array
(** Independent per-player streams split deterministically from a
    public seed. *)

val public_rng : seed:int -> Prob.Rng.t
(** The shared public-randomness stream; derived by a distinct split so
    it never collides with a private stream. *)

val turn_robin : k:int -> (int -> 'a option) -> 'a option
(** Run player-indexed steps [0 .. k-1], returning the first [Some]. *)
