type player = {
  speak : Board.t -> Coding.Bitbuf.Writer.t;
  observe : Board.t -> unit;
}

type outcome = { board : Board.t; writes : int }

let run ~k ~schedule ~players ?(max_writes = 1_000_000) () =
  if Array.length players <> k then
    invalid_arg "Engine.run: player array size mismatch";
  let board = Board.create ~k in
  let writes = ref 0 in
  let rec loop () =
    match schedule board with
    | None -> ()
    | Some i ->
        if i < 0 || i >= k then invalid_arg "Engine.run: bad speaker index";
        if !writes >= max_writes then
          invalid_arg "Engine.run: max_writes exceeded";
        let traced = Obs.Trace.enabled () in
        if traced then Obs.Trace.emit (Obs.Event.Round_start { round = !writes });
        let bits_before = Board.total_bits board in
        let message = players.(i).speak board in
        Board.post board ~player:i message;
        if traced then
          Obs.Trace.emit
            (Obs.Event.Round_end
               { round = !writes; bits = Board.total_bits board - bits_before });
        incr writes;
        if Obs.Metrics.enabled () then Obs.Metrics.bump "engine.writes" 1;
        Array.iter (fun p -> p.observe board) players;
        loop ()
  in
  Obs.Trace.with_span "engine.run" loop;
  { board; writes = !writes }

let round_robin_n_writes ~k ~total board =
  let done_ = Board.write_count board in
  if done_ >= total then None else Some (done_ mod k)

let one_pass ~k board =
  let done_ = Board.write_count board in
  if done_ >= k then None else Some done_
