type player = {
  speak : Board.t -> Coding.Bitbuf.Writer.t;
  observe : Board.t -> unit;
}

type outcome = { board : Board.t; writes : int }

type error =
  | Size_mismatch of { expected : int; got : int }
  | Bad_speaker of { index : int; k : int; at_write : int }
  | Runaway of { max_writes : int }

let error_message = function
  | Size_mismatch { expected; got } ->
      Printf.sprintf "player array has %d entries but k = %d" got expected
  | Bad_speaker { index; k; at_write } ->
      Printf.sprintf "schedule yielded speaker %d of k = %d at write %d" index
        k at_write
  | Runaway { max_writes } ->
      Printf.sprintf
        "runaway protocol: %d writes without the schedule yielding None \
         (max-writes budget exceeded)"
        max_writes

(* The raising entry point pins these exact strings (regression-tested),
   so [run] maps each typed error back to its historical message. *)
let legacy_message = function
  | Size_mismatch _ -> "Engine.run: player array size mismatch"
  | Bad_speaker _ -> "Engine.run: bad speaker index"
  | Runaway _ -> "Engine.run: max_writes exceeded"

let run_result ~k ~schedule ~players ?(max_writes = 1_000_000) () =
  if Array.length players <> k then
    Error (Size_mismatch { expected = k; got = Array.length players })
  else begin
    let board = Board.create ~k in
    let writes = ref 0 in
    let rec loop () =
      match schedule board with
      | None -> Ok ()
      | Some i ->
          if i < 0 || i >= k then
            Error (Bad_speaker { index = i; k; at_write = !writes })
          else if !writes >= max_writes then Error (Runaway { max_writes })
          else begin
            let traced = Obs.Trace.enabled () in
            if traced then
              Obs.Trace.emit (Obs.Event.Round_start { round = !writes });
            let bits_before = Board.total_bits board in
            let message = players.(i).speak board in
            Board.post board ~player:i message;
            if traced then
              Obs.Trace.emit
                (Obs.Event.Round_end
                   {
                     round = !writes;
                     bits = Board.total_bits board - bits_before;
                   });
            incr writes;
            if Obs.Metrics.enabled () then Obs.Metrics.bump "engine.writes" 1;
            Array.iter (fun p -> p.observe board) players;
            loop ()
          end
    in
    match Obs.Trace.with_span "engine.run" loop with
    | Ok () -> Ok { board; writes = !writes }
    | Error e -> Error e
  end

let run ~k ~schedule ~players ?max_writes () =
  match run_result ~k ~schedule ~players ?max_writes () with
  | Ok outcome -> outcome
  | Error e -> invalid_arg (legacy_message e)

let round_robin_n_writes ~k ~total board =
  let done_ = Board.write_count board in
  if done_ >= total then None else Some (done_ mod k)

let one_pass ~k board =
  let done_ = Board.write_count board in
  if done_ >= k then None else Some done_
