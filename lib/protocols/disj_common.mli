(** Shared types, reference semantics and instance generators for the
    multi-party set-disjointness protocols.

    An instance is [k] sets over the universe [\[0, n)], represented as
    [sets.(i).(j) = true] iff [j] is in player [i]'s set ([X_i^j = 1]). *)

type instance = { n : int; sets : bool array array }

val k_of : instance -> int

val make : n:int -> bool array array -> instance
(** @raise Invalid_argument if a row has the wrong width. *)

val disjoint : instance -> bool
(** Ground truth: the intersection of all sets is empty. *)

val intersection : instance -> int list
(** The elements of the intersection (empty iff disjoint). *)

(** Result of an operational protocol run. *)
type result = {
  answer : bool;  (** the protocol's claim: disjoint? *)
  bits : int;  (** total bits written on the board *)
  messages : int;
  cycles : int;  (** protocol-defined cycles (1 if not meaningful) *)
}

(** {1 Instance generators} *)

val random_dense : Prob.Rng.t -> n:int -> k:int -> density:float -> instance
(** Independent Bernoulli memberships. *)

val random_disjoint_single_zero : Prob.Rng.t -> n:int -> k:int -> instance
(** Guaranteed disjoint, as hard as possible: every coordinate has
    exactly one zero with a random owner. *)

val random_disjoint_multi :
  Prob.Rng.t -> n:int -> k:int -> zeros_per_coord:int -> instance

val random_intersecting :
  Prob.Rng.t -> n:int -> k:int -> witnesses:int -> instance
(** Single-zero instance with [witnesses] coordinates left all-ones. *)

val last_player_empty : n:int -> k:int -> instance
val all_full : n:int -> k:int -> instance
val all_empty : n:int -> k:int -> instance

val enumerate : n:int -> k:int -> instance list
(** All [2^(nk)] instances — for exhaustive correctness tests. *)

val to_bit_vectors : instance -> int array array
(** Convert to the coordinate-vector shape of the exact protocol
    trees ([1] = member). *)

(** {1 Word-sliced coordinate planes}

    62-bit machine-word packing of per-player zero sets, shared by the
    operational solvers: coordinate scans become word AND-NOTs plus
    popcounts, with the board encodings untouched. *)

val plane_bits : int
(** Bits per plane word: 62 (the native int's top bit stays clear, so
    plane words are always non-negative). *)

val plane_words : int -> int
(** Words needed for an [n]-coordinate plane. *)

val zero_planes : instance -> int array array
(** [zero_planes inst] is one plane per player; bit [c mod 62] of word
    [c / 62] of plane [j] is set iff coordinate [c] is a {e zero} of
    player [j]. *)

val popcount : int -> int
(** Set bits of a non-negative int (16-bit table slices). *)

val ntz_word : int -> int
(** Trailing zeros of a nonzero non-negative int. *)
