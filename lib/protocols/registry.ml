(** Registry of shipped protocols, for linting and tooling.

    Every protocol tree the library ships self-registers here at a
    small, exactly-analyzable parameter point, together with the
    metadata the static analyzer needs: the player count, the domain of
    per-player inputs, and (when the module documents one) the declared
    worst-case bit cost to cross-check. The [lint] subcommand of
    [broadcast_cli] and the tier-1 registry sweep in
    [test/test_analysis.ml] both iterate [all ()], so a protocol added
    here is linted on every [dune runtest] and every CI push.

    The operational disjointness solvers ({!Disj_trivial},
    {!Disj_naive}, {!Disj_batched}) run on a blackboard, not a tree;
    they are represented by their exact tree models from {!Disj_trees}
    at small scale, as noted per entry.

    Downstream protocols register with {!register}. *)

type entry =
  | Entry : {
      name : string;
      players : int;
      domain : 'a array;  (** possible per-player inputs *)
      tree : 'a Proto.Tree.t Lazy.t;
      declared_cost : int option;
          (** documented worst-case bits, cross-checked by proto-lint *)
      note : string;
    }
      -> entry

let name (Entry e) = e.name
let players (Entry e) = e.players
let note (Entry e) = e.note
let declared_cost (Entry e) = e.declared_cost

let entry ~name ~players ?declared_cost ?(note = "") ~domain tree =
  Entry { name; players; domain; tree; declared_cost; note }

(* Per-player input domains. *)
let bit_domain = [| 0; 1 |]

let vector_domain n =
  Array.of_list (Proto.Semantics.all_bit_inputs n)

let builtins =
  lazy
    [
      entry ~name:"and/sequential" ~players:5 ~declared_cost:5
        ~note:"halt at the first zero; CC = k" ~domain:bit_domain
        (lazy (And_protocols.sequential 5));
      entry ~name:"and/broadcast-all" ~players:4 ~declared_cost:4
        ~note:"everyone speaks; the maximally leaky baseline"
        ~domain:bit_domain
        (lazy (And_protocols.broadcast_all 4));
      entry ~name:"and/truncated" ~players:5 ~declared_cost:3
        ~note:"only the first m = 3 of k = 5 players speak (Lemma 6)"
        ~domain:bit_domain
        (lazy (And_protocols.truncated_sequential ~k:5 ~m:3));
      entry ~name:"and/noisy" ~players:4 ~declared_cost:4
        ~note:"players lie with probability 1/10 (private randomness)"
        ~domain:bit_domain
        (lazy
          (And_protocols.noisy_sequential ~k:4
             ~noise:(Exact.Rational.of_ints 1 10)));
      entry ~name:"and/two-copy" ~players:3 ~declared_cost:6
        ~note:"two independent sequential copies (Theorem 4 witness)"
        ~domain:(vector_domain 2)
        (lazy (And_protocols.two_copy_sequential 3));
      entry ~name:"and/constant" ~players:4 ~declared_cost:0
        ~note:"ignores inputs; the zero-information point"
        ~domain:bit_domain
        (lazy (And_protocols.constant ~k:4 1));
      entry ~name:"compress/xor-coin-sequential" ~players:4 ~declared_cost:4
        ~note:"output XORed with a free public coin (compression fixture)"
        ~domain:bit_domain
        (lazy (Proto.Combinators.xor_output_with_coin (And_protocols.sequential 4)));
      entry ~name:"compress/parallel-copies" ~players:3 ~declared_cost:6
        ~note:"Combinators.parallel_copies of sequential AND_3, 2 copies"
        ~domain:(vector_domain 2)
        (lazy
          (Proto.Combinators.parallel_copies (And_protocols.sequential 3)
             ~copies:2));
      entry ~name:"disj/trivial-tree" ~players:3 ~declared_cost:6
        ~note:"tree model of Disj_trivial: everyone announces its set"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.broadcast_all ~n:2 ~k:3));
      entry ~name:"disj/naive-tree" ~players:3 ~declared_cost:6
        ~note:"tree model of Disj_naive: coordinate-by-coordinate"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.sequential ~n:2 ~k:3));
      entry ~name:"disj/batched-tree" ~players:3 ~declared_cost:6
        ~note:"tree model of Disj_batched: shrinking-alphabet batches"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.batched ~n:2 ~k:3));
      entry ~name:"or/pointwise-tree" ~players:3 ~declared_cost:6
        ~note:"pointwise-OR broadcast tree (output-entropy floor witness)"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.pointwise_or_broadcast ~n:2 ~k:3));
    ]

let registered : entry list ref = ref []

let register e =
  let n = name e in
  if
    List.exists (fun e' -> name e' = n) (Lazy.force builtins)
    || List.exists (fun e' -> name e' = n) !registered
  then invalid_arg ("Registry.register: duplicate name " ^ n);
  registered := e :: !registered

let all () = Lazy.force builtins @ List.rev !registered
let names () = List.map name (all ())
let find n = List.find_opt (fun e -> name e = n) (all ())
