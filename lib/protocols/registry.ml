(** Registry of shipped protocols, for linting and tooling.

    Every protocol tree the library ships self-registers here at a
    small, exactly-analyzable parameter point, together with the
    metadata the static analyzer needs: the player count, the domain of
    per-player inputs, and (when the module documents one) the declared
    worst-case bit cost to cross-check. The [lint] subcommand of
    [broadcast_cli] and the tier-1 registry sweep in
    [test/test_analysis.ml] both iterate [all ()], so a protocol added
    here is linted on every [dune runtest] and every CI push.

    The operational disjointness solvers ({!Disj_trivial},
    {!Disj_naive}, {!Disj_batched}) run on a blackboard, not a tree;
    they are represented by their exact tree models from {!Disj_trees}
    at small scale, as noted per entry.

    Downstream protocols register with {!register}. *)

type entry =
  | Entry : {
      name : string;
      players : int;
      domain : 'a array;  (** possible per-player inputs *)
      tree : 'a Proto.Tree.t Lazy.t;
      declared_cost : int option;
          (** documented worst-case bits, cross-checked by proto-lint *)
      spec : ('a array -> int) option;
          (** reference function on input profiles; deterministic
              entries that declare one are zero-error certified against
              it by proto-verify *)
      symmetry : Proto.Symmetry.t;
          (** declared player-permutation invariance of the {e output
              law} (not the transcript); licenses the orbit engine and
              is soundness-checked by {!symmetry_witness} in the test
              sweep. Defaults to trivial. *)
      note : string;
    }
      -> entry

let name (Entry e) = e.name
let players (Entry e) = e.players
let note (Entry e) = e.note
let declared_cost (Entry e) = e.declared_cost
let has_spec (Entry e) = Option.is_some e.spec
let symmetry (Entry e) = e.symmetry

let entry ~name ~players ?declared_cost ?spec ?(symmetry = Proto.Symmetry.Trivial)
    ?(note = "") ~domain tree =
  Entry { name; players; domain; tree; declared_cost; spec; symmetry; note }

(** Soundness check of the declared symmetry: [None] when the entry's
    output law is invariant under the whole declared group; otherwise a
    concrete witness input pair whose exact output laws differ, reported
    as per-player indices into the entry's domain (the inputs themselves
    are existentially typed). Exhaustive in the entry's domain —
    registry entries are small by construction. *)
let symmetry_witness (Entry { players; domain; tree; symmetry; _ }) =
  let index_of v =
    let n = Array.length domain in
    let rec go i =
      if i = n then -1
      else if Stdlib.compare domain.(i) v = 0 then i
      else go (i + 1)
    in
    go 0
  in
  Proto.Symmetry.check_tree symmetry ~players ~domain (Lazy.force tree)
  |> Option.map (fun (x, x') -> (Array.map index_of x, Array.map index_of x'))

(* Per-player input domains. *)
let bit_domain = [| 0; 1 |]

let vector_domain n =
  Array.of_list (Proto.Semantics.all_bit_inputs n)

(* Reference functions certified by proto-verify. The randomized
   entries (and/noisy, compress/xor-coin-sequential) declare none:
   zero-error certification covers deterministic trees only. *)
let and_of_coord c xs =
  Array.fold_left (fun acc x -> acc land x.(c)) 1 xs

let pack_vector x =
  Array.fold_left (fun acc b -> (2 * acc) + b) 0 x

let builtins =
  lazy
    [
      entry ~name:"and/sequential" ~players:5 ~declared_cost:5
        ~spec:Hard_dist.and_fn ~symmetry:Proto.Symmetry.Full
        ~note:"halt at the first zero; CC = k" ~domain:bit_domain
        (lazy (And_protocols.sequential 5));
      entry ~name:"and/broadcast-all" ~players:4 ~declared_cost:4
        ~spec:Hard_dist.and_fn ~symmetry:Proto.Symmetry.Full
        ~note:"everyone speaks; the maximally leaky baseline"
        ~domain:bit_domain
        (lazy (And_protocols.broadcast_all 4));
      entry ~name:"and/truncated" ~players:5 ~declared_cost:3
        ~spec:(fun x -> x.(0) land x.(1) land x.(2))
        ~symmetry:(Proto.Symmetry.Blocks [ [ 0; 1; 2 ]; [ 3; 4 ] ])
        ~note:"only the first m = 3 of k = 5 players speak (Lemma 6)"
        ~domain:bit_domain
        (lazy (And_protocols.truncated_sequential ~k:5 ~m:3));
      entry ~name:"and/noisy" ~players:4 ~declared_cost:4
        ~symmetry:Proto.Symmetry.Full
        ~note:"players lie with probability 1/10 (private randomness)"
        ~domain:bit_domain
        (lazy
          (And_protocols.noisy_sequential ~k:4
             ~noise:(Exact.Rational.of_ints 1 10)));
      entry ~name:"and/two-copy" ~players:3 ~declared_cost:6
        ~spec:(fun xs -> (2 * and_of_coord 0 xs) + and_of_coord 1 xs)
        ~symmetry:Proto.Symmetry.Full
        ~note:"two independent sequential copies (Theorem 4 witness)"
        ~domain:(vector_domain 2)
        (lazy (And_protocols.two_copy_sequential 3));
      entry ~name:"and/constant" ~players:4 ~declared_cost:0
        ~spec:(fun _ -> 1) ~symmetry:Proto.Symmetry.Full
        ~note:"ignores inputs; the zero-information point"
        ~domain:bit_domain
        (lazy (And_protocols.constant ~k:4 1));
      entry ~name:"compress/xor-coin-sequential" ~players:4 ~declared_cost:4
        ~symmetry:Proto.Symmetry.Full
        ~note:"output XORed with a free public coin (compression fixture)"
        ~domain:bit_domain
        (lazy (Proto.Combinators.xor_output_with_coin (And_protocols.sequential 4)));
      entry ~name:"compress/parallel-copies" ~players:3 ~declared_cost:6
        ~spec:(fun xs -> and_of_coord 0 xs lor (and_of_coord 1 xs lsl 1))
        ~symmetry:Proto.Symmetry.Full
        ~note:"Combinators.parallel_copies of sequential AND_3, 2 copies"
        ~domain:(vector_domain 2)
        (lazy
          (Proto.Combinators.parallel_copies (And_protocols.sequential 3)
             ~copies:2));
      entry ~name:"disj/trivial-tree" ~players:3 ~declared_cost:6
        ~spec:Hard_dist.disj_fn ~symmetry:Proto.Symmetry.Full
        ~note:"tree model of Disj_trivial: everyone announces its set"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.broadcast_all ~n:2 ~k:3));
      entry ~name:"disj/naive-tree" ~players:3 ~declared_cost:6
        ~spec:Hard_dist.disj_fn ~symmetry:Proto.Symmetry.Full
        ~note:"tree model of Disj_naive: coordinate-by-coordinate"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.sequential ~n:2 ~k:3));
      entry ~name:"disj/batched-tree" ~players:3 ~declared_cost:6
        ~spec:Hard_dist.disj_fn ~symmetry:Proto.Symmetry.Full
        ~note:"tree model of Disj_batched: shrinking-alphabet batches"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.batched ~n:2 ~k:3));
      entry ~name:"or/pointwise-tree" ~players:3 ~declared_cost:6
        ~spec:(fun xs ->
          Array.fold_left (fun acc x -> acc lor pack_vector x) 0 xs)
        ~symmetry:Proto.Symmetry.Full
        ~note:"pointwise-OR broadcast tree (output-entropy floor witness)"
        ~domain:(vector_domain 2)
        (lazy (Disj_trees.pointwise_or_broadcast ~n:2 ~k:3));
    ]

(* ------------------------------------------------------------------ *)
(* Trace run mode: execute an entry's tree operationally on a          *)
(* blackboard, so registry protocols can be traced and metered by the  *)
(* observability subsystem exactly like the hand-written solvers.      *)
(* ------------------------------------------------------------------ *)

type run = {
  output : int;
  board : Blackboard.Board.t;
  input_indices : int array;
      (** per-player index into the entry's input domain *)
  msg_rounds : int;  (** Speak nodes traversed (coins excluded) *)
}

(** [run_on_board entry ~seed] draws one input per player uniformly
    from the entry's domain, then walks the tree: every [Speak] node's
    message is sampled from its emit law and written on the board
    fixed-width in [ceil(log2 arity)] bits — the Section-3 charging
    {!Proto.Tree.communication_cost} assumes — and every [Chance] coin
    is resolved with public randomness, free of charge. Board writes
    flow through {!Blackboard.Board.post}, so an installed trace sink
    sees one [Broadcast] event per message (plus the [Round_start] /
    [Round_end] brackets emitted here) and the summed event bits equal
    [Runtime.stats_of_board] of the returned board. *)
let run_on_board (Entry { name; players; domain; tree; _ }) ~seed =
  let rng = Prob.Rng.of_int_seed seed in
  let input_indices =
    Array.init players (fun _ -> Prob.Rng.int rng (Array.length domain))
  in
  let inputs = Array.map (fun i -> domain.(i)) input_indices in
  let board = Blackboard.Board.create ~k:players in
  let sample_int law =
    Prob.Sampler.draw (Prob.Sampler.create (Prob.Dist_exact.to_float_dist law)) rng
  in
  let traced = Obs.Trace.enabled () in
  let rounds = ref 0 in
  let rec walk node =
    match node with
    | Proto.Tree.Output v -> v
    | Proto.Tree.Speak { speaker; emit; children } ->
        let round = !rounds in
        incr rounds;
        if traced then Obs.Trace.emit (Obs.Event.Round_start { round });
        let msg = sample_int (emit inputs.(speaker)) in
        let arity = Array.length children in
        let w = Coding.Bitbuf.Writer.create () in
        Coding.Intcode.write_fixed w ~bound:arity msg;
        Blackboard.Board.post board ~player:speaker ~label:name w;
        if traced then
          Obs.Trace.emit
            (Obs.Event.Round_end
               { round; bits = Coding.Intcode.fixed_width arity });
        walk children.(msg)
    | Proto.Tree.Chance { coin; children } -> walk children.(sample_int coin)
  in
  let output = Obs.Trace.with_span ("registry/" ^ name) (fun () -> walk (Lazy.force tree)) in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "registry.runs" 1;
    Obs.Metrics.bump "registry.msg_rounds" !rounds
  end;
  { output; board; input_indices; msg_rounds = !rounds }

(* ------------------------------------------------------------------ *)
(* Compiled VM run mode: the same observable run as [run_on_board],    *)
(* but off the flat bytecode from [Proto.Compile] instead of the tree  *)
(* walker. Programs are compiled once per entry and cached; the cache  *)
(* key is the entry name, which [register] keeps unique.               *)
(* ------------------------------------------------------------------ *)

let compiled_cache : (string, Proto.Compile.t) Hashtbl.t = Hashtbl.create 16

let compiled (Entry { name; players; domain; tree; _ }) =
  match Hashtbl.find_opt compiled_cache name with
  | Some p -> p
  | None ->
      let p = Proto.Compile.compile ~players ~domain (Lazy.force tree) in
      Hashtbl.add compiled_cache name p;
      p

(** Byte-identical to {!run_on_board} on the same seed: the input draws
    are the same, and each visited node draws from a sampler built from
    the same float law ([Compile] interns laws up to exact-rational
    equality, and [Prob.Sampler.create] is a pure function of the float
    distribution), so the rng stream — and hence every message and the
    board — is consumed identically. *)
let run_on_board_compiled (Entry { name; players; domain; _ } as e) ~seed =
  let p = compiled e in
  let rng = Prob.Rng.of_int_seed seed in
  let input_indices =
    Array.init players (fun _ -> Prob.Rng.int rng (Array.length domain))
  in
  let board = Blackboard.Board.create ~k:players in
  let traced = Obs.Trace.enabled () in
  let rounds = ref 0 in
  let on_msg ~speaker ~arity ~width:_ ~msg =
    let round = !rounds in
    incr rounds;
    if traced then Obs.Trace.emit (Obs.Event.Round_start { round });
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Intcode.write_fixed w ~bound:arity msg;
    Blackboard.Board.post board ~player:speaker ~label:name w;
    if traced then
      Obs.Trace.emit
        (Obs.Event.Round_end { round; bits = Coding.Intcode.fixed_width arity })
  in
  let sample s = Prob.Sampler.draw s rng in
  let output =
    Obs.Trace.with_span ("registry.compiled/" ^ name) (fun () ->
        Proto.Compile.exec ~on_msg p ~sample ~input_indices)
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "registry.compiled_runs" 1;
    Obs.Metrics.bump "registry.msg_rounds" !rounds
  end;
  { output; board; input_indices; msg_rounds = !rounds }

type engine = Tree_walk | Compiled

let run ?(engine = Tree_walk) e ~seed =
  match engine with
  | Tree_walk -> run_on_board e ~seed
  | Compiled -> run_on_board_compiled e ~seed

(* ------------------------------------------------------------------ *)
(* Engine-hosted form: the entry's tree as a board-driven schedule and *)
(* speak/observe players, so registry protocols run under             *)
(* Blackboard.Engine.run — or any other driver with the same shape,   *)
(* such as the Netsim asynchronous board emulation — unchanged.       *)
(* ------------------------------------------------------------------ *)

type hosted = {
  k : int;
  schedule : Blackboard.Board.t -> int option;
  players : Blackboard.Engine.player array;
  input_indices : int array;
  output_of : Blackboard.Board.t -> int option;
}

let spec_output (Entry { domain; spec; _ }) ~input_indices =
  Option.map
    (fun f -> f (Array.map (fun i -> domain.(i)) input_indices))
    spec

(** [hosted entry ~seed] draws inputs exactly as {!run_on_board} does
    (the first [players] draws from [Rng.of_int_seed seed]), then turns
    the tree into engine players. The schedule carries no mutable
    state: it replays the board through the tree — consuming one write
    per [Speak] node via the same fixed-width code the speaker used,
    resolving every [Chance] coin from a fresh public stream drawn in
    walk order, hence identically on every replay — and reports the
    current node's speaker. Message sampling lives in the speakers'
    private streams and happens exactly once per scheduled write, so
    any driver that calls [speak] in schedule order (the sync engine,
    the async emulation, any fault-free delivery order) produces the
    same board, byte for byte. *)
let hosted (Entry { players = k; domain; tree; _ }) ~seed =
  let rng = Prob.Rng.of_int_seed seed in
  let input_indices =
    Array.init k (fun _ -> Prob.Rng.int rng (Array.length domain))
  in
  let inputs = Array.map (fun i -> domain.(i)) input_indices in
  let tree = Lazy.force tree in
  let replay board =
    let coins = Blackboard.Runtime.public_rng ~seed in
    let sample law =
      Prob.Sampler.draw
        (Prob.Sampler.create (Prob.Dist_exact.to_float_dist law))
        coins
    in
    let rec go node writes =
      match (node, writes) with
      | Proto.Tree.Chance { coin; children }, _ ->
          go children.(sample coin) writes
      | Proto.Tree.Output _, _ | Proto.Tree.Speak _, [] -> node
      | Proto.Tree.Speak { children; _ }, w :: rest ->
          let msg =
            Coding.Intcode.read_fixed
              (Blackboard.Board.reader_of_write w)
              ~bound:(Array.length children)
          in
          go children.(msg) rest
    in
    go tree (Blackboard.Board.writes board)
  in
  let schedule board =
    match replay board with
    | Proto.Tree.Speak { speaker; _ } -> Some speaker
    | Proto.Tree.Output _ -> None
    | Proto.Tree.Chance _ -> assert false (* replay resolves coins *)
  in
  let priv = Blackboard.Runtime.private_rngs ~seed ~k in
  let speak p board =
    match replay board with
    | Proto.Tree.Speak { speaker; emit; children } when speaker = p ->
        let msg =
          Prob.Sampler.draw
            (Prob.Sampler.create
               (Prob.Dist_exact.to_float_dist (emit inputs.(p))))
            priv.(p)
        in
        let w = Coding.Bitbuf.Writer.create () in
        Coding.Intcode.write_fixed w ~bound:(Array.length children) msg;
        w
    | _ -> invalid_arg "Registry.hosted: speak called out of turn"
  in
  let players =
    Array.init k (fun p ->
        { Blackboard.Engine.speak = speak p; observe = (fun _ -> ()) })
  in
  let output_of board =
    match replay board with
    | Proto.Tree.Output v -> Some v
    | _ -> None
  in
  { k; schedule; players; input_indices; output_of }

let registered : entry list ref = ref []

let register e =
  let n = name e in
  if
    List.exists (fun e' -> name e' = n) (Lazy.force builtins)
    || List.exists (fun e' -> name e' = n) !registered
  then invalid_arg ("Registry.register: duplicate name " ^ n);
  registered := e :: !registered

let all () = Lazy.force builtins @ List.rev !registered
let names () = List.map name (all ())
let find n = List.find_opt (fun e -> name e = n) (all ())
