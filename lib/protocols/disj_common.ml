(** Shared types, reference semantics and instance generators for the
    multi-party set-disjointness protocols.

    An instance is [k] sets over the universe [\[0, n)], represented as
    [bool array array]: [sets.(i).(j)] is true iff [j] is in player
    [i]'s set ([X_i^j = 1] in the paper's coordinate notation). *)

type instance = { n : int; sets : bool array array }

let k_of inst = Array.length inst.sets

let make ~n sets =
  Array.iter
    (fun s ->
      if Array.length s <> n then invalid_arg "Disj_common.make: bad width")
    sets;
  { n; sets }

(** Ground truth: true iff the intersection of all sets is empty. *)
let disjoint inst =
  let k = k_of inst in
  let rec coord j =
    if j = inst.n then true
    else
      let rec all_in i = i = k || (inst.sets.(i).(j) && all_in (i + 1)) in
      if all_in 0 then false else coord (j + 1)
  in
  coord 0

(** The elements of the intersection (empty iff disjoint). *)
let intersection inst =
  let k = k_of inst in
  let acc = ref [] in
  for j = inst.n - 1 downto 0 do
    let rec all_in i = i = k || (inst.sets.(i).(j) && all_in (i + 1)) in
    if all_in 0 then acc := j :: !acc
  done;
  !acc

(** Result of an operational protocol run. *)
type result = {
  answer : bool;  (** protocol's claim: disjoint? *)
  bits : int;  (** total bits written on the board *)
  messages : int;
  cycles : int;  (** protocol-defined cycles (0 if not meaningful) *)
}

(** {1 Instance generators} *)

(** Independent dense instance: each membership bit is 1 with
    probability [density]. With high density the instance is very likely
    non-disjoint; with density [1/2] and [k >= log n] it is likely
    disjoint. *)
let random_dense rng ~n ~k ~density =
  {
    n;
    sets =
      Array.init k (fun _ ->
          Array.init n (fun _ -> Prob.Rng.bernoulli rng density));
  }

(** A guaranteed-disjoint instance that is as hard as possible for the
    "find a zero" task: every coordinate has exactly one zero, placed
    with a random owner, so each player holds roughly [n/k] zeros. This
    mirrors the hard distribution's two-zero slice at scale. *)
let random_disjoint_single_zero rng ~n ~k =
  let sets = Array.init k (fun _ -> Array.make n true) in
  for j = 0 to n - 1 do
    sets.(Prob.Rng.int rng k).(j) <- false
  done;
  { n; sets }

(** Like {!random_disjoint_single_zero} but each coordinate gets
    [zeros_per_coord] distinct zero-owners: more slack for the batched
    protocol to exploit. *)
let random_disjoint_multi rng ~n ~k ~zeros_per_coord =
  let zeros_per_coord = min zeros_per_coord k in
  let sets = Array.init k (fun _ -> Array.make n true) in
  let players = Array.init k (fun i -> i) in
  for j = 0 to n - 1 do
    Prob.Rng.shuffle rng players;
    for t = 0 to zeros_per_coord - 1 do
      sets.(players.(t)).(j) <- false
    done
  done;
  { n; sets }

(** Non-disjoint instance: like the single-zero instance, but
    [witnesses] coordinates are left with no zero at all (they form the
    intersection). *)
let random_intersecting rng ~n ~k ~witnesses =
  let inst = random_disjoint_single_zero rng ~n ~k in
  let picked = Array.init n (fun j -> j) in
  Prob.Rng.shuffle rng picked;
  for t = 0 to min witnesses n - 1 do
    let j = picked.(t) in
    for i = 0 to k - 1 do
      inst.sets.(i).(j) <- true
    done
  done;
  inst

(** Adversarial for pass-counting: all players hold the full universe
    except player [k-1], who holds nothing. Non-disjoint only if
    [k = 1]. *)
let last_player_empty ~n ~k =
  {
    n;
    sets = Array.init k (fun i -> Array.make n (i <> k - 1));
  }

(** All players hold everything: maximally non-disjoint. *)
let all_full ~n ~k = { n; sets = Array.init k (fun _ -> Array.make n true) }

(** All players hold nothing. *)
let all_empty ~n ~k = { n; sets = Array.init k (fun _ -> Array.make n false) }

(** Exhaustive enumeration of all instances for tiny [n, k] — used by
    correctness tests to compare every protocol against {!disjoint}. *)
let enumerate ~n ~k =
  let total = 1 lsl (n * k) in
  List.init total (fun code ->
      {
        n;
        sets =
          Array.init k (fun i ->
              Array.init n (fun j -> (code lsr ((i * n) + j)) land 1 = 1));
      })

(** Convert to the [int array array] coordinate-vector shape used by the
    exact protocol trees ([1] = member). *)
let to_bit_vectors inst =
  Array.map (Array.map (fun b -> if b then 1 else 0)) inst.sets

(** {1 Word-sliced coordinate planes}

    The operational solvers spend their scans asking, for every
    coordinate, "is this a zero of player [j] not yet covered?". Packing
    each player's zero set into 62-bit machine words (and the covered
    set likewise) turns those [O(n)] boolean scans into [O(n/62)] word
    AND-NOTs — the encodings on the board are unchanged, only the local
    computation is word-parallel. 62 bits leaves the native int's top
    bit clear, so every plane word is non-negative. *)

let plane_bits = 62

(* 16-bit-slice popcount table: four lookups per plane word. *)
let popcount_tab =
  let t = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount x =
  Char.code (Bytes.unsafe_get popcount_tab (x land 0xffff))
  + Char.code (Bytes.unsafe_get popcount_tab ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get popcount_tab ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get popcount_tab (x lsr 48))

let ntz_word x = popcount ((x land -x) - 1)

let plane_words n = (n + plane_bits - 1) / plane_bits

(** [zero_planes inst] packs each player's {e zero} coordinates: bit
    [c mod 62] of word [c / 62] of plane [j] is set iff
    [not inst.sets.(j).(c)]. *)
let zero_planes inst =
  let nw = plane_words inst.n in
  Array.map
    (fun row ->
      let p = Array.make nw 0 in
      Array.iteri
        (fun c m ->
          if not m then
            p.(c / plane_bits) <-
              p.(c / plane_bits) lor (1 lsl (c mod plane_bits)))
        row;
      p)
    inst.sets
