(** The hard input distributions of the paper.

    Section 4.1: the distribution [mu] for one-bit [AND_k] — pick a
    uniformly random special player [Z], force [X_Z = 0], and give every
    other player an independent zero with probability [1/k]. Conditioned
    on [Z] the inputs are independent, and every support point has
    [AND = 0] — exactly conditions (1) and (2) of Lemma 1 (verified by
    the test suite).

    Inputs are bit vectors ([int array] of 0/1 entries); the auxiliary
    variable is the special player's index. All laws are exact. *)

val mu_and_with_aux : k:int -> (int array * int) Prob.Dist_exact.t
(** The joint law of [(X, Z)]. @raise Invalid_argument if [k < 2]. *)

val mu_and_with_aux_p :
  k:int -> p_zero:Exact.Rational.t -> (int array * int) Prob.Dist_exact.t
(** {!mu_and_with_aux} with the non-special players' zero probability
    as a parameter — Section 4.1's design discussion made explorable
    (the paper's choice is [1/k]; [0] kills the residual entropy, large
    values make zeros unsurprising). The E1b ablation sweeps it.
    @raise Invalid_argument if [k < 2] or [p_zero] is out of range. *)

val mu_and : k:int -> int array Prob.Dist_exact.t
(** Marginal law of the inputs. *)

val slice : k:int -> c:int -> int array list
(** The set [X_c] of inputs with exactly [c] zeros. *)

val mu_on_slice : k:int -> c:int -> int array Prob.Dist_exact.t
(** Uniform law on [X_c] — under [mu], conditioned on the zero count,
    all [c]-zero inputs are equally likely (the symmetry the proof
    uses); [pi_2] and [pi_3] are transcript laws under these. *)

val slice_mass : k:int -> c:int -> Exact.Rational.t
(** [Pr_mu[X in X_c]], exactly. *)

(** {2 Orbit-collapsed forms}

    The same Section 4.1 laws in the collapsed representation the orbit
    engine ({!Proto.Orbit}) consumes: [mu] is fully exchangeable, so the
    marginal is [k] Hamming-weight classes instead of [2^k] atoms, and
    each conditional slice [X | Z = z] is a product law exchangeable
    over the non-special block. The test suite holds their
    {!Prob.Symdist.to_dist} expansions equal to the explicit laws. *)

val mu_and_orbit : k:int -> int Prob.Symdist.t
(** Collapsed {!mu_and}. @raise Invalid_argument if [k < 2]. *)

val mu_and_orbit_p : k:int -> p_zero:Exact.Rational.t -> int Prob.Symdist.t
(** Collapsed marginal of {!mu_and_with_aux_p}: an input with [c >= 1]
    zeros has mass [(c/k) p_zero^(c-1) (1-p_zero)^(k-c)]. *)

val mu_and_aux_slices :
  k:int -> (Exact.Rational.t * int Prob.Symdist.t) list
(** Conditional slices of {!mu_and_with_aux}: one
    [(P(Z = z), law of X | Z = z)] per special player — the shape
    {!Proto.Orbit.conditional_ic} consumes. *)

val mu_and_aux_slices_p :
  k:int ->
  p_zero:Exact.Rational.t ->
  (Exact.Rational.t * int Prob.Symdist.t) list

val mu_lemma6 : k:int -> eps':Exact.Rational.t -> int array Prob.Dist_exact.t
(** The Lemma-6 distribution: all-ones w.p. [eps'], else one uniformly
    random player gets 0. *)

val mu_disj_with_aux :
  n:int -> k:int -> (int array array * int array) Prob.Dist_exact.t
(** [mu^n] with its auxiliary vector: per-player coordinate vectors
    ([x.(i)] is player [i]'s [n]-bit input) and [Z = (Z_1..Z_n)]. *)

val mu_disj : n:int -> k:int -> int array array Prob.Dist_exact.t

val and_fn : int array -> int
(** [AND_k] as a reference function. *)

val disj_fn : int array array -> int
(** [DISJ_{n,k}] on per-player coordinate vectors: 1 iff disjoint. *)
