(** Exact protocol trees for [DISJ_{n,k}] at small scale — used by the
    direct-sum experiments (Lemma 1) and exact information
    measurements. Per-player inputs are coordinate vectors (length-[n]
    0/1 [int array]s). Subtrees are shared, so construction is cheap
    even though the unfolded tree is exponential. *)

val sequential : n:int -> k:int -> int array Proto.Tree.t
(** Coordinate-by-coordinate: players write their bit at coordinate [j]
    until a zero certifies it (move on) or all [k] ones reveal an
    intersection (output 0). Outputs 1 (disjoint) after all coordinates
    are certified. Information cost per coordinate is the
    sequential-AND [O(log k)]. *)

val pointwise_or_broadcast : n:int -> k:int -> int array Proto.Tree.t
(** Pointwise-OR as an exact tree (players announce their vectors; the
    output is the OR vector packed big-endian into an int). Witness for
    the output-entropy floor [IC >= H(Y)]. Tiny [n, k] only.
    @raise Invalid_argument for [n > 20]. *)

val batched : n:int -> k:int -> int array Proto.Tree.t
(** The Section-5 batching idea as an exact tree: players speak once
    each, announcing as one symbol the subset of still-uncertified
    coordinates where they hold 0; the alphabet shrinks as coordinates
    are certified, and the protocol halts early once all are. The
    tree-model counterpart of the operational {!Disj_batched}; a
    varying-arity workout for the proto-lint analyzer. Tiny [n] only.
    @raise Invalid_argument for [n > 10]. *)

val broadcast_all : n:int -> k:int -> int array Proto.Tree.t
(** Every player writes its whole vector as one arity-[2^n] symbol; the
    leaf computes disjointness. Maximally leaky; tiny [n] only.
    @raise Invalid_argument for [n > 20]. *)
