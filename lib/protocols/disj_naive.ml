(** The naive disjointness protocol from the introduction:
    [O(n log n + k)] bits.

    Players go in order; each writes the coordinates where its input is
    zero and which are not already on the board, one coordinate at a
    time at [ceil(log2 n)] bits each (prefixed by a count so the message
    is self-delimiting). A player with nothing new writes a single bit.
    After all players have spoken, any coordinate missing from the board
    is in the intersection. *)

let solve inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let board = Blackboard.Board.create ~k in
  (* Word-sliced two-pass scan (count, then encode): the per-player
     "zero and not yet covered" test is a plane AND-NOT, enumerated in
     ascending coordinate order so the encoded stream is identical to
     the per-coordinate loop it replaces. *)
  let zw = zero_planes inst in
  let nw = plane_words n in
  let cw = Array.make nw 0 in
  let covered_count = ref 0 in
  for j = 0 to k - 1 do
    let zj = zw.(j) in
    let zeros = ref 0 in
    for w = 0 to nw - 1 do
      zeros := !zeros + popcount (zj.(w) land lnot cw.(w))
    done;
    let w = Coding.Bitbuf.Writer.create () in
    (if !zeros = 0 then Coding.Bitbuf.Writer.add_bit w false
     else begin
       Coding.Bitbuf.Writer.add_bit w true;
       Coding.Intcode.write_gamma w !zeros;
       for wi = 0 to nw - 1 do
         let base = wi * plane_bits in
         let live = ref (zj.(wi) land lnot cw.(wi)) in
         while !live <> 0 do
           Coding.Intcode.write_fixed w ~bound:n (base + ntz_word !live);
           live := !live land (!live - 1)
         done
       done
     end);
    Blackboard.Board.post board ~player:j ~label:"zeros" w;
    (* everyone decodes the write to update the shared covered set *)
    match Blackboard.Board.last_write board with
    | None -> assert false
    | Some wr ->
        let r = Blackboard.Board.reader_of_write wr in
        if Coding.Bitbuf.Reader.read_bit r then begin
          let count = Coding.Intcode.read_gamma r in
          for _ = 1 to count do
            let c = Coding.Intcode.read_fixed r ~bound:n in
            let cword = c / plane_bits and cbit = 1 lsl (c mod plane_bits) in
            if cw.(cword) land cbit = 0 then begin
              cw.(cword) <- cw.(cword) lor cbit;
              incr covered_count
            end
          done
        end
  done;
  {
    answer = !covered_count = n;
    bits = Blackboard.Board.total_bits board;
    messages = Blackboard.Board.write_count board;
    cycles = 1;
  }

let cost_model ~n ~k =
  (float_of_int n *. Float.log2 (float_of_int (max 2 n))) +. float_of_int k
