(** The naive disjointness protocol from the introduction:
    [O(n log n + k)] bits.

    Players go in order; each writes the coordinates where its input is
    zero and which are not already on the board, one coordinate at a
    time at [ceil(log2 n)] bits each (prefixed by a count so the message
    is self-delimiting). A player with nothing new writes a single bit.
    After all players have spoken, any coordinate missing from the board
    is in the intersection. *)

let solve inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let board = Blackboard.Board.create ~k in
  let covered = Array.make n false in
  let covered_count = ref 0 in
  for j = 0 to k - 1 do
    (* Direct two-pass array scan (count, then encode): no intermediate
       coordinate list, zero allocation per player. *)
    let set = inst.sets.(j) in
    let zeros = ref 0 in
    for c = 0 to n - 1 do
      if (not set.(c)) && not covered.(c) then incr zeros
    done;
    let w = Coding.Bitbuf.Writer.create () in
    (if !zeros = 0 then Coding.Bitbuf.Writer.add_bit w false
     else begin
       Coding.Bitbuf.Writer.add_bit w true;
       Coding.Intcode.write_gamma w !zeros;
       for c = 0 to n - 1 do
         if (not set.(c)) && not covered.(c) then
           Coding.Intcode.write_fixed w ~bound:n c
       done
     end);
    Blackboard.Board.post board ~player:j ~label:"zeros" w;
    (* everyone decodes the write to update the shared covered set *)
    match Blackboard.Board.last_write board with
    | None -> assert false
    | Some wr ->
        let r = Blackboard.Board.reader_of_write wr in
        if Coding.Bitbuf.Reader.read_bit r then begin
          let count = Coding.Intcode.read_gamma r in
          for _ = 1 to count do
            let c = Coding.Intcode.read_fixed r ~bound:n in
            if not covered.(c) then begin
              covered.(c) <- true;
              incr covered_count
            end
          done
        end
  done;
  {
    answer = !covered_count = n;
    bits = Blackboard.Board.total_bits board;
    messages = Blackboard.Board.write_count board;
    cycles = 1;
  }

let cost_model ~n ~k =
  (float_of_int n *. Float.log2 (float_of_int (max 2 n))) +. float_of_int k
