(** Exact protocol trees for [DISJ_{n,k}] at small scale.

    Used by the direct-sum experiments (Lemma 1) and the conditional
    information cost measurements, where exact enumeration over the
    whole input space is required. Per-player inputs are coordinate
    vectors ([int array] of length [n] with 0/1 entries).

    Subtrees are built bottom-up and shared, so construction is
    [O(n k)] even though the unfolded tree is exponential; semantics
    walks only realized paths. *)

module T = Proto.Tree

(** Coordinate-sequential protocol: for each coordinate [j] in order,
    players [0, 1, ...] write their bit at [j] until someone writes 0
    (coordinate certified, move on) or all [k] write 1 (intersection
    found, output 0 = non-disjoint). Outputs 1 (disjoint) after all
    coordinates are certified. Communication [O(nk)] worst case, but
    information cost per coordinate is the sequential-AND [O(log k)]. *)
let sequential ~n ~k =
  if n < 0 || k < 1 then invalid_arg "Disj_trees.sequential";
  let coords = Array.make (n + 1) (T.output 1) in
  for j = n - 1 downto 0 do
    let next = coords.(j + 1) in
    let rec player i =
      if i = k then T.output 0
      else
        T.speak_det ~speaker:i
          ~f:(fun x -> x.(j))
          [| next; player (i + 1) |]
    in
    coords.(j) <- player 0
  done;
  coords.(0)

(** Pointwise-OR as an exact tree: every player announces its whole
    vector; the leaf outputs the OR vector packed as an integer. Since
    every player must learn the OR vector, any exact protocol satisfies
    [IC >= I(T ; X) >= H(Y)] — the output-entropy floor the tests check
    against this witness. Only for tiny [n, k]. *)
let pointwise_or_broadcast ~n ~k =
  if n > 20 then invalid_arg "Disj_trees.pointwise_or_broadcast: n too large";
  let arity = 1 lsl n in
  let encode x =
    Array.to_list x |> List.fold_left (fun acc b -> (2 * acc) + b) 0
  in
  let rec build i acc_or =
    if i = k then T.output acc_or
    else
      T.speak_det ~speaker:i ~f:encode
        (Array.init arity (fun code -> build (i + 1) (acc_or lor code)))
  in
  build 0 0

(** Batched certification tree — the Section-5 batching idea at exact
    scale. A coordinate is {e certified} non-intersecting as soon as
    some player reveals a 0 there. Players speak once each in order;
    player [i] announces, as a single symbol, the subset of the
    still-uncertified ("live") coordinates where it holds 0 (arity
    [2^|live|], so the alphabet shrinks as coordinates are certified).
    If the live set empties the protocol halts early with 1 (disjoint);
    coordinates still live after all [k] players are exactly the
    intersection, so the final leaf outputs 0. Subtrees are memoized on
    [(player, live set)]. Only for tiny [n]. *)
let batched ~n ~k =
  if n > 10 then invalid_arg "Disj_trees.batched: n too large";
  if n < 0 || k < 1 then invalid_arg "Disj_trees.batched";
  let memo = Hashtbl.create 64 in
  let rec turn i live =
    match Hashtbl.find_opt memo (i, live) with
    | Some t -> t
    | None ->
        let t =
          if live = [] then T.output 1
          else if i = k then T.output 0
          else begin
            let r = List.length live in
            (* positional bitmask over [live] of the speaker's zeros *)
            let f x =
              snd
                (List.fold_left
                   (fun (p, m) j ->
                     (p + 1, if x.(j) = 0 then m lor (1 lsl p) else m))
                   (0, 0) live)
            in
            let remove mask =
              List.filteri (fun p _ -> mask land (1 lsl p) = 0) live
            in
            T.speak_det ~speaker:i ~f
              (Array.init (1 lsl r) (fun mask -> turn (i + 1) (remove mask)))
          end
        in
        Hashtbl.add memo (i, live) t;
        t
  in
  turn 0 (List.init n (fun j -> j))

(** Broadcast-everything tree: every player writes its whole vector (as
    one symbol of arity [2^n]); the leaf computes disjointness. The
    maximally-leaky baseline, [IC = H(X)]. Only for tiny [n]. *)
let broadcast_all ~n ~k =
  if n > 20 then invalid_arg "Disj_trees.broadcast_all: n too large";
  let arity = 1 lsl n in
  let encode x =
    Array.to_list x |> List.fold_left (fun acc b -> (2 * acc) + b) 0
  in
  let decode code = Array.init n (fun j -> (code lsr (n - 1 - j)) land 1) in
  let rec build i acc_vectors =
    if i = k then begin
      let sets =
        Array.of_list (List.rev_map decode acc_vectors)
      in
      T.output (Hard_dist.disj_fn sets)
    end
    else
      T.speak_det ~speaker:i ~f:encode
        (Array.init arity (fun code -> build (i + 1) (code :: acc_vectors)))
  in
  build 0 []
