(** The trivial disjointness protocol: every player writes its full
    characteristic vector ([n] bits each, [nk] total) and everyone
    evaluates the intersection locally. The "no cleverness" baseline. *)

let solve inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let board = Blackboard.Board.create ~k in
  for j = 0 to k - 1 do
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bools w inst.sets.(j);
    Blackboard.Board.post board ~player:j ~label:"charvec" w
  done;
  (* Decode all vectors from the board and intersect, a 56-bit word at
     a time: the posted vectors are already the packed characteristic
     vectors, so the intersection is a word-AND across players. *)
  let decoded =
    List.map (fun wr -> wr.Blackboard.Board.vec) (Blackboard.Board.writes board)
  in
  let intersect = ref false in
  let nwords = (n + Coding.Bitvec.word_bits - 1) / Coding.Bitvec.word_bits in
  for w = 0 to nwords - 1 do
    let inter =
      List.fold_left
        (fun acc v -> acc land Coding.Bitvec.word_at v w)
        (-1) decoded
    in
    if inter <> 0 then intersect := true
  done;
  {
    answer = not !intersect;
    bits = Blackboard.Board.total_bits board;
    messages = Blackboard.Board.write_count board;
    cycles = 1;
  }

let cost_model ~n ~k = float_of_int (n * k)
