(** The trivial disjointness protocol: every player writes its full
    characteristic vector ([n] bits each, [nk] total) and everyone
    evaluates the intersection locally. The "no cleverness" baseline. *)

let solve inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let board = Blackboard.Board.create ~k in
  for j = 0 to k - 1 do
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bools w inst.sets.(j);
    Blackboard.Board.post board ~player:j ~label:"charvec" w
  done;
  (* Decode all vectors from the board and intersect. *)
  let decoded =
    List.map
      (fun wr ->
        let r = Blackboard.Board.reader_of_write wr in
        Array.init n (fun _ -> Coding.Bitbuf.Reader.read_bit r))
      (Blackboard.Board.writes board)
  in
  let intersect = ref false in
  for j = 0 to n - 1 do
    if List.for_all (fun v -> v.(j)) decoded then intersect := true
  done;
  {
    answer = not !intersect;
    bits = Blackboard.Board.total_bits board;
    messages = Blackboard.Board.write_count board;
    cycles = 1;
  }

let cost_model ~n ~k = float_of_int (n * k)
