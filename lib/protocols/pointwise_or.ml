(** Pointwise-OR in the broadcast model.

    The paper's related-work discussion (Phillips-Verbin-Zhang
    symmetrization) proves an [Omega(n log k)] lower bound for
    pointwise-OR: every player must end up knowing the whole vector
    [Y^j = OR_i X_i^j]. This module gives the matching-shape upper
    bound with the same batching idea as the Section-5 disjointness
    protocol: coordinates whose OR is 1 are announced in batches encoded
    as subsets of the still-unannounced set, paying [~log(ek)] bits per
    1-coordinate instead of the naive [log n].

    Protocol: cycles over players; a player with new 1-coordinates (set
    bits not yet on the board) writes up to [ceil(z/k)] of them as a
    size-prefixed subset of the uncovered set [Z]; a player with none
    writes a pass bit. A cycle in which everybody passes means no new
    ones exist anywhere, so the uncovered coordinates all have OR 0 and
    the board determines [Y]. Once [z < k^2], a final cycle writes
    everything naively. *)

type result = {
  output : bool array;  (** the OR vector [Y] *)
  bits : int;
  messages : int;
  cycles : int;
}

(** Ground truth. *)
let reference (inst : Disj_common.instance) =
  Array.init inst.Disj_common.n (fun j ->
      Array.exists (fun s -> s.(j)) inst.Disj_common.sets)

let solve (inst : Disj_common.instance) =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let board = Blackboard.Board.create ~k in
  let covered = Array.make n false in
  let cycles = ref 0 in
  let uncovered () =
    let rec go j acc =
      if j < 0 then acc else go (j - 1) (if covered.(j) then acc else j :: acc)
    in
    Array.of_list (go (n - 1) [])
  in
  let new_one_positions z_list j =
    let acc = ref [] in
    Array.iteri
      (fun pos c ->
        if inst.sets.(j).(c) && not covered.(c) then acc := pos :: !acc)
      z_list;
    List.rev !acc
  in
  let decode_and_mark ~z_list =
    match Blackboard.Board.last_write board with
    | None -> assert false
    | Some wr ->
        let r = Blackboard.Board.reader_of_write wr in
        if Coding.Bitbuf.Reader.read_bit r then begin
          let z = Array.length z_list in
          let s = Coding.Intcode.read_gamma0 r in
          let positions = Coding.Subset_codec.read r ~z ~m:s in
          List.iter (fun p -> covered.(z_list.(p)) <- true) positions
        end
  in
  let high_cycle z_list =
    incr cycles;
    let z = Array.length z_list in
    let m = (z + k - 1) / k in
    let wrote = ref 0 in
    for j = 0 to k - 1 do
      let ones = new_one_positions z_list j in
      let w = Coding.Bitbuf.Writer.create () in
      (match ones with
      | [] -> Coding.Bitbuf.Writer.add_bit w false
      | _ ->
          let batch = List.filteri (fun idx _ -> idx < m) ones in
          Coding.Bitbuf.Writer.add_bit w true;
          Coding.Intcode.write_gamma0 w (List.length batch);
          Coding.Subset_codec.write w ~z batch;
          incr wrote);
      Blackboard.Board.post board ~player:j
        ~label:(if ones = [] then "pass" else "ones")
        w;
      decode_and_mark ~z_list
    done;
    !wrote
  in
  let low_cycle z_list =
    incr cycles;
    let z = Array.length z_list in
    for j = 0 to k - 1 do
      let ones = new_one_positions z_list j in
      let w = Coding.Bitbuf.Writer.create () in
      Coding.Intcode.write_gamma0 w (List.length ones);
      List.iter (fun p -> Coding.Intcode.write_fixed w ~bound:z p) ones;
      Blackboard.Board.post board ~player:j ~label:"final" w;
      match Blackboard.Board.last_write board with
      | None -> assert false
      | Some wr ->
          let r = Blackboard.Board.reader_of_write wr in
          let count = Coding.Intcode.read_gamma0 r in
          for _ = 1 to count do
            let p = Coding.Intcode.read_fixed r ~bound:z in
            covered.(z_list.(p)) <- true
          done
    done
  in
  let rec loop () =
    let z_list = uncovered () in
    let z = Array.length z_list in
    if z = 0 then ()
    else if z < k * k || z < k then low_cycle z_list
    else begin
      let wrote = high_cycle z_list in
      if wrote > 0 then loop ()
      (* full pass cycle: nobody holds a new 1, so every uncovered
         coordinate has OR 0 — done *)
    end
  in
  loop ();
  {
    output = Array.copy covered;
    bits = Blackboard.Board.total_bits board;
    messages = Blackboard.Board.write_count board;
    cycles = !cycles;
  }

(** Trivial baseline: everyone broadcasts its characteristic vector. *)
let solve_trivial (inst : Disj_common.instance) =
  let open Disj_common in
  let k = k_of inst in
  let board = Blackboard.Board.create ~k in
  for j = 0 to k - 1 do
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bools w inst.sets.(j);
    Blackboard.Board.post board ~player:j w
  done;
  {
    output = reference inst;
    bits = Blackboard.Board.total_bits board;
    messages = k;
    cycles = 1;
  }

(** Cost shape for the table: [t log2 k + k] where [t] is the number of
    1-coordinates in the output (only those must be announced). *)
let cost_model ~ones ~k =
  (float_of_int ones *. Float.log2 (float_of_int (max 2 k))) +. float_of_int k
