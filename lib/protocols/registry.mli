(** Registry of shipped protocols, for linting and tooling.

    Every protocol tree the library ships self-registers here at a
    small, exactly-analyzable parameter point; the [lint] subcommand of
    [broadcast_cli] and the tier-1 registry sweep both iterate
    {!all}. The operational disjointness solvers are represented by
    their exact tree models from {!Disj_trees}. Downstream protocols
    join the sweep via {!register}. *)

type entry =
  | Entry : {
      name : string;
      players : int;
      domain : 'a array;  (** possible per-player inputs *)
      tree : 'a Proto.Tree.t Lazy.t;
      declared_cost : int option;
          (** documented worst-case bits, cross-checked by proto-lint *)
      spec : ('a array -> int) option;
          (** reference function on input profiles; deterministic
              entries that declare one are zero-error certified against
              it by proto-verify ({!Verify_registry}) *)
      symmetry : Proto.Symmetry.t;
          (** declared player-permutation invariance of the {e output
              law} (not the transcript); licenses the orbit engine and
              is soundness-checked by {!symmetry_witness} in the test
              sweep. Defaults to trivial. *)
      note : string;
    }
      -> entry

val entry :
  name:string ->
  players:int ->
  ?declared_cost:int ->
  ?spec:('a array -> int) ->
  ?symmetry:Proto.Symmetry.t ->
  ?note:string ->
  domain:'a array ->
  'a Proto.Tree.t Lazy.t ->
  entry

val name : entry -> string
val players : entry -> int
val note : entry -> string
val declared_cost : entry -> int option
val has_spec : entry -> bool

val symmetry : entry -> Proto.Symmetry.t
(** The declared output-law invariance group (default
    {!Proto.Symmetry.Trivial}). *)

val symmetry_witness : entry -> (int array * int array) option
(** Soundness check of the declared symmetry: [None] when the entry's
    exact output law is invariant under the whole declared group;
    otherwise a concrete witness pair of input profiles (as per-player
    indices into the entry's domain) whose output laws differ.
    Exhaustive in the entry's domain. *)

type run = {
  output : int;
  board : Blackboard.Board.t;
  input_indices : int array;
      (** per-player index into the entry's input domain *)
  msg_rounds : int;  (** Speak nodes traversed (coins excluded) *)
}

val run_on_board : entry -> seed:int -> run
(** Trace run mode: draw uniform inputs from the entry's domain and
    execute the tree operationally on a blackboard — each message
    sampled from its emit law and charged fixed-width
    [ceil(log2 arity)] bits via {!Blackboard.Board.post}, coins
    resolved free. With a trace sink installed, the summed [Broadcast]
    event bits equal [Blackboard.Runtime.stats_of_board] of the
    returned board. *)

val compiled : entry -> Proto.Compile.t
(** The entry's tree flattened by {!Proto.Compile.compile}, memoized
    per entry name (names are unique, enforced by {!register}). *)

val run_on_board_compiled : entry -> seed:int -> run
(** Same observable run as {!run_on_board} — same input draws, same
    board bytes, same trace events — executed on the compiled bytecode
    instead of the tree walker. Laws are interned up to exact-rational
    equality and [Prob.Sampler.create] is a pure function of the float
    distribution, so the rng stream is consumed draw-for-draw
    identically; the CI bench-smoke gate and [test_compile] check the
    resulting boards with {!Blackboard.Board.equal}. *)

type engine = Tree_walk | Compiled

val run : ?engine:engine -> entry -> seed:int -> run
(** [run ~engine e ~seed] dispatches to {!run_on_board} or
    {!run_on_board_compiled}. Default [Tree_walk]. *)

type hosted = {
  k : int;
  schedule : Blackboard.Board.t -> int option;
      (** board-driven: replays the tree through the writes so far *)
  players : Blackboard.Engine.player array;
  input_indices : int array;
      (** the drawn per-player indices into the entry's domain — the
          same draws {!run_on_board} makes from the same seed *)
  output_of : Blackboard.Board.t -> int option;
      (** the tree's output once the board holds a complete transcript;
          [None] while the run is unfinished (e.g. a stalled async
          emulation) *)
}

val hosted : entry -> seed:int -> hosted
(** Engine-hosted form: the same protocol as a board-driven [schedule]
    plus [speak]/[observe] players, runnable unchanged under
    {!Blackboard.Engine.run} or the asynchronous [Netsim] board
    emulation. The schedule is stateless — it recomputes the current
    tree node by replaying the board — so it is safe to call it any
    number of times per write; all chance coins resolve from a public
    stream derived from [seed], all message sampling from per-player
    private streams, so a run is a pure function of [(entry, seed)]
    and two runtimes that call [speak] in the same order produce
    byte-identical boards.

    The players hold mutable private-randomness state: one hosted value
    drives {e one} run. For a differential comparison, build a fresh
    hosted (same entry, same seed) per runtime. *)

val spec_output : entry -> input_indices:int array -> int option
(** The entry's declared reference output on the input profile named by
    domain indices, when a spec is declared. *)

val register : entry -> unit
(** Add a protocol to the sweep.
    @raise Invalid_argument on a duplicate name. *)

val all : unit -> entry list
(** Built-in entries first, then registrations in order. *)

val names : unit -> string list
val find : string -> entry option
