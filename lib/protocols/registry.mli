(** Registry of shipped protocols, for linting and tooling.

    Every protocol tree the library ships self-registers here at a
    small, exactly-analyzable parameter point; the [lint] subcommand of
    [broadcast_cli] and the tier-1 registry sweep both iterate
    {!all}. The operational disjointness solvers are represented by
    their exact tree models from {!Disj_trees}. Downstream protocols
    join the sweep via {!register}. *)

type entry =
  | Entry : {
      name : string;
      players : int;
      domain : 'a array;  (** possible per-player inputs *)
      tree : 'a Proto.Tree.t Lazy.t;
      declared_cost : int option;
          (** documented worst-case bits, cross-checked by proto-lint *)
      spec : ('a array -> int) option;
          (** reference function on input profiles; deterministic
              entries that declare one are zero-error certified against
              it by proto-verify ({!Verify_registry}) *)
      note : string;
    }
      -> entry

val entry :
  name:string ->
  players:int ->
  ?declared_cost:int ->
  ?spec:('a array -> int) ->
  ?note:string ->
  domain:'a array ->
  'a Proto.Tree.t Lazy.t ->
  entry

val name : entry -> string
val players : entry -> int
val note : entry -> string
val declared_cost : entry -> int option
val has_spec : entry -> bool

type run = {
  output : int;
  board : Blackboard.Board.t;
  input_indices : int array;
      (** per-player index into the entry's input domain *)
  msg_rounds : int;  (** Speak nodes traversed (coins excluded) *)
}

val run_on_board : entry -> seed:int -> run
(** Trace run mode: draw uniform inputs from the entry's domain and
    execute the tree operationally on a blackboard — each message
    sampled from its emit law and charged fixed-width
    [ceil(log2 arity)] bits via {!Blackboard.Board.post}, coins
    resolved free. With a trace sink installed, the summed [Broadcast]
    event bits equal [Blackboard.Runtime.stats_of_board] of the
    returned board. *)

val register : entry -> unit
(** Add a protocol to the sweep.
    @raise Invalid_argument on a duplicate name. *)

val all : unit -> entry list
(** Built-in entries first, then registrations in order. *)

val names : unit -> string list
val find : string -> entry option
