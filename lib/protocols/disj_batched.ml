(** The Section-5 deterministic protocol for [DISJ_{n,k}]:
    [O(n log k + k)] bits, matching the paper's lower bound.

    The players try to certify disjointness by covering every coordinate
    with a zero written on the board. The protocol runs in cycles. While
    the number [z] of uncovered coordinates is at least [k^2], a player
    whose set misses at least [ceil(z/k)] uncovered coordinates writes a
    batch of exactly [ceil(z/k)] of them, encoded as a subset of the
    uncovered set via the combinatorial number system — [ceil(log2
    (choose z m))] bits, i.e. [log(ek)] amortized per coordinate. A
    player with fewer new zeros writes a single "pass" bit. If a whole
    cycle passes, the players can safely output "non-disjoint" (by
    pigeonhole a disjoint instance always has a player above threshold).
    Once [z < k^2], one final cycle writes all remaining new zeros
    naively at [O(log k)] bits each, and the verdict is read off the
    board.

    Every message is genuinely encoded to, and decoded from, the
    blackboard; the shared state (covered set, phase, batch size) is a
    function of the board history, so all players stay synchronized and
    the bit counts are real. *)

type encoding = Combinatorial | NaiveFixed

type trace_cycle = {
  cycle : int;
  z_start : int;  (** uncovered coordinates at cycle start *)
  bits_in_cycle : int;
  contributions : int;  (** players that wrote a batch this cycle *)
  phase_high : bool;
}

type run = {
  result : Disj_common.result;
  board : Blackboard.Board.t;
  trace : trace_cycle list;
}

let default_threshold k = k * k

(** [solve ?encoding ?threshold inst] runs the protocol.
    [threshold] overrides the phase-switch point (default [k^2]) for the
    ablation experiments; [encoding] selects the batch encoding. *)
let solve ?(encoding = Combinatorial) ?threshold inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let threshold = match threshold with Some t -> t | None -> default_threshold k in
  let board = Blackboard.Board.create ~k in
  (* Word-sliced shared state: player zero sets and the covered set live
     in 62-bit planes, so the per-player scans below are word AND-NOTs
     and popcounts instead of O(n) boolean loops. The board encodings
     (and hence every bit count) are untouched. *)
  let zw = zero_planes inst in
  let nw = plane_words n in
  let cw = Array.make nw 0 in
  let covered_count = ref 0 in
  let trace = ref [] in
  let mark c =
    let w = c / plane_bits and b = 1 lsl (c mod plane_bits) in
    if cw.(w) land b = 0 then begin
      cw.(w) <- cw.(w) lor b;
      incr covered_count
    end
  in
  (* Coordinate -> position in the cycle-start uncovered list. Refilled
     for exactly the live coordinates by [uncovered], and only ever read
     for coordinates still uncovered, so stale entries are harmless. *)
  let pos_of = Array.make n 0 in
  let uncovered () =
    let z_list = Array.make (n - !covered_count) 0 in
    let idx = ref 0 in
    for w = 0 to nw - 1 do
      let base = w * plane_bits in
      let valid =
        if n - base >= plane_bits then (1 lsl plane_bits) - 1
        else (1 lsl (n - base)) - 1
      in
      let live = ref (lnot cw.(w) land valid) in
      while !live <> 0 do
        let c = base + ntz_word !live in
        z_list.(!idx) <- c;
        pos_of.(c) <- !idx;
        incr idx;
        live := !live land (!live - 1)
      done
    done;
    z_list
  in
  (* Player j's live new zeros (zero of [j], not yet covered), counted
     and enumerated word-parallel. Enumeration yields positions within
     the cycle-start [z_list], ascending — any coordinate still
     uncovered mid-cycle was uncovered at cycle start, so [pos_of] is
     current for it. *)
  let live_count j =
    let zj = zw.(j) in
    let t = ref 0 in
    for w = 0 to nw - 1 do
      t := !t + popcount (zj.(w) land lnot cw.(w))
    done;
    !t
  in
  let live_first ~limit j =
    let zj = zw.(j) in
    let acc = ref [] in
    let taken = ref 0 in
    let w = ref 0 in
    while !w < nw && !taken < limit do
      let base = !w * plane_bits in
      let live = ref (zj.(!w) land lnot cw.(!w)) in
      while !live <> 0 && !taken < limit do
        let c = base + ntz_word !live in
        acc := pos_of.(c) :: !acc;
        incr taken;
        live := !live land (!live - 1)
      done;
      incr w
    done;
    List.rev !acc
  in
  let write_batch ~player ~z_list positions =
    let z = Array.length z_list in
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w true (* contribute flag *);
    (match encoding with
    | Combinatorial -> Coding.Subset_codec.write w ~z positions
    | NaiveFixed ->
        List.iter (fun p -> Coding.Intcode.write_fixed w ~bound:z p) positions);
    Blackboard.Board.post board ~player ~label:"batch" w
  in
  let write_pass ~player =
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w false;
    Blackboard.Board.post board ~player ~label:"pass" w
  in
  (* Other players decode the last write and update the covered set;
     returns the decoded coordinate list. *)
  let decode_last ~z_list ~m =
    match Blackboard.Board.last_write board with
    | None -> assert false
    | Some wr ->
        let r = Blackboard.Board.reader_of_write wr in
        if not (Coding.Bitbuf.Reader.read_bit r) then []
        else begin
          let z = Array.length z_list in
          let positions =
            match encoding with
            | Combinatorial -> Coding.Subset_codec.read r ~z ~m
            | NaiveFixed ->
                List.init m (fun _ -> Coding.Intcode.read_fixed r ~bound:z)
          in
          List.map (fun p -> z_list.(p)) positions
        end
  in
  let high_cycle cycle_idx z_list =
    let z = Array.length z_list in
    let m = (z + k - 1) / k in
    let bits_before = Blackboard.Board.total_bits board in
    let contributions = ref 0 in
    let player = ref 0 in
    while !player < k && !covered_count < n do
      let j = !player in
      if live_count j >= m then begin
        let batch = live_first ~limit:m j in
        write_batch ~player:j ~z_list batch;
        incr contributions;
        (* the other players decode the write off the board *)
        List.iter mark (decode_last ~z_list ~m)
      end
      else write_pass ~player:j;
      incr player
    done;
    trace :=
      {
        cycle = cycle_idx;
        z_start = z;
        bits_in_cycle = Blackboard.Board.total_bits board - bits_before;
        contributions = !contributions;
        phase_high = true;
      }
      :: !trace;
    !contributions
  in
  let low_cycle cycle_idx z_list =
    let z = Array.length z_list in
    let bits_before = Blackboard.Board.total_bits board in
    let contributions = ref 0 in
    for j = 0 to k - 1 do
      let zeros = live_first ~limit:max_int j in
      let w = Coding.Bitbuf.Writer.create () in
      Coding.Intcode.write_gamma0 w (List.length zeros);
      List.iter (fun p -> Coding.Intcode.write_fixed w ~bound:z p) zeros;
      Blackboard.Board.post board ~player:j ~label:"final" w;
      if zeros <> [] then incr contributions;
      (* decode back *)
      (match Blackboard.Board.last_write board with
      | None -> assert false
      | Some wr ->
          let r = Blackboard.Board.reader_of_write wr in
          let count = Coding.Intcode.read_gamma0 r in
          for _ = 1 to count do
            let p = Coding.Intcode.read_fixed r ~bound:z in
            mark z_list.(p)
          done)
    done;
    trace :=
      {
        cycle = cycle_idx;
        z_start = z;
        bits_in_cycle = Blackboard.Board.total_bits board - bits_before;
        contributions = !contributions;
        phase_high = false;
      }
      :: !trace
  in
  let rec loop cycle_idx =
    if !covered_count = n then true
    else begin
      let z_list = uncovered () in
      let z = Array.length z_list in
      if z < threshold || z < k then begin
        low_cycle cycle_idx z_list;
        !covered_count = n
      end
      else begin
        let contributions = high_cycle cycle_idx z_list in
        if !covered_count = n then true
        else if contributions = 0 then false (* full pass cycle *)
        else loop (cycle_idx + 1)
      end
    end
  in
  let answer = loop 0 in
  let trace = List.rev !trace in
  {
    result =
      {
        answer;
        bits = Blackboard.Board.total_bits board;
        messages = Blackboard.Board.write_count board;
        cycles = List.length trace;
      };
    board;
    trace;
  }

(** The paper's cost target for this protocol: [n log2 k + k], the shape
    the measured bit count is compared against in experiment E2. *)
let cost_model ~n ~k =
  (float_of_int n *. Float.log2 (float_of_int (max 2 k))) +. float_of_int k
