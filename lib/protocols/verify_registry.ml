(** Proto-verify differential mode: cross-check every registry entry's
    certified guarantees against its executed and declared measures.

    For each entry the verifier runs the abstract interpreter
    ({!Analysis.Absint}) — and, when the entry declares a reference
    [spec], the zero-error certifier ({!Analysis.Certify}) — and then
    checks three independent derivations of the same quantity against
    each other:

    - the certified [\[min, max\]] reachable bit-cost interval must
      contain the bits an actual seeded run charges on the blackboard
      ([Registry.run_on_board], which posts through the same
      fixed-width accounting);
    - the certified worst case must equal the structural
      [Tree.communication_cost] (strictly below it only when proven-dead
      branches carry the structural maximum — reported as advisory);
    - the certified worst case must equal the declared paper bound when
      the entry documents one (e.g. the batched [DISJ] tree's
      Theorem-2-shaped cost).

    Findings are ordinary {!Analysis.Report} diagnostics under the
    [verify-*] rule ids, so the severity and exit policy are shared
    with proto-lint; a {e baseline} file can suppress known-advisory
    findings (demoting them to [Info]) so they do not break CI. *)

module An = Analysis
module Rep = Analysis.Report
module J = Obs.Jsonw

let id_observed_bits = "verify-observed-bits"
let id_cost_interval = "verify-cost-interval"
let id_declared_bound = "verify-declared-bound"
let id_spec = "verify-spec"
let id_inconclusive = "verify-inconclusive"
let id_no_spec = "verify-no-spec"
let id_ic_interval = "verify-ic-interval"
let id_ic_inconclusive = "verify-ic-inconclusive"
let id_ic_unsound = "verify-ic-unsound"
let id_sched_waves = "verify-sched-waves"
let id_sched_divergence = "verify-sched-divergence"
let id_sched_race = "verify-sched-race"
let id_sched_inconclusive = "verify-sched-inconclusive"

let all_rule_ids =
  [
    id_observed_bits;
    id_cost_interval;
    id_declared_bound;
    id_spec;
    id_inconclusive;
    id_no_spec;
    id_ic_interval;
    id_ic_inconclusive;
    id_ic_unsound;
    id_sched_waves;
    id_sched_divergence;
    id_sched_race;
    id_sched_inconclusive;
  ]

type ic_engine =
  zero_error_spec:(int array -> int) option ->
  An.Infoflow.t ->
  (string * Exact.Rational.t) list

type sched_result = {
  depgraph : An.Depgraph.t;
  pipelined_identical : bool option;
      (** fault-free pipelined async board byte-equal to [Engine.run];
          [None] when no certificate exists (nothing to pipeline) *)
  race : string option;  (** the {!Netsim.Hbcheck} failure, if any *)
}

type result = {
  entry : Registry.entry;
  summary : An.Absint.t;
  outcome : An.Certify.outcome option;  (** [None] when no spec *)
  ic : An.Certify.ic_outcome option;  (** [None] unless [~ic:true] *)
  sched : sched_result option;  (** [None] unless [~sched:true] *)
  checked_profiles : int;
  static_cc : int;
  observed_bits : int;
  seed : int;
  report : Rep.t;
  suppressed : int;  (** diagnostics demoted to [Info] by the baseline *)
}

let outcome_label = function
  | None -> "no-spec"
  | Some o -> An.Certify.outcome_label o

(* ------------------------------------------------------------------ *)
(* Baseline suppression                                                *)
(* ------------------------------------------------------------------ *)

let baseline_schema = "broadcast-ic/verify-baseline/v1"

type baseline = { suppress : (string * string) list }
    (* (protocol, rule) pairs; "*" is a wildcard on either side *)

let empty_baseline = { suppress = [] }

let baseline_of_json json =
  match J.member "schema" json with
  | Some (J.String s) when s = baseline_schema -> (
      match J.member "suppress" json with
      | None | Some (J.List []) -> Ok empty_baseline
      | Some (J.List items) ->
          let rec decode acc = function
            | [] -> Ok { suppress = List.rev acc }
            | item :: rest -> (
                match (J.member "protocol" item, J.member "rule" item) with
                | Some (J.String p), Some (J.String r) ->
                    decode ((p, r) :: acc) rest
                | _ ->
                    Error
                      "baseline: each suppress item needs string fields \
                       \"protocol\" and \"rule\"")
          in
          decode [] items
      | Some _ -> Error "baseline: \"suppress\" must be a list")
  | Some (J.String s) ->
      Error (Printf.sprintf "baseline: unknown schema %S (want %S)" s baseline_schema)
  | _ -> Error (Printf.sprintf "baseline: missing schema field (want %S)" baseline_schema)

let load_baseline path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | raw -> (
      match J.of_string raw with
      | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
      | Ok json -> baseline_of_json json)

(** Demote matched diagnostics to [Info] (annotated, never dropped:
    the finding stays visible in reports and artifacts, it just stops
    gating). Returns the rewritten report and the number suppressed. *)
let apply_baseline baseline ~protocol report =
  let matches d =
    List.exists
      (fun (p, r) ->
        (p = "*" || p = protocol) && (r = "*" || r = d.Rep.rule))
      baseline.suppress
  in
  let suppressed = ref 0 in
  let report' =
    List.map
      (fun d ->
        if d.Rep.severity <> Rep.Info && matches d then begin
          incr suppressed;
          { d with Rep.severity = Rep.Info;
            message = d.Rep.message ^ " [suppressed by baseline]" }
        end
        else d)
      (Rep.to_list report)
  in
  (Rep.of_list report', !suppressed)

(* ------------------------------------------------------------------ *)
(* Scheduling: pipelining certificate + differential oracle            *)
(* ------------------------------------------------------------------ *)

(** The {!Analysis.Depgraph} wave partition as the plain-array
    certificate {!Netsim.Board_emu} consumes (netsim does not depend on
    the analysis library, so this conversion lives here, where both are
    visible). [None] exactly when the analysis withholds it. *)
let sched_cert dg =
  Option.map
    (fun waves ->
      {
        Netsim.Hbcheck.slots = dg.An.Depgraph.slots;
        reads = Array.map Array.of_list dg.An.Depgraph.reads;
        waves;
      })
    (An.Depgraph.certificate dg)

(* The differential oracle behind [verify-sched-divergence]: a
   fault-free pipelined async run must rebuild the sync engine's board
   byte for byte, with the happens-before checker silent. *)
let sched_differential (Registry.Entry e as entry) ~seed ~cert =
  let f = if e.players > 3 then 1 else 0 in
  let sync_board =
    let h = Registry.hosted entry ~seed in
    match
      Blackboard.Engine.run_result ~k:h.Registry.k ~schedule:h.Registry.schedule
        ~players:h.Registry.players ()
    with
    | Ok o -> Ok o.Blackboard.Engine.board
    | Error err -> Error (Blackboard.Engine.error_message err)
  in
  let async_board =
    let h = Registry.hosted entry ~seed in
    match
      Netsim.Board_emu.run ~k:h.Registry.k ~schedule:h.Registry.schedule
        ~players:h.Registry.players ~cert
        ~config:
          { Netsim.Board_emu.f; seed = (31 * seed) + 7; faults = Netsim.Fault.none }
        ()
    with
    | Ok (Netsim.Board_emu.Delivered { board; _ }) -> Ok board
    | Ok (Netsim.Board_emu.Stalled { reason; delivered_slots; _ }) ->
        Error
          (Printf.sprintf "pipelined run stalled fault-free at slot %d (%s)"
             delivered_slots
             (match reason with
             | Netsim.Board_emu.Speaker_crashed -> "speaker-crashed"
             | Netsim.Board_emu.No_quorum -> "no-quorum"))
    | Error err -> Error (Netsim.Board_emu.error_message err)
    | exception Failure msg -> Error msg
  in
  match (sync_board, async_board) with
  | Ok sb, Ok ab ->
      if Blackboard.Board.equal sb ab then `Identical else `Divergent
  | _, Error msg when String.length msg >= 7 && String.sub msg 0 7 = "hbcheck" ->
      `Race msg
  | Error msg, _ | _, Error msg -> `Failed msg

(* ------------------------------------------------------------------ *)
(* Per-entry verification                                              *)
(* ------------------------------------------------------------------ *)

let verify_entry ?budget ?(seed = 1) ?(baseline = empty_baseline) ?(ic = false)
    ?(sched = false) ?ic_engine (Registry.Entry e as entry) =
  let tree = Lazy.force e.tree in
  let static_cc = Proto.Tree.communication_cost tree in
  let outcome, summary, checked_profiles =
    match e.spec with
    | Some spec ->
        let cert =
          An.Certify.certify ?budget ~players:e.players ~spec
            ~domain:e.domain tree
        in
        (Some cert.An.Certify.outcome, cert.An.Certify.summary,
         cert.An.Certify.checked_profiles)
    | None ->
        (None, An.Absint.analyze ?budget ~players:e.players ~domain:e.domain tree, 0)
  in
  let ic_outcome =
    if not ic then None
    else begin
      (* The rectangle-based lower-bound engines are only sound for a
         tree that provably computes its spec with zero error, so the
         spec is handed over (as a function of domain indices) exactly
         when this very sweep certified it. *)
      let zero_error_spec =
        match (e.spec, outcome) with
        | Some spec, Some An.Certify.Certified ->
            Some
              (fun idxs -> spec (Array.map (fun ix -> e.domain.(ix)) idxs))
        | _ -> None
      in
      let lower =
        match ic_engine with
        | Some engine -> fun flow -> engine ~zero_error_spec flow
        | None -> fun _ -> []
      in
      Some
        (An.Certify.certify_ic ?budget ~players:e.players ~lower
           ~domain:e.domain tree)
    end
  in
  let run = Registry.run_on_board entry ~seed in
  let observed_bits = Blackboard.Board.total_bits run.Registry.board in
  let cost = summary.An.Absint.cost in
  let root = An.Path.root in
  let err rule msg = Rep.diagnostic ~severity:Rep.Error ~rule ~path:root msg in
  let warn rule msg = Rep.diagnostic ~severity:Rep.Warning ~rule ~path:root msg in
  let info rule msg = Rep.diagnostic ~severity:Rep.Info ~rule ~path:root msg in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  if not (An.Absint.mem_interval observed_bits cost) then
    push
      (err id_observed_bits
         (Printf.sprintf
            "executed run (seed %d) charged %d bits, outside the certified \
             interval %s"
            seed observed_bits (An.Absint.interval_to_string cost)));
  if summary.An.Absint.widened then
    push
      (warn id_inconclusive
         (Printf.sprintf
            "node budget exhausted after %d nodes (%d widenings); certified \
             bounds are widened and the output map is incomplete"
            summary.An.Absint.nodes summary.An.Absint.widenings))
  else begin
    if cost.An.Absint.hi > static_cc then
      push
        (err id_cost_interval
           (Printf.sprintf
              "certified worst case %d bits exceeds the structural \
               communication cost %d — the analyzer is unsound or the tree \
               changed underneath it"
              cost.An.Absint.hi static_cc));
    if cost.An.Absint.hi < static_cc then
      push
        (info id_cost_interval
           (Printf.sprintf
              "certified worst case %d bits is below the structural cost %d: \
               %d proven-dead branches carry the structural maximum"
              cost.An.Absint.hi static_cc
              (List.length summary.An.Absint.dead)));
    match e.declared_cost with
    | Some c when c <> cost.An.Absint.hi ->
        push
          (err id_declared_bound
             (Printf.sprintf
                "declared paper bound %d bits but certified worst case is %d"
                c cost.An.Absint.hi))
    | _ -> ()
  end;
  (match outcome with
  | None ->
      push
        (info id_no_spec
           "no reference spec declared; output correctness not certified")
  | Some An.Certify.Certified -> ()
  | Some (An.Certify.Refuted cex) ->
      push
        (Rep.diagnostic ~severity:Rep.Error ~rule:id_spec
           ~path:cex.An.Certify.at_leaf
           (Printf.sprintf "spec refuted: %s"
              (An.Certify.counterexample_to_string cex)))
  | Some (An.Certify.Inconclusive reason) ->
      push (warn id_inconclusive ("certification inconclusive: " ^ reason)));
  (match ic_outcome with
  | None -> ()
  | Some (An.Certify.Ic_certified c) ->
      let engines =
        match c.An.Certify.lower_bounds with
        | [] -> ""
        | lbs ->
            Printf.sprintf " (lower-bound engines: %s)"
              (String.concat ", "
                 (List.map
                    (fun (n, b) ->
                      Printf.sprintf "%s=%s" n (Exact.Rational.to_string b))
                    lbs))
      in
      push
        (info id_ic_interval
           (Printf.sprintf
              "external information cost certified in %s bits, internal in \
               %s%s"
              (An.Infoflow.bound_to_string c.An.Certify.ic_external)
              (An.Infoflow.bound_to_string c.An.Certify.ic_internal)
              engines))
  | Some (An.Certify.Ic_inconclusive { reason; inconsistent = true; _ }) ->
      push
        (err id_ic_unsound ("information-cost cross-check failed: " ^ reason))
  | Some (An.Certify.Ic_inconclusive { reason; inconsistent = false; _ }) ->
      push
        (warn id_ic_inconclusive
           ("information-cost certification inconclusive: " ^ reason)));
  let sched_outcome =
    if not sched then None
    else begin
      let dg =
        An.Depgraph.analyze ?budget ~players:e.players ~domain:e.domain tree
      in
      let pipelined_identical, race =
        match sched_cert dg with
        | None ->
            push
              (warn id_sched_inconclusive
                 (Printf.sprintf
                    "no pipelining certificate: dependency analysis %s \
                     (%d law failures); async runtime stays sequential"
                    (if dg.An.Depgraph.widened then "widened" else "saw bad laws")
                    dg.An.Depgraph.law_failures));
            (None, None)
        | Some cert -> (
            (match Netsim.Hbcheck.validate_cert cert with
            | Ok () -> ()
            | Error msg ->
                push
                  (err id_sched_race
                     ("certificate fails structural validation: " ^ msg)));
            match sched_differential entry ~seed ~cert with
            | `Identical -> (Some true, None)
            | `Divergent ->
                push
                  (err id_sched_divergence
                     (Printf.sprintf
                        "fault-free pipelined async run (seed %d) is not \
                         byte-identical to the sync engine's board"
                        seed));
                (Some false, None)
            | `Race msg ->
                push (err id_sched_race msg);
                (Some false, Some msg)
            | `Failed msg ->
                push
                  (err id_sched_divergence
                     ("pipelined differential failed: " ^ msg));
                (Some false, None))
      in
      push
        (info id_sched_waves
           (Printf.sprintf
              "slot-dependency analysis: %d slots in %d waves%s"
              dg.An.Depgraph.slots
              (An.Depgraph.wave_count dg)
              (match pipelined_identical with
              | Some true -> "; pipelined run byte-identical"
              | _ -> "")));
      Some { depgraph = dg; pipelined_identical; race }
    end
  in
  let report, suppressed =
    apply_baseline baseline ~protocol:e.name (Rep.of_list (List.rev !diags))
  in
  {
    entry;
    summary;
    outcome;
    ic = ic_outcome;
    sched = sched_outcome;
    checked_profiles;
    static_cc;
    observed_bits;
    seed;
    report;
    suppressed;
  }

(* Entries are independent, so the sweep fans out over a domain pool
   (sequential when only one domain is available). Results keep registry
   order; the shared state each entry touches — Obs metrics, Bitbuf
   counters — is thread-safe. *)
let verify_all ?budget ?seed ?baseline ?ic ?sched ?ic_engine ?domains () =
  Par.parallel_map ?domains
    (fun e -> verify_entry ?budget ?seed ?baseline ?ic ?sched ?ic_engine e)
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Exit policy and JSON rendering                                      *)
(* ------------------------------------------------------------------ *)

(** 0 when every entry is certified (or advisory-only), 1 on any
    refutation or cross-check failure (error diagnostics), 3 when the
    worst finding is an inconclusive certification (warnings). *)
let exit_code results =
  let has p = List.exists (fun r -> p r.report) results in
  if has Rep.has_errors then 1
  else if has (fun rep -> Rep.count_severity Rep.Warning rep > 0) then 3
  else 0

let ic_outcome_to_json = function
  | An.Certify.Ic_certified c ->
      let module R = Exact.Rational in
      let bound_fields prefix (b : An.Infoflow.bound) =
        [
          (prefix ^ "_lo", J.String (R.to_string b.An.Infoflow.lo));
          (prefix ^ "_hi", J.String (R.to_string b.An.Infoflow.hi));
          (prefix ^ "_lo_float", J.Float (R.to_float b.An.Infoflow.lo));
          (prefix ^ "_hi_float", J.Float (R.to_float b.An.Infoflow.hi));
        ]
      in
      J.obj
        (("outcome", J.String "ic-certified")
         :: (bound_fields "external" c.An.Certify.ic_external
            @ bound_fields "internal" c.An.Certify.ic_internal
            @ [
                ( "engines",
                  J.List
                    (List.map
                       (fun (n, b) ->
                         J.obj
                           [
                             ("name", J.String n);
                             ("bound", J.String (R.to_string b));
                             ("bound_float", J.Float (R.to_float b));
                           ])
                       c.An.Certify.lower_bounds) );
              ]))
  | An.Certify.Ic_inconclusive { reason; inconsistent; _ } ->
      J.obj
        [
          ("outcome", J.String "ic-inconclusive");
          ("reason", J.String reason);
          ("inconsistent", J.Bool inconsistent);
        ]

let result_to_json r =
  let (Registry.Entry e) = r.entry in
  let s = r.summary in
  J.obj
    [
      ("protocol", J.String e.name);
      ("players", J.Int e.players);
      ("cost_min", J.Int s.An.Absint.cost.An.Absint.lo);
      ("cost_max", J.Int s.An.Absint.cost.An.Absint.hi);
      ("cc", J.Int r.static_cc);
      ( "declared_cost",
        match e.declared_cost with
        | Some c -> J.Int c
        | None -> J.Null );
      ("observed_bits", J.Int r.observed_bits);
      ("seed", J.Int r.seed);
      ("outcome", J.String (outcome_label r.outcome));
      ("deterministic", J.Bool s.An.Absint.deterministic);
      ("nodes", J.Int s.An.Absint.nodes);
      ("widened", J.Bool s.An.Absint.widened);
      ("widenings", J.Int s.An.Absint.widenings);
      ("law_failures", J.Int s.An.Absint.law_failures);
      ("dead_branches", J.Int (List.length s.An.Absint.dead));
      ("checked_profiles", J.Int r.checked_profiles);
      ("suppressed", J.Int r.suppressed);
      ( "ic",
        match r.ic with
        | None -> J.Null
        | Some o -> ic_outcome_to_json o );
      ( "sched",
        match r.sched with
        | None -> J.Null
        | Some s ->
            J.obj
              [
                ("slots", J.Int s.depgraph.An.Depgraph.slots);
                ("waves", J.Int (An.Depgraph.wave_count s.depgraph));
                ("certified", J.Bool (sched_cert s.depgraph <> None));
                ( "pipelined_identical",
                  match s.pipelined_identical with
                  | None -> J.Null
                  | Some b -> J.Bool b );
                ( "race",
                  match s.race with None -> J.Null | Some m -> J.String m );
              ] );
      ("diagnostics", Rep.to_json r.report);
    ]
