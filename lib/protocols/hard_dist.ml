(** The hard input distributions of the paper.

    Section 4.1: the distribution [mu] for one-bit [AND_k] — pick a
    uniformly random special player [Z], force [X_Z = 0], and give every
    other player an independent zero with probability [1/k]. Conditioned
    on [Z] the inputs are independent, and every input in the support has
    [AND = 0] (conditions (1) and (2) of Lemma 1).

    Section 4 (Lemma 6): the distribution for the [Omega(k)] bound —
    all-ones with probability [eps'], otherwise a single uniformly random
    player gets zero.

    All laws are exact-rational. Inputs are bit vectors [int array] of
    length [k] (entries 0/1); the auxiliary variable [Z] is the special
    player's index. *)

module D = Prob.Dist_exact
module R = Exact.Rational

(** All bit-vectors over [k] players with exactly [c] zeros — the slice
    [X_c] of the paper. *)
let slice ~k ~c =
  List.filter
    (fun x -> Array.fold_left (fun acc b -> acc + (1 - b)) 0 x = c)
    (Proto.Semantics.all_bit_inputs k)

(** Like {!mu_and_with_aux} but with the non-special players' zero
    probability as a parameter — the Section 4.1 design discussion made
    explorable. [p_zero = 0] gives the "all others get 1" extreme (zero
    residual entropy, so zero CIC is achievable); [p_zero] large makes
    zeros unsurprising. The paper's [1/k] balances the two; the E1b
    ablation sweeps this. *)
let mu_and_with_aux_p ~k ~p_zero =
  if k < 2 then invalid_arg "Hard_dist.mu_and_with_aux_p: need k >= 2";
  if R.sign p_zero < 0 || R.compare p_zero R.one > 0 then
    invalid_arg "Hard_dist.mu_and_with_aux_p: p_zero out of range";
  let p_one = R.sub R.one p_zero in
  let pairs =
    List.concat_map
      (fun z ->
        List.filter_map
          (fun x ->
            if x.(z) <> 0 then None
            else begin
              let w = ref (R.of_ints 1 k) (* choice of Z *) in
              Array.iteri
                (fun i b ->
                  if i <> z then
                    w := R.mul !w (if b = 0 then p_zero else p_one))
                x;
              Some ((x, z), !w)
            end)
          (Proto.Semantics.all_bit_inputs k))
      (List.init k (fun z -> z))
  in
  D.of_weighted pairs

(** The full joint law of [(X, Z)] for the Section 4.1 distribution:
    the [p_zero = 1/k] instance of {!mu_and_with_aux_p}. *)
let mu_and_with_aux ~k = mu_and_with_aux_p ~k ~p_zero:(R.of_ints 1 k)

(** Marginal law of the inputs alone. *)
let mu_and ~k = D.map fst (mu_and_with_aux ~k)

(** [mu] conditioned on the input lying in the slice [X_c]; used to
    define [pi_2] and [pi_3], the transcript laws on two- and three-zero
    inputs. Under [mu], conditioned on [|zeros| = c], all [c]-zero
    inputs are equally likely (the paper uses this symmetry), so this is
    just the uniform law on the slice. *)
let mu_on_slice ~k ~c = D.uniform (slice ~k ~c)

(** Exact probability that [X] has exactly [c] zeros under [mu]. *)
let slice_mass ~k ~c =
  D.prob (mu_and ~k) (fun x ->
      Array.fold_left (fun acc b -> acc + (1 - b)) 0 x = c)

(* ------------------------------------------------------------------ *)
(* Orbit-collapsed forms of the Section 4.1 laws. [mu] is fully        *)
(* exchangeable, so its marginal is k weighted Hamming-weight classes  *)
(* instead of 2^k atoms; conditioned on Z = z it is a product law that *)
(* is exchangeable over the non-special block. These feed the orbit    *)
(* evaluation engine (Proto.Orbit) for the large-k E1 sweeps.          *)
(* ------------------------------------------------------------------ *)

let bit_domain = [| 0; 1 |]

(** Orbit form of the [mu_and_with_aux_p] marginal: an input with
    [c >= 1] zeros has mass [(c/k) p_zero^(c-1) (1-p_zero)^(k-c)] — each
    of its zero positions can be the special player, the remaining
    [c - 1] zeros are spontaneous. Exactly [mu_and]'s law collapsed to
    Hamming-weight classes; the test suite holds {!Prob.Symdist.to_dist}
    of this equal to {!mu_and}. *)
let mu_and_orbit_p ~k ~p_zero =
  if k < 2 then invalid_arg "Hard_dist.mu_and_orbit_p: need k >= 2";
  if R.sign p_zero < 0 || R.compare p_zero R.one > 0 then
    invalid_arg "Hard_dist.mu_and_orbit_p: p_zero out of range";
  let p_one = R.sub R.one p_zero in
  let classes =
    List.init k (fun i ->
        let c = i + 1 in
        let w =
          R.mul (R.of_ints c k)
            (R.mul (R.pow p_zero (c - 1)) (R.pow p_one (k - c)))
        in
        ([| [| c; k - c |] |], w))
  in
  Prob.Symdist.of_classes ~domain:bit_domain ~blocks:(Array.make k 0) classes

let mu_and_orbit ~k = mu_and_orbit_p ~k ~p_zero:(R.of_ints 1 k)

(** Orbit form of [mu_and_with_aux_p] as conditional slices: one
    [(P(Z = z), law of X | Z = z)] pair per special player. Conditioned
    on [Z = z] the law is a product — [X_z = 0] deterministically, the
    others iid zero w.p. [p_zero] — hence block-exchangeable over
    [{z}] and the rest. This is the shape {!Proto.Orbit.conditional_ic}
    consumes. *)
let mu_and_aux_slices_p ~k ~p_zero =
  if k < 2 then invalid_arg "Hard_dist.mu_and_aux_slices_p: need k >= 2";
  if R.sign p_zero < 0 || R.compare p_zero R.one > 0 then
    invalid_arg "Hard_dist.mu_and_aux_slices_p: p_zero out of range";
  let p_one = R.sub R.one p_zero in
  List.init k (fun z ->
      let blocks = Array.init k (fun i -> if i = z then 0 else 1) in
      let weights = [| [| R.one; R.zero |]; [| p_zero; p_one |] |] in
      ( R.of_ints 1 k,
        Prob.Symdist.iid_blocks ~domain:bit_domain ~blocks weights ))

let mu_and_aux_slices ~k = mu_and_aux_slices_p ~k ~p_zero:(R.of_ints 1 k)

(** The Lemma 6 distribution: all-ones w.p. [eps'], else one uniformly
    random player gets 0. [eps'] is given as an exact rational. *)
let mu_lemma6 ~k ~eps' =
  if R.sign eps' < 0 || R.compare eps' R.one > 0 then
    invalid_arg "Hard_dist.mu_lemma6: eps' out of range";
  let ones = Array.make k 1 in
  let single_zero z =
    Array.init k (fun i -> if i = z then 0 else 1)
  in
  let rest = R.sub R.one eps' in
  D.of_weighted
    ((ones, eps')
    :: List.init k (fun z -> (single_zero z, R.div_int rest k)))

(** The n-fold product of [mu] with its auxiliary variables: inputs are
    per-player bit vectors of length [n] (player [i]'s input is
    [x.(i)], an [int array] of coordinates), and the auxiliary variable
    is the vector [Z = (Z_1, ..., Z_n)] of special players per
    coordinate. This is [mu^n] of Lemma 1, shaped for the DISJ trees. *)
let mu_disj_with_aux ~n ~k =
  let coordinate = mu_and_with_aux ~k in
  let columns = D.iid n coordinate in
  D.map
    (fun cols ->
      let x =
        Array.init k (fun i -> Array.init n (fun j -> (fst cols.(j)).(i)))
      in
      let z = Array.map snd cols in
      (x, z))
    columns

let mu_disj ~n ~k = D.map fst (mu_disj_with_aux ~n ~k)

(** Reference functions. *)
let and_fn x = Array.fold_left (fun acc b -> acc land b) 1 x

(** [DISJ_{n,k}]: 1 iff the sets are disjoint (no coordinate is 1 for
    every player). Inputs as per-player coordinate vectors. *)
let disj_fn x =
  let k = Array.length x in
  let n = if k = 0 then 0 else Array.length x.(0) in
  let intersect = ref false in
  for j = 0 to n - 1 do
    let all_one = ref true in
    for i = 0 to k - 1 do
      if x.(i).(j) = 0 then all_one := false
    done;
    if !all_one then intersect := true
  done;
  if !intersect then 0 else 1
