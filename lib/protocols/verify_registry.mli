(** Proto-verify differential mode over the protocol registry.

    Cross-checks, per entry, three independent derivations of the bit
    cost — the certified reachable [\[min, max\]] interval
    ({!Analysis.Absint}), the structural [Tree.communication_cost], and
    an actual seeded blackboard run — plus the declared paper bound and,
    when the entry carries a reference [spec], the zero-error output
    certificate ({!Analysis.Certify}). Findings are
    {!Analysis.Report} diagnostics under [verify-*] rule ids; a
    baseline file suppresses known-advisory findings by demoting them
    to [Info]. *)

val id_observed_bits : string
val id_cost_interval : string
val id_declared_bound : string
val id_spec : string
val id_inconclusive : string
val id_no_spec : string
val id_ic_interval : string
val id_ic_inconclusive : string
val id_ic_unsound : string
val id_sched_waves : string
val id_sched_divergence : string
val id_sched_race : string
val id_sched_inconclusive : string
val all_rule_ids : string list

type ic_engine =
  zero_error_spec:(int array -> int) option ->
  Analysis.Infoflow.t ->
  (string * Exact.Rational.t) list
(** The pluggable information lower-bound engine shape — e.g.
    [Lowerbound.Discrepancy.engine] partially applied by the caller
    (this library cannot depend on [lowerbound]). [zero_error_spec] is
    passed by the sweep only for entries whose spec this very run
    certified, so rectangle-based bounds stay sound. *)

type sched_result = {
  depgraph : Analysis.Depgraph.t;
  pipelined_identical : bool option;
      (** fault-free pipelined async board byte-equal to [Engine.run];
          [None] when no certificate exists (nothing to pipeline) *)
  race : string option;
      (** the {!Netsim.Hbcheck} hard error, if the oracle fired *)
}

type result = {
  entry : Registry.entry;
  summary : Analysis.Absint.t;
  outcome : Analysis.Certify.outcome option;  (** [None] when no spec *)
  ic : Analysis.Certify.ic_outcome option;
      (** the static information-cost certificate; [None] unless the
          sweep ran with [~ic:true] *)
  sched : sched_result option;  (** [None] unless [~sched:true] *)
  checked_profiles : int;
  static_cc : int;  (** structural [Tree.communication_cost] *)
  observed_bits : int;  (** blackboard bits of the seeded run *)
  seed : int;
  report : Analysis.Report.t;  (** [verify-*] diagnostics, post-baseline *)
  suppressed : int;  (** diagnostics demoted to [Info] by the baseline *)
}

val outcome_label : Analysis.Certify.outcome option -> string
(** ["certified"] / ["refuted"] / ["inconclusive"] / ["no-spec"]. *)

(** {1 Baseline suppression} *)

val baseline_schema : string
(** ["broadcast-ic/verify-baseline/v1"]. *)

type baseline

val empty_baseline : baseline

val baseline_of_json : Obs.Jsonw.t -> (baseline, string) Stdlib.result
(** Expects [{"schema": baseline_schema, "suppress": \[{"protocol": p,
    "rule": r}, ...\]}]; ["*"] wildcards either field. Extra fields
    (e.g. ["reason"]) are allowed and ignored. *)

val load_baseline : string -> (baseline, string) Stdlib.result

val apply_baseline :
  baseline -> protocol:string -> Analysis.Report.t -> Analysis.Report.t * int
(** Demote matched above-[Info] diagnostics to [Info], annotated
    [\[suppressed by baseline\]] — never dropped, so the finding stays
    visible in artifacts while no longer gating. Returns the rewritten
    report and the number suppressed. *)

(** {1 Verification} *)

val sched_cert : Analysis.Depgraph.t -> Netsim.Hbcheck.cert option
(** The analysis wave partition as the plain-array certificate
    {!Netsim.Board_emu.run} consumes; [None] exactly when
    {!Analysis.Depgraph.certificate} withholds it. *)

val verify_entry :
  ?budget:int ->
  ?seed:int ->
  ?baseline:baseline ->
  ?ic:bool ->
  ?sched:bool ->
  ?ic_engine:ic_engine ->
  Registry.entry ->
  result
(** [budget] as in {!Analysis.Absint.analyze}; [seed] (default 1)
    drives the differential blackboard run. [ic] (default false)
    additionally runs {!Analysis.Certify.certify_ic} under the uniform
    product distribution and reports the certified
    [verify-ic-interval] (Info) / [verify-ic-inconclusive] (Warning) /
    [verify-ic-unsound] (Error, a lower bound crossed the sound upper
    bound) diagnostics — all baseline-suppressible; the exit contract
    is unchanged. [ic_engine] injects extra sound lower bounds.

    [sched] (default false) additionally runs the slot-dependency
    analysis ({!Analysis.Depgraph}) and, when a pipelining certificate
    exists, a fault-free pipelined async run differenced byte-for-byte
    against the sync engine with the happens-before oracle armed:
    [verify-sched-waves] (Info, the slots/waves summary),
    [verify-sched-inconclusive] (Warning, no certificate),
    [verify-sched-divergence] / [verify-sched-race] (Error). *)

val verify_all :
  ?budget:int ->
  ?seed:int ->
  ?baseline:baseline ->
  ?ic:bool ->
  ?sched:bool ->
  ?ic_engine:ic_engine ->
  ?domains:int ->
  unit ->
  result list
(** {!verify_entry} over [Registry.all ()], fanned out over a domain
    pool ({!Par.parallel_map}; [domains] defaults to
    {!Par.default_domains}). Results keep registry order and are
    identical to the sequential sweep. *)

val exit_code : result list -> int
(** 0 all certified (or advisory-only), 1 any refutation or cross-check
    failure, 3 inconclusive-at-worst — the CLI contract of
    [broadcast_cli verify]. *)

val result_to_json : result -> Obs.Jsonw.t
(** One flat object per entry (schema [broadcast-ic/verify/v1] lines);
    diagnostics use the shared {!Analysis.Report.diagnostic_to_json}
    shape. *)
