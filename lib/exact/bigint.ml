(* Arbitrary-precision signed integers, sign-magnitude over base-2^30
   limbs (least-significant first). Magnitudes are normalized: no
   trailing zero limbs, so zero is the empty array and sign 0. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; (* -1, 0, or 1 *) mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude primitives.                                              *)
(* ------------------------------------------------------------------ *)

let normalize mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t = n - 1 then mag else Array.sub mag 0 (t + 1)

let mag_is_zero mag = Array.length mag = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

(* Requires a >= b. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    let bi = if i < lb then b.(i) else 0 in
    let d = ai - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul_mag_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai * b.(j) < 2^60, plus r and carry stays within 62 bits *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_mag_int a m =
  (* m must satisfy 0 <= m < base *)
  if m = 0 || mag_is_zero a then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let num_bits_mag a =
  let la = Array.length a in
  if la = 0 then 0
  else
    let top = a.(la - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0

let shift_left_mag a n =
  if mag_is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land base_mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right_mag a n =
  if mag_is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then [||]
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land base_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let testbit_mag a i =
  let limb = i / base_bits and bit = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* Karatsuba above this limb count; below it the O(n^2) schoolbook loop
   wins on constant factors. The crossover was measured with the
   bigint-mul micro-benchmarks (bench/micro.ml). *)
let karatsuba_threshold = 24

(* Split [x] at limb [m]: low part [x[0..m)], high part [x[m..)], both
   normalized so the magnitude invariants hold for the recursive calls. *)
let split_mag x m =
  let lx = Array.length x in
  if lx <= m then (x, [||])
  else (normalize (Array.sub x 0 m), normalize (Array.sub x m (lx - m)))

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_mag_schoolbook a b
  else begin
    (* a = a1*B^m + a0, b = b1*B^m + b0 with B = 2^base_bits:
       a*b = z2*B^2m + z1*B^m + z0 where z0 = a0*b0, z2 = a1*b1 and
       z1 = (a0+a1)(b0+b1) - z0 - z2 — three recursive multiplies. *)
    let m = (Stdlib.max la lb + 1) / 2 in
    let a0, a1 = split_mag a m and b0, b1 = split_mag b m in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let z1 =
      sub_mag (sub_mag (mul_mag (add_mag a0 a1) (add_mag b0 b1)) z0) z2
    in
    add_mag
      (add_mag z0 (shift_left_mag z1 (m * base_bits)))
      (shift_left_mag z2 (2 * m * base_bits))
  end

(* Fast path: divisor fits in one limb. Word-wise long division,
   O(limbs of a). *)
let div_mod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Schoolbook long division on magnitudes, one quotient bit at a time.
   Adequate for the sizes this library sees (a few thousand bits);
   single-limb divisors take the word-wise fast path. *)
let div_mod_mag a b =
  if mag_is_zero b then raise Division_by_zero;
  if Array.length b = 1 then begin
    let q, r = div_mod_mag_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else if cmp_mag a b < 0 then ([||], a)
  else begin
    let na = num_bits_mag a in
    let q = Array.make ((na / base_bits) + 1) 0 in
    let rem = ref [||] in
    for i = na - 1 downto 0 do
      let r = shift_left_mag !rem 1 in
      let r = if testbit_mag a i then add_mag r [| 1 |] else r in
      if cmp_mag r b >= 0 then begin
        rem := sub_mag r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
      else rem := r
    done;
    (normalize q, !rem)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                      *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = normalize mag in
  if mag_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* Careful with min_int: abs would overflow, so peel limbs using
       arithmetic that stays in range. *)
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n / base) ((n mod base) :: acc)
    in
    let raw = limbs (Stdlib.abs (n / base)) [] in
    let low = Stdlib.abs (n mod base) in
    let mag = Array.of_list (low :: List.map Stdlib.abs raw) in
    make sign mag
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a m =
  if m = 0 || a.sign = 0 then zero
  else if m > -base && m < base then
    make (a.sign * if m < 0 then -1 else 1) (mul_mag_int a.mag (Stdlib.abs m))
  else mul a (of_int m)

let div_mod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = div_mod_mag a.mag b.mag in
  let q = make (a.sign * b.sign) q in
  let r = make a.sign r in
  (q, r)

let div a b = fst (div_mod a b)
let rem a b = snd (div_mod a b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n lsr 1)
  in
  go one x n

let shift_left x n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  if x.sign = 0 then zero else make x.sign (shift_left_mag x.mag n)

let shift_right x n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  if x.sign = 0 then zero else make x.sign (shift_right_mag x.mag n)

(* Trailing zero bits of a non-empty magnitude. *)
let ctz_mag a =
  let i = ref 0 in
  while a.(!i) = 0 do
    incr i
  done;
  let rec tz v acc = if v land 1 = 1 then acc else tz (v lsr 1) (acc + 1) in
  (!i * base_bits) + tz a.(!i) 0

let rec int_gcd a b = if b = 0 then a else int_gcd b (a mod b)

(* [to_int_opt] needs [num_bits]/[equal], which are defined below; the
   magnitude check here is all gcd needs for its word-size fast path. *)
let mag_fits_int mag = num_bits_mag mag <= 62

let mag_to_int mag = Array.fold_right (fun limb acc -> (acc * base) + limb) mag 0

(* Binary (Stein) GCD on magnitudes. Compared to Euclid over [div_mod]
   — whose multi-limb path peels one quotient bit per iteration, each
   with a full-magnitude shift/compare/subtract — every iteration here
   is a single subtract and a trailing-zero shift, and word-size
   operands drop to native-int Euclid immediately. *)
let gcd a b =
  let a = a.mag and b = b.mag in
  if mag_is_zero a then make 1 b
  else if mag_is_zero b then make 1 a
  else if mag_fits_int a && mag_fits_int b then
    of_int (int_gcd (mag_to_int a) (mag_to_int b))
  else begin
    let za = ctz_mag a and zb = ctz_mag b in
    let shift = Stdlib.min za zb in
    let a = ref (shift_right_mag a za) in
    let b = ref (shift_right_mag b zb) in
    (* both odd from here on; the loop keeps them odd *)
    let continue = ref true in
    while !continue do
      if mag_fits_int !a && mag_fits_int !b then begin
        a := (of_int (int_gcd (mag_to_int !a) (mag_to_int !b))).mag;
        continue := false
      end
      else begin
        let c = cmp_mag !a !b in
        if c = 0 then continue := false
        else begin
          if c < 0 then begin
            let t = !a in
            a := !b;
            b := t
          end;
          let d = sub_mag !a !b in
          (* d > 0 and even: both were odd *)
          a := shift_right_mag d (ctz_mag d)
        end
      end
    done;
    make 1 (shift_left_mag !a shift)
  end

let num_bits x = num_bits_mag x.mag
let testbit x i = testbit_mag x.mag i

let to_int_opt x =
  if num_bits x <= 62 then begin
    let v = Array.fold_right (fun limb acc -> (acc * base) + limb) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end
  else if
    (* min_int itself: magnitude 2^62 with negative sign *)
    x.sign < 0 && num_bits x = 63 && equal (neg x) (shift_left one 62)
  then Some Stdlib.min_int
  else None

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> invalid_arg "Bigint.to_int_exn: out of range"

let log2_approx x =
  let l = Array.length x.mag in
  if l = 0 then neg_infinity
  else begin
    let top = float_of_int x.mag.(l - 1) in
    let v =
      if l >= 2 then (top *. float_of_int base) +. float_of_int x.mag.(l - 2)
      else top
    in
    Float.log2 v +. float_of_int (Stdlib.max 0 (l - 2) * base_bits)
  end

let to_float x =
  let f =
    Array.fold_right
      (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
      x.mag 0.
  in
  if x.sign < 0 then -.f else f

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign = s.[0] = '-' in
  let start = if neg_sign || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_sign then neg !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    (* Peel 9 decimal digits at a time. *)
    let chunk = of_int 1_000_000_000 in
    let buf = Buffer.create 32 in
    let rec go v acc =
      if is_zero v then acc
      else
        let q, r = div_mod v chunk in
        go q (to_int_exn r :: acc)
    in
    match go (abs x) [] with
    | [] -> "0"
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest;
        Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial";
  let rec go acc i = if i > n then acc else go (mul_int acc i) (i + 1) in
  go one 2

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    (* Iterative exact form: C <- C * (n - i) / (i + 1); each step stays
       integral, each divisor is a single limb. *)
    let k = Stdlib.min k (n - k) in
    let c = ref one in
    for i = 0 to k - 1 do
      c := div (mul_int !c (n - i)) (of_int (i + 1))
    done;
    !c
  end

(* ------------------------------------------------------------------ *)
(* Mutable magnitude accumulator.                                     *)
(* ------------------------------------------------------------------ *)

module Acc = struct
  (* A non-negative integer held in a growable limb buffer, mutated in
     place. Built for the running-binomial scans in the subset codec:
     each step multiplies by one small factor and exactly divides by
     another, and doing both in place removes the two fresh magnitude
     arrays per step that the immutable API would allocate. *)
  type acc = { mutable mag : int array; mutable len : int }
  (* Invariant: limbs [0, len) hold the value LSB-first with no
     trailing zero limb ([len = 0] is zero); limbs at or beyond [len]
     may be garbage. *)

  let ensure a n =
    if n > Array.length a.mag then begin
      let cap = ref (Stdlib.max 8 (Array.length a.mag)) in
      while !cap < n do
        cap := !cap * 2
      done;
      let fresh = Array.make !cap 0 in
      Array.blit a.mag 0 fresh 0 a.len;
      a.mag <- fresh
    end

  let create () = { mag = Array.make 8 0; len = 0 }

  let set_int a v =
    if v < 0 then invalid_arg "Bigint.Acc.set_int: negative";
    a.len <- 0;
    let v = ref v in
    while !v <> 0 do
      ensure a (a.len + 1);
      a.mag.(a.len) <- !v land base_mask;
      a.len <- a.len + 1;
      v := !v lsr base_bits
    done

  let set_t a (x : t) =
    if x.sign < 0 then invalid_arg "Bigint.Acc.set_t: negative";
    let n = Array.length x.mag in
    ensure a n;
    Array.blit x.mag 0 a.mag 0 n;
    a.len <- n

  let of_t x =
    let a = create () in
    set_t a x;
    a

  let to_t a = make 1 (Array.sub a.mag 0 a.len)
  let is_zero a = a.len = 0

  let mul_small a m =
    if m < 0 || m >= base then invalid_arg "Bigint.Acc.mul_small: range";
    if m = 0 then a.len <- 0
    else if a.len > 0 then begin
      ensure a (a.len + 1);
      let am = a.mag in
      let carry = ref 0 in
      for i = 0 to a.len - 1 do
        let s = (Array.unsafe_get am i * m) + !carry in
        Array.unsafe_set am i (s land base_mask);
        carry := s lsr base_bits
      done;
      if !carry <> 0 then begin
        am.(a.len) <- !carry;
        a.len <- a.len + 1
      end
    end

  (* Exact division runs LSB-first a la Jebelean: multiply each
     residual limb by the precomputed inverse of the (odd part of the)
     divisor mod 2^30 — two multiplies per limb instead of a hardware
     divide, which is what the subset-codec scans spend their time
     on. Powers of two come out first as an in-place right shift. *)

  let inv_mod_base d =
    (* Newton lifting: x_{k+1} = x(2 - dx) doubles correct low bits;
       seed d is its own inverse mod 8, four rounds reach 2^48 > base. *)
    let x = ref d in
    for _ = 1 to 4 do
      x := !x * (2 - (d * !x)) land base_mask
    done;
    !x land base_mask

  let shift_right_exact a s =
    if s > 0 && a.len > 0 then begin
      (* Whole limbs first (must be zero), then the sub-limb remainder. *)
      let ls = s / base_bits and bs = s mod base_bits in
      if ls > 0 then begin
        if ls >= a.len then begin
          let rec nz i = i < a.len && (a.mag.(i) <> 0 || nz (i + 1)) in
          if nz 0 then invalid_arg "Bigint.Acc.shift_right_exact: not divisible";
          a.len <- 0
        end
        else begin
          for i = 0 to ls - 1 do
            if a.mag.(i) <> 0 then
              invalid_arg "Bigint.Acc.shift_right_exact: not divisible"
          done;
          Array.blit a.mag ls a.mag 0 (a.len - ls);
          a.len <- a.len - ls
        end
      end;
      if bs > 0 && a.len > 0 then begin
        if a.mag.(0) land ((1 lsl bs) - 1) <> 0 then
          invalid_arg "Bigint.Acc.shift_right_exact: not divisible";
        for i = 0 to a.len - 1 do
          let hi = if i + 1 < a.len then a.mag.(i + 1) else 0 in
          a.mag.(i) <-
            (a.mag.(i) lsr bs) lor (hi lsl (base_bits - bs) land base_mask)
        done;
        while a.len > 0 && a.mag.(a.len - 1) = 0 do
          a.len <- a.len - 1
        done
      end
    end

  let div_exact_small a d =
    if d <= 0 || d >= base then invalid_arg "Bigint.Acc.div_exact_small: range";
    let s = ref 0 and d_odd = ref d in
    while !d_odd land 1 = 0 do
      d_odd := !d_odd lsr 1;
      incr s
    done;
    if !s > 0 && a.len > 0 && a.mag.(0) land ((1 lsl !s) - 1) <> 0 then
      invalid_arg "Bigint.Acc.div_exact_small: not divisible";
    shift_right_exact a !s;
    let d = !d_odd in
    if d > 1 then begin
      let inv = inv_mod_base d in
      let am = a.mag in
      let carry = ref 0 in
      for i = 0 to a.len - 1 do
        let cur = Array.unsafe_get am i - !carry in
        let q = cur * inv land base_mask in
        Array.unsafe_set am i q;
        (* (q * d - cur) is a non-negative multiple of 2^30 *)
        carry := ((q * d) - cur) lsr base_bits
      done;
      if !carry <> 0 then
        invalid_arg "Bigint.Acc.div_exact_small: not divisible";
      while a.len > 0 && am.(a.len - 1) = 0 do
        a.len <- a.len - 1
      done
    end

  let compare_t a (x : t) =
    if x.sign < 0 then 1
    else
      let lx = Array.length x.mag in
      if a.len <> lx then Stdlib.compare a.len lx
      else
        let rec go i =
          if i < 0 then 0
          else if a.mag.(i) <> x.mag.(i) then
            Stdlib.compare a.mag.(i) x.mag.(i)
          else go (i - 1)
        in
        go (lx - 1)

  (* ---------------------------------------------------------------- *)
  (* Multi-limb extensions: one multiply and one exact division per   *)
  (* factor *chunk* in the subset-codec scans, instead of per factor. *)
  (* The inner loops use unsafe accesses — lengths are validated once *)
  (* at entry, and these loops are the hottest code in the repo (the  *)
  (* E2 combinatorial encoder spends its time here).                  *)
  (* ---------------------------------------------------------------- *)

  let compare_acc a b =
    if a.len <> b.len then Stdlib.compare a.len b.len
    else
      let rec go i =
        if i < 0 then 0
        else if a.mag.(i) <> b.mag.(i) then Stdlib.compare a.mag.(i) b.mag.(i)
        else go (i - 1)
      in
      go (a.len - 1)

  let add_acc a b =
    let n = Stdlib.max a.len b.len in
    ensure a (n + 1);
    let am = a.mag and bm = b.mag in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let ai = if i < a.len then Array.unsafe_get am i else 0 in
      let bi = if i < b.len then Array.unsafe_get bm i else 0 in
      let s = ai + bi + !carry in
      Array.unsafe_set am i (s land base_mask);
      carry := s lsr base_bits
    done;
    if !carry <> 0 then begin
      am.(n) <- !carry;
      a.len <- n + 1
    end
    else begin
      a.len <- n;
      while a.len > 0 && am.(a.len - 1) = 0 do
        a.len <- a.len - 1
      done
    end

  let sub_acc a b =
    if compare_acc a b < 0 then invalid_arg "Bigint.Acc.sub_acc: negative";
    let am = a.mag and bm = b.mag in
    let borrow = ref 0 in
    for i = 0 to a.len - 1 do
      let bi = if i < b.len then Array.unsafe_get bm i else 0 in
      let d = Array.unsafe_get am i - bi - !borrow in
      if d < 0 then begin
        Array.unsafe_set am i (d + base);
        borrow := 1
      end
      else begin
        Array.unsafe_set am i d;
        borrow := 0
      end
    done;
    while a.len > 0 && am.(a.len - 1) = 0 do
      a.len <- a.len - 1
    done

  let mul_acc ~scratch a p =
    if scratch == a || scratch == p then
      invalid_arg "Bigint.Acc.mul_acc: scratch aliases an operand";
    if p.len = 0 then a.len <- 0
    else if a.len <> 0 then begin
      let la = a.len and lp = p.len in
      let n = la + lp in
      ensure scratch n;
      let r = scratch.mag and am = a.mag and pm = p.mag in
      Array.fill r 0 n 0;
      for i = 0 to lp - 1 do
        let pi = Array.unsafe_get pm i in
        if pi <> 0 then begin
          let carry = ref 0 in
          for j = 0 to la - 1 do
            let s =
              Array.unsafe_get r (i + j)
              + (pi * Array.unsafe_get am j)
              + !carry
            in
            Array.unsafe_set r (i + j) (s land base_mask);
            carry := s lsr base_bits
          done;
          let k = ref (i + la) in
          while !carry <> 0 do
            let s = r.(!k) + !carry in
            r.(!k) <- s land base_mask;
            carry := s lsr base_bits;
            incr k
          done
        end
      done;
      let len = ref n in
      while !len > 0 && r.(!len - 1) = 0 do
        decr len
      done;
      (* Swap buffers: the product becomes [a], [a]'s old buffer becomes
         the scratch for the next call. *)
      scratch.mag <- am;
      scratch.len <- 0;
      a.mag <- r;
      a.len <- !len
    end

  let div_exact_acc a d =
    if d.len = 0 then raise Division_by_zero;
    if d.mag.(0) land 1 = 0 then
      invalid_arg "Bigint.Acc.div_exact_acc: even divisor";
    if a.len <> 0 then begin
      if d.len = 1 then div_exact_small a d.mag.(0)
      else begin
        let la = a.len and ld = d.len in
        if la < ld then invalid_arg "Bigint.Acc.div_exact_acc: not divisible";
        let inv = inv_mod_base d.mag.(0) in
        let lq = la - ld + 1 in
        let am = a.mag and dm = d.mag in
        (* Jebelean exact division, LSB-first: each quotient limb is the
           residual's low limb times the divisor's inverse mod 2^30; the
           subtraction of [q * d] clears that limb exactly, so the
           quotient can be stored in place as the residual shrinks. *)
        for i = 0 to lq - 1 do
          let cur = Array.unsafe_get am i in
          let q = cur * inv land base_mask in
          if q <> 0 then begin
            let borrow = ref 0 in
            for t = 0 to ld - 1 do
              let s = (q * Array.unsafe_get dm t) + !borrow in
              (* Branchless borrow: [diff] is in (-2^30, 2^30), so its
                 low 30 bits are the limb either way and bit 62 (the
                 sign, after [lsr]) is the extra borrow. *)
              let diff = Array.unsafe_get am (i + t) - (s land base_mask) in
              Array.unsafe_set am (i + t) (diff land base_mask);
              borrow := (s lsr base_bits) + (diff lsr 62)
            done;
            let t = ref (i + ld) in
            while !borrow <> 0 do
              if !t >= la then
                invalid_arg "Bigint.Acc.div_exact_acc: not divisible";
              let diff = am.(!t) - (!borrow land base_mask) in
              am.(!t) <- diff land base_mask;
              borrow := (!borrow lsr base_bits) + (diff lsr 62);
              incr t
            done
          end;
          Array.unsafe_set am i q
        done;
        for t = lq to la - 1 do
          if am.(t) <> 0 then
            invalid_arg "Bigint.Acc.div_exact_acc: not divisible"
        done;
        a.len <- lq;
        while a.len > 0 && am.(a.len - 1) = 0 do
          a.len <- a.len - 1
        done
      end
    end

  let log2_approx a =
    if a.len = 0 then neg_infinity
    else begin
      let top = float_of_int a.mag.(a.len - 1) in
      let v =
        if a.len >= 2 then
          (top *. float_of_int base) +. float_of_int a.mag.(a.len - 2)
        else top
      in
      Float.log2 v +. float_of_int ((Stdlib.max 0 (a.len - 2)) * base_bits)
    end
end

let binomial_acc n k =
  (* Same iteration as {!binomial}, on an in-place accumulator: two
     allocations total instead of two per step. *)
  if k < 0 || k > n then zero
  else begin
    let k = Stdlib.min k (n - k) in
    let a = Acc.create () in
    Acc.set_int a 1;
    for i = 0 to k - 1 do
      Acc.mul_small a (n - i);
      Acc.div_exact_small a (i + 1)
    done;
    Acc.to_t a
  end

let binomial_reference = binomial

let binomial n k =
  (* Factors stay single-limb whenever [n < base], which covers every
     caller in this repo; the immutable iteration handles the rest. *)
  if n < base then binomial_acc n k else binomial_reference n k

module For_testing = struct
  let karatsuba_threshold = karatsuba_threshold

  let binomial_iter = binomial_reference

  let mul_schoolbook a b =
    if a.sign = 0 || b.sign = 0 then zero
    else make (a.sign * b.sign) (mul_mag_schoolbook a.mag b.mag)

  let rec gcd_euclid a b =
    let a = abs a and b = abs b in
    if is_zero b then a else gcd_euclid b (rem a b)

  let of_limb_count n =
    (* smallest magnitude with exactly [n] limbs: 2^((n-1)*base_bits) *)
    if n <= 0 then zero else shift_left one ((n - 1) * base_bits)

  let limb_count x = Array.length x.mag
end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
