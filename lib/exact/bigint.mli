(** Arbitrary-precision signed integers.

    Built from scratch on the OCaml stdlib; used wherever the reproduction
    needs exact counting that can overflow native integers: binomial
    coefficients for the combinatorial subset codec of the Section-5
    disjointness protocol, and exact rational probabilities in the
    protocol semantics (see {!Rational}).

    The representation is sign-magnitude with the magnitude stored as an
    array of base-2{^30} limbs, least-significant limb first. All
    operations are purely functional. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optional ['-'] sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_float : t -> float
(** Nearest float; may be [infinity] for huge values. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val div_mod : t -> t -> t * t
(** [div_mod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and
    [r] carrying the sign of [a] (truncated division, like [Stdlib.( / )]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd zero zero = zero].
    Binary (Stein) GCD with a native-int Euclid fast path for word-size
    operands; differentially tested against the reference Euclid
    implementation in {!For_testing}. *)

(** {1 Number-theoretic helpers} *)

val factorial : int -> t
val binomial : int -> int -> t
(** [binomial n k] is [n choose k]; zero when [k < 0] or [k > n]. *)

val num_bits : t -> int
(** Number of bits in the magnitude; [num_bits zero = 0]. *)

val testbit : t -> int -> bool

val log2_approx : t -> float
(** [log2] of the magnitude from its top two limbs: exact to within one
    float ulp of the true logarithm, never overflows, [neg_infinity]
    for zero. For the float-guided jump estimation in the subset codec
    — never a substitute for exact comparison. *)

(** {1 In-place accumulator}

    A mutable non-negative integer for multiply-small / divide-small
    scan loops (running binomials in the subset codec). All operations
    mutate in place over a growable limb buffer, so a whole scan costs
    two allocations (create + [to_t]) instead of two per step. *)

module Acc : sig
  type acc

  val create : unit -> acc
  (** A fresh accumulator holding 0. *)

  val set_int : acc -> int -> unit
  (** Load a non-negative [int]. @raise Invalid_argument if negative. *)

  val set_t : acc -> t -> unit
  (** Load a non-negative {!t}. @raise Invalid_argument if negative. *)

  val of_t : t -> acc
  val to_t : acc -> t
  val is_zero : acc -> bool

  val mul_small : acc -> int -> unit
  (** In-place multiply by [m], [0 <= m < 2^30].
      @raise Invalid_argument outside that range. *)

  val div_exact_small : acc -> int -> unit
  (** In-place exact division by [d], [1 <= d < 2^30].
      @raise Invalid_argument if out of range or the division leaves a
      remainder — callers rely on algebraic identities that guarantee
      exactness, so a remainder is a logic error worth trapping. *)

  val compare_t : acc -> t -> int
  (** Compare the accumulated value against an immutable {!t}. *)

  (** {2 Multi-limb operations}

      Chunked scan support: the subset codec batches runs of small
      factors into one multi-limb multiplier/divisor and pays one pass
      over the accumulator per {e chunk} instead of per factor. *)

  val compare_acc : acc -> acc -> int

  val add_acc : acc -> acc -> unit
  (** [add_acc a b] is [a <- a + b], in place. *)

  val sub_acc : acc -> acc -> unit
  (** [a <- a - b]. @raise Invalid_argument if [a < b]. *)

  val mul_acc : scratch:acc -> acc -> acc -> unit
  (** [mul_acc ~scratch a p] is [a <- a * p]. The product is built in
      [scratch]'s buffer and the two buffers are swapped, so a reused
      scratch makes the whole scan allocation-free. [scratch] must not
      alias either operand (checked). *)

  val div_exact_acc : acc -> acc -> unit
  (** [div_exact_acc a d] is [a <- a / d] for an {e odd} divisor that
      divides [a] exactly (multi-limb Jebelean division, LSB first).
      Strip factors of two with {!shift_right_exact} first.
      @raise Invalid_argument on an even divisor or inexact division.
      @raise Division_by_zero on zero. *)

  val shift_right_exact : acc -> int -> unit
  (** [a <- a / 2^s], any [s >= 0]. @raise Invalid_argument if a
      nonzero bit is shifted out. *)

  val log2_approx : acc -> float
  (** As {!Exact.Bigint.log2_approx}, on the accumulated value. *)
end

(** {1 Testing hooks}

    Reference implementations and representation probes for the
    differential test suite. Not part of the supported API. *)

module For_testing : sig
  val karatsuba_threshold : int
  (** Limb count at which {!mul} switches to Karatsuba. *)

  val mul_schoolbook : t -> t -> t
  (** The O(n{^2}) schoolbook product, regardless of size. *)

  val gcd_euclid : t -> t -> t
  (** Division-based Euclid GCD (the pre-binary reference). *)

  val binomial_iter : int -> int -> t
  (** The immutable-API binomial iteration (the pre-{!Acc} reference). *)

  val of_limb_count : int -> t
  (** Smallest positive value stored in exactly [n] limbs. *)

  val limb_count : t -> int
end

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
