(* Exact rationals with a small-word fast path.

   Representation invariant (canonical form):
   - [S { n; d }]: [d > 0], [gcd (|n|, d) = 1], and both [|n|] and [d]
     are at most [small_max]. All arithmetic on two [S] values runs in
     native ints: with operands bounded by [small_max] = 2^30 - 1,
     cross products are < 2^60 and sums of two such products are
     < 2^61, comfortably inside OCaml's 63-bit [int] — no overflow
     checks are needed on the fast path, only a bounds check on the
     reduced result.
   - [B { num; den }]: canonical bigint pair ([den > 0],
     [gcd (num, den) = 1]) whose value does NOT fit the [S] bounds.

   Because demotion to [S] happens in every constructor, a value has
   exactly one representation: structural equality of representations
   coincides with numeric equality, so [equal] is O(1) on the fast path
   and values stored inside distributions keep working with the
   polymorphic hashing used by {!Prob.Dist_core}. *)

type t =
  | S of { n : int; d : int }
  | B of { num : Bigint.t; den : Bigint.t }

let small_max = (1 lsl 30) - 1

let rec int_gcd a b = if b = 0 then a else int_gcd b (a mod b)

(* [n], [d] any ints with [d > 0] and no overflow concerns; reduces and
   picks the representation. *)
let make_reduced n d =
  let g = int_gcd (if n < 0 then -n else n) d in
  let n = n / g and d = d / g in
  if n >= -small_max && n <= small_max && d <= small_max then S { n; d }
  else B { num = Bigint.of_int n; den = Bigint.of_int d }

(* Canonical [B] from an already-reduced bigint pair, demoting when the
   value fits the small bounds. *)
let demote num den =
  match (Bigint.to_int_opt num, Bigint.to_int_opt den) with
  | Some n, Some d when n >= -small_max && n <= small_max && d <= small_max ->
      S { n; d }
  | _ -> B { num; den }

let canonical num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then S { n = 0; d = 1 }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    demote (Bigint.div num g) (Bigint.div den g)
  end

let make = canonical
let zero = S { n = 0; d = 1 }
let one = S { n = 1; d = 1 }
let half = S { n = 1; d = 2 }

let of_int n =
  if n >= -small_max && n <= small_max then S { n; d = 1 }
  else B { num = Bigint.of_int n; den = Bigint.one }

let of_ints a b =
  if b = 0 then raise Division_by_zero;
  if a = 0 then zero
    (* min_int would overflow the negations below; route through bigints *)
  else if a = Stdlib.min_int || b = Stdlib.min_int then
    canonical (Bigint.of_int a) (Bigint.of_int b)
  else begin
    let a, b = if b < 0 then (-a, -b) else (a, b) in
    let g = int_gcd (if a < 0 then -a else a) b in
    let a = a / g and b = b / g in
    if a >= -small_max && a <= small_max && b <= small_max then
      S { n = a; d = b }
    else B { num = Bigint.of_int a; den = Bigint.of_int b }
  end

let of_bigint n = demote n Bigint.one
let num = function S { n; _ } -> Bigint.of_int n | B { num; _ } -> num
let den = function S { d; _ } -> Bigint.of_int d | B { den; _ } -> den

let to_float = function
  | S { n; d } ->
      (* |n|, d <= 2^30 < 2^53: both conversions and the division are
         exactly the floats the bigint path would produce *)
      float_of_int n /. float_of_int d
  | B { num; den } -> Bigint.to_float num /. Bigint.to_float den

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic";
  let mantissa, exponent = Float.frexp f in
  (* mantissa * 2^53 is an exact integer for finite floats *)
  let m = Int64.of_float (mantissa *. 9007199254740992.0) in
  let e = exponent - 53 in
  let mi = Bigint.of_string (Int64.to_string m) in
  if e >= 0 then canonical (Bigint.shift_left mi e) Bigint.one
  else canonical mi (Bigint.shift_left Bigint.one (-e))

let to_string = function
  | S { n; d } ->
      if d = 1 then string_of_int n
      else string_of_int n ^ "/" ^ string_of_int d
  | B { num; den } ->
      if Bigint.equal den Bigint.one then Bigint.to_string num
      else Bigint.to_string num ^ "/" ^ Bigint.to_string den

let pp fmt x = Format.pp_print_string fmt (to_string x)

let compare a b =
  match (a, b) with
  | S a, S b -> Stdlib.compare (a.n * b.d) (b.n * a.d)
  | _ ->
      Bigint.compare (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a))

(* Canonical representations make equality structural: an [S] value
   never equals a [B] value. *)
let equal a b =
  match (a, b) with
  | S a, S b -> a.n = b.n && a.d = b.d
  | B a, B b -> Bigint.equal a.num b.num && Bigint.equal a.den b.den
  | S _, B _ | B _, S _ -> false

let sign = function S { n; _ } -> Stdlib.compare n 0 | B { num; _ } -> Bigint.sign num
let is_zero = function S { n = 0; _ } -> true | _ -> false
let is_one = function S { n = 1; d = 1 } -> true | _ -> false
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg = function
  | S { n; d } -> S { n = -n; d }
  | B { num; den } -> B { num = Bigint.neg num; den }

let abs x = if sign x < 0 then neg x else x

let inv = function
  | S { n = 0; _ } -> raise Division_by_zero
  | S { n; d } -> if n < 0 then S { n = -d; d = -n } else S { n = d; d = n }
  | B { num; den } ->
      if Bigint.sign num < 0 then
        B { num = Bigint.neg den; den = Bigint.neg num }
      else B { num = den; den = num }

let add a b =
  match (a, b) with
  | S a, S b ->
      (* cross products < 2^60 each, sum < 2^61: no overflow *)
      make_reduced ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
  | _ ->
      canonical
        (Bigint.add (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a)))
        (Bigint.mul (den a) (den b))

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | S { n = 0; _ }, _ | _, S { n = 0; _ } -> zero
  | S a, S b ->
      (* cross-reduce first so the products are already coprime *)
      let g1 = int_gcd (if a.n < 0 then -a.n else a.n) b.d in
      let g2 = int_gcd (if b.n < 0 then -b.n else b.n) a.d in
      let n = a.n / g1 * (b.n / g2) and d = a.d / g2 * (b.d / g1) in
      if n >= -small_max && n <= small_max && d <= small_max then S { n; d }
      else B { num = Bigint.of_int n; den = Bigint.of_int d }
  | _ -> canonical (Bigint.mul (num a) (num b)) (Bigint.mul (den a) (den b))

let div a b = mul a (inv b)

let mul_int x m =
  match x with
  | S { n; d } when m >= -small_max && m <= small_max ->
      let g = int_gcd (if m < 0 then -m else m) d in
      make_reduced (n * (m / g)) (d / g)
  | _ -> canonical (Bigint.mul_int (num x) m) (den x)

let div_int x n =
  if n = 0 then raise Division_by_zero;
  match x with
  | S { n = a; d } when n >= -small_max && n <= small_max ->
      let m, a = if n < 0 then (-n, -a) else (n, a) in
      let g = int_gcd (if a < 0 then -a else a) m in
      make_reduced (a / g) (d * (m / g))
  | _ -> canonical (num x) (Bigint.mul_int (den x) n)

let pow x n =
  (* coprime pairs stay coprime under powers, so no re-reduction *)
  let xn = num x and xd = den x in
  if n >= 0 then demote (Bigint.pow xn n) (Bigint.pow xd n)
  else begin
    if is_zero x then raise Division_by_zero;
    let num = Bigint.pow xd (-n) and den = Bigint.pow xn (-n) in
    if Bigint.sign den < 0 then demote (Bigint.neg num) (Bigint.neg den)
    else demote num den
  end

let sum xs = List.fold_left add zero xs

(* log2 of a Bigint that may exceed float range: split off high bits. *)
let log2_bigint n =
  let bits = Bigint.num_bits n in
  if bits <= 900 then Float.log2 (Bigint.to_float n)
  else
    let shift = bits - 60 in
    let top = Bigint.to_float (Bigint.shift_right n shift) in
    Float.log2 top +. float_of_int shift

let log2 x =
  if sign x <= 0 then invalid_arg "Rational.log2: non-positive";
  log2_bigint (num x) -. log2_bigint (den x)

module For_testing = struct
  let small_max = small_max
  let is_small = function S _ -> true | B _ -> false

  (* Same value, forced onto the bigint representation. Breaks the
     canonical-representation invariant — in particular [equal] against
     the small form of the same value returns false; differential tests
     must compare values with [compare]. Any arithmetic on the result
     re-canonicalizes. *)
  let force_big = function
    | S { n; d } -> B { num = Bigint.of_int n; den = Bigint.of_int d }
    | B _ as x -> x
end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
