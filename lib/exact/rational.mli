(** Exact rational numbers over {!Bigint}.

    Always kept in canonical form: the denominator is positive and
    [gcd (num, den) = 1]. Used for exact transcript probabilities and
    exact error-probability computations in the protocol semantics,
    where accumulated floating-point error would make equality checks
    meaningless.

    Values whose numerator and denominator both fit a 30-bit word are
    stored as native ints and all arithmetic between two such values
    runs without touching {!Bigint}; results that outgrow the word
    bounds fall back to the bigint pair transparently. Both
    representations are canonical (positive denominator, reduced,
    small-word whenever it fits), so exactness and equality semantics
    are unchanged — the fast path is an invisible optimization,
    differentially tested against the bigint path. *)

type t

val zero : t
val one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is [num/den] in canonical form.
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val to_float : t -> float
val of_float_dyadic : float -> t
(** Exact dyadic rational equal to the given (finite) float.
    @raise Invalid_argument on nan/infinite input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
(** O(1) structural test for exactly 1 — the cheap normalization check
    used by {!Prob.Dist_core} before dividing by a total mass. *)

val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t
val pow : t -> int -> t
(** [pow x n]; negative [n] inverts. @raise Division_by_zero on [pow zero n]
    with [n < 0]. *)

val sum : t list -> t
val log2 : t -> float
(** Floating-point base-2 logarithm of a positive rational, computed as
    [log2 num - log2 den] to stay accurate for tiny values.
    @raise Invalid_argument on non-positive input. *)

(** {1 Testing hooks}

    Representation probes for the fast-path differential suite. Not part
    of the supported API. *)

module For_testing : sig
  val small_max : int
  (** Inclusive magnitude bound of the small-word representation. *)

  val is_small : t -> bool
  (** Whether the value currently sits on the native-int fast path. *)

  val force_big : t -> t
  (** Same value on the bigint representation, violating canonicity:
      [equal] against the small form returns false (use {!compare} for
      value equality); any arithmetic re-canonicalizes the result. *)
end

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
