(** Player-permutation symmetry declarations.

    Groups of player permutations under which a protocol's {e output
    law} is invariant: [output_dist (sigma x) = output_dist x] exactly
    for every [sigma] in the group. Deliberately about the task, not the
    transcript — sequential AND produces different transcripts on
    permuted inputs yet is fully symmetric in this sense, and such
    protocols are exactly what the orbit engine ({!Orbit}) accelerates.
    {!check_tree} validates a declaration exhaustively at small [k] and
    returns a concrete witness input pair on violation. *)

type t =
  | Trivial  (** No declared symmetry (the safe default). *)
  | Blocks of int list list
      (** [S_{B_0} x S_{B_1} x ...]: players within each listed block
          are interchangeable. The blocks must partition [0 .. k-1]. *)
  | Full  (** The full symmetric group [S_k]. *)

val pp : Format.formatter -> t -> unit

val blocks_array : t -> players:int -> int array
(** Player index to block id. Trivial: singleton blocks; Full: one
    block.
    @raise Invalid_argument if a [Blocks] value is not a partition of
    [0 .. players-1]. *)

val canonical : t -> players:int -> 'a array -> 'a array
(** Canonical orbit representative: values sorted within each block.
    Two profiles are in the same orbit iff their canonical forms are
    equal. *)

val orbit_size : t -> players:int -> 'a array -> Exact.Rational.t
(** Exact cardinality of the profile's orbit (product of per-block
    multinomials). *)

val orbit_reps :
  t -> players:int -> domain:'a array -> ('a array * Exact.Rational.t) list
(** One canonical representative per orbit of [domain^players] with its
    orbit size; polynomially many for fixed domain. *)

val generators : t -> players:int -> (int * int) list
(** Adjacent within-block transpositions — a generating set of the
    group. Empty for [Trivial]. *)

val check_tree :
  t -> players:int -> domain:'a array -> 'a Tree.t ->
  ('a array * 'a array) option
(** Exhaustive soundness check of a declaration: [Some (x, sigma x)]
    gives a witness pair whose exact output laws differ; [None] means
    the output law is invariant under the whole declared group.
    Exponential in [players] — intended for lint/tests at small [k]. *)
