(** Exact distributional semantics of protocol trees. *)

module D = Prob.Dist_exact
module R = Exact.Rational

(* Physical-identity hashing for protocol-tree nodes. [Hashtbl.hash] is
   a bounded-depth structural hash, so it is cheap and total even on
   nodes that capture closures; collisions only cost an extra [==]. *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* A law is a function of (node, inputs) alone, so a table keyed on the
   physical node plus the structural inputs can be carried across calls
   — unlike the per-call table below, which is only sound because the
   inputs are fixed for its whole lifetime. Structural equality on the
   inputs is what makes rebuilt-but-equal input arrays (every
   [all_bit_inputs] call allocates fresh ones) hit. *)
module Cross = Hashtbl.Make (struct
  type t = Obj.t * Obj.t  (* physical tree node, structural inputs *)

  let equal (n1, x1) (n2, x2) = n1 == n2 && Stdlib.compare x1 x2 = 0
  let hash (n, x) = Hashtbl.hash (Hashtbl.hash n, Hashtbl.hash x)
end)

type memo = Tree.transcript D.t Cross.t

let memo () : memo = Cross.create 256
let memo_size (m : memo) = Cross.length m

(** [transcript_dist tree inputs] is the exact law of the full transcript
    when player [i] holds [inputs.(i)].

    Subtree laws are memoized per physical node within one call:
    combinators such as {!Combinators.sequence} build DAGs in which
    subtrees are shared across many branches, and the law of a node is a
    function of the node alone once [inputs] is fixed, so each distinct
    node is evaluated exactly once. Passing [memo] additionally shares
    laws {e across} calls, keyed on (node, inputs) — profitable for
    sweeps that walk the same tree on the same inputs repeatedly
    (information measures computed side by side, differential
    benchmarks), where each call would otherwise start cold.

    The continuation under a [Speak] or [Chance] node prefixes every
    transcript with that node's event, so the child laws have pairwise
    disjoint supports and prefixing is injective — [bind_disjoint] and
    [map_injective] therefore produce the same items, weights, and item
    order as the generic [bind]/[map], without the dedupe/renormalize
    round-trip. *)
let transcript_dist ?memo tree inputs =
  let xkey = lazy (Obj.repr inputs) in
  let find_shared node =
    match memo with
    | None -> None
    | Some tbl -> Cross.find_opt tbl (Obj.repr node, Lazy.force xkey)
  in
  let add_shared node d =
    match memo with
    | None -> ()
    | Some tbl -> Cross.replace tbl (Obj.repr node, Lazy.force xkey) d
  in
  let local = Phys.create 64 in
  let rec go tree =
    let key = Obj.repr tree in
    match Phys.find_opt local key with
    | Some d -> d
    | None -> (
        match find_shared tree with
        | Some d ->
            Phys.add local key d;
            d
        | None ->
            let d =
              match tree with
              | Tree.Output _ -> D.return []
              | Tree.Speak { speaker; emit; children } ->
                  let msg_dist = emit inputs.(speaker) in
                  D.bind_disjoint msg_dist (fun m ->
                      D.map_injective
                        (fun rest -> Tree.Msg (speaker, m) :: rest)
                        (go children.(m)))
              | Tree.Chance { coin; children } ->
                  D.bind_disjoint coin (fun c ->
                      D.map_injective
                        (fun rest -> Tree.Coin c :: rest)
                        (go children.(c)))
            in
            Phys.add local key d;
            add_shared tree d;
            d)
  in
  go tree

(** Law of the protocol's output on fixed inputs. *)
let output_dist tree inputs =
  D.map (Tree.output_of tree) (transcript_dist tree inputs)

(** Exact probability that the protocol errs on fixed [inputs] against
    the reference function [f]. *)
let error_on tree ~f inputs =
  D.prob (output_dist tree inputs) (fun v -> v <> f inputs)

(** Worst-case error over an explicit list of inputs (for total functions
    this is the whole domain; for promise problems, the promise set). *)
let worst_case_error tree ~f inputs_list =
  List.fold_left (fun acc x -> R.max acc (error_on tree ~f x)) R.zero
    inputs_list

(** Distributional error under an input distribution [mu]. *)
let distributional_error tree ~f mu =
  List.fold_left
    (fun acc (x, w) -> R.add acc (R.mul w (error_on tree ~f x)))
    R.zero (D.to_alist mu)

(** Joint law of [(inputs, transcript)] when inputs are drawn from [mu].
    This is the object every information quantity is computed from. *)
let joint ?memo tree mu =
  D.bind mu (fun x -> D.map (fun t -> (x, t)) (transcript_dist ?memo tree x))

(** Joint law of [((inputs, aux), transcript)] for a distribution [mu]
    on inputs paired with an auxiliary variable (the [D] of conditional
    information cost). *)
let joint_with_aux ?memo tree mu_xd =
  D.bind mu_xd (fun (x, d) ->
      D.map (fun t -> (x, d, t)) (transcript_dist ?memo tree x))

(** Law of the transcript alone under [mu]. *)
let transcript_law ?memo tree mu = D.map snd (joint ?memo tree mu)

(** All transcripts that occur with positive probability under [mu]. *)
let reachable_transcripts ?memo tree mu =
  D.support (transcript_law ?memo tree mu)

(** Expected communication cost (bits) under [mu] — contrast with the
    worst-case [Tree.communication_cost]. *)
let expected_bits ?memo tree mu =
  D.expectation_with
    (fun (_, t) -> float_of_int (Tree.transcript_bits tree t))
    (joint ?memo tree mu)

(** Enumerate all bit-vectors of length [k] as int arrays — the standard
    input domain for the one-bit problems ([AND_k]). *)
let all_bit_inputs k =
  List.init (1 lsl k) (fun code ->
      Array.init k (fun i -> (code lsr i) land 1))
