(** Exact distributional semantics of protocol trees. *)

module D = Prob.Dist_exact
module R = Exact.Rational

(* Physical-identity hashing for protocol-tree nodes. [Hashtbl.hash] is
   a bounded-depth structural hash, so it is cheap and total even on
   nodes that capture closures; collisions only cost an extra [==]. *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(** [transcript_dist tree inputs] is the exact law of the full transcript
    when player [i] holds [inputs.(i)].

    Subtree laws are memoized per physical node within one call:
    combinators such as {!Combinators.sequence} build DAGs in which
    subtrees are shared across many branches, and the law of a node is a
    function of the node alone once [inputs] is fixed, so each distinct
    node is evaluated exactly once.

    The continuation under a [Speak] or [Chance] node prefixes every
    transcript with that node's event, so the child laws have pairwise
    disjoint supports and prefixing is injective — [bind_disjoint] and
    [map_injective] therefore produce the same items, weights, and item
    order as the generic [bind]/[map], without the dedupe/renormalize
    round-trip. *)
let transcript_dist tree inputs =
  let memo = Phys.create 64 in
  let rec go tree =
    let key = Obj.repr tree in
    match Phys.find_opt memo key with
    | Some d -> d
    | None ->
        let d =
          match tree with
          | Tree.Output _ -> D.return []
          | Tree.Speak { speaker; emit; children } ->
              let msg_dist = emit inputs.(speaker) in
              D.bind_disjoint msg_dist (fun m ->
                  D.map_injective
                    (fun rest -> Tree.Msg (speaker, m) :: rest)
                    (go children.(m)))
          | Tree.Chance { coin; children } ->
              D.bind_disjoint coin (fun c ->
                  D.map_injective
                    (fun rest -> Tree.Coin c :: rest)
                    (go children.(c)))
        in
        Phys.add memo key d;
        d
  in
  go tree

(** Law of the protocol's output on fixed inputs. *)
let output_dist tree inputs =
  D.map (Tree.output_of tree) (transcript_dist tree inputs)

(** Exact probability that the protocol errs on fixed [inputs] against
    the reference function [f]. *)
let error_on tree ~f inputs =
  D.prob (output_dist tree inputs) (fun v -> v <> f inputs)

(** Worst-case error over an explicit list of inputs (for total functions
    this is the whole domain; for promise problems, the promise set). *)
let worst_case_error tree ~f inputs_list =
  List.fold_left (fun acc x -> R.max acc (error_on tree ~f x)) R.zero
    inputs_list

(** Distributional error under an input distribution [mu]. *)
let distributional_error tree ~f mu =
  List.fold_left
    (fun acc (x, w) -> R.add acc (R.mul w (error_on tree ~f x)))
    R.zero (D.to_alist mu)

(** Joint law of [(inputs, transcript)] when inputs are drawn from [mu].
    This is the object every information quantity is computed from. *)
let joint tree mu =
  D.bind mu (fun x -> D.map (fun t -> (x, t)) (transcript_dist tree x))

(** Joint law of [((inputs, aux), transcript)] for a distribution [mu]
    on inputs paired with an auxiliary variable (the [D] of conditional
    information cost). *)
let joint_with_aux tree mu_xd =
  D.bind mu_xd (fun (x, d) ->
      D.map (fun t -> (x, d, t)) (transcript_dist tree x))

(** Law of the transcript alone under [mu]. *)
let transcript_law tree mu = D.map snd (joint tree mu)

(** All transcripts that occur with positive probability under [mu]. *)
let reachable_transcripts tree mu = D.support (transcript_law tree mu)

(** Expected communication cost (bits) under [mu] — contrast with the
    worst-case [Tree.communication_cost]. *)
let expected_bits tree mu =
  D.expectation_with
    (fun (_, t) -> float_of_int (Tree.transcript_bits tree t))
    (joint tree mu)

(** Enumerate all bit-vectors of length [k] as int arrays — the standard
    input domain for the one-bit problems ([AND_k]). *)
let all_bit_inputs k =
  List.init (1 lsl k) (fun code ->
      Array.init k (fun i -> (code lsr i) land 1))
