(** Orbit-collapsed exact evaluation of protocol trees.

    Replaces the [2^k] input sweep behind every exact information
    measure with a single tree walk that tracks, per player, the
    {e revealed-weight vector} [g_i : domain -> Q] — the probability of
    player [i]'s past messages along the current path as a function of
    its own input value. On entering a [Speak] branch only the
    speaker's vector changes ([g' v = g v * P(emit v = m)]); public
    coins change no vector and contribute a scalar factor. At a leaf
    the surviving inputs are not enumerated: players are grouped by
    (symmetry block, revealed-weight vector), and each choice of
    per-group value composition yields one {e cell} of inputs that all
    share the same joint probability

      [P(x, t) = mu(x) * prod_i g_i(x_i) * (coin scale)]

    because [mu] is block-exchangeable ({!Prob.Symdist}) and the g
    product depends only on how many players of each group hold each
    value. The cell's cardinality is a product of multinomials, so the
    sum over [2^k] inputs becomes a sum over polynomially many cells —
    an exact {e regrouping} of the rational sum, valid for {e any} tree:
    protocol symmetry is never assumed, it only makes the walk cheaper.

    Subtree results are globally hash-consed in a canonical-state table
    (the orbit-mode extension of {!Semantics.memo}): the key is the
    physical node, the input law, and the g-state {e up to within-block
    permutation of the players that never speak below the node}.
    Branches that reach a shared node with permuted-equivalent states —
    and in particular leaves, where no player speaks below — collapse
    to a single cached evaluation. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module S = Prob.Symdist

type cell = {
  count : R.t;  (** number of input profiles in the cell *)
  w_each : R.t;  (** joint probability [P(x, t)] of each one *)
  px_each : R.t;  (** marginal [mu(x)] of each one *)
}

type path = {
  transcript : Tree.transcript;
  cells : cell list;
  p_t : R.t;  (** transcript probability: [sum count * w_each] *)
}

type collapsed = path list

module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type memo = {
  vec_ids : (R.t array, int) Hashtbl.t;  (* g-vector interning *)
  mutable vecs : R.t array array;  (* gid -> vector *)
  mutable n_vecs : int;
  node_ids : int Phys.t;
  mutable n_nodes : int;
  dist_ids : int Phys.t;
  mutable n_dists : int;
  speakers : int list Phys.t;  (* node -> sorted speakers of its subtree *)
  emit_laws : R.t array array Phys.t;  (* node -> per-value emit law rows *)
  group_comps : (int * int, (int array * R.t * R.t) list) Hashtbl.t;
      (* (gid, n) -> per composition of an n-player group with that
         g-vector: (composition, multinomial count, g-weight factor),
         zero-weight compositions dropped. Shared across leaves, paths
         and input laws — the hot loop of the leaf cells. *)
  states : (int * int * string, path list) Hashtbl.t;
}

let memo () =
  {
    vec_ids = Hashtbl.create 64;
    vecs = [||];
    n_vecs = 0;
    node_ids = Phys.create 64;
    n_nodes = 0;
    dist_ids = Phys.create 8;
    n_dists = 0;
    speakers = Phys.create 64;
    emit_laws = Phys.create 64;
    group_comps = Hashtbl.create 64;
    states = Hashtbl.create 256;
  }

let memo_size m = Hashtbl.length m.states

let intern_vec m v =
  match Hashtbl.find_opt m.vec_ids v with
  | Some id -> id
  | None ->
      let id = m.n_vecs in
      if id = Array.length m.vecs then begin
        let bigger = Array.make (max 16 (2 * (id + 1))) [||] in
        Array.blit m.vecs 0 bigger 0 id;
        m.vecs <- bigger
      end;
      m.vecs.(id) <- v;
      m.n_vecs <- id + 1;
      Hashtbl.add m.vec_ids v id;
      id

let phys_id tbl counter_get counter_set x =
  let key = Obj.repr x in
  match Phys.find_opt tbl key with
  | Some id -> id
  | None ->
      let id = counter_get () in
      Phys.add tbl key id;
      counter_set (id + 1);
      id

let node_id m node =
  phys_id m.node_ids (fun () -> m.n_nodes) (fun n -> m.n_nodes <- n) node

let dist_id m dist =
  phys_id m.dist_ids (fun () -> m.n_dists) (fun n -> m.n_dists <- n) dist

(* Sorted distinct players that may speak in the subtree. *)
let rec speakers_of m node =
  match Phys.find_opt m.speakers (Obj.repr node) with
  | Some s -> s
  | None ->
      let merge a b =
        List.sort_uniq Stdlib.compare (List.rev_append a b)
      in
      let s =
        match node with
        | Tree.Output _ -> []
        | Tree.Speak { speaker; children; _ } ->
            Array.fold_left
              (fun acc c -> merge acc (speakers_of m c))
              [ speaker ] children
        | Tree.Chance { children; _ } ->
            Array.fold_left (fun acc c -> merge acc (speakers_of m c)) [] children
      in
      Phys.add m.speakers (Obj.repr node) s;
      s

(* Emit law of a Speak node, tabulated per domain value:
   row v = [| P(emit domain.(v) = 0); ...; P(emit domain.(v) = arity-1) |]. *)
let emit_rows m node emit domain arity =
  match Phys.find_opt m.emit_laws (Obj.repr node) with
  | Some rows -> rows
  | None ->
      let rows =
        Array.map
          (fun x ->
            let d = emit x in
            Array.init arity (fun sym -> D.prob_of d sym))
          domain
      in
      Phys.add m.emit_laws (Obj.repr node) rows;
      rows

(* Value compositions of an [n]-player group whose members share the
   g-vector [gid], with the multinomial count and the group's g-weight
   [prod_v g(v)^c_v] precomputed via iterated power tables. Cached per
   (gid, n): the same pair recurs across leaves, branches, and input
   laws, and recomputing multinomials/powers per cell dominated the
   walk before this table existed. *)
let group_comps m gid n =
  match Hashtbl.find_opt m.group_comps (gid, n) with
  | Some l -> l
  | None ->
      let g = m.vecs.(gid) in
      let values = Array.length g in
      let pows =
        Array.map
          (fun gv ->
            let row = Array.make (n + 1) R.one in
            for c = 1 to n do
              row.(c) <- R.mul row.(c - 1) gv
            done;
            row)
          g
      in
      let l =
        List.filter_map
          (fun comp ->
            let c = comp.(0) in
            let w = ref R.one and ok = ref true in
            Array.iteri
              (fun v cv ->
                if cv > 0 then
                  if R.is_zero g.(v) then ok := false
                  else w := R.mul !w pows.(v).(cv))
              c;
            if !ok then Some (c, S.multinomial n c, !w) else None)
          (S.all_comps ~block_sizes:[| n |] ~n_values:values)
      in
      Hashtbl.add m.group_comps (gid, n) l;
      l

(* Canonical state key: speaking players individually (their identity
   matters below this node), everyone else as a per-block sorted gid
   multiset (interchangeable: the leaf cells depend only on group
   sizes). *)
let state_key m node blocks n_blocks gids =
  let speaking = speakers_of m node in
  let buf = Buffer.create 64 in
  List.iter
    (fun i ->
      if i < Array.length gids then begin
        Buffer.add_char buf 'p';
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int gids.(i));
        Buffer.add_char buf ';'
      end)
    speaking;
  let is_speaking = Array.make (Array.length gids) false in
  List.iter
    (fun i -> if i < Array.length gids then is_speaking.(i) <- true)
    speaking;
  for b = 0 to n_blocks - 1 do
    let ids = ref [] in
    Array.iteri
      (fun i bi -> if bi = b && not is_speaking.(i) then ids := gids.(i) :: !ids)
      blocks;
    Buffer.add_char buf 'b';
    Buffer.add_string buf (string_of_int b);
    Buffer.add_char buf ':';
    List.iter
      (fun g ->
        Buffer.add_string buf (string_of_int g);
        Buffer.add_char buf ',')
      (List.sort Stdlib.compare !ids);
    Buffer.add_char buf ';'
  done;
  Buffer.contents buf

(* Cells at a leaf: group players by (block, gid); every choice of one
   value composition per group is a cell. All members of a cell share
   the g product and (by block exchangeability) the mu mass, and their
   number is the product of per-group multinomials. *)
let leaf_cells m sym blocks n_blocks n_values gids =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i b ->
      let key = (b, gids.(i)) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    blocks;
  let groups =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  let cells = ref [] in
  let comp = Array.init n_blocks (fun _ -> Array.make n_values 0) in
  let rec go groups count gprod =
    match groups with
    | [] ->
        let mass = S.mass_of_comp sym comp in
        if not (R.is_zero mass) then
          cells :=
            { count; w_each = R.mul mass gprod; px_each = mass } :: !cells
    | ((b, gid), n) :: rest ->
        List.iter
          (fun (c, mult, w) ->
            Array.iteri (fun v cv -> comp.(b).(v) <- comp.(b).(v) + cv) c;
            go rest (R.mul count mult) (R.mul gprod w);
            Array.iteri (fun v cv -> comp.(b).(v) <- comp.(b).(v) - cv) c)
          (group_comps m gid n)
  in
  go groups R.one R.one;
  List.rev !cells

let collapse ?memo:m tree sym =
  let m = match m with Some m -> m | None -> memo () in
  let blocks = S.blocks sym in
  let domain = S.domain sym in
  let n_values = Array.length domain in
  let n_blocks = Array.fold_left (fun a b -> max a (b + 1)) 0 blocks in
  let did = dist_id m sym in
  let gid_one = intern_vec m (Array.make n_values R.one) in
  let init_gids = Array.make (Array.length blocks) gid_one in
  let rec walk node gids =
    let nid = node_id m node in
    let key = (nid, did, state_key m node blocks n_blocks gids) in
    match Hashtbl.find_opt m.states key with
    | Some r -> r
    | None ->
        let r =
          match node with
          | Tree.Output _ -> (
              match leaf_cells m sym blocks n_blocks n_values gids with
              | [] -> []
              | cells -> [ { transcript = []; cells; p_t = R.zero } ])
          | Tree.Speak { speaker; emit; children } ->
              let arity = Array.length children in
              let rows = emit_rows m node emit domain arity in
              let g = m.vecs.(gids.(speaker)) in
              List.concat
                (List.init arity (fun sym_m ->
                     let g' =
                       Array.init n_values (fun v ->
                           R.mul g.(v) rows.(v).(sym_m))
                     in
                     if Array.for_all R.is_zero g' then []
                     else begin
                       let gids' = Array.copy gids in
                       gids'.(speaker) <- intern_vec m g';
                       walk children.(sym_m) gids'
                       |> List.map (fun p ->
                              {
                                p with
                                transcript =
                                  Tree.Msg (speaker, sym_m) :: p.transcript;
                              })
                     end))
          | Tree.Chance { coin; children } ->
              List.concat_map
                (fun (c, wc) ->
                  walk children.(c) gids
                  |> List.map (fun p ->
                         {
                           transcript = Tree.Coin c :: p.transcript;
                           cells =
                             List.map
                               (fun cl ->
                                 { cl with w_each = R.mul wc cl.w_each })
                               p.cells;
                           p_t = p.p_t;
                         }))
                (D.to_alist coin)
        in
        Hashtbl.add m.states key r;
        r
  in
  walk tree init_gids
  |> List.map (fun p ->
         {
           p with
           p_t =
             List.fold_left
               (fun acc cl -> R.add acc (R.mul cl.count cl.w_each))
               R.zero p.cells;
         })

(* ------------------------------------------------------------------ *)
(* Measures over the collapsed form. Identical rational terms to the   *)
(* direct enumeration, regrouped; floats appear only at the final      *)
(* logarithms, Kahan-compensated in a deterministic (walk) order.      *)
(* ------------------------------------------------------------------ *)

let kahan () =
  let sum = ref 0.0 and comp = ref 0.0 in
  let add x =
    let y = x -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  in
  (add, fun () -> !sum)

(** Total input mass reaching leaves — exactly 1 on any complete tree;
    a cheap engine self-check. *)
let total_mass ?memo tree sym =
  List.fold_left
    (fun acc p -> R.add acc p.p_t)
    R.zero
    (collapse ?memo tree sym)

(** External information cost [I(T; X)] under the collapsed law:
    [sum_t sum_cells count * w * log2 (w / (px * p_t))]. *)
let external_ic ?memo tree sym =
  let add, total = kahan () in
  List.iter
    (fun p ->
      List.iter
        (fun cl ->
          add
            (R.to_float (R.mul cl.count cl.w_each)
            *. R.log2 (R.div cl.w_each (R.mul cl.px_each p.p_t))))
        p.cells)
    (collapse ?memo tree sym);
  total ()

(** Shannon entropy of the transcript, [H(T)]. *)
let transcript_entropy ?memo tree sym =
  let add, total = kahan () in
  List.iter
    (fun p -> add (-.(R.to_float p.p_t *. R.log2 p.p_t)))
    (collapse ?memo tree sym);
  total ()

(** Conditional information cost [I(T; X | D) = sum_d P(d) I(T; X | D=d)]
    given the conditional input law for each value of the conditioning
    variable [D] (e.g. one block-symmetric slice per special player of
    [mu_and]). *)
let conditional_ic ?memo:mo tree slices =
  let m = match mo with Some m -> m | None -> memo () in
  let add, total = kahan () in
  List.iter
    (fun (wd, sym) ->
      if not (R.is_zero wd) then
        add (R.to_float wd *. external_ic ~memo:m tree sym))
    slices;
  total ()

(* ------------------------------------------------------------------ *)
(* Reference path: direct 2^k enumeration grouped into the same cell   *)
(* structure, and width-0 rational comparison.                         *)
(* ------------------------------------------------------------------ *)

module For_testing = struct
  (** Collapse by brute force: expand the symmetric law, enumerate the
      joint via {!Semantics.joint}, and group equal-probability inputs
      per transcript. Exponential in the player count. *)
  let collapse_direct tree sym =
    let mu = S.to_dist sym in
    let by_t : (Tree.transcript, (R.t * R.t) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    List.iter
      (fun ((x, t), w) ->
        if not (R.is_zero w) then begin
          let px = S.mass_of_profile sym x in
          match Hashtbl.find_opt by_t t with
          | Some l -> l := (w, px) :: !l
          | None ->
              Hashtbl.add by_t t (ref [ (w, px) ]);
              order := t :: !order
        end)
      (D.to_alist (Semantics.joint tree mu));
    List.rev_map
      (fun t ->
        let pairs = !(Hashtbl.find by_t t) in
        let cells =
          List.sort (fun (a, b) (c, d) ->
              let k = R.compare a c in
              if k <> 0 then k else R.compare b d)
            pairs
          |> List.fold_left
               (fun acc (w, px) ->
                 match acc with
                 | { count; w_each; px_each } :: rest
                   when R.equal w_each w && R.equal px_each px ->
                     { count = R.add count R.one; w_each; px_each } :: rest
                 | _ -> { count = R.one; w_each = w; px_each = px } :: acc)
               []
          |> List.rev
        in
        let p_t =
          List.fold_left
            (fun acc cl -> R.add acc (R.mul cl.count cl.w_each))
            R.zero cells
        in
        { transcript = t; cells; p_t })
      !order

  (* Canonical form for comparison: paths sorted by transcript, cells
     sorted by (w, px) with equal cells merged — the orbit engine may
     legitimately split one probability class across several
     group-composition cells. *)
  let normalize (c : collapsed) =
    List.filter (fun p -> p.cells <> []) c
    |> List.map (fun p ->
           let cells =
             List.sort
               (fun a b ->
                 let k = R.compare a.w_each b.w_each in
                 if k <> 0 then k else R.compare a.px_each b.px_each)
               p.cells
             |> List.fold_left
                  (fun acc cl ->
                    match acc with
                    | top :: rest
                      when R.equal top.w_each cl.w_each
                           && R.equal top.px_each cl.px_each ->
                        { top with count = R.add top.count cl.count } :: rest
                    | _ -> cl :: acc)
                  []
             |> List.rev
           in
           { p with cells })
    |> List.sort (fun a b -> Stdlib.compare a.transcript b.transcript)

  (** Width-0 comparison: exact rational equality of the full collapsed
      joint laws (transcripts, cell counts, cell probabilities, and
      transcript masses), insensitive to cell splitting and ordering. *)
  let equal_collapsed a b =
    let a = normalize a and b = normalize b in
    List.length a = List.length b
    && List.for_all2
         (fun p q ->
           p.transcript = q.transcript
           && R.equal p.p_t q.p_t
           && List.length p.cells = List.length q.cells
           && List.for_all2
                (fun c d ->
                  R.equal c.count d.count
                  && R.equal c.w_each d.w_each
                  && R.equal c.px_each d.px_each)
                p.cells q.cells)
         a b
end
