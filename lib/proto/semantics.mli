(** Exact distributional semantics of protocol trees.

    Everything here is computed in exact rational arithmetic by walking
    the tree: the law of the transcript on fixed inputs, the law of the
    output, error probabilities (worst-case and distributional), and the
    joint law of inputs and transcript under an input distribution —
    the object all information quantities are derived from. *)

type memo
(** A transcript-law cache shared {e across} calls, keyed on the
    physical tree node plus the structural input profile — one law is
    computed once per (node, inputs) pair no matter how many sweeps
    revisit it. Sound because a law is a function of exactly that pair.
    Not thread-safe: share within one domain only. *)

val memo : unit -> memo
val memo_size : memo -> int
(** Number of cached (node, inputs) laws — observability for benches. *)

val transcript_dist :
  ?memo:memo -> 'a Tree.t -> 'a array -> Tree.transcript Prob.Dist_exact.t
(** [transcript_dist tree inputs] is the exact law of the full
    transcript when player [i] holds [inputs.(i)]. Within one call,
    shared subtrees (combinator-built DAGs) are evaluated once; [memo]
    extends that sharing across calls — profitable when several
    information measures walk the same tree over the same input sweep
    (each call otherwise starts cold, rebuilding every law). *)

val output_dist : 'a Tree.t -> 'a array -> int Prob.Dist_exact.t

val error_on : 'a Tree.t -> f:('a array -> int) -> 'a array -> Exact.Rational.t
(** Probability that the protocol's output differs from [f inputs]. *)

val worst_case_error :
  'a Tree.t -> f:('a array -> int) -> 'a array list -> Exact.Rational.t
(** Maximum of {!error_on} over an explicit input list (the whole domain
    for total functions, the promise set for promise problems). *)

val distributional_error :
  'a Tree.t -> f:('a array -> int) -> 'a array Prob.Dist_exact.t ->
  Exact.Rational.t

val joint :
  ?memo:memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t ->
  ('a array * Tree.transcript) Prob.Dist_exact.t
(** Joint law of [(inputs, transcript)] with inputs drawn from [mu]. *)

val joint_with_aux :
  ?memo:memo -> 'a Tree.t -> ('a array * 'd) Prob.Dist_exact.t ->
  ('a array * 'd * Tree.transcript) Prob.Dist_exact.t
(** Same, for a distribution on inputs paired with an auxiliary variable
    (the [D] of conditional information cost). *)

val transcript_law :
  ?memo:memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t ->
  Tree.transcript Prob.Dist_exact.t

val reachable_transcripts :
  ?memo:memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t ->
  Tree.transcript list

val expected_bits :
  ?memo:memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t -> float
(** Expected communication under [mu] (contrast with the worst-case
    {!Tree.communication_cost}). *)

val all_bit_inputs : int -> int array list
(** All [2^k] bit-vectors of length [k] — the input domain of the
    one-bit problems. *)
