(** Protocol trees: the formal semantics of broadcast (shared-blackboard)
    protocols from Section 3 of the paper.

    A protocol over per-player inputs of type ['a] is a tree. At each
    internal node the contents of the board so far (the path from the
    root) determine whose turn it is to speak; that player emits a
    message symbol from a distribution determined by its own input
    (private randomness is folded into that distribution), and the
    protocol continues in the corresponding child. [Chance] nodes model
    {e public} randomness: a publicly visible coin that costs no
    communication and depends on no input. Leaves carry the output.

    All probabilities are exact rationals ({!Prob.Dist_exact}), so
    transcript probabilities, error probabilities and the Lemma-3
    [q]-decomposition are exact; information quantities take float
    logarithms only at the very end. *)

module D = Prob.Dist_exact
module R = Exact.Rational

type 'a t =
  | Output of int
  | Speak of {
      speaker : int;  (** index of the player writing this message *)
      emit : 'a -> int D.t;
          (** law of the message symbol given the speaker's input *)
      children : 'a t array;  (** one child per message symbol *)
    }
  | Chance of {
      coin : int D.t;  (** public coin, visible to all, free of charge *)
      children : 'a t array;
    }

(** One observable event of an execution. [Msg] events are written on
    the board and are charged [ceil(log2 arity)] bits; [Coin] events are
    public randomness and are free. *)
type event = Msg of int * int  (** speaker, symbol *) | Coin of int

type transcript = event list

let output v = Output v

let speak ~speaker ~emit children =
  if Array.length children = 0 then invalid_arg "Tree.speak: no children";
  if speaker < 0 then invalid_arg "Tree.speak: negative speaker";
  (* [emit] is an arbitrary closure, so its support can only be checked
     when it is evaluated: wrap it so a symbol without a continuation
     subtree is rejected at the first evaluation instead of indexing out
     of bounds deep inside the semantics. Hand-built [Speak] records
     bypass this guard; the proto-lint analyzer ({!Analysis}) reports
     them statically. *)
  let arity = Array.length children in
  let emit x =
    let d = emit x in
    List.iter
      (fun s ->
        if s < 0 || s >= arity then
          invalid_arg
            (Printf.sprintf
               "Tree.speak: emit support includes symbol %d outside arity %d"
               s arity))
      (D.support d);
    d
  in
  Speak { speaker; emit; children }

let chance ~coin children =
  if Array.length children = 0 then invalid_arg "Tree.chance: no children";
  Chance { coin; children }

(** Deterministic message: the speaker writes [f input] directly. *)
let speak_det ~speaker ~f children =
  speak ~speaker ~emit:(fun x -> D.return (f x)) children

let bits_of_arity n = Coding.Intcode.fixed_width n

let rec depth = function
  | Output _ -> 0
  | Speak { children; _ } | Chance { children; _ } ->
      1 + Array.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec node_count = function
  | Output _ -> 1
  | Speak { children; _ } | Chance { children; _ } ->
      Array.fold_left (fun acc c -> acc + node_count c) 1 children

(** Worst-case communication cost in bits: the maximum over root-to-leaf
    paths of the sum of per-message costs. This is [CC(Pi)] of Section 3
    under the standard arity-to-bits charging. *)
let rec communication_cost = function
  | Output _ -> 0
  | Speak { children; _ } ->
      let here = bits_of_arity (Array.length children) in
      here + Array.fold_left (fun acc c -> max acc (communication_cost c)) 0 children
  | Chance { children; _ } ->
      Array.fold_left (fun acc c -> max acc (communication_cost c)) 0 children

(** Number of [Msg] rounds on the deepest path (public coins excluded). *)
let rec round_count = function
  | Output _ -> 0
  | Speak { children; _ } ->
      1 + Array.fold_left (fun acc c -> max acc (round_count c)) 0 children
  | Chance { children; _ } ->
      Array.fold_left (fun acc c -> max acc (round_count c)) 0 children

(** Bits charged for a concrete transcript, given the tree it came from.
    @raise Invalid_argument if the transcript does not follow the tree. *)
let rec transcript_bits tree transcript =
  match (tree, transcript) with
  | _, [] -> 0
  | Speak { children; _ }, Msg (_, m) :: rest ->
      bits_of_arity (Array.length children) + transcript_bits children.(m) rest
  | Chance { children; _ }, Coin c :: rest -> transcript_bits children.(c) rest
  | _ -> invalid_arg "Tree.transcript_bits: transcript does not match tree"

(** The output at the end of a complete transcript. *)
let rec output_of tree transcript =
  match (tree, transcript) with
  | Output v, [] -> v
  | Speak { children; _ }, Msg (_, m) :: rest -> output_of children.(m) rest
  | Chance { children; _ }, Coin c :: rest -> output_of children.(c) rest
  | _ -> invalid_arg "Tree.output_of: transcript does not match tree"

let pp_event fmt = function
  | Msg (i, m) -> Format.fprintf fmt "p%d!%d" i m
  | Coin c -> Format.fprintf fmt "$%d" c

let pp_transcript fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";") pp_event)
    t

let transcript_to_string t = Format.asprintf "%a" pp_transcript t
