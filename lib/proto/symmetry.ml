(** Player-permutation symmetry declarations.

    A protocol entry may declare that its {e task} is invariant under a
    group of player permutations: the full symmetric group [S_k], a
    block product [S_{B_0} x S_{B_1} x ...] over a declared partition of
    the players, or the trivial group. The declaration is semantic —
    {e output-law} invariance, [output_dist (sigma x) = output_dist x]
    exactly for every permutation [sigma] in the group — not syntactic
    invariance of the transcript: the canonical sequential AND protocol
    produces different transcripts on permuted inputs yet computes a
    symmetric function, and it is precisely such protocols the orbit
    engine ({!Orbit}) accelerates.

    Soundness of the orbit-collapsed {e input} sweep needs only the
    input distribution's exchangeability, which {!Prob.Symdist} enforces
    on construction; the declaration here additionally licenses quoting
    a single orbit representative's output statistics for the whole
    orbit. {!check_tree} verifies a declaration against the tree by
    exhaustive sweep (small [k]) and returns a concrete witness pair on
    violation. *)

module R = Exact.Rational

type t =
  | Trivial
  | Blocks of int list list
      (** [S_{B_0} x S_{B_1} x ...]: players within a block are
          interchangeable. Must partition [0 .. k-1]. *)
  | Full  (** The full symmetric group [S_k]. *)

let pp ppf = function
  | Trivial -> Format.fprintf ppf "trivial"
  | Full -> Format.fprintf ppf "full"
  | Blocks bs ->
      Format.fprintf ppf "blocks{%s}"
        (String.concat ";"
           (List.map
              (fun b -> String.concat "," (List.map string_of_int b))
              bs))

(** Player index to block id. Trivial puts each player in a singleton
    block; Full puts every player in block 0.
    @raise Invalid_argument if a [Blocks] declaration is not a partition
    of [0 .. players-1]. *)
let blocks_array sym ~players =
  match sym with
  | Trivial -> Array.init players (fun i -> i)
  | Full -> Array.make players 0
  | Blocks bs ->
      let arr = Array.make players (-1) in
      List.iteri
        (fun b members ->
          if members = [] then
            invalid_arg "Symmetry.blocks_array: empty block";
          List.iter
            (fun i ->
              if i < 0 || i >= players then
                invalid_arg
                  (Printf.sprintf
                     "Symmetry.blocks_array: player %d out of range" i);
              if arr.(i) <> -1 then
                invalid_arg
                  (Printf.sprintf
                     "Symmetry.blocks_array: player %d in two blocks" i);
              arr.(i) <- b)
            members)
        bs;
      Array.iteri
        (fun i b ->
          if b = -1 then
            invalid_arg
              (Printf.sprintf "Symmetry.blocks_array: player %d unassigned" i))
        arr;
      arr

let block_members blocks =
  let n_blocks = Array.fold_left (fun a b -> max a (b + 1)) 0 blocks in
  let members = Array.make n_blocks [] in
  Array.iteri (fun i b -> members.(b) <- i :: members.(b)) blocks;
  (* reversed accumulation: restore increasing player order *)
  Array.map List.rev members

(** Canonical orbit representative: values sorted (by [Stdlib.compare])
    within each block, players otherwise untouched. Two profiles are in
    the same orbit iff their canonical forms are equal. *)
let canonical sym ~players x =
  if Array.length x <> players then
    invalid_arg "Symmetry.canonical: wrong profile length";
  let blocks = blocks_array sym ~players in
  let out = Array.copy x in
  Array.iter
    (fun members ->
      let vals = List.map (fun i -> x.(i)) members in
      let sorted = List.sort Stdlib.compare vals in
      List.iter2 (fun i v -> out.(i) <- v) members sorted)
    (block_members blocks);
  out

(** Exact orbit cardinality of a profile: the product over blocks of the
    multinomial of its within-block value multiset. *)
let orbit_size sym ~players x =
  if Array.length x <> players then
    invalid_arg "Symmetry.orbit_size: wrong profile length";
  let blocks = blocks_array sym ~players in
  let acc = ref R.one in
  Array.iter
    (fun members ->
      let vals = List.sort Stdlib.compare (List.map (fun i -> x.(i)) members) in
      let n = List.length vals in
      let counts =
        let rec group = function
          | [] -> []
          | v :: rest ->
              let same, other = List.partition (fun u -> Stdlib.compare u v = 0) rest in
              (1 + List.length same) :: group other
        in
        Array.of_list (group vals)
      in
      acc := R.mul !acc (Prob.Symdist.multinomial n counts))
    (block_members blocks);
  !acc

(** One canonical representative per orbit of [domain^players], with its
    exact orbit size. Representative count is the product of per-block
    composition counts — polynomial in [players] for fixed domain. *)
let orbit_reps sym ~players ~domain =
  let blocks = blocks_array sym ~players in
  let members = block_members blocks in
  let block_sizes = Array.map List.length members in
  let n_values = Array.length domain in
  List.map
    (fun comp ->
      let x = Array.make players domain.(0) in
      Array.iteri
        (fun b counts ->
          let vals =
            List.concat
              (List.init n_values (fun v ->
                   List.init counts.(v) (fun _ -> domain.(v))))
          in
          List.iter2 (fun i v -> x.(i) <- v) members.(b) vals)
        comp;
      (x, Prob.Symdist.comp_orbit_size block_sizes comp))
    (Prob.Symdist.all_comps ~block_sizes ~n_values)

(** Adjacent transpositions within each block — a generating set of the
    declared group. *)
let generators sym ~players =
  let blocks = blocks_array sym ~players in
  Array.to_list (block_members blocks)
  |> List.concat_map (fun members ->
         let rec pairs = function
           | a :: (b :: _ as rest) -> (a, b) :: pairs rest
           | _ -> []
         in
         pairs members)

let swap x i j =
  let y = Array.copy x in
  y.(i) <- x.(j);
  y.(j) <- x.(i);
  y

let same_int_dist d d' =
  let sort l = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) l in
  let la = sort (Prob.Dist_exact.to_alist d)
  and lb = sort (Prob.Dist_exact.to_alist d') in
  List.length la = List.length lb
  && List.for_all2
       (fun (a, wa) (b, wb) -> a = b && R.equal wa wb)
       la lb

(** Verify a declaration against a tree by exhaustive sweep: for every
    input profile and every group generator [sigma], the output law on
    [sigma x] must equal the output law on [x] exactly. Invariance under
    the generators extends to the whole group. Returns a concrete
    witness pair [Some (x, sigma x)] whose output laws differ, [None] if
    the declaration is sound. Exponential in [players] — lint/test use
    at small [k]. *)
let check_tree sym ~players ~domain tree =
  let gens = generators sym ~players in
  if gens = [] then None
  else begin
    let n = Array.length domain in
    let rec sweep x i =
      if i = players then
        List.find_map
          (fun (a, b) ->
            let x' = swap x a b in
            if same_int_dist (Semantics.output_dist tree x)
                 (Semantics.output_dist tree x')
            then None
            else Some (Array.copy x, x'))
          gens
      else
        let rec try_v v =
          if v = n then None
          else begin
            x.(i) <- domain.(v);
            match sweep x (i + 1) with
            | Some _ as w -> w
            | None -> try_v (v + 1)
          end
        in
        try_v 0
    in
    sweep (Array.make players domain.(0)) 0
  end
