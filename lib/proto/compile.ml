(** Compiler from protocol trees to a flat bit-sliced VM. *)

module D = Prob.Dist_exact

(* Physical-identity hashing, same rationale as in {!Semantics}: cheap
   bounded-depth structural hash, collisions only cost an extra [==]. *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let kind_output = 0
let kind_speak = 1
let kind_chance = 2

type t = {
  players : int;
  domain_size : int;
  node_count : int;
  root : int;  (** always [node_count - 1] (postorder ids) *)
  kind : int array;
  speaker : int array;  (** Speak: player id; otherwise -1 *)
  arity : int array;  (** child count; Output: 0 *)
  width : int array;  (** Speak: per-message bit charge; otherwise 0 *)
  out_value : int array;  (** Output: leaf value; otherwise -1 *)
  child_base : int array;  (** index of the node's slice of [children] *)
  children : int array;  (** flat child ids, grouped per node *)
  emit_base : int array;  (** Speak: index of its row in [law_of_input] *)
  law_of_input : int array;  (** [emit_base + input index -> law id] *)
  coin_law : int array;  (** Chance: law id; otherwise -1 *)
  laws : int D.t array;  (** interned emit/coin laws *)
  samplers : int Prob.Sampler.t array;  (** prebuilt, one per law *)
  point_sym : int array;  (** law id -> its point mass, or -1 *)
  deterministic : bool;
      (** no Chance nodes and every tabulated emit law is a point mass *)
}

let players p = p.players
let domain_size p = p.domain_size
let node_count p = p.node_count
let deterministic p = p.deterministic

(* Growable int buffer for the struct-of-arrays construction. *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push b v =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len
end

let compile ~players:k ~domain tree =
  if k <= 0 then invalid_arg "Compile.compile: players";
  let dsize = Array.length domain in
  if dsize = 0 then invalid_arg "Compile.compile: empty domain";
  let ids : int Phys.t = Phys.create 64 in
  let kind = Buf.create () in
  let speaker = Buf.create () in
  let arity = Buf.create () in
  let width = Buf.create () in
  let out_value = Buf.create () in
  let child_base = Buf.create () in
  let children = Buf.create () in
  let emit_base = Buf.create () in
  let law_of_input = Buf.create () in
  let coin_law = Buf.create () in
  (* Law interning: structural equality on the exact alist, so two
     [emit] closures producing the same distribution share one law (and
     one prebuilt sampler). Linear scan — law tables are small. *)
  let laws = ref [] in
  let law_count = ref 0 in
  let law_eq l1 l2 =
    let a1 = D.to_alist l1 and a2 = D.to_alist l2 in
    List.length a1 = List.length a2
    && List.for_all2
         (fun (v1, w1) (v2, w2) -> v1 = v2 && Exact.Rational.equal w1 w2)
         a1 a2
  in
  let intern law =
    let rec find i = function
      | [] ->
          laws := law :: !laws;
          incr law_count;
          !law_count - 1
      | l :: rest -> if law_eq l law then i else find (i - 1) rest
    in
    find (!law_count - 1) !laws
  in
  let push_node ~k:kd ~sp ~ar ~wd ~out ~kids ~eb ~cl =
    let id = kind.Buf.len in
    Buf.push kind kd;
    Buf.push speaker sp;
    Buf.push arity ar;
    Buf.push width wd;
    Buf.push out_value out;
    Buf.push child_base children.Buf.len;
    Array.iter (Buf.push children) kids;
    Buf.push emit_base eb;
    Buf.push coin_law cl;
    id
  in
  let rec go node =
    match Phys.find_opt ids (Obj.repr node) with
    | Some id -> id
    | None ->
        let id =
          match node with
          | Tree.Output v ->
              push_node ~k:kind_output ~sp:(-1) ~ar:0 ~wd:0 ~out:v ~kids:[||]
                ~eb:(-1) ~cl:(-1)
          | Tree.Speak { speaker = sp; emit; children = ch } ->
              (* Children first: postorder ids, so every child id is
                 strictly smaller than its parent's. *)
              let kids = Array.map go ch in
              let eb = law_of_input.Buf.len in
              Array.iter (fun x -> Buf.push law_of_input (intern (emit x))) domain;
              push_node ~k:kind_speak ~sp ~ar:(Array.length ch)
                ~wd:(Tree.bits_of_arity (Array.length ch))
                ~out:(-1) ~kids ~eb ~cl:(-1)
          | Tree.Chance { coin; children = ch } ->
              let kids = Array.map go ch in
              push_node ~k:kind_chance ~sp:(-1) ~ar:(Array.length ch) ~wd:0
                ~out:(-1) ~kids ~eb:(-1) ~cl:(intern coin)
        in
        Phys.replace ids (Obj.repr node) id;
        id
  in
  let root = go tree in
  let laws = Array.of_list (List.rev !laws) in
  let samplers =
    Array.map (fun l -> Prob.Sampler.create (D.to_float_dist l)) laws
  in
  let point_sym =
    Array.map
      (fun l -> match D.to_alist l with [ (v, _) ] -> v | _ -> -1)
      laws
  in
  let kind = Buf.to_array kind in
  let law_of_input = Buf.to_array law_of_input in
  let deterministic =
    Array.for_all (fun kd -> kd <> kind_chance) kind
    && Array.for_all (fun lid -> point_sym.(lid) >= 0) law_of_input
  in
  {
    players = k;
    domain_size = dsize;
    node_count = Array.length kind;
    root;
    kind;
    speaker = Buf.to_array speaker;
    arity = Buf.to_array arity;
    width = Buf.to_array width;
    out_value = Buf.to_array out_value;
    child_base = Buf.to_array child_base;
    children = Buf.to_array children;
    emit_base = Buf.to_array emit_base;
    law_of_input;
    coin_law = Buf.to_array coin_law;
    laws;
    samplers;
    point_sym;
    deterministic;
  }

(* ------------------------------------------------------------------ *)
(* Scalar execution.                                                   *)
(* ------------------------------------------------------------------ *)

let check_profile p input_indices =
  if Array.length input_indices <> p.players then
    invalid_arg "Compile.exec: wrong number of inputs";
  Array.iter
    (fun i ->
      if i < 0 || i >= p.domain_size then
        invalid_arg "Compile.exec: input index out of domain")
    input_indices

let exec ?(on_msg = fun ~speaker:_ ~arity:_ ~width:_ ~msg:_ -> ())
    ?(on_coin = fun _ -> ()) p ~sample ~input_indices =
  check_profile p input_indices;
  let pc = ref p.root in
  while p.kind.(!pc) <> kind_output do
    let n = !pc in
    if p.kind.(n) = kind_speak then begin
      let s = p.speaker.(n) in
      let lid = p.law_of_input.(p.emit_base.(n) + input_indices.(s)) in
      let msg = sample p.samplers.(lid) in
      on_msg ~speaker:s ~arity:p.arity.(n) ~width:p.width.(n) ~msg;
      pc := p.children.(p.child_base.(n) + msg)
    end
    else begin
      let c = sample p.samplers.(p.coin_law.(n)) in
      on_coin c;
      pc := p.children.(p.child_base.(n) + c)
    end
  done;
  p.out_value.(!pc)

(* ------------------------------------------------------------------ *)
(* Bit-sliced batch execution.                                         *)
(*                                                                     *)
(* One machine word per VM state: bit [l] of [node_mask.(n)] says lane *)
(* [l]'s execution passes through node [n]. Node ids are postorder, so *)
(* iterating ids downward visits every parent before any child — one   *)
(* linear pass over the program advances all lanes at once, and DAG-   *)
(* shared nodes simply accumulate the union of their parents' lanes    *)
(* before they are processed.                                          *)
(* ------------------------------------------------------------------ *)

let max_lanes = 62

type batch = {
  lanes : int;
  outputs : int array;  (** per-lane leaf value *)
  node_mask : int array;  (** lanes whose path visits the node *)
  edge_mask : int array;  (** per child slot: lanes taking that edge *)
}

let outputs b = b.outputs
let lanes b = b.lanes

let exec_batch p ~input_indices =
  if not p.deterministic then
    invalid_arg "Compile.exec_batch: deterministic programs only";
  let nlanes = Array.length input_indices in
  if nlanes = 0 || nlanes > max_lanes then
    invalid_arg "Compile.exec_batch: 1..62 lanes";
  Array.iter (check_profile p) input_indices;
  (* Lane masks per (player, input value): which lanes hold value [v]
     for player [j]. This is the bit-sliced image of the input planes. *)
  let pmask = Array.make_matrix p.players p.domain_size 0 in
  Array.iteri
    (fun lane prof ->
      let b = 1 lsl lane in
      Array.iteri (fun j v -> pmask.(j).(v) <- pmask.(j).(v) lor b) prof)
    input_indices;
  let node_mask = Array.make p.node_count 0 in
  let edge_mask = Array.make (Array.length p.children) 0 in
  let outputs = Array.make nlanes (-1) in
  node_mask.(p.root) <-
    (if nlanes = max_lanes then max_int else (1 lsl nlanes) - 1);
  for n = p.node_count - 1 downto 0 do
    let m = node_mask.(n) in
    if m <> 0 then
      if p.kind.(n) = kind_speak then begin
        let pm = pmask.(p.speaker.(n)) in
        let eb = p.emit_base.(n) and cb = p.child_base.(n) in
        for v = 0 to p.domain_size - 1 do
          let lv = m land pm.(v) in
          if lv <> 0 then begin
            let sym = p.point_sym.(p.law_of_input.(eb + v)) in
            edge_mask.(cb + sym) <- edge_mask.(cb + sym) lor lv;
            let c = p.children.(cb + sym) in
            node_mask.(c) <- node_mask.(c) lor lv
          end
        done
      end
      else begin
        (* Output leaf: record the value for each lane that landed. *)
        let v = p.out_value.(n) in
        let rest = ref m in
        while !rest <> 0 do
          let b = !rest land - !rest in
          let lane = ref 0 and bb = ref b in
          while !bb land 1 = 0 do
            incr lane;
            bb := !bb lsr 1
          done;
          outputs.(!lane) <- v;
          rest := !rest land (!rest - 1)
        done
      end
  done;
  { lanes = nlanes; outputs; node_mask; edge_mask }

(* A lane's transcript, read back off the edge masks: from the root,
   follow the unique outgoing edge carrying the lane's bit. Node ids
   strictly decrease along any root-to-leaf path, so this terminates in
   at most [node_count] steps. *)
let lane_transcript p b lane =
  if lane < 0 || lane >= b.lanes then
    invalid_arg "Compile.lane_transcript: lane out of range";
  let bit = 1 lsl lane in
  let rec go n acc =
    if p.kind.(n) = kind_output then List.rev acc
    else begin
      let cb = p.child_base.(n) in
      let sym = ref (-1) in
      for s = 0 to p.arity.(n) - 1 do
        if b.edge_mask.(cb + s) land bit <> 0 then sym := s
      done;
      if !sym < 0 then invalid_arg "Compile.lane_transcript: broken batch";
      go p.children.(cb + !sym) (Tree.Msg (p.speaker.(n), !sym) :: acc)
    end
  in
  go p.root []

let lane_bits p b lane =
  if lane < 0 || lane >= b.lanes then
    invalid_arg "Compile.lane_bits: lane out of range";
  let bit = 1 lsl lane in
  let total = ref 0 in
  for n = 0 to p.node_count - 1 do
    if p.kind.(n) = kind_speak && b.node_mask.(n) land bit <> 0 then
      total := !total + p.width.(n)
  done;
  !total

(* Batched input sweep: slice the profile list into 62-lane batches and
   advance each batch in one pass, across the Par domain pool. Order is
   preserved ([Par.parallel_map] keeps list order; lanes keep array
   order within a batch). *)
let exec_sweep ?domains p ~input_indices =
  let total = Array.length input_indices in
  if total = 0 then [||]
  else begin
    let nchunks = (total + max_lanes - 1) / max_lanes in
    let chunks =
      List.init nchunks (fun c ->
          let lo = c * max_lanes in
          Array.sub input_indices lo (Stdlib.min max_lanes (total - lo)))
    in
    let batches =
      Par.parallel_map ?domains
        (fun chunk -> (exec_batch p ~input_indices:chunk).outputs)
        chunks
    in
    Array.concat batches
  end

(* ------------------------------------------------------------------ *)
(* Disassembler — stable text rendering for golden tests and debug.    *)
(* ------------------------------------------------------------------ *)

let disassemble p =
  let b = Buffer.create 256 in
  Printf.bprintf b "players=%d domain=%d nodes=%d root=n%d det=%b\n" p.players
    p.domain_size p.node_count p.root p.deterministic;
  for n = p.node_count - 1 downto 0 do
    if p.kind.(n) = kind_output then
      Printf.bprintf b "n%d: out %d\n" n p.out_value.(n)
    else begin
      let cb = p.child_base.(n) in
      let kids =
        String.concat " "
          (List.init p.arity.(n) (fun s ->
               Printf.sprintf "n%d" p.children.(cb + s)))
      in
      if p.kind.(n) = kind_speak then begin
        let row =
          String.concat " "
            (List.init p.domain_size (fun v ->
                 Printf.sprintf "%d->L%d" v
                   p.law_of_input.(p.emit_base.(n) + v)))
        in
        Printf.bprintf b "n%d: speak p%d w%d [%s] kids[%s]\n" n p.speaker.(n)
          p.width.(n) row kids
      end
      else
        Printf.bprintf b "n%d: chance L%d kids[%s]\n" n p.coin_law.(n) kids
    end
  done;
  Array.iteri
    (fun i l ->
      let body =
        String.concat " "
          (List.map
             (fun (v, w) ->
               Printf.sprintf "%d:%s" v (Exact.Rational.to_string w))
             (D.to_alist l))
      in
      Printf.bprintf b "L%d: {%s}\n" i body)
    p.laws;
  Buffer.contents b
