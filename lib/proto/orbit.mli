(** Orbit-collapsed exact evaluation of protocol trees.

    One tree walk replaces the [2^k] input sweep: per-player
    revealed-weight vectors are tracked along each path, and at every
    leaf the surviving inputs are grouped into {e cells} — one per
    choice of value composition over (symmetry block, revealed-weight
    class) player groups — whose members provably share the same joint
    probability, counted by exact multinomials. This is an exact
    regrouping of the direct rational sum and is valid for {e any}
    protocol tree under a block-exchangeable input law
    ({!Prob.Symdist}); symmetry of the protocol itself only affects
    speed. Subtree results are globally hash-consed on a canonical
    g-state (the orbit-mode extension of {!Semantics.memo}). *)

type cell = {
  count : Exact.Rational.t;  (** input profiles in the cell *)
  w_each : Exact.Rational.t;  (** joint probability [P(x,t)] of each *)
  px_each : Exact.Rational.t;  (** input marginal [mu(x)] of each *)
}

type path = {
  transcript : Tree.transcript;
  cells : cell list;
  p_t : Exact.Rational.t;  (** transcript mass [sum count * w_each] *)
}

type collapsed = path list

type memo
(** Canonical-state table shared across calls: g-vector interning plus
    cached subtree results keyed on (physical node, input law, g-state
    up to within-block permutation of never-speaking players). Not
    thread-safe: share within one domain only. *)

val memo : unit -> memo
val memo_size : memo -> int
(** Number of cached (node, law, canonical-state) results. *)

val collapse : ?memo:memo -> 'a Tree.t -> 'a Prob.Symdist.t -> collapsed
(** The collapsed joint law of (inputs, transcript). Paths appear in
    deterministic DFS order; only positive-mass cells and non-empty
    paths are kept, so every [p_t] is positive. *)

val total_mass : ?memo:memo -> 'a Tree.t -> 'a Prob.Symdist.t -> Exact.Rational.t
(** [sum_t p_t] — exactly 1 on any complete tree; engine self-check. *)

val external_ic : ?memo:memo -> 'a Tree.t -> 'a Prob.Symdist.t -> float
(** [I(T; X)], exact rationals up to the final logarithms. *)

val transcript_entropy : ?memo:memo -> 'a Tree.t -> 'a Prob.Symdist.t -> float
(** [H(T)]. *)

val conditional_ic :
  ?memo:memo ->
  'a Tree.t ->
  (Exact.Rational.t * 'a Prob.Symdist.t) list ->
  float
(** [I(T; X | D) = sum_d P(d) * I(T; X | D = d)] from the conditional
    input law of each value of the conditioning variable. *)

(** Reference path for the differential suite: direct [2^k] enumeration
    grouped into the same cell structure, and width-0 exact-rational
    comparison of collapsed laws. *)
module For_testing : sig
  val collapse_direct : 'a Tree.t -> 'a Prob.Symdist.t -> collapsed
  (** Brute-force collapse through {!Semantics.joint} — exponential in
      the player count; small [k] only. *)

  val normalize : collapsed -> collapsed
  (** Canonical form: zero paths dropped, cells merged by equal
      [(w_each, px_each)] and sorted, paths sorted by transcript. *)

  val equal_collapsed : collapsed -> collapsed -> bool
  (** Exact rational equality of collapsed joint laws (width 0 — no
      float tolerance anywhere). *)
end
