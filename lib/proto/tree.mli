(** Protocol trees: the formal semantics of broadcast (shared-blackboard)
    protocols from Section 3 of the paper.

    A protocol over per-player inputs of type ['a] is a tree. At each
    internal node the contents of the board so far (the path from the
    root) determine whose turn it is to speak; that player emits a
    message symbol from a distribution determined by its own input
    (private randomness is folded into that distribution), and the
    protocol continues in the corresponding child. [Chance] nodes model
    {e public} randomness: a publicly visible coin that costs no
    communication and depends on no input. Leaves carry the output.

    All probabilities are exact rationals ({!Prob.Dist_exact}), so
    transcript probabilities, error probabilities and the Lemma-3
    [q]-decomposition are exact; information quantities take float
    logarithms only at the very end.

    The constructors are exposed (rather than kept abstract) because the
    lower-bound machinery ({!Lowerbound}) structurally transforms trees
    — e.g. the Lemma-1 direct-sum embedding rebuilds a tree node by
    node. *)

type 'a t =
  | Output of int
  | Speak of {
      speaker : int;  (** index of the player writing this message *)
      emit : 'a -> int Prob.Dist_exact.t;
          (** law of the message symbol given the speaker's input *)
      children : 'a t array;  (** one child per message symbol *)
    }
  | Chance of {
      coin : int Prob.Dist_exact.t;
          (** public coin, visible to all, free of charge *)
      children : 'a t array;
    }

(** One observable event of an execution. [Msg (i, m)] is written on the
    board by player [i] and charged [ceil(log2 arity)] bits; [Coin c] is
    public randomness and free. *)
type event = Msg of int * int | Coin of int

type transcript = event list

(** {1 Smart constructors} *)

val output : int -> 'a t

val speak : speaker:int -> emit:('a -> int Prob.Dist_exact.t) -> 'a t array -> 'a t
(** @raise Invalid_argument on an empty child array or negative speaker.
    The message law is guarded: each evaluation of [emit] checks that
    its support lies inside [[0, Array.length children)] and raises
    [Invalid_argument] otherwise (necessarily at evaluation time —
    [emit] is an arbitrary closure). Hand-built [Speak] records bypass
    the guard; the proto-lint analyzer reports them statically. *)

val speak_det : speaker:int -> f:('a -> int) -> 'a t array -> 'a t
(** Deterministic message: the speaker writes [f input]. *)

val chance : coin:int Prob.Dist_exact.t -> 'a t array -> 'a t

(** {1 Static measures} *)

val bits_of_arity : int -> int
(** [ceil(log2 n)] — the per-message charge. *)

val depth : 'a t -> int
val node_count : 'a t -> int

val communication_cost : 'a t -> int
(** Worst-case communication [CC(Pi)]: maximum over root-to-leaf paths
    of the summed per-message charges. Chance nodes are free. *)

val round_count : 'a t -> int
(** Maximum number of messages on any path (public coins excluded). *)

(** {1 Transcript operations} *)

val transcript_bits : 'a t -> transcript -> int
(** Bits charged for a concrete transcript.
    @raise Invalid_argument if the transcript does not follow the tree. *)

val output_of : 'a t -> transcript -> int
(** The output at the end of a complete transcript.
    @raise Invalid_argument if the transcript does not reach a leaf. *)

val pp_event : Format.formatter -> event -> unit
val pp_transcript : Format.formatter -> transcript -> unit
val transcript_to_string : transcript -> string
