(** Compiler from {!Tree} protocol trees to a flat bit-sliced VM.

    [compile] flattens a tree into struct-of-arrays bytecode: node
    kinds, speakers, arities, branch targets and per-(node, input)
    emit-law ids live in plain [int array]s, with the exact laws (and
    one prebuilt sampler per law) interned into side tables. Node ids
    are assigned in postorder, so the root is the last node and every
    edge goes from a higher id to a strictly lower one; physically
    shared subtrees are compiled once and become DAG nodes.

    Two evaluators run the bytecode:

    - {!exec} walks one input profile, drawing from the interned
      samplers; it mirrors the tree interpreter draw-for-draw, so a run
      over the same RNG stream produces byte-identical transcripts.
    - {!exec_batch} advances up to 62 input profiles at once for
      deterministic programs, one lane per bit of a machine word, in a
      single linear pass over the program.

    The tree interpreter in {!Semantics} stays the differential oracle:
    tests compare both evaluators against it on random trees. *)

type t
(** A compiled program. The input domain is erased: execution addresses
    inputs by their index in the [domain] array given to {!compile}, so
    one (non-parametric) program type serves every element type. *)

val compile : players:int -> domain:'a array -> 'a Tree.t -> t
(** [compile ~players ~domain tree] flattens [tree]. Each [Speak]
    node's [emit] is tabulated over all of [domain] at compile time, so
    [emit] must be total on it. Raises [Invalid_argument] if [players]
    is not positive or [domain] is empty. *)

val players : t -> int
val domain_size : t -> int
val node_count : t -> int

val deterministic : t -> bool
(** [true] iff the program has no [Chance] node and every tabulated
    emit law is a point mass — the precondition for {!exec_batch}. *)

(** {1 Scalar execution} *)

val exec :
  ?on_msg:(speaker:int -> arity:int -> width:int -> msg:int -> unit) ->
  ?on_coin:(int -> unit) ->
  t ->
  sample:(int Prob.Sampler.t -> int) ->
  input_indices:int array ->
  int
(** [exec p ~sample ~input_indices] runs one root-to-leaf walk and
    returns the leaf value. [input_indices.(j)] is player [j]'s input
    as a domain index. [sample] supplies randomness (typically
    [fun s -> Prob.Sampler.draw s rng]); it is called exactly once per
    [Speak]/[Chance] node visited, in walk order. [on_msg] fires after
    each message draw (before descending) and [on_coin] after each
    coin — hooks for board posting and tracing without coupling this
    module to {!Blackboard}. *)

(** {1 Bit-sliced batch execution} *)

val max_lanes : int
(** 62: one lane per usable bit of an OCaml [int]. *)

type batch
(** The result of one bit-sliced pass: per-lane outputs plus the node
    and edge lane-masks, from which per-lane transcripts and bit
    charges can be read back. *)

val exec_batch : t -> input_indices:int array array -> batch
(** [exec_batch p ~input_indices] advances [Array.length input_indices]
    lanes (1..{!max_lanes}) through [p] in one descending pass over the
    bytecode. Postorder ids make this sound: a node's full lane mask is
    known before the node is processed, even under DAG sharing. Raises
    [Invalid_argument] if [p] is not {!deterministic} or the lane count
    is out of range. *)

val outputs : batch -> int array
(** Per-lane leaf value, in lane order. *)

val lanes : batch -> int

val lane_transcript : t -> batch -> int -> Tree.event list
(** The message transcript lane [lane] produced, root to leaf, read
    back off the batch's edge masks. Deterministic programs have no
    coins, so all events are [Msg]. *)

val lane_bits : t -> batch -> int -> int
(** Total bits charged along lane [lane]'s path (sum of message widths
    over visited [Speak] nodes). *)

val exec_sweep : ?domains:int -> t -> input_indices:int array array -> int array
(** [exec_sweep p ~input_indices] evaluates every profile and returns
    the outputs in order. Profiles are sliced into {!max_lanes}-wide
    batches which run across the {!Par} domain pool. *)

(** {1 Debugging} *)

val disassemble : t -> string
(** Stable text listing (root first, then the law table) used by the
    pinned-bytecode golden test. *)
