(** Information costs of protocols (Definitions 5 and 6 of the paper),
    computed exactly from the protocol-tree semantics.

    - External information cost: [IC_mu(Pi) = I(Transcript ; X)] where
      [X ~ mu] is the joint input.
    - Conditional information cost: [CIC_mu(Pi) = I(Transcript ; X | D)]
      for a distribution [mu] on pairs [(X, D)] of inputs and an
      auxiliary variable. *)

module D = Prob.Dist_exact
module M = Infotheory.Measures.Exact_w

(** [external_ic tree mu] is [I(T ; X)] in bits, with [X ~ mu]. [memo]
    shares transcript laws with other measures over the same tree and
    input sweep ({!Semantics.memo}). *)
let external_ic ?memo tree mu =
  M.mutual_information (Semantics.joint ?memo tree mu)

(** [conditional_ic tree mu_xd] is [I(T ; X | D)] in bits, with
    [(X, D) ~ mu_xd]. *)
let conditional_ic ?memo tree mu_xd =
  (* Measures expects (a, b, c) with I(A ; B | C): here (x, t, d). *)
  let j =
    D.map
      (fun (x, d, t) -> (x, t, d))
      (Semantics.joint_with_aux ?memo tree mu_xd)
  in
  M.conditional_mutual_information j

(* See the interface for documentation. *)
let transcript_entropy ?memo tree mu =
  M.entropy (Semantics.transcript_law ?memo tree mu)

(** Two-party internal information cost,
    [I(T ; X_0 | X_1) + I(T ; X_1 | X_0)] — what each player learns about
    the other's input. The paper compresses to {e external} information
    because (as it notes) the internal notion of Braverman-Rao does not
    extend to the broadcast model beyond two players; for [k = 2] both
    exist and [internal <= external], with equality on product
    distributions — relations the test suite checks exactly.
    @raise Invalid_argument if some input vector is not 2-dimensional. *)
let internal_ic_two_party ?memo tree mu =
  let joint = Semantics.joint ?memo tree mu in
  List.iter
    (fun ((x, _t), _w) ->
      if Array.length x <> 2 then
        invalid_arg "Information.internal_ic_two_party: need k = 2")
    (D.to_alist joint);
  (* I(T ; X0 | X1): triples (x0, t, x1) *)
  let i0 =
    M.conditional_mutual_information
      (D.map (fun (x, t) -> (x.(0), t, x.(1))) joint)
  in
  let i1 =
    M.conditional_mutual_information
      (D.map (fun (x, t) -> (x.(1), t, x.(0))) joint)
  in
  i0 +. i1

(** Internal-style per-round decomposition of the external information
    cost via the chain rule (Section 6): [IC(Pi) = sum_j I(M_j ; X | M_<j)].
    Returns the per-round contributions, indexed by round; their sum
    equals [external_ic] up to float noise. We compute each term as the
    expected KL divergence between the speaker's true next-message law
    and the external observer's prediction, which is exactly the quantity
    the Lemma-7 compressor pays for. *)
let per_round_information tree mu =
  let module R = Exact.Rational in
  (* Walk the tree; at each Speak node reached with a set of weighted
     inputs (posterior over X given the path), the round's contribution
     is  sum_x w(x) * D( emit(x) || sum_x' w(x') emit(x') ). *)
  let contributions = ref [] in
  let rec go tree weighted depth prefix_prob =
    (* [weighted]: assoc list of (input, prob) — the joint restricted to
       this path, NOT normalized; [prefix_prob] is its total mass. *)
    if R.is_zero prefix_prob then ()
    else
      match tree with
      | Tree.Output _ -> ()
      | Tree.Chance { coin; children } ->
          List.iter
            (fun (c, wc) ->
              let weighted' =
                List.map (fun (x, w) -> (x, R.mul w wc)) weighted
              in
              go children.(c) weighted' depth (R.mul prefix_prob wc))
            (D.to_alist coin)
      | Tree.Speak { speaker; emit; children } ->
          (* Observer's prediction: mixture of emit over the posterior. *)
          let arity = Array.length children in
          let mix = Array.make arity R.zero in
          List.iter
            (fun (x, w) ->
              List.iter
                (fun (m, p) -> mix.(m) <- R.add mix.(m) (R.mul w p))
                (D.to_alist (emit x.(speaker))))
            weighted;
          (* Contribution of this node to round [depth]:
             sum_x w(x) sum_m emit(x)(m) log (emit(x)(m) * mass / mix(m)) *)
          let contrib = ref 0. in
          List.iter
            (fun (x, w) ->
              List.iter
                (fun (m, p) ->
                  let num = R.mul p prefix_prob in
                  let den = mix.(m) in
                  if not (R.is_zero num) then
                    contrib :=
                      !contrib
                      +. R.to_float (R.mul w p)
                         *. Exact.Rational.log2 (R.div num den))
                (D.to_alist (emit x.(speaker))))
            weighted;
          contributions := (depth, !contrib) :: !contributions;
          for m = 0 to arity - 1 do
            let weighted' =
              List.filter_map
                (fun (x, w) ->
                  let p = D.prob_of (emit x.(speaker)) m in
                  if R.is_zero p then None else Some (x, R.mul w p))
                weighted
            in
            go children.(m) weighted' (depth + 1) mix.(m)
          done
  in
  go tree (D.to_alist mu) 0 Exact.Rational.one;
  (* Collapse contributions by round index. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d, c) ->
      Hashtbl.replace tbl d (c +. Option.value ~default:0. (Hashtbl.find_opt tbl d)))
    !contributions;
  let max_round = Hashtbl.fold (fun d _ acc -> max d acc) tbl (-1) in
  Array.init (max_round + 1) (fun d ->
      Option.value ~default:0. (Hashtbl.find_opt tbl d))
