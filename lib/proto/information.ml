(** Information costs of protocols (Definitions 5 and 6 of the paper),
    computed exactly from the protocol-tree semantics.

    - External information cost: [IC_mu(Pi) = I(Transcript ; X)] where
      [X ~ mu] is the joint input.
    - Conditional information cost: [CIC_mu(Pi) = I(Transcript ; X | D)]
      for a distribution [mu] on pairs [(X, D)] of inputs and an
      auxiliary variable. *)

module D = Prob.Dist_exact
module M = Infotheory.Measures.Exact_w

(** [external_ic tree mu] is [I(T ; X)] in bits, with [X ~ mu]. [memo]
    shares transcript laws with other measures over the same tree and
    input sweep ({!Semantics.memo}). *)
let external_ic ?memo tree mu =
  M.mutual_information (Semantics.joint ?memo tree mu)

(** [conditional_ic tree mu_xd] is [I(T ; X | D)] in bits, with
    [(X, D) ~ mu_xd]. *)
let conditional_ic ?memo tree mu_xd =
  (* Measures expects (a, b, c) with I(A ; B | C): here (x, t, d). *)
  let j =
    D.map
      (fun (x, d, t) -> (x, t, d))
      (Semantics.joint_with_aux ?memo tree mu_xd)
  in
  M.conditional_mutual_information j

(* See the interface for documentation. *)
let transcript_entropy ?memo tree mu =
  M.entropy (Semantics.transcript_law ?memo tree mu)

(** {2 Orbit-engine entry points}

    The same three measures over the orbit-collapsed law ({!Orbit}):
    identical rational terms, regrouped by symmetry cells, so the
    exponential input sweep becomes polynomial for block-exchangeable
    input laws. The differential suite holds the two paths to exact
    rational equality of the collapsed joints. *)

let external_ic_orbit ?memo tree sym = Orbit.external_ic ?memo tree sym

let conditional_ic_orbit ?memo tree slices =
  Orbit.conditional_ic ?memo tree slices

let transcript_entropy_orbit ?memo tree sym =
  Orbit.transcript_entropy ?memo tree sym

(** Two-party internal information cost,
    [I(T ; X_0 | X_1) + I(T ; X_1 | X_0)] — what each player learns about
    the other's input. The paper compresses to {e external} information
    because (as it notes) the internal notion of Braverman-Rao does not
    extend to the broadcast model beyond two players; for [k = 2] both
    exist and [internal <= external], with equality on product
    distributions — relations the test suite checks exactly.
    @raise Invalid_argument if some input vector is not 2-dimensional. *)
let internal_ic_two_party ?memo tree mu =
  let joint = Semantics.joint ?memo tree mu in
  List.iter
    (fun ((x, _t), _w) ->
      if Array.length x <> 2 then
        invalid_arg "Information.internal_ic_two_party: need k = 2")
    (D.to_alist joint);
  (* I(T ; X0 | X1): triples (x0, t, x1) *)
  let i0 =
    M.conditional_mutual_information
      (D.map (fun (x, t) -> (x.(0), t, x.(1))) joint)
  in
  let i1 =
    M.conditional_mutual_information
      (D.map (fun (x, t) -> (x.(1), t, x.(0))) joint)
  in
  i0 +. i1

(** Internal-style per-round decomposition of the external information
    cost via the chain rule (Section 6): [IC(Pi) = sum_j I(M_j ; X | M_<j)].
    Returns the per-round contributions, indexed by round; their sum
    equals [external_ic] up to float noise. We compute each term as the
    expected KL divergence between the speaker's true next-message law
    and the external observer's prediction, which is exactly the quantity
    the Lemma-7 compressor pays for. *)
let per_round_information ?memo tree mu =
  let module R = Exact.Rational in
  (* Derived from the shared joint law: the round-j term
       I(M_j ; X | M_<j)
         = sum_{x,p,m} P(x,p,m) log2 (P(x,p,m) P(p) / (P(x,p) P(p,m)))
     where p ranges over board prefixes ending just before the j-th
     message (public coins included in p, not counted as rounds) and m
     over the message written next. All four masses are marginals of
     [Semantics.joint], so with [memo] this measure now shares the
     per-(node, inputs) transcript laws every other measure uses instead
     of re-evaluating emit closures along its own walk. Each term equals
     the old posterior-walk term [w(x) p log2 (p * P(p) / mix m)]. *)
  let joint = Semantics.joint ?memo tree mu in
  let bump tbl key w =
    Hashtbl.replace tbl key
      (R.add w (Option.value ~default:R.zero (Hashtbl.find_opt tbl key)))
  in
  (* Prefixes keyed in reversed order (cheap to extend); a prefix
     determines its round index, recorded alongside the (x, p, m) mass. *)
  let xp = Hashtbl.create 256 (* P(x, p) *)
  and p_ = Hashtbl.create 256 (* P(p) *)
  and pm = Hashtbl.create 256 (* P(p, m) *)
  and xpm = Hashtbl.create 256 (* (x, p, m) -> round, P(x, p, m) *) in
  List.iter
    (fun ((x, t), w) ->
      let rec go prefix_rev round = function
        | [] -> ()
        | (Tree.Coin _ as e) :: rest -> go (e :: prefix_rev) round rest
        | (Tree.Msg _ as e) :: rest ->
            bump xp (x, prefix_rev) w;
            bump p_ prefix_rev w;
            bump pm (prefix_rev, e) w;
            let key = (x, prefix_rev, e) in
            let _, acc =
              Option.value ~default:(round, R.zero) (Hashtbl.find_opt xpm key)
            in
            Hashtbl.replace xpm key (round, R.add acc w);
            go (e :: prefix_rev) (round + 1) rest
      in
      go [] 0 t)
    (D.to_alist joint);
  let max_round = Hashtbl.fold (fun _ (r, _) acc -> max r acc) xpm (-1) in
  let out = Array.make (max_round + 1) 0. in
  Hashtbl.iter
    (fun (x, p, m) (round, w_xpm) ->
      let w_p = Hashtbl.find p_ p
      and w_xp = Hashtbl.find xp (x, p)
      and w_pm = Hashtbl.find pm (p, m) in
      out.(round) <-
        out.(round)
        +. R.to_float w_xpm
           *. Exact.Rational.log2
                (R.div (R.mul w_xpm w_p) (R.mul w_xp w_pm)))
    xpm;
  out
