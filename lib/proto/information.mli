(** Information costs of protocols (Definitions 5 and 6 of the paper),
    computed exactly from the protocol-tree semantics. *)

val external_ic :
  ?memo:Semantics.memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t -> float
(** [external_ic tree mu] is the external information cost
    [IC_mu(Pi) = I(T ; X)] in bits, [X ~ mu] (Definition 5). [memo]
    shares the underlying transcript laws with other measures computed
    over the same tree and input sweep ({!Semantics.memo}). *)

val conditional_ic :
  ?memo:Semantics.memo ->
  'a Tree.t -> ('a array * 'd) Prob.Dist_exact.t -> float
(** [conditional_ic tree mu_xd] is the conditional information cost
    [CIC_mu(Pi) = I(T ; X | D)] in bits, [(X, D) ~ mu_xd]
    (Definition 6). *)

val transcript_entropy :
  ?memo:Semantics.memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t -> float
(** [H(T)] under [mu]; satisfies [IC <= H(T)], and [H(T) <= CC] for
    protocols without public coins (free coins inflate the transcript's
    entropy but not its cost) — the observation right after Definition 5
    that makes information a lower bound on communication. *)

val internal_ic_two_party :
  ?memo:Semantics.memo -> 'a Tree.t -> 'a array Prob.Dist_exact.t -> float
(** Two-party internal information cost
    [I(T ; X_0 | X_1) + I(T ; X_1 | X_0)]. The paper's compression
    targets {e external} information because the internal notion does
    not extend to the broadcast model beyond two players; for [k = 2]
    both exist with [internal <= external] (equality on product
    distributions). @raise Invalid_argument unless inputs are pairs. *)

val per_round_information :
  ?memo:Semantics.memo ->
  'a Tree.t -> 'a array Prob.Dist_exact.t -> float array
(** The chain-rule decomposition of Section 6:
    [IC(Pi) = sum_j I(M_j ; X | M_<j)], returned per round. Each term is
    the expected KL divergence between the speaker's true next-message
    law and the external observer's prediction — exactly the quantity
    the Lemma-7 compressor pays per round. Sums to {!external_ic} up to
    float rounding. Computed from {!Semantics.joint}, so [memo] shares
    the transcript laws with the other measures. *)

(** {2 Orbit engine}

    The same measures over the orbit-collapsed joint law ({!Orbit}):
    exact regrouping of the rational sum by symmetry cells, polynomial
    instead of exponential in the player count for block-exchangeable
    input laws ({!Prob.Symdist}). *)

val external_ic_orbit :
  ?memo:Orbit.memo -> 'a Tree.t -> 'a Prob.Symdist.t -> float
(** [I(T ; X)] via the orbit engine. *)

val conditional_ic_orbit :
  ?memo:Orbit.memo ->
  'a Tree.t ->
  (Exact.Rational.t * 'a Prob.Symdist.t) list ->
  float
(** [I(T ; X | D)] from the conditional input law per value of [D]
    (e.g. {!Protocols.Hard_dist} orbit slices, one per special
    player). *)

val transcript_entropy_orbit :
  ?memo:Orbit.memo -> 'a Tree.t -> 'a Prob.Symdist.t -> float
(** [H(T)] via the orbit engine. *)
