(** Theorem 3: amortized compression of many parallel copies.

    Given [n] independent inputs drawn from [mu], the players run [n]
    copies of the protocol {e in parallel, round by round}: at each
    round, the messages of all copies (whose current speaker coincides)
    are transmitted {e jointly} by one invocation of the Lemma-7 point
    sampler over the product universe. The per-round divergence adds up
    across copies to the round's information cost, while the
    [O(log(...))] overhead of the sampler is paid once per round — not
    once per copy — which is exactly why the per-copy cost converges to
    [IC_mu(Pi)] as [n] grows.

    The simulation is literal (the actual point process is run), so the
    product universe must stay enumerable: [prod arities <= 2^max_log_u]
    per transmission. With binary messages this allows a few dozen
    parallel copies — enough to exhibit the convergence. *)

module T = Proto.Tree

type run = {
  copies : int;
  total_bits : int;
  per_copy_bits : float;
  rounds : int;  (** parallel rounds executed *)
  transmissions : int;  (** point-sampler invocations *)
  aborted : int;  (** transmissions that hit the fallback path *)
  outputs : int array;  (** per-copy protocol outputs *)
  agreed : bool;  (** every decoder matched every speaker *)
}

let max_log_u = 20

(* D(eta || nu) in bits — only evaluated when a trace sink is
   installed, to label each transmission with the divergence budget it
   is entitled to spend (Lemma 7). *)
let divergence_bits eta nu =
  let d = ref 0. in
  Array.iteri
    (fun i p -> if p > 0. then d := !d +. (p *. Float.log2 (p /. nu.(i))))
    eta;
  !d

let mixed_radix_encode arities values =
  let code = ref 0 in
  Array.iteri (fun i v -> code := (!code * arities.(i)) + v) values;
  !code

let mixed_radix_decode arities code =
  let n = Array.length arities in
  let values = Array.make n 0 in
  let c = ref code in
  for i = n - 1 downto 0 do
    values.(i) <- !c mod arities.(i);
    c := !c / arities.(i)
  done;
  values

(** [compress_parallel ~seed ~tree ~mu ~inputs ()] runs the compressed
    [n]-fold protocol on the given per-copy inputs (each an array of
    per-player inputs). *)
let compress_parallel ?(eps = 0.01) ~seed ~tree ~mu ~inputs () =
  let copies = Array.length inputs in
  if copies = 0 then invalid_arg "Amortized.compress_parallel: no copies";
  let public = Blackboard.Runtime.public_rng ~seed in
  let writer = Coding.Bitbuf.Writer.create () in
  let observers = Array.map (fun _ -> Observer.create tree mu) inputs in
  let rounds = ref 0 in
  let transmissions = ref 0 in
  let aborted = ref 0 in
  let agreed = ref true in
  let max_blocks = Point_sampler.default_max_blocks eps in
  let any_active () = Array.exists (fun o -> not (Observer.finished o)) observers in
  (* Resolve chance nodes with shared public coins until every active
     copy sits at a Speak node. *)
  let settle_chance () =
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun c o ->
          match Observer.chance_view o with
          | Some law ->
              let coin_rng = Prob.Rng.split public in
              let x = ref (Prob.Rng.float coin_rng) in
              let pick = ref 0 in
              (try
                 Array.iteri
                   (fun i p ->
                     if !x < p then begin
                       pick := i;
                       raise Exit
                     end
                     else x := !x -. p)
                   law
               with Exit -> ());
              observers.(c) <- Observer.advance_coin o !pick;
              changed := true
          | None -> ())
        observers
    done
  in
  while any_active () do
    incr rounds;
    let traced = Obs.Trace.enabled () in
    if traced then Obs.Trace.emit (Obs.Event.Round_start { round = !rounds });
    let round_mark = Coding.Bitbuf.Writer.length writer in
    settle_chance ();
    (* Group active copies by speaker. *)
    let groups = Hashtbl.create 4 in
    Array.iteri
      (fun c o ->
        match Observer.speak_view o with
        | Some (speaker, _, _) ->
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt groups speaker)
            in
            Hashtbl.replace groups speaker (c :: existing)
        | None -> ())
      observers;
    let speakers = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) groups []) in
    List.iter
      (fun speaker ->
        let group = List.rev (Hashtbl.find groups speaker) in
        let group = Array.of_list group in
        let arities = Array.make (Array.length group) 0 in
        let etas = Array.make (Array.length group) [||] in
        let nus = Array.make (Array.length group) [||] in
        Array.iteri
          (fun gi c ->
            match Observer.speak_view observers.(c) with
            | Some (_, arity, nu) ->
                arities.(gi) <- arity;
                nus.(gi) <- nu;
                etas.(gi) <- Observer.speaker_eta observers.(c) inputs.(c).(speaker)
            | None -> assert false)
          group;
        let log_u =
          Array.fold_left
            (fun acc a -> acc +. Float.log2 (float_of_int a))
            0. arities
        in
        if log_u > float_of_int max_log_u then
          invalid_arg
            "Amortized.compress_parallel: product universe too large \
             (reduce copies)";
        let u =
          Array.fold_left (fun acc a -> acc * a) 1 arities
        in
        (* Product eta and nu over the group's joint message. *)
        let eta = Array.make u 0. and nu = Array.make u 0. in
        for code = 0 to u - 1 do
          let values = mixed_radix_decode arities code in
          let pe = ref 1. and pn = ref 1. in
          Array.iteri
            (fun gi v ->
              pe := !pe *. etas.(gi).(v);
              pn := !pn *. nus.(gi).(v))
            values;
          eta.(code) <- !pe;
          nu.(code) <- !pn
        done;
        if traced then
          Obs.Trace.emit
            (Obs.Event.Sampler_budget
               { divergence = divergence_bits eta nu; eps });
        (* Fresh shared round stream; the decoder gets an equal copy. *)
        let round_rng = Prob.Rng.split public in
        let decoder_rng = Prob.Rng.copy round_rng in
        let reader_mark = Coding.Bitbuf.Writer.length writer in
        let res =
          Point_sampler.transmit ~rng:round_rng ~eta ~nu ~eps ~max_blocks
            writer
        in
        incr transmissions;
        if res.aborted then incr aborted;
        (* Run the honest decoder on the bits just written: slice the
           round out of the stream writer as a packed vector (no per-bit
           boxing of the whole history). *)
        let round_vec =
          Coding.Bitbuf.Writer.extract writer ~pos:reader_mark
            ~len:(Coding.Bitbuf.Writer.length writer - reader_mark)
        in
        let reader = Coding.Bitbuf.Reader.of_vec round_vec in
        let decoded =
          Point_sampler.decode ~rng:decoder_rng ~nu ~u ~max_blocks reader
        in
        if decoded <> res.sent then agreed := false;
        (* Advance every copy in the group on its component message. *)
        let values = mixed_radix_decode arities res.sent in
        Array.iteri
          (fun gi c ->
            observers.(c) <- Observer.advance_msg observers.(c) values.(gi))
          group)
      speakers;
    settle_chance ();
    if traced then
      Obs.Trace.emit
        (Obs.Event.Round_end
           {
             round = !rounds;
             bits = Coding.Bitbuf.Writer.length writer - round_mark;
           })
  done;
  let total_bits = Coding.Bitbuf.Writer.length writer in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "amortized.rounds" !rounds;
    Obs.Metrics.bump "amortized.transmissions" !transmissions;
    Obs.Metrics.bump "amortized.aborts" !aborted;
    Obs.Metrics.bump "amortized.bits" total_bits
  end;
  {
    copies;
    total_bits;
    per_copy_bits = float_of_int total_bits /. float_of_int copies;
    rounds = !rounds;
    transmissions = !transmissions;
    aborted = !aborted;
    outputs = Array.map Observer.output_exn observers;
    agreed = !agreed;
  }

(** Like {!compress_parallel} but driven by the cost-faithful
    {!Factored_sampler}, so the number of copies is unbounded by the
    product-universe size (hundreds of copies are fine). No honest
    decoder runs (there are no literal points to replay), so [agreed]
    is reported true; the two simulators are cross-validated at small
    sizes by the test suite. *)
let compress_parallel_factored ?(eps = 0.01) ~seed ~tree ~mu ~inputs () =
  let copies = Array.length inputs in
  if copies = 0 then invalid_arg "Amortized.compress_parallel_factored";
  let public = Blackboard.Runtime.public_rng ~seed in
  let writer = Coding.Bitbuf.Writer.create () in
  let observers = Array.map (fun _ -> Observer.create tree mu) inputs in
  let rounds = ref 0 in
  let transmissions = ref 0 in
  let aborted = ref 0 in
  let any_active () = Array.exists (fun o -> not (Observer.finished o)) observers in
  let settle_chance () =
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun c o ->
          match Observer.chance_view o with
          | Some law ->
              let coin_rng = Prob.Rng.split public in
              let x = ref (Prob.Rng.float coin_rng) in
              let pick = ref 0 in
              (try
                 Array.iteri
                   (fun i p ->
                     if !x < p then begin
                       pick := i;
                       raise Exit
                     end
                     else x := !x -. p)
                   law
               with Exit -> ());
              observers.(c) <- Observer.advance_coin o !pick;
              changed := true
          | None -> ())
        observers
    done
  in
  while any_active () do
    incr rounds;
    let traced = Obs.Trace.enabled () in
    if traced then Obs.Trace.emit (Obs.Event.Round_start { round = !rounds });
    let round_mark = Coding.Bitbuf.Writer.length writer in
    settle_chance ();
    let groups = Hashtbl.create 4 in
    Array.iteri
      (fun c o ->
        match Observer.speak_view o with
        | Some (speaker, _, _) ->
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt groups speaker)
            in
            Hashtbl.replace groups speaker (c :: existing)
        | None -> ())
      observers;
    let speakers =
      List.sort compare (Hashtbl.fold (fun sp _ acc -> sp :: acc) groups [])
    in
    List.iter
      (fun speaker ->
        let group = Array.of_list (List.rev (Hashtbl.find groups speaker)) in
        let etas =
          Array.map
            (fun c -> Observer.speaker_eta observers.(c) inputs.(c).(speaker))
            group
        in
        let nus =
          Array.map
            (fun c ->
              match Observer.speak_view observers.(c) with
              | Some (_, _, nu) -> nu
              | None -> assert false)
            group
        in
        if traced then begin
          (* Product-law divergence adds across the group's factors. *)
          let d = ref 0. in
          Array.iteri
            (fun gi eta -> d := !d +. divergence_bits eta nus.(gi))
            etas;
          Obs.Trace.emit
            (Obs.Event.Sampler_budget { divergence = !d; eps })
        end;
        let round_rng = Prob.Rng.split public in
        let res =
          Factored_sampler.transmit ~rng:round_rng ~etas ~nus ~eps writer
        in
        incr transmissions;
        if res.Factored_sampler.aborted then incr aborted;
        Array.iteri
          (fun gi c ->
            observers.(c) <-
              Observer.advance_msg observers.(c) res.Factored_sampler.sent.(gi))
          group)
      speakers;
    settle_chance ();
    if traced then
      Obs.Trace.emit
        (Obs.Event.Round_end
           {
             round = !rounds;
             bits = Coding.Bitbuf.Writer.length writer - round_mark;
           })
  done;
  let total_bits = Coding.Bitbuf.Writer.length writer in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.bump "amortized.rounds" !rounds;
    Obs.Metrics.bump "amortized.transmissions" !transmissions;
    Obs.Metrics.bump "amortized.aborts" !aborted;
    Obs.Metrics.bump "amortized.bits" total_bits
  end;
  {
    copies;
    total_bits;
    per_copy_bits = float_of_int total_bits /. float_of_int copies;
    rounds = !rounds;
    transmissions = !transmissions;
    aborted = !aborted;
    outputs = Array.map Observer.output_exn observers;
    agreed = true;
  }

let draw_inputs ~seed ~mu ~copies =
  let sampler = Prob.Sampler.create (Prob.Dist_exact.to_float_dist mu) in
  let rng = Prob.Rng.of_int_seed (seed * 7919) in
  Array.init copies (fun _ -> Prob.Sampler.draw sampler rng)

(** Draw [copies] iid inputs from [mu] (by its float image) and run the
    compressed protocol; convenience for experiments. *)
let compress_random ?(eps = 0.01) ~seed ~tree ~mu ~copies () =
  let inputs = draw_inputs ~seed ~mu ~copies in
  (compress_parallel ~eps ~seed ~tree ~mu ~inputs (), inputs)

(** {!compress_random} on the factored simulator. *)
let compress_random_factored ?(eps = 0.01) ~seed ~tree ~mu ~copies () =
  let inputs = draw_inputs ~seed ~mu ~copies in
  (compress_parallel_factored ~eps ~seed ~tree ~mu ~inputs (), inputs)
