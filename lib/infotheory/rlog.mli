(** Certified rational bounds on base-2 logarithms.

    Brackets [log2 x] of a positive rational between two rationals using
    only {!Exact.Bigint} arithmetic — the primitive that keeps floats off
    the static information-cost certification path ({!Analysis.Infoflow}).
    Both bounds are sound: [log2_lo x <= log2 x <= log2_hi x], with
    interval width [O(2^-prec)] and width exactly zero when [x] is a
    power of two. *)

val default_prec : int
(** Fractional bits extracted by default (16). *)

val floor_log2 : Exact.Rational.t -> int
(** Exact [floor (log2 x)] for [x > 0].
    @raise Invalid_argument on non-positive input. *)

val log2_bounds :
  ?prec:int -> Exact.Rational.t -> Exact.Rational.t * Exact.Rational.t
(** [log2_bounds ~prec x] is a pair [(lo, hi)] of rationals with
    [lo <= log2 x <= hi] and [hi - lo] a few units of [2^-prec].
    Exact powers of two yield [lo = hi] for any [prec].
    @raise Invalid_argument if [x <= 0] or [prec < 1]. *)

val log2_lo : ?prec:int -> Exact.Rational.t -> Exact.Rational.t
val log2_hi : ?prec:int -> Exact.Rational.t -> Exact.Rational.t
