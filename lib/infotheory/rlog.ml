(** Certified rational bounds on base-2 logarithms.

    The information quantities of {!Measures} take float logarithms at
    the very end, which is fine for reporting but useless for {e
    certification}: a sound static bound on information cost must be a
    rational the checker can compare exactly. This module brackets
    [log2 x] of a positive rational [x] between two rationals whose gap
    shrinks like [2^-prec], using only {!Exact.Bigint} arithmetic — no
    floats anywhere.

    The algorithm is classical digit extraction: write
    [x = 2^e * m] with [m in [1, 2)], then repeatedly square a dyadic
    approximation of [m], emitting one bit of the fractional part of
    [log2 m] per squaring. The lower pass rounds every intermediate
    {e down} and the upper pass rounds every intermediate {e up}, so
    each side is sound by monotonicity of [log2] and of squaring on
    positives; the upper pass additionally pays a terminal slack of
    [excess * 2^-prec] for the residual magnitude of its accumulator.
    Exact powers of two short-circuit to a width-zero interval. *)

module B = Exact.Bigint
module R = Exact.Rational

let default_prec = 16

(* Compare a positive rational [num/den] against [2^k] without
   materializing huge intermediates on the wrong side: shift whichever
   side the exponent sign points at. *)
let cmp_pow2 ~num ~den k =
  if k >= 0 then B.compare num (B.shift_left den k)
  else B.compare (B.shift_left num (-k)) den

let floor_log2 x =
  if R.sign x <= 0 then invalid_arg "Rlog.floor_log2: need x > 0";
  let num = R.num x and den = R.den x in
  (* log2 x is within 1 of num_bits num - num_bits den; settle the
     boundary by one exact comparison. *)
  let e = B.num_bits num - B.num_bits den in
  if cmp_pow2 ~num ~den e >= 0 then e else e - 1

let is_pow2 b = B.sign b > 0 && B.equal b (B.shift_left B.one (B.num_bits b - 1))

(* [m_num / m_den] is the mantissa [x / 2^e], in [1, 2). *)
let mantissa x e =
  let num = R.num x and den = R.den x in
  if e >= 0 then (num, B.shift_left den e) else (B.shift_left num (-e), den)

let log2_bounds ?(prec = default_prec) x =
  if R.sign x <= 0 then invalid_arg "Rlog.log2_bounds: need x > 0";
  if prec < 1 then invalid_arg "Rlog.log2_bounds: need prec >= 1";
  let num = R.num x and den = R.den x in
  if is_pow2 num && is_pow2 den then
    (* Exact dyadic point: log2 is the exact integer exponent. *)
    let e = R.of_int (B.num_bits num - B.num_bits den) in
    (e, e)
  else begin
    let e = floor_log2 x in
    let m_num, m_den = mantissa x e in
    (* Working precision: [guard] extra bits absorb the relative error
       that doubles with every squaring, so the terminal slack stays at
       a few ulps of 2^-prec. *)
    let guard = 6 in
    let p = prec + guard in
    let one_p = B.shift_left B.one p in
    let two_p = B.shift_left B.one (p + 1) in
    let floor_div a b = fst (B.div_mod a b) in
    let ceil_div a b =
      let q, r = B.div_mod a b in
      if B.is_zero r then q else B.add q B.one
    in
    (* Accumulated fraction bits as an integer over 2^prec. *)
    let frac_of bits = R.make bits (B.shift_left B.one prec) in
    (* Lower pass: every rounding downward, so the emitted fraction
       never exceeds the true one. *)
    let lower =
      let y = ref (floor_div (B.shift_left m_num p) m_den) in
      let bits = ref B.zero in
      for _ = 1 to prec do
        bits := B.shift_left !bits 1;
        y := B.shift_right (B.mul !y !y) p;
        if B.compare !y two_p >= 0 then begin
          bits := B.add !bits B.one;
          y := B.shift_right !y 1
        end
      done;
      R.add (R.of_int e) (frac_of !bits)
    in
    (* Upper pass: every rounding upward; the leftover magnitude of the
       accumulator is paid for by an [excess * 2^-prec] slack. *)
    let upper =
      let u = ref (ceil_div (B.mul m_num one_p) m_den) in
      let bits = ref B.zero in
      for _ = 1 to prec do
        bits := B.shift_left !bits 1;
        u := ceil_div (B.mul !u !u) one_p;
        if B.compare !u two_p >= 0 then begin
          bits := B.add !bits B.one;
          u := ceil_div !u (B.of_int 2)
        end
      done;
      (* log2(u / 2^p) <= num_bits u - p for u >= 2^p. *)
      let excess = max 0 (B.num_bits !u - p) in
      R.add (R.of_int e)
        (R.add (frac_of !bits) (frac_of (B.of_int excess)))
    in
    (lower, upper)
  end

let log2_lo ?prec x = fst (log2_bounds ?prec x)
let log2_hi ?prec x = snd (log2_bounds ?prec x)
