(** Command-line interface to the broadcast-model toolkit.

    Subcommands:
    - [disj]: run a set-disjointness protocol on a generated instance
      and report the answer, bit count, and per-cycle trace.
    - [info]: compute exact information quantities of an AND_k protocol.
    - [compress]: run the Theorem-3 amortized compression and report the
      per-copy cost against the exact information cost.
    - [sample]: exercise the Lemma-7 point sampler and report measured
      cost against the divergence.
    - [lint]: run the proto-lint static analyzer over every protocol in
      the registry and print a diagnostics table. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* disj                                                                *)
(* ------------------------------------------------------------------ *)

let disj_cmd =
  let run n k protocol instance seed threshold naive_encoding verbose =
    let rng = Prob.Rng.of_int_seed seed in
    let inst =
      match instance with
      | "disjoint" -> Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k
      | "intersecting" ->
          Protocols.Disj_common.random_intersecting rng ~n ~k ~witnesses:1
      | "dense" -> Protocols.Disj_common.random_dense rng ~n ~k ~density:0.7
      | "full" -> Protocols.Disj_common.all_full ~n ~k
      | "empty" -> Protocols.Disj_common.all_empty ~n ~k
      | other -> failwith ("unknown instance kind: " ^ other)
    in
    let truth = Protocols.Disj_common.disjoint inst in
    let result =
      match protocol with
      | "batched" ->
          let encoding =
            if naive_encoding then Protocols.Disj_batched.NaiveFixed
            else Protocols.Disj_batched.Combinatorial
          in
          let r = Protocols.Disj_batched.solve ~encoding ?threshold inst in
          if verbose then
            List.iter
              (fun t ->
                Printf.printf "cycle %d [%s]: z=%d contributors=%d bits=%d\n"
                  t.Protocols.Disj_batched.cycle
                  (if t.Protocols.Disj_batched.phase_high then "batch" else "final")
                  t.Protocols.Disj_batched.z_start
                  t.Protocols.Disj_batched.contributions
                  t.Protocols.Disj_batched.bits_in_cycle)
              r.Protocols.Disj_batched.trace;
          r.Protocols.Disj_batched.result
      | "naive" -> Protocols.Disj_naive.solve inst
      | "trivial" -> Protocols.Disj_trivial.solve inst
      | other -> failwith ("unknown protocol: " ^ other)
    in
    Printf.printf "protocol=%s n=%d k=%d: answer=%s (truth=%s) bits=%d messages=%d cycles=%d\n"
      protocol n k
      (if result.Protocols.Disj_common.answer then "disjoint" else "non-disjoint")
      (if truth then "disjoint" else "non-disjoint")
      result.Protocols.Disj_common.bits result.Protocols.Disj_common.messages
      result.Protocols.Disj_common.cycles;
    Printf.printf "cost shapes: n*lg(k)+k = %.0f   n*lg(n)+k = %.0f   n*k = %d\n"
      (Protocols.Disj_batched.cost_model ~n ~k)
      (Protocols.Disj_naive.cost_model ~n ~k)
      (n * k);
    if result.Protocols.Disj_common.answer <> truth then exit 2
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Universe size.") in
  let k = Arg.(value & opt int 16 & info [ "k" ] ~doc:"Number of players.") in
  let protocol =
    Arg.(value & opt string "batched"
         & info [ "p"; "protocol" ] ~doc:"batched | naive | trivial.")
  in
  let instance =
    Arg.(value & opt string "disjoint"
         & info [ "i"; "instance" ]
             ~doc:"disjoint | intersecting | dense | full | empty.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let threshold =
    Arg.(value & opt (some int) None
         & info [ "threshold" ] ~doc:"Phase-switch threshold (default k^2).")
  in
  let naive_encoding =
    Arg.(value & flag
         & info [ "naive-encoding" ]
             ~doc:"Use fixed-width coordinates instead of the subset code.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the cycle trace.")
  in
  Cmd.v
    (Cmd.info "disj" ~doc:"Run a multi-party set-disjointness protocol.")
    Term.(
      const run $ n $ k $ protocol $ instance $ seed $ threshold
      $ naive_encoding $ verbose)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run k protocol noise =
    let tree =
      match protocol with
      | "sequential" -> Protocols.And_protocols.sequential k
      | "broadcast" -> Protocols.And_protocols.broadcast_all k
      | "noisy" ->
          Protocols.And_protocols.noisy_sequential ~k
            ~noise:(Exact.Rational.of_float_dyadic noise)
      | other -> failwith ("unknown protocol: " ^ other)
    in
    let mu = Protocols.Hard_dist.mu_and ~k in
    let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
    let err =
      Proto.Semantics.worst_case_error tree ~f:Protocols.Hard_dist.and_fn
        (Proto.Semantics.all_bit_inputs k)
    in
    Printf.printf "protocol %s, k = %d (hard distribution of Section 4.1)\n"
      protocol k;
    Printf.printf "  CC (worst case)        = %d bits\n"
      (Proto.Tree.communication_cost tree);
    Printf.printf "  worst-case error       = %s\n" (Exact.Rational.to_string err);
    Printf.printf "  IC_mu   = I(T;X)       = %.4f bits\n"
      (Proto.Information.external_ic tree mu);
    Printf.printf "  CIC_mu  = I(T;X|Z)     = %.4f bits\n"
      (Proto.Information.conditional_ic tree mu_aux);
    Printf.printf "  H(T)                   = %.4f bits\n"
      (Proto.Information.transcript_entropy tree mu);
    Printf.printf "  log2 k                 = %.4f bits\n"
      (Float.log2 (float_of_int k));
    let rounds = Proto.Information.per_round_information tree mu in
    Printf.printf "  per-round information  = [%s]\n"
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%.4f") rounds)))
  in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"Number of players (<= ~12).") in
  let protocol =
    Arg.(value & opt string "sequential"
         & info [ "p"; "protocol" ] ~doc:"sequential | broadcast | noisy.")
  in
  let noise =
    Arg.(value & opt float 0.05
         & info [ "noise" ] ~doc:"Flip probability for the noisy protocol.")
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Exact information quantities of an AND_k protocol.")
    Term.(const run $ k $ protocol $ noise)

(* ------------------------------------------------------------------ *)
(* compress                                                            *)
(* ------------------------------------------------------------------ *)

let compress_cmd =
  let run k copies seed eps =
    let tree = Protocols.And_protocols.sequential k in
    let mu = Protocols.Hard_dist.mu_and ~k in
    let ic = Proto.Information.external_ic tree mu in
    let result, _ =
      Compress.Amortized.compress_random ~eps ~seed ~tree ~mu ~copies ()
    in
    Printf.printf
      "compressed %d copies of sequential AND_%d: %d bits total, %.3f/copy\n"
      copies k result.Compress.Amortized.total_bits
      result.Compress.Amortized.per_copy_bits;
    Printf.printf "exact IC = %.3f bits; overhead = %.3f bits/copy\n" ic
      (result.Compress.Amortized.per_copy_bits -. ic);
    Printf.printf "rounds=%d transmissions=%d aborts=%d decoders agreed=%b\n"
      result.Compress.Amortized.rounds result.Compress.Amortized.transmissions
      result.Compress.Amortized.aborted result.Compress.Amortized.agreed
  in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Players.") in
  let copies =
    Arg.(value & opt int 8
         & info [ "copies" ] ~doc:"Parallel copies (product universe <= 2^20).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let eps = Arg.(value & opt float 0.01 & info [ "eps" ] ~doc:"Sampler failure budget.") in
  Cmd.v
    (Cmd.info "compress" ~doc:"Theorem-3 amortized compression demo.")
    Term.(const run $ k $ copies $ seed $ eps)

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let run u p0 eps trials =
    let rest = (1. -. p0) /. float_of_int (u - 1) in
    let eta = Array.init u (fun i -> if i = 0 then p0 else rest) in
    let nu = Array.make u (1. /. float_of_int u) in
    let d =
      Array.to_list eta
      |> List.mapi (fun i p ->
             if p > 0. then p *. Float.log2 (p /. nu.(i)) else 0.)
      |> List.fold_left ( +. ) 0.
    in
    let bits = ref 0 and aborts = ref 0 in
    for seed = 0 to trials - 1 do
      let rng = Prob.Rng.of_int_seed seed in
      let round = Prob.Rng.split rng in
      let w = Coding.Bitbuf.Writer.create () in
      let res = Compress.Point_sampler.transmit ~rng:round ~eta ~nu ~eps w in
      bits := !bits + res.Compress.Point_sampler.bits;
      if res.Compress.Point_sampler.aborted then incr aborts
    done;
    Printf.printf
      "u=%d D(eta||nu)=%.3f: mean cost %.3f bits over %d trials (aborts %d)\n"
      u d
      (float_of_int !bits /. float_of_int trials)
      trials !aborts;
    Printf.printf "model: D + O(log D + log 1/eps) = %.3f\n"
      (Compress.Point_sampler.cost_model ~divergence:d ~eps)
  in
  let u = Arg.(value & opt int 256 & info [ "u" ] ~doc:"Universe size.") in
  let p0 =
    Arg.(value & opt float 0.9
         & info [ "p0" ] ~doc:"Mass eta places on symbol 0 (controls D).")
  in
  let eps = Arg.(value & opt float 0.01 & info [ "eps" ] ~doc:"Failure budget.") in
  let trials = Arg.(value & opt int 500 & info [ "trials" ] ~doc:"Trials.") in
  Cmd.v
    (Cmd.info "sample" ~doc:"Lemma-7 point-sampling cost measurement.")
    Term.(const run $ u $ p0 $ eps $ trials)

(* ------------------------------------------------------------------ *)
(* or                                                                  *)
(* ------------------------------------------------------------------ *)

let or_cmd =
  let run n k owners seed =
    let rng = Prob.Rng.of_int_seed seed in
    let sets = Array.init k (fun _ -> Array.make n false) in
    let ones = ref 0 in
    for j = 0 to n - 1 do
      if owners > 0 then begin
        incr ones;
        for _ = 1 to owners do
          sets.(Prob.Rng.int rng k).(j) <- true
        done
      end
    done;
    let inst = Protocols.Disj_common.make ~n sets in
    let r = Protocols.Pointwise_or.solve inst in
    let trivial = Protocols.Pointwise_or.solve_trivial inst in
    if r.Protocols.Pointwise_or.output <> Protocols.Pointwise_or.reference inst
    then begin
      prerr_endline "pointwise-OR protocol returned a wrong vector";
      exit 2
    end;
    Printf.printf
      "pointwise-OR n=%d k=%d (%d one-coordinates): %d bits in %d cycles\n" n k
      !ones r.Protocols.Pointwise_or.bits r.Protocols.Pointwise_or.cycles;
    Printf.printf "trivial broadcast: %d bits; model t*lg(k)+k = %.0f\n"
      trivial.Protocols.Pointwise_or.bits
      (Protocols.Pointwise_or.cost_model ~ones:!ones ~k)
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Universe size.") in
  let k = Arg.(value & opt int 16 & info [ "k" ] ~doc:"Players.") in
  let owners =
    Arg.(value & opt int 1
         & info [ "owners" ] ~doc:"Random 1-owners per coordinate (0 = all-zero).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "or" ~doc:"Run the batched pointwise-OR protocol.")
    Term.(const run $ n $ k $ owners $ seed)

(* ------------------------------------------------------------------ *)
(* oneshot                                                             *)
(* ------------------------------------------------------------------ *)

let oneshot_cmd =
  let run k =
    let tree = Protocols.And_protocols.sequential k in
    let mu =
      Prob.Dist_exact.iid k
        (Prob.Dist_exact.of_weighted
           [ (0, Exact.Rational.of_ints 1 k);
             (1, Exact.Rational.of_ints (k - 1) k) ])
    in
    let h = Proto.Information.transcript_entropy tree mu in
    let inter =
      Compress.Oneshot.expected_bits_exact ~single_stream:false ~tree ~mu
    in
    let omni =
      Compress.Oneshot.expected_bits_exact ~single_stream:true ~tree ~mu
    in
    Printf.printf "sequential AND_%d under product mu (Pr[0] = 1/k):\n" k;
    Printf.printf "  CC = %d bits; H(T) = IC = %.4f bits\n"
      (Proto.Tree.communication_cost tree) h;
    Printf.printf "  omniscient single-stream coding:   %.3f bits (~ H(T) + O(1))\n" omni;
    Printf.printf "  interactive per-message coding:    %.3f bits (flush tax)\n" inter;
    Printf.printf
      "The interactive coder is a legal protocol but pays O(1)/message;\n";
    Printf.printf
      "the omniscient one reaches the entropy but is not a legal protocol —\n";
    Printf.printf "the Section-6 one-shot gap, operationally.\n"
  in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Players (<= ~12).") in
  Cmd.v
    (Cmd.info "oneshot"
       ~doc:"Measure the one-shot entropy-coding gap (E12).")
    Term.(const run $ k)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let module Reg = Protocols.Registry in
  let module An = Analysis.Analyzer in
  let module Rep = Analysis.Report in
  let lint_entry ~budget
      (Reg.Entry { players; declared_cost; domain; tree; _ }) =
    let tree = Lazy.force tree in
    let report =
      An.analyze ~players ?declared_cost ?state_budget:budget ~domain tree
    in
    (Proto.Tree.communication_cost tree, report)
  in
  let run strict budget only =
    let entries = Reg.all () in
    let entries =
      match only with
      | [] -> entries
      | names ->
          List.map
            (fun n ->
              match Reg.find n with
              | Some e -> e
              | None ->
                  Printf.eprintf "lint: unknown protocol %S; known: %s\n" n
                    (String.concat ", " (Reg.names ()));
                  exit 2)
            names
    in
    let results =
      List.map (fun e -> (e, lint_entry ~budget e)) entries
    in
    Printf.printf "%-28s %7s %4s %6s %5s  %s\n" "protocol" "players" "CC"
      "errors" "warns" "status";
    List.iter
      (fun (e, (cc, report)) ->
        let errs = Rep.count_severity Rep.Error report in
        let warns = Rep.count_severity Rep.Warning report in
        let status =
          if errs > 0 then "FAIL"
          else if warns > 0 then "warn"
          else "ok"
        in
        Printf.printf "%-28s %7d %4d %6d %5d  %s\n" (Reg.name e)
          (Reg.players e) cc errs warns status)
      results;
    let dirty =
      List.filter (fun (_, (_, r)) -> not (Rep.is_clean r)) results
    in
    List.iter
      (fun (e, (_, report)) ->
        Printf.printf "\n%s:\n" (Reg.name e);
        List.iter
          (fun d -> Format.printf "  %a@." Rep.pp_diagnostic d)
          (Rep.sorted report))
      dirty;
    let code =
      List.fold_left
        (fun acc (_, (_, r)) -> max acc (Rep.exit_code ~strict r))
        0 results
    in
    if code <> 0 then exit code
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ]
             ~doc:"State-space node budget for the exact-semantics estimate.")
  in
  let only =
    Arg.(value & pos_all string []
         & info [] ~docv:"PROTOCOL" ~doc:"Lint only the named protocols.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze every registered protocol tree.")
    Term.(const run $ strict $ budget $ only)

let () =
  let doc = "Braverman-Oshman broadcast-model information complexity toolkit" in
  let info = Cmd.info "broadcast_cli" ~version:Core.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ disj_cmd; info_cmd; compress_cmd; sample_cmd; or_cmd; oneshot_cmd;
            lint_cmd ]))
