(** Command-line interface to the broadcast-model toolkit.

    Subcommands:
    - [disj]: run a set-disjointness protocol on a generated instance
      and report the answer, bit count, and per-cycle trace.
    - [info]: compute exact information quantities of an AND_k protocol.
    - [compress]: run the Theorem-3 amortized compression and report the
      per-copy cost against the exact information cost.
    - [sample]: exercise the Lemma-7 point sampler and report measured
      cost against the divergence.
    - [trace]: run a protocol with a line-JSON trace sink installed and
      write the event stream to a file.
    - [lint]: run the proto-lint static analyzer over every protocol in
      the registry and print a diagnostics table (or JSON with
      [--json]); [--only]/[--ignore] filter by rule id.
    - [verify]: run the proto-verify abstract interpreter and certifier
      over the registry (differential sweep against executed and
      declared costs, zero-error certification against declared specs),
      with line-JSON diagnostics and a [--baseline] suppression file.

    The [disj], [compress], [sample], and [verify] subcommands accept
    [--metrics] to install an {!Obs.Metrics} registry for the run and
    print the snapshot as JSON afterwards. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared                                                              *)
(* ------------------------------------------------------------------ *)

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect Obs metrics during the run and print the snapshot \
                 as JSON afterwards.")

(* Runs [f] with a metrics registry installed (when [enabled]) and prints
   the snapshot once [f] returns. The registry is uninstalled even if [f]
   raises, so a failing run never leaks instrumentation into a later one. *)
let with_metrics enabled f =
  if not enabled then f ()
  else begin
    let m = Obs.Metrics.create () in
    Obs.Metrics.install m;
    Fun.protect
      ~finally:(fun () -> Obs.Metrics.uninstall ())
      (fun () ->
        let r = f () in
        print_endline
          (Obs.Jsonw.to_string ~pretty:true
             (Obs.Metrics.to_json (Obs.Metrics.snapshot m)));
        r)
  end

type instance_kind = Disjoint | Intersecting | Dense | Full | Empty

let instance_arg =
  let kinds =
    [ ("disjoint", Disjoint); ("intersecting", Intersecting);
      ("dense", Dense); ("full", Full); ("empty", Empty) ]
  in
  Arg.(value & opt (enum kinds) Disjoint
       & info [ "i"; "instance" ]
           ~doc:(Printf.sprintf "Instance kind, one of %s."
                   (Arg.doc_alts_enum kinds)))

let make_instance kind rng ~n ~k =
  match kind with
  | Disjoint -> Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k
  | Intersecting ->
      Protocols.Disj_common.random_intersecting rng ~n ~k ~witnesses:1
  | Dense -> Protocols.Disj_common.random_dense rng ~n ~k ~density:0.7
  | Full -> Protocols.Disj_common.all_full ~n ~k
  | Empty -> Protocols.Disj_common.all_empty ~n ~k

type disj_protocol = Batched | Naive | Trivial

let disj_protocols =
  [ ("batched", Batched); ("naive", Naive); ("trivial", Trivial) ]

(* ------------------------------------------------------------------ *)
(* disj                                                                *)
(* ------------------------------------------------------------------ *)

let disj_cmd =
  let run n k protocol instance seed threshold naive_encoding verbose metrics =
    let mismatch =
      with_metrics metrics (fun () ->
          let rng = Prob.Rng.of_int_seed seed in
          let inst = make_instance instance rng ~n ~k in
          let truth = Protocols.Disj_common.disjoint inst in
          let result =
            match protocol with
            | Batched ->
                let encoding =
                  if naive_encoding then Protocols.Disj_batched.NaiveFixed
                  else Protocols.Disj_batched.Combinatorial
                in
                let r = Protocols.Disj_batched.solve ~encoding ?threshold inst in
                if verbose then
                  List.iter
                    (fun t ->
                      Printf.printf
                        "cycle %d [%s]: z=%d contributors=%d bits=%d\n"
                        t.Protocols.Disj_batched.cycle
                        (if t.Protocols.Disj_batched.phase_high then "batch"
                         else "final")
                        t.Protocols.Disj_batched.z_start
                        t.Protocols.Disj_batched.contributions
                        t.Protocols.Disj_batched.bits_in_cycle)
                    r.Protocols.Disj_batched.trace;
                r.Protocols.Disj_batched.result
            | Naive -> Protocols.Disj_naive.solve inst
            | Trivial -> Protocols.Disj_trivial.solve inst
          in
          let protocol_name =
            List.find (fun (_, p) -> p = protocol) disj_protocols |> fst
          in
          Printf.printf
            "protocol=%s n=%d k=%d: answer=%s (truth=%s) bits=%d messages=%d cycles=%d\n"
            protocol_name n k
            (if result.Protocols.Disj_common.answer then "disjoint"
             else "non-disjoint")
            (if truth then "disjoint" else "non-disjoint")
            result.Protocols.Disj_common.bits
            result.Protocols.Disj_common.messages
            result.Protocols.Disj_common.cycles;
          Printf.printf
            "cost shapes: n*lg(k)+k = %.0f   n*lg(n)+k = %.0f   n*k = %d\n"
            (Protocols.Disj_batched.cost_model ~n ~k)
            (Protocols.Disj_naive.cost_model ~n ~k)
            (n * k);
          result.Protocols.Disj_common.answer <> truth)
    in
    if mismatch then exit 2
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Universe size.") in
  let k = Arg.(value & opt int 16 & info [ "k" ] ~doc:"Number of players.") in
  let protocol =
    Arg.(value & opt (enum disj_protocols) Batched
         & info [ "p"; "protocol" ]
             ~doc:(Printf.sprintf "Protocol, one of %s."
                     (Arg.doc_alts_enum disj_protocols)))
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let threshold =
    Arg.(value & opt (some int) None
         & info [ "threshold" ] ~doc:"Phase-switch threshold (default k^2).")
  in
  let naive_encoding =
    Arg.(value & flag
         & info [ "naive-encoding" ]
             ~doc:"Use fixed-width coordinates instead of the subset code.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the cycle trace.")
  in
  Cmd.v
    (Cmd.info "disj" ~doc:"Run a multi-party set-disjointness protocol.")
    Term.(
      const run $ n $ k $ protocol $ instance_arg $ seed $ threshold
      $ naive_encoding $ verbose $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

type and_protocol = Sequential | Broadcast | Noisy

let info_cmd =
  let protocols =
    [ ("sequential", Sequential); ("broadcast", Broadcast); ("noisy", Noisy) ]
  in
  let run k protocol noise =
    let protocol_name =
      List.find (fun (_, p) -> p = protocol) protocols |> fst
    in
    let tree =
      match protocol with
      | Sequential -> Protocols.And_protocols.sequential k
      | Broadcast -> Protocols.And_protocols.broadcast_all k
      | Noisy ->
          Protocols.And_protocols.noisy_sequential ~k
            ~noise:(Exact.Rational.of_float_dyadic noise)
    in
    let mu = Protocols.Hard_dist.mu_and ~k in
    let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
    let err =
      Proto.Semantics.worst_case_error tree ~f:Protocols.Hard_dist.and_fn
        (Proto.Semantics.all_bit_inputs k)
    in
    Printf.printf "protocol %s, k = %d (hard distribution of Section 4.1)\n"
      protocol_name k;
    Printf.printf "  CC (worst case)        = %d bits\n"
      (Proto.Tree.communication_cost tree);
    Printf.printf "  worst-case error       = %s\n" (Exact.Rational.to_string err);
    Printf.printf "  IC_mu   = I(T;X)       = %.4f bits\n"
      (Proto.Information.external_ic tree mu);
    Printf.printf "  CIC_mu  = I(T;X|Z)     = %.4f bits\n"
      (Proto.Information.conditional_ic tree mu_aux);
    Printf.printf "  H(T)                   = %.4f bits\n"
      (Proto.Information.transcript_entropy tree mu);
    Printf.printf "  log2 k                 = %.4f bits\n"
      (Float.log2 (float_of_int k));
    let rounds = Proto.Information.per_round_information tree mu in
    Printf.printf "  per-round information  = [%s]\n"
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%.4f") rounds)))
  in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"Number of players (<= ~12).") in
  let protocol =
    Arg.(value & opt (enum protocols) Sequential
         & info [ "p"; "protocol" ]
             ~doc:(Printf.sprintf "Protocol, one of %s."
                     (Arg.doc_alts_enum protocols)))
  in
  let noise =
    Arg.(value & opt float 0.05
         & info [ "noise" ] ~doc:"Flip probability for the noisy protocol.")
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Exact information quantities of an AND_k protocol.")
    Term.(const run $ k $ protocol $ noise)

(* ------------------------------------------------------------------ *)
(* compress                                                            *)
(* ------------------------------------------------------------------ *)

let compress_cmd =
  let run k copies seed eps metrics =
    with_metrics metrics (fun () ->
        let tree = Protocols.And_protocols.sequential k in
        let mu = Protocols.Hard_dist.mu_and ~k in
        let ic = Proto.Information.external_ic tree mu in
        let result, _ =
          Compress.Amortized.compress_random ~eps ~seed ~tree ~mu ~copies ()
        in
        Printf.printf
          "compressed %d copies of sequential AND_%d: %d bits total, %.3f/copy\n"
          copies k result.Compress.Amortized.total_bits
          result.Compress.Amortized.per_copy_bits;
        Printf.printf "exact IC = %.3f bits; overhead = %.3f bits/copy\n" ic
          (result.Compress.Amortized.per_copy_bits -. ic);
        Printf.printf "rounds=%d transmissions=%d aborts=%d decoders agreed=%b\n"
          result.Compress.Amortized.rounds
          result.Compress.Amortized.transmissions
          result.Compress.Amortized.aborted result.Compress.Amortized.agreed)
  in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Players.") in
  let copies =
    Arg.(value & opt int 8
         & info [ "copies" ] ~doc:"Parallel copies (product universe <= 2^20).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let eps = Arg.(value & opt float 0.01 & info [ "eps" ] ~doc:"Sampler failure budget.") in
  Cmd.v
    (Cmd.info "compress" ~doc:"Theorem-3 amortized compression demo.")
    Term.(const run $ k $ copies $ seed $ eps $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let run u p0 eps trials metrics =
    with_metrics metrics (fun () ->
        let rest = (1. -. p0) /. float_of_int (u - 1) in
        let eta = Array.init u (fun i -> if i = 0 then p0 else rest) in
        let nu = Array.make u (1. /. float_of_int u) in
        let d =
          Array.to_list eta
          |> List.mapi (fun i p ->
                 if p > 0. then p *. Float.log2 (p /. nu.(i)) else 0.)
          |> List.fold_left ( +. ) 0.
        in
        let bits = ref 0 and aborts = ref 0 in
        for seed = 0 to trials - 1 do
          let rng = Prob.Rng.of_int_seed seed in
          let round = Prob.Rng.split rng in
          let w = Coding.Bitbuf.Writer.create () in
          let res = Compress.Point_sampler.transmit ~rng:round ~eta ~nu ~eps w in
          bits := !bits + res.Compress.Point_sampler.bits;
          if res.Compress.Point_sampler.aborted then incr aborts
        done;
        Printf.printf
          "u=%d D(eta||nu)=%.3f: mean cost %.3f bits over %d trials (aborts %d)\n"
          u d
          (float_of_int !bits /. float_of_int trials)
          trials !aborts;
        Printf.printf "model: D + O(log D + log 1/eps) = %.3f\n"
          (Compress.Point_sampler.cost_model ~divergence:d ~eps))
  in
  let u = Arg.(value & opt int 256 & info [ "u" ] ~doc:"Universe size.") in
  let p0 =
    Arg.(value & opt float 0.9
         & info [ "p0" ] ~doc:"Mass eta places on symbol 0 (controls D).")
  in
  let eps = Arg.(value & opt float 0.01 & info [ "eps" ] ~doc:"Failure budget.") in
  let trials = Arg.(value & opt int 500 & info [ "trials" ] ~doc:"Trials.") in
  Cmd.v
    (Cmd.info "sample" ~doc:"Lemma-7 point-sampling cost measurement.")
    Term.(const run $ u $ p0 $ eps $ trials $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run name n k instance seed out print_metrics =
    let target =
      match name with
      | "disj" | "batched" -> `Solver Batched
      | "naive" -> `Solver Naive
      | "trivial" -> `Solver Trivial
      | other -> (
          match Protocols.Registry.find other with
          | Some e -> `Registry e
          | None ->
              Printf.eprintf
                "trace: unknown protocol %S\n\
                 operational: disj (= batched), naive, trivial\n\
                 registry: %s\n"
                other
                (String.concat ", " (Protocols.Registry.names ()));
              exit 2)
    in
    let oc, close_oc =
      match out with "-" -> (stdout, false) | path -> (open_out path, true)
    in
    let metrics = Obs.Metrics.create () in
    Obs.Metrics.install metrics;
    Obs.Trace.reset ();
    (* Tee the event stream: count events and sum the Broadcast bits on
       the way to the line-JSON sink, so the summary can cross-check the
       trace against the board's own accounting. *)
    let events = ref 0 and event_bits = ref 0 in
    let jsonl = Obs.Sink.jsonl oc in
    let tee =
      Obs.Sink.custom (fun ev ->
          incr events;
          event_bits := !event_bits + Obs.Event.board_bits ev.Obs.Event.payload;
          Obs.Sink.send jsonl ev)
    in
    let label, stats =
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.uninstall ();
          Obs.Sink.flush jsonl;
          if close_oc then close_out oc)
        (fun () ->
          Obs.Trace.with_sink tee (fun () ->
              match target with
              | `Solver p ->
                  let rng = Prob.Rng.of_int_seed seed in
                  let inst = make_instance instance rng ~n ~k in
                  let r =
                    match p with
                    | Batched ->
                        (Protocols.Disj_batched.solve inst)
                          .Protocols.Disj_batched.result
                    | Naive -> Protocols.Disj_naive.solve inst
                    | Trivial -> Protocols.Disj_trivial.solve inst
                  in
                  let stats =
                    {
                      Blackboard.Runtime.bits = r.Protocols.Disj_common.bits;
                      messages = r.Protocols.Disj_common.messages;
                      rounds = r.Protocols.Disj_common.cycles;
                    }
                  in
                  Blackboard.Runtime.record_stats stats;
                  let label =
                    List.find (fun (_, q) -> q = p) disj_protocols |> fst
                  in
                  (Printf.sprintf "%s n=%d k=%d" label n k, stats)
              | `Registry e ->
                  let r = Protocols.Registry.run_on_board e ~seed in
                  let stats =
                    Blackboard.Runtime.stats_of_board
                      ~rounds:r.Protocols.Registry.msg_rounds
                      r.Protocols.Registry.board
                  in
                  Blackboard.Runtime.record_stats stats;
                  ( Printf.sprintf "%s (registry, output=%d)"
                      (Protocols.Registry.name e)
                      r.Protocols.Registry.output,
                    stats )))
    in
    let snap = Obs.Metrics.snapshot metrics in
    let counted_bits = Obs.Metrics.counter_value snap "board.bits" in
    let counted_msgs = Obs.Metrics.counter_value snap "board.messages" in
    let consistent =
      counted_bits = stats.Blackboard.Runtime.bits
      && !event_bits = stats.Blackboard.Runtime.bits
      && counted_msgs = stats.Blackboard.Runtime.messages
    in
    Printf.printf
      "traced %s: %d events -> %s\n\
       bits: board=%d metrics=%d trace-events=%d messages=%d rounds=%d\n\
       consistent=%b\n"
      label !events
      (if close_oc then out else "<stdout>")
      stats.Blackboard.Runtime.bits counted_bits !event_bits
      stats.Blackboard.Runtime.messages stats.Blackboard.Runtime.rounds
      consistent;
    if print_metrics then
      print_endline
        (Obs.Jsonw.to_string ~pretty:true (Obs.Metrics.to_json snap));
    if not consistent then exit 3
  in
  let proto_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROTOCOL"
             ~doc:"Protocol to trace: disj (= batched), naive, trivial, or \
                   any registry name (see $(b,broadcast_cli lint)).")
  in
  let n = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Universe size (operational protocols).") in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Players (operational protocols).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out =
    Arg.(value & opt string "trace.jsonl"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Line-JSON output path ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a protocol with a line-JSON trace sink and write the \
             event stream.")
    Term.(
      const run $ proto_arg $ n $ k $ instance_arg $ seed $ out $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* or                                                                  *)
(* ------------------------------------------------------------------ *)

let or_cmd =
  let run n k owners seed =
    let rng = Prob.Rng.of_int_seed seed in
    let sets = Array.init k (fun _ -> Array.make n false) in
    let ones = ref 0 in
    for j = 0 to n - 1 do
      if owners > 0 then begin
        incr ones;
        for _ = 1 to owners do
          sets.(Prob.Rng.int rng k).(j) <- true
        done
      end
    done;
    let inst = Protocols.Disj_common.make ~n sets in
    let r = Protocols.Pointwise_or.solve inst in
    let trivial = Protocols.Pointwise_or.solve_trivial inst in
    if r.Protocols.Pointwise_or.output <> Protocols.Pointwise_or.reference inst
    then begin
      prerr_endline "pointwise-OR protocol returned a wrong vector";
      exit 2
    end;
    Printf.printf
      "pointwise-OR n=%d k=%d (%d one-coordinates): %d bits in %d cycles\n" n k
      !ones r.Protocols.Pointwise_or.bits r.Protocols.Pointwise_or.cycles;
    Printf.printf "trivial broadcast: %d bits; model t*lg(k)+k = %.0f\n"
      trivial.Protocols.Pointwise_or.bits
      (Protocols.Pointwise_or.cost_model ~ones:!ones ~k)
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Universe size.") in
  let k = Arg.(value & opt int 16 & info [ "k" ] ~doc:"Players.") in
  let owners =
    Arg.(value & opt int 1
         & info [ "owners" ] ~doc:"Random 1-owners per coordinate (0 = all-zero).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "or" ~doc:"Run the batched pointwise-OR protocol.")
    Term.(const run $ n $ k $ owners $ seed)

(* ------------------------------------------------------------------ *)
(* oneshot                                                             *)
(* ------------------------------------------------------------------ *)

let oneshot_cmd =
  let run k =
    let tree = Protocols.And_protocols.sequential k in
    let mu =
      Prob.Dist_exact.iid k
        (Prob.Dist_exact.of_weighted
           [ (0, Exact.Rational.of_ints 1 k);
             (1, Exact.Rational.of_ints (k - 1) k) ])
    in
    let h = Proto.Information.transcript_entropy tree mu in
    let inter =
      Compress.Oneshot.expected_bits_exact ~single_stream:false ~tree ~mu
    in
    let omni =
      Compress.Oneshot.expected_bits_exact ~single_stream:true ~tree ~mu
    in
    Printf.printf "sequential AND_%d under product mu (Pr[0] = 1/k):\n" k;
    Printf.printf "  CC = %d bits; H(T) = IC = %.4f bits\n"
      (Proto.Tree.communication_cost tree) h;
    Printf.printf "  omniscient single-stream coding:   %.3f bits (~ H(T) + O(1))\n" omni;
    Printf.printf "  interactive per-message coding:    %.3f bits (flush tax)\n" inter;
    Printf.printf
      "The interactive coder is a legal protocol but pays O(1)/message;\n";
    Printf.printf
      "the omniscient one reaches the entropy but is not a legal protocol —\n";
    Printf.printf "the Section-6 one-shot gap, operationally.\n"
  in
  let k = Arg.(value & opt int 8 & info [ "k" ] ~doc:"Players (<= ~12).") in
  Cmd.v
    (Cmd.info "oneshot"
       ~doc:"Measure the one-shot entropy-coding gap (E12).")
    Term.(const run $ k)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

(* Exit conventions, as elsewhere in this CLI: 0 = completed (a stall
   under injected faults is a legitimate completed observation),
   1 = a finding (output disagrees with the declared spec, or --check
   caught a sync/async board divergence), 2 = usage, 3 = the run could
   not be driven (schedule bugs: runaway, bad speaker, size mismatch —
   the conditions Engine.run reports as Invalid_argument, surfaced here
   as clean diagnostics for both runtimes). *)
let run_protocol_cmd =
  let module Reg = Protocols.Registry in
  let module Emu = Netsim.Board_emu in
  let run name runtime engine seed net_seed f faults max_writes check
      pipeline metrics =
    let entry =
      match Reg.find name with
      | Some e -> e
      | None ->
          Printf.eprintf "run: unknown protocol %S; known: %s\n" name
            (String.concat ", " (Reg.names ()));
          exit 2
    in
    let faults =
      match Netsim.Fault.parse faults with
      | Ok p -> p
      | Error e ->
          Printf.eprintf "run: %s\n" e;
          exit 2
    in
    if check && faults <> Netsim.Fault.none then begin
      Printf.eprintf
        "run: --check compares the fault-free emulation; drop --faults\n";
      exit 2
    end;
    if pipeline && runtime <> `Async then begin
      Printf.eprintf "run: --pipeline requires --runtime async\n";
      exit 2
    end;
    if engine = `Compiled && runtime = `Async then begin
      Printf.eprintf "run: --engine compiled requires --runtime sync\n";
      exit 2
    end;
    (* The pipelining certificate, when the slot-dependency analysis can
       grant one; without it the emulation stays sequential (a warning,
       not an error — the analysis declining is a legitimate result). *)
    let cert =
      if not pipeline then None
      else
        match entry with
        | Reg.Entry e -> (
            let dg =
              Analysis.Depgraph.analyze ~players:e.players ~domain:e.domain
                (Lazy.force e.tree)
            in
            match Protocols.Verify_registry.sched_cert dg with
            | Some c ->
                Printf.printf
                  "pipeline: certificate grants %d slots in %d waves\n"
                  c.Netsim.Hbcheck.slots
                  (Array.length c.Netsim.Hbcheck.waves);
                Some c
            | None ->
                Printf.eprintf
                  "run: no pipelining certificate for %s (analysis %s); \
                   running sequentially\n"
                  name
                  (if dg.Analysis.Depgraph.widened then "widened"
                   else "saw misbehaving emit laws");
                None)
    in
    let net_seed = Option.value net_seed ~default:seed in
    let h = Reg.hosted entry ~seed in
    let spec_check board =
      (* 1 = spec violated, 0 = certified or nothing to check against *)
      match h.Reg.output_of board with
      | None ->
          Printf.printf "output: incomplete transcript\n";
          0
      | Some out -> (
          Printf.printf "output: %d\n" out;
          match Reg.spec_output entry ~input_indices:h.Reg.input_indices with
          | None -> 0
          | Some expected when expected = out ->
              Printf.printf "spec: ok (expected %d)\n" expected;
              0
          | Some expected ->
              Printf.printf "spec: MISMATCH (expected %d)\n" expected;
              1)
    in
    (* A hosted value's players hold private-randomness state, so one
       hosted drives one run: --check rebuilds a fresh one (same seed,
       same inputs) for the reference sync run. *)
    let run_sync () =
      let h = Reg.hosted entry ~seed in
      match
        Blackboard.Engine.run_result ~k:h.Reg.k ~schedule:h.Reg.schedule
          ~players:h.Reg.players ~max_writes ()
      with
      | Error e ->
          Printf.eprintf "run: %s\n" (Blackboard.Engine.error_message e);
          exit 3
      | Ok o -> o
    in
    let run_async () =
      let config = { Emu.f; seed = net_seed; faults } in
      match
        Emu.run ~k:h.Reg.k ~schedule:h.Reg.schedule ~players:h.Reg.players
          ~max_writes ?cert ~config ()
      with
      | Error (Emu.Insufficient_honest _ as e) ->
          Printf.eprintf "run: %s\n" (Emu.error_message e);
          exit 2
      | Error (Emu.Engine_error _ as e) ->
          Printf.eprintf "run: %s\n" (Emu.error_message e);
          exit 3
      | Ok o -> o
    in
    let print_net_stats (s : Emu.stats) ~board_bits =
      Printf.printf
        "network: %d messages (%d send / %d echo / %d ready), %d wire \
         bits, %d dropped, %d crashed, %d barrier(s)\n"
        s.Emu.net_messages s.Emu.sends s.Emu.echoes s.Emu.readies
        s.Emu.net_bits s.Emu.drops s.Emu.crashed s.Emu.waves;
      if board_bits > 0 then
        Printf.printf "emulation overhead: %.1fx (%d wire / %d board bits)\n"
          (float_of_int s.Emu.net_bits /. float_of_int board_bits)
          s.Emu.net_bits board_bits
    in
    let code =
      with_metrics metrics (fun () ->
          match runtime with
          | `Sync when engine = `Compiled ->
              (* Flat-VM engine: the trace-run path off the compiled
                 bytecode. --check verifies byte-identity against the
                 tree walker on the same seed. *)
              let r = Reg.run_on_board_compiled entry ~seed in
              Printf.printf "%s [compiled] k=%d: %d writes, %d board bits\n"
                name h.Reg.k
                (Blackboard.Board.write_count r.Reg.board)
                (Blackboard.Board.total_bits r.Reg.board);
              Printf.printf "output: %d\n" r.Reg.output;
              let code =
                match
                  Reg.spec_output entry ~input_indices:r.Reg.input_indices
                with
                | None -> 0
                | Some expected when expected = r.Reg.output ->
                    Printf.printf "spec: ok (expected %d)\n" expected;
                    0
                | Some expected ->
                    Printf.printf "spec: MISMATCH (expected %d)\n" expected;
                    1
              in
              if check then begin
                let t = Reg.run_on_board entry ~seed in
                let same =
                  Blackboard.Board.equal r.Reg.board t.Reg.board
                  && r.Reg.output = t.Reg.output
                in
                Printf.printf "byte-identical to tree walker: %b\n" same;
                if same then code else 1
              end
              else code
          | `Sync ->
              let o = run_sync () in
              Printf.printf "%s [sync] k=%d: %d writes, %d board bits\n" name
                h.Reg.k o.Blackboard.Engine.writes
                (Blackboard.Board.total_bits o.Blackboard.Engine.board);
              spec_check o.Blackboard.Engine.board
          | `Async -> (
              match run_async () with
              | Emu.Delivered { board; writes; stats } ->
                  Printf.printf
                    "%s [async] k=%d f=%d faults=%s: %d writes, %d board \
                     bits\n"
                    name h.Reg.k f
                    (match Netsim.Fault.to_string faults with
                    | "" -> "none"
                    | s -> s)
                    writes
                    (Blackboard.Board.total_bits board);
                  print_net_stats stats
                    ~board_bits:(Blackboard.Board.total_bits board);
                  let code = spec_check board in
                  if check then begin
                    let o = run_sync () in
                    let same =
                      Blackboard.Board.equal board o.Blackboard.Engine.board
                    in
                    Printf.printf "byte-identical to sync engine: %b\n" same;
                    if same then code else 1
                  end
                  else code
              | Emu.Stalled { board; delivered_slots; speaker; reason; stats }
                ->
                  Printf.printf
                    "%s [async] k=%d f=%d faults=%s: STALLED at slot %d \
                     (speaker %d, %s); %d slots delivered, %d board bits\n"
                    name h.Reg.k f
                    (Netsim.Fault.to_string faults)
                    delivered_slots speaker
                    (match reason with
                    | Emu.Speaker_crashed -> "speaker crashed"
                    | Emu.No_quorum -> "no quorum")
                    delivered_slots
                    (Blackboard.Board.total_bits board);
                  print_net_stats stats
                    ~board_bits:(Blackboard.Board.total_bits board);
                  0))
    in
    if code <> 0 then exit code
  in
  let proto_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROTOCOL"
             ~doc:"Registry protocol to run (see $(b,broadcast_cli lint)).")
  in
  let runtime =
    Arg.(value & opt (enum [ ("sync", `Sync); ("async", `Async) ]) `Sync
         & info [ "runtime" ]
             ~doc:"Substrate: $(b,sync) drives the shared-blackboard \
                   engine; $(b,async) emulates the blackboard over a \
                   faulty asynchronous network with Bracha reliable \
                   broadcast.")
  in
  let engine =
    Arg.(value & opt (enum [ ("tree", `Tree); ("compiled", `Compiled) ]) `Tree
         & info [ "engine" ]
             ~doc:"Evaluator: $(b,tree) walks the protocol tree; \
                   $(b,compiled) executes the flat bit-sliced bytecode \
                   from Proto.Compile (requires $(b,--runtime sync)). \
                   With $(b,--check), the compiled board is verified \
                   byte-identical to the tree walker's.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~doc:"Protocol randomness seed (inputs, coins).")
  in
  let net_seed =
    Arg.(value & opt (some int) None
         & info [ "net-seed" ]
             ~doc:"Network randomness seed (delivery order, drops); \
                   defaults to $(b,--seed). Vary it to replay the same \
                   protocol run under different delivery orders.")
  in
  let f =
    Arg.(value & opt int 1
         & info [ "f" ]
             ~doc:"Fault tolerance the Bracha thresholds assume (needs \
                   k > 3f).")
  in
  let faults =
    Arg.(value & opt string ""
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault plan: comma-separated $(b,crash:P), \
                   $(b,crash:P@S), $(b,drop:F), $(b,delay:J), \
                   $(b,equiv:P).")
  in
  let max_writes =
    Arg.(value & opt int 1_000_000
         & info [ "max-writes" ]
             ~doc:"Runaway protection: abort (exit 3) past this many \
                   scheduled writes.")
  in
  let chk =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"After an async run, also drive the sync engine and \
                   verify the delivered board is byte-identical (exit 1 \
                   if not; fault-free only). With $(b,--engine compiled), \
                   compare the compiled board against the tree walker \
                   instead.")
  in
  let pipeline =
    Arg.(value & flag
         & info [ "pipeline" ]
             ~doc:"Run the async emulation in pipelined mode: all RBC \
                   instances of a certificate wave go in flight \
                   concurrently, with network barriers only between waves. \
                   The certificate comes from the slot-dependency analysis \
                   (see $(b,broadcast_cli analyze)); when the analysis \
                   withholds it the run falls back to the sequential mode \
                   with a warning. Requires $(b,--runtime async).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a registry protocol on the sync engine or the \
             asynchronous faulty-broadcast emulation.")
    Term.(
      const run $ proto_arg $ runtime $ engine $ seed $ net_seed $ f $ faults
      $ max_writes $ chk $ pipeline $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let module Reg = Protocols.Registry in
  let module An = Analysis.Analyzer in
  let module Rep = Analysis.Report in
  let lint_entry ~budget ~only_rules ~ignore_rules
      (Reg.Entry { players; declared_cost; domain; tree; _ }) =
    let tree = Lazy.force tree in
    let report =
      An.analyze ~players ?declared_cost ?state_budget:budget ~domain tree
    in
    let keep d =
      (only_rules = [] || List.mem d.Rep.rule only_rules)
      && not (List.mem d.Rep.rule ignore_rules)
    in
    let report = Rep.of_list (List.filter keep (Rep.to_list report)) in
    (Proto.Tree.communication_cost tree, report)
  in
  let status_of report =
    if Rep.count_severity Rep.Error report > 0 then "FAIL"
    else if Rep.count_severity Rep.Warning report > 0 then "warn"
    else "ok"
  in
  let json_of_results ~strict results =
    let open Obs.Jsonw in
    obj
      [
        ("schema", String "broadcast-ic/lint/v1");
        ("version", String Core.version);
        ("strict", Bool strict);
        ( "protocols",
          list
            (List.map
               (fun (e, (cc, report)) ->
                 obj
                   [
                     ("name", String (Reg.name e));
                     ("players", Int (Reg.players e));
                     ("cc", Int cc);
                     ("errors", Int (Rep.count_severity Rep.Error report));
                     ("warnings", Int (Rep.count_severity Rep.Warning report));
                     ("status", String (status_of report));
                     (* One diagnostic schema for lint and verify. *)
                     ("diagnostics", Rep.to_json report);
                   ])
               results) );
      ]
  in
  let run strict budget json only_rules ignore_rules jobs protocols =
    let entries = Reg.all () in
    let entries =
      match protocols with
      | [] -> entries
      | names ->
          List.map
            (fun n ->
              match Reg.find n with
              | Some e -> e
              | None ->
                  Printf.eprintf "lint: unknown protocol %S; known: %s\n" n
                    (String.concat ", " (Reg.names ()));
                  exit 2)
            names
    in
    let results =
      Par.parallel_map ?domains:jobs
        (fun e -> (e, lint_entry ~budget ~only_rules ~ignore_rules e))
        entries
    in
    if json then
      print_endline
        (Obs.Jsonw.to_string ~pretty:true (json_of_results ~strict results))
    else begin
      Printf.printf "%-28s %7s %4s %6s %5s  %s\n" "protocol" "players" "CC"
        "errors" "warns" "status";
      List.iter
        (fun (e, (cc, report)) ->
          Printf.printf "%-28s %7d %4d %6d %5d  %s\n" (Reg.name e)
            (Reg.players e) cc
            (Rep.count_severity Rep.Error report)
            (Rep.count_severity Rep.Warning report)
            (status_of report))
        results;
      let dirty =
        List.filter (fun (_, (_, r)) -> not (Rep.is_clean r)) results
      in
      List.iter
        (fun (e, (_, report)) ->
          Printf.printf "\n%s:\n" (Reg.name e);
          List.iter
            (fun d -> Format.printf "  %a@." Rep.pp_diagnostic d)
            (Rep.sorted report))
        dirty
    end;
    let code =
      List.fold_left
        (fun acc (_, (_, r)) -> max acc (Rep.exit_code ~strict r))
        0 results
    in
    if code <> 0 then exit code
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ]
             ~doc:"State-space node budget for the exact-semantics estimate.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the report as structured JSON instead of a table.")
  in
  (* Rule ids are a closed vocabulary: unknown ones are a usage error
     caught by Cmdliner's enum converter, not a silent no-op filter. *)
  let rule_conv =
    Arg.enum (List.map (fun id -> (id, id)) Analysis.Rules.all_ids)
  in
  let only_rules =
    Arg.(value & opt_all rule_conv []
         & info [ "only" ] ~docv:"RULE"
             ~doc:(Printf.sprintf
                     "Keep only diagnostics from $(docv) (repeatable), one \
                      of %s."
                     (Arg.doc_alts Analysis.Rules.all_ids)))
  in
  let ignore_rules =
    Arg.(value & opt_all rule_conv []
         & info [ "ignore" ] ~docv:"RULE"
             ~doc:"Drop diagnostics from $(docv) (repeatable); same \
                   vocabulary as $(b,--only).")
  in
  let protocols =
    Arg.(value & pos_all string []
         & info [] ~docv:"PROTOCOL" ~doc:"Lint only the named protocols.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains for the sweep (default: autodetect; 1 forces \
                   the sequential loop).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze every registered protocol tree.")
    Term.(
      const run $ strict $ budget $ json $ only_rules $ ignore_rules $ jobs
      $ protocols)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let module Reg = Protocols.Registry in
  let module Dg = Analysis.Depgraph in
  let run deps json budget protocols =
    let entries =
      match protocols with
      | [] -> Reg.all ()
      | names ->
          List.map
            (fun n ->
              match Reg.find n with
              | Some e -> e
              | None ->
                  Printf.eprintf "analyze: unknown protocol %S; known: %s\n" n
                    (String.concat ", " (Reg.names ()));
                  exit 2)
            names
    in
    let analyzed =
      List.map
        (fun (Reg.Entry e as entry) ->
          ( entry,
            Dg.analyze ?budget ~players:e.players ~domain:e.domain
              (Lazy.force e.tree) ))
        entries
    in
    if json then
      print_endline
        (Obs.Jsonw.to_string ~pretty:true
           (Obs.Jsonw.obj
              [
                ("schema", Obs.Jsonw.String "broadcast-ic/analyze/v1");
                ("version", Obs.Jsonw.String Core.version);
                ( "protocols",
                  Obs.Jsonw.list
                    (List.map
                       (fun (e, dg) ->
                         Obs.Jsonw.obj
                           [
                             ("name", Obs.Jsonw.String (Reg.name e));
                             ("depgraph", Dg.to_json dg);
                           ])
                       analyzed) );
              ]))
    else begin
      Printf.printf "%-28s %7s %5s %5s %9s  %s\n" "protocol" "players" "slots"
        "waves" "certified" "shape";
      List.iter
        (fun (e, dg) ->
          Printf.printf "%-28s %7d %5d %5d %9b  %s\n" (Reg.name e)
            (Reg.players e) dg.Dg.slots (Dg.wave_count dg)
            (Dg.certificate dg <> None)
            (if dg.Dg.widened then "widened"
             else if dg.Dg.law_failures > 0 then "law failures"
             else if dg.Dg.slots = 0 then "leaf"
             else if Dg.wave_count dg = 1 then "fully parallel"
             else if Dg.wave_count dg = dg.Dg.slots then "fully sequential"
             else "pipelined"))
        analyzed;
      if deps then
        List.iter
          (fun (e, dg) ->
            Format.printf "@.%s:@.%a@." (Reg.name e) Dg.pp dg)
          analyzed
    end
  in
  let deps =
    Arg.(value & flag
         & info [ "deps" ]
             ~doc:"Also print the per-slot dependency table: wave index, \
                   possible speakers, read-set, output relevance.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full analysis (schema broadcast-ic/depgraph/v1 \
                   per protocol) as JSON instead of a table.")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ]
             ~doc:"Node budget for the exact-reachability walk; past it the \
                   analysis widens and withholds the pipelining certificate.")
  in
  let protocols =
    Arg.(value & pos_all string []
         & info [] ~docv:"PROTOCOL" ~doc:"Analyze only the named protocols.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Slot-dependency analysis: read-sets, happens-before DAG, and \
             pipelining certificates."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Computes, for every registered protocol tree, which earlier \
              broadcast slots each slot depends on (speaker identity, \
              message laws, slot existence, or the output), using the same \
              exact input-rectangle reachability as proto-lint — \
              proven-dead dependencies are pruned. The derived wave \
              partition is the pipelining certificate consumed by \
              $(b,broadcast_cli run --runtime async --pipeline): all slots \
              of a wave go in flight concurrently, with network barriers \
              only between waves.";
           `P
             "Exit status: 0 on success (including widened or uncertified \
              analyses — those are results, not errors); 2 on usage errors.";
         ])
    Term.(const run $ deps $ json $ budget $ protocols)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let module Reg = Protocols.Registry in
  let module V = Protocols.Verify_registry in
  let module Rep = Analysis.Report in
  let module Ab = Analysis.Absint in
  let run budget seed baseline ic sched json out jobs protocols metrics =
    let entries =
      match protocols with
      | [] -> Reg.all ()
      | names ->
          List.map
            (fun n ->
              match Reg.find n with
              | Some e -> e
              | None ->
                  Printf.eprintf "verify: unknown protocol %S; known: %s\n" n
                    (String.concat ", " (Reg.names ()));
                  exit 2)
            names
    in
    let baseline =
      match baseline with
      | None -> V.empty_baseline
      | Some path -> (
          match V.load_baseline path with
          | Ok b -> b
          | Error e ->
              Printf.eprintf "verify: cannot load baseline: %s\n" e;
              exit 2)
    in
    let results =
      with_metrics metrics (fun () ->
          Par.parallel_map ?domains:jobs
            (fun e ->
              V.verify_entry ?budget ~seed ~baseline ~ic ~sched
                ~ic_engine:(fun ~zero_error_spec flow ->
                  Lowerbound.Discrepancy.engine ~zero_error_spec flow)
                e)
            entries)
    in
    let code = V.exit_code results in
    if json then begin
      (* Line-JSON: a header, one object per entry, a summary — the
         shape CI archives and scripts stream. *)
      let oc, close_oc =
        match out with "-" -> (stdout, false) | path -> (open_out path, true)
      in
      let line j =
        Obs.Jsonw.to_channel oc j;
        output_char oc '\n'
      in
      line
        (Obs.Jsonw.obj
           [
             ("schema", Obs.Jsonw.String "broadcast-ic/verify/v1");
             ("version", Obs.Jsonw.String Core.version);
             ("seed", Obs.Jsonw.Int seed);
           ]);
      List.iter (fun r -> line (V.result_to_json r)) results;
      let count label p =
        (label, Obs.Jsonw.Int (List.length (List.filter p results)))
      in
      let outcome_is l r = V.outcome_label r.V.outcome = l in
      let ic_counts =
        if not ic then []
        else
          [
            count "ic_certified" (fun r ->
                match r.V.ic with
                | Some (Analysis.Certify.Ic_certified _) -> true
                | _ -> false);
            count "ic_inconclusive" (fun r ->
                match r.V.ic with
                | Some (Analysis.Certify.Ic_inconclusive _) -> true
                | _ -> false);
          ]
      in
      let sched_counts =
        if not sched then []
        else
          [
            count "sched_certified" (fun r ->
                match r.V.sched with
                | Some s ->
                    Analysis.Depgraph.certificate s.V.depgraph <> None
                | None -> false);
            count "sched_identical" (fun r ->
                match r.V.sched with
                | Some { V.pipelined_identical = Some true; _ } -> true
                | _ -> false);
          ]
      in
      line
        (Obs.Jsonw.obj
           ([
              ("summary", Obs.Jsonw.Bool true);
              count "certified" (outcome_is "certified");
              count "refuted" (outcome_is "refuted");
              count "inconclusive" (outcome_is "inconclusive");
              count "no_spec" (outcome_is "no-spec");
            ]
           @ ic_counts @ sched_counts
           @ [
               ( "suppressed",
                 Obs.Jsonw.Int
                   (List.fold_left (fun a r -> a + r.V.suppressed) 0 results)
               );
               ("exit", Obs.Jsonw.Int code);
             ]));
      if close_oc then close_out oc
      else flush oc
    end
    else begin
      Printf.printf "%-28s %7s %9s %4s %8s %9s  %s\n" "protocol" "players"
        "certified" "CC" "observed" "profiles" "outcome";
      List.iter
        (fun r ->
          let (Reg.Entry e) = r.V.entry in
          Printf.printf "%-28s %7d %9s %4d %8d %9d  %s\n" e.name e.players
            (Ab.interval_to_string r.V.summary.Ab.cost)
            r.V.static_cc r.V.observed_bits r.V.checked_profiles
            (V.outcome_label r.V.outcome))
        results;
      if ic then begin
        Printf.printf "\n%-28s %22s %22s  %s\n" "protocol" "IC_ext [lo, hi]"
          "IC_int [lo, hi]" "engines";
        List.iter
          (fun r ->
            let (Reg.Entry e) = r.V.entry in
            match r.V.ic with
            | Some (Analysis.Certify.Ic_certified c) ->
                Printf.printf "%-28s %22s %22s  %s\n" e.name
                  (Analysis.Infoflow.bound_to_string
                     c.Analysis.Certify.ic_external)
                  (Analysis.Infoflow.bound_to_string
                     c.Analysis.Certify.ic_internal)
                  (String.concat ", "
                     (List.map fst c.Analysis.Certify.lower_bounds))
            | Some (Analysis.Certify.Ic_inconclusive { reason; _ }) ->
                Printf.printf "%-28s  inconclusive: %s\n" e.name reason
            | None -> ())
          results
      end;
      if sched then begin
        Printf.printf "\n%-28s %5s %5s %9s  %s\n" "protocol" "slots" "waves"
          "certified" "pipelined run";
        List.iter
          (fun r ->
            let (Reg.Entry e) = r.V.entry in
            match r.V.sched with
            | Some s ->
                let dg = s.V.depgraph in
                Printf.printf "%-28s %5d %5d %9b  %s\n" e.name
                  dg.Analysis.Depgraph.slots
                  (Analysis.Depgraph.wave_count dg)
                  (Analysis.Depgraph.certificate dg <> None)
                  (match (s.V.pipelined_identical, s.V.race) with
                  | _, Some m -> "RACE: " ^ m
                  | Some true, None -> "byte-identical"
                  | Some false, None -> "DIVERGED"
                  | None, None -> "not attempted (no certificate)")
            | None -> ())
          results
      end;
      List.iter
        (fun r ->
          let interesting =
            List.filter
              (fun d -> d.Rep.severity <> Rep.Info)
              (Rep.sorted r.V.report)
          in
          if interesting <> [] then begin
            let (Reg.Entry e) = r.V.entry in
            Printf.printf "\n%s:\n" e.name;
            List.iter
              (fun d -> Format.printf "  %a@." Rep.pp_diagnostic d)
              interesting
          end)
        results
    end;
    if code <> 0 then exit code
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ]
             ~doc:"Abstract-interpretation node and spec-evaluation budget \
                   (past it, subtrees widen and certification is \
                   inconclusive).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"PRNG seed of the differential blackboard run.")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Suppression file (schema broadcast-ic/verify-baseline/v1): \
                   findings matching a (protocol, rule) pair are demoted to \
                   info severity and stop gating the exit code.")
  in
  let ic =
    Arg.(value & flag
         & info [ "ic" ]
             ~doc:"Additionally certify a sound rational $(b,[lo, hi]) \
                   bracket of each protocol's external and internal \
                   information cost under the uniform product distribution \
                   (static analysis; no execution, no floats), folding in \
                   the Braverman-Weinstein discrepancy lower-bound engine \
                   for entries whose spec is certified zero-error. Findings \
                   ride the same severity and baseline machinery; the exit \
                   contract is unchanged.")
  in
  let sched =
    Arg.(value & flag
         & info [ "sched" ]
             ~doc:"Additionally run the slot-dependency analysis per entry \
                   and, when it grants a pipelining certificate, a \
                   fault-free pipelined async run differenced byte-for-byte \
                   against the sync engine with the happens-before race \
                   oracle armed. Divergence or a race is an error; a \
                   withheld certificate is a warning. Findings ride the \
                   same severity and baseline machinery.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit line-JSON (header, one object per protocol, summary) \
                   instead of a table.")
  in
  let out =
    Arg.(value & opt string "-"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Line-JSON output path with $(b,--json) ('-' for stdout).")
  in
  let protocols =
    Arg.(value & pos_all string []
         & info [] ~docv:"PROTOCOL" ~doc:"Verify only the named protocols.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains for the sweep (default: autodetect; 1 forces \
                   the sequential loop). Results are identical either way.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Certify registered protocol trees by abstract interpretation."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the proto-verify engine over the registry: certifies an \
              exact $(b,[min, max]) reachable bit-cost interval per \
              protocol, cross-checks it against the structural \
              communication cost, the declared paper bound, and an \
              executed blackboard run, and — for deterministic protocols \
              with a declared reference spec — produces a zero-error \
              correctness certificate or a concrete counterexample input.";
           `P
             "Exit status: 0 when everything is certified, 1 on any \
              refutation or cross-check failure, 3 when the worst finding \
              is an inconclusive certification (2 remains the usage-error \
              convention).";
         ])
    Term.(
      const run $ budget $ seed $ baseline $ ic $ sched $ json $ out $ jobs
      $ protocols $ metrics_flag)

let () =
  let doc = "Braverman-Oshman broadcast-model information complexity toolkit" in
  let info = Cmd.info "broadcast_cli" ~version:Core.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ disj_cmd; info_cmd; compress_cmd; sample_cmd; trace_cmd; or_cmd;
            oneshot_cmd; run_protocol_cmd; lint_cmd; analyze_cmd; verify_cmd ]))
