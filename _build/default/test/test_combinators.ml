(** Tests for protocol combinators, two-party internal information, and
    the executable Yao's-principle check. *)

module T = Proto.Tree
module C = Proto.Combinators
module Sem = Proto.Semantics
module Info = Proto.Information
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

let seq k = Protocols.And_protocols.sequential k

let t_map_output () =
  let t = C.map_output (fun v -> 1 - v) (seq 3) in
  List.iter
    (fun x ->
      match D.support (Sem.output_dist t x) with
      | [ v ] ->
          Alcotest.(check int) "negated" (1 - Protocols.Hard_dist.and_fn x) v
      | _ -> Alcotest.fail "deterministic")
    (Sem.all_bit_inputs 3);
  Alcotest.(check int) "cost unchanged" 3 (T.communication_cost t)

let t_contramap_input () =
  (* run AND on the middle bit of 3-bit player inputs *)
  let t = C.contramap_input (fun (x : int array) -> x.(1)) (seq 2) in
  let inputs = [| [| 0; 1; 0 |]; [| 1; 0; 1 |] |] in
  match D.support (Sem.output_dist t inputs) with
  | [ v ] -> Alcotest.(check int) "AND of middle bits" 0 v
  | _ -> Alcotest.fail "deterministic"

let t_sequence_outputs () =
  let t =
    C.sequence (seq 2) (C.map_output (fun v -> v) (seq 2))
      ~combine:(fun a b -> (2 * a) + b)
  in
  (* both runs read the same inputs, so output is 3*AND *)
  List.iter
    (fun x ->
      let expected = 3 * Protocols.Hard_dist.and_fn x in
      match D.support (Sem.output_dist t x) with
      | [ v ] -> Alcotest.(check int) "paired output" expected v
      | _ -> Alcotest.fail "deterministic")
    (Sem.all_bit_inputs 2)

let t_sequence_cost_additive () =
  let t = C.sequence (seq 3) (seq 3) ~combine:(fun a b -> a + b) in
  Alcotest.(check int) "worst-case costs add" 6 (T.communication_cost t)

let t_parallel_copies_semantics () =
  let copies = 3 and k = 2 in
  let t = C.parallel_copies (seq k) ~copies in
  (* players hold [copies]-bit vectors; output packs the per-copy ANDs *)
  let inputs = [| [| 1; 0; 1 |]; [| 1; 1; 0 |] |] in
  let expected = 0b001 (* copy0: 1&1=1; copy1: 0&1=0; copy2: 1&0=0 *) in
  match D.support (Sem.output_dist t inputs) with
  | [ v ] -> Alcotest.(check int) "packed outputs" expected v
  | _ -> Alcotest.fail "deterministic"

let t_parallel_copies_ic_additive () =
  (* Theorem 4 lower-bound side, via the generic combinator: with iid
     product inputs, IC of the n-copy protocol is exactly n * IC. *)
  let k = 2 in
  let base = seq k in
  let bit = D.uniform [ 0; 1 ] in
  let mu1 = D.iid k bit in
  let ic1 = Info.external_ic base mu1 in
  List.iter
    (fun copies ->
      let t = C.parallel_copies base ~copies in
      (* per-player inputs: vectors of [copies] iid bits *)
      let mu = D.iid k (D.iid copies bit) in
      let ic = Info.external_ic t mu in
      check_close
        ~msg:(Printf.sprintf "%d copies" copies)
        ~eps:1e-9
        (float_of_int copies *. ic1)
        ic)
    [ 1; 2; 3 ]

let t_xor_coin_adds_no_information () =
  let k = 3 in
  let t = C.xor_output_with_coin (seq k) in
  let mu = Protocols.Hard_dist.mu_and ~k in
  check_close ~msg:"IC unchanged" ~eps:1e-9
    (Info.external_ic (seq k) mu)
    (Info.external_ic t mu);
  (* but the output is now uniformly random *)
  let out = Sem.output_dist t [| 1; 1; 1 |] in
  check_rational ~msg:"output uniform" R.half (D.prob_of out 0)

(* --- internal information (k = 2) --- *)

let t_internal_le_external () =
  let t = seq 2 in
  List.iter
    (fun mu ->
      let internal = Info.internal_ic_two_party t mu in
      let external_ = Info.external_ic t mu in
      check_le ~msg:"internal <= external" internal (external_ +. 1e-9))
    [
      Protocols.Hard_dist.mu_and ~k:2;
      D.uniform (Sem.all_bit_inputs 2);
      D.of_weighted
        [
          ([| 0; 0 |], R.of_ints 2 5);
          ([| 1; 1 |], R.of_ints 2 5);
          ([| 0; 1 |], R.of_ints 1 10);
          ([| 1; 0 |], R.of_ints 1 10);
        ];
    ]

let t_internal_equals_external_on_product () =
  (* classical: for product distributions the two notions coincide *)
  List.iter
    (fun (t, mu) ->
      check_close ~msg:"equality on product" ~eps:1e-9
        (Info.external_ic t mu)
        (Info.internal_ic_two_party t mu))
    [
      (seq 2, D.iid 2 (D.uniform [ 0; 1 ]));
      ( Protocols.And_protocols.noisy_sequential ~k:2 ~noise:(R.of_ints 1 10),
        D.iid 2
          (D.of_weighted [ (0, R.of_ints 1 4); (1, R.of_ints 3 4) ]) );
      (Protocols.And_protocols.broadcast_all 2, D.iid 2 (D.uniform [ 0; 1 ]));
    ]

let t_internal_strictly_below_on_correlated () =
  (* with perfectly correlated inputs, players learn nothing from each
     other (internal = 0), but an observer learns plenty *)
  let t = Protocols.And_protocols.broadcast_all 2 in
  let mu = D.uniform [ [| 0; 0 |]; [| 1; 1 |] ] in
  check_close ~msg:"internal = 0" ~eps:1e-9 0.
    (Info.internal_ic_two_party t mu);
  check_close ~msg:"external = 1" ~eps:1e-9 1. (Info.external_ic t mu)

let t_internal_rejects_k3 () =
  Alcotest.check_raises "k = 3 rejected"
    (Invalid_argument "Information.internal_ic_two_party: need k = 2")
    (fun () ->
      ignore
        (Info.internal_ic_two_party (seq 3) (Protocols.Hard_dist.mu_and ~k:3)))

(* --- Yao --- *)

let t_restrictions_partition_probability () =
  let t = C.xor_output_with_coin (seq 2) in
  let restrictions = Lowerbound.Yao.coin_restrictions t in
  let total = List.fold_left (fun acc (_, w) -> R.add acc w) R.zero restrictions in
  check_rational ~msg:"weights sum to 1" R.one total;
  List.iter
    (fun (t', _) ->
      let rec no_chance = function
        | T.Output _ -> true
        | T.Chance _ -> false
        | T.Speak { children; _ } -> Array.for_all no_chance children
      in
      Alcotest.(check bool) "no chance nodes" true (no_chance t'))
    restrictions

let t_error_mixture_exact () =
  (* randomized error = mixture of restriction errors, exactly *)
  let t = C.xor_output_with_coin (seq 2) in
  let mu = Protocols.Hard_dist.mu_and ~k:2 in
  let randomized, parts =
    Lowerbound.Yao.error_mixture t ~f:Protocols.Hard_dist.and_fn mu
  in
  let mixture =
    List.fold_left (fun acc (w, e) -> R.add acc (R.mul w e)) R.zero parts
  in
  check_rational ~msg:"exact mixture" randomized mixture

let t_easy_direction () =
  let t = C.xor_output_with_coin (seq 3) in
  let mu = Protocols.Hard_dist.mu_and ~k:3 in
  let best, randomized =
    Lowerbound.Yao.easy_direction t ~f:Protocols.Hard_dist.and_fn mu
  in
  Alcotest.(check bool) "best deterministic <= randomized" true
    (R.compare best randomized <= 0);
  (* here the coin XOR makes the randomized protocol err half the time,
     while the best restriction (identity coin) never errs *)
  check_rational ~msg:"best restriction exact" R.zero best;
  check_rational ~msg:"randomized errs half the time" R.half randomized

let suite =
  [
    quick "map_output" t_map_output;
    quick "contramap_input" t_contramap_input;
    quick "sequence outputs" t_sequence_outputs;
    quick "sequence cost additive" t_sequence_cost_additive;
    quick "parallel copies semantics" t_parallel_copies_semantics;
    quick "parallel copies: IC exactly additive (Thm 4)" t_parallel_copies_ic_additive;
    quick "output coin adds no information" t_xor_coin_adds_no_information;
    quick "internal <= external" t_internal_le_external;
    quick "internal = external on products" t_internal_equals_external_on_product;
    quick "internal < external when correlated" t_internal_strictly_below_on_correlated;
    quick "internal rejects k=3" t_internal_rejects_k3;
    quick "Yao: restrictions partition probability" t_restrictions_partition_probability;
    quick "Yao: error mixture exact" t_error_mixture_exact;
    quick "Yao: easy direction" t_easy_direction;
  ]
