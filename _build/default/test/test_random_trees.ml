(** Property tests of the exact semantics on {e randomly generated}
    protocol trees — the invariants must hold for every protocol, not
    just the hand-written ones. *)

module T = Proto.Tree
module Sem = Proto.Semantics
module Info = Proto.Information
module Q = Proto.Qdecomp
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

(* Generate a random protocol tree over bit inputs with [k] players:
   bounded depth, arities 2-3, random rational emission laws, occasional
   chance nodes. Driven by our own PRNG from a qcheck-supplied seed so
   shrinking stays meaningful on the seed. *)
let random_tree ~rng ~k ~depth =
  let rational_dist arity =
    (* random positive rational weights with small denominators *)
    let weights =
      List.init arity (fun i -> (i, R.of_ints (1 + Prob.Rng.int rng 5) 6))
    in
    D.of_weighted weights
  in
  let rec go depth =
    if depth = 0 || Prob.Rng.int rng 4 = 0 then T.output (Prob.Rng.int rng 2)
    else begin
      let arity = 2 + Prob.Rng.int rng 2 in
      let children = Array.init arity (fun _ -> go (depth - 1)) in
      if Prob.Rng.int rng 5 = 0 then
        T.chance ~coin:(rational_dist arity) children
      else begin
        let speaker = Prob.Rng.int rng k in
        let law0 = rational_dist arity and law1 = rational_dist arity in
        T.speak ~speaker ~emit:(fun b -> if b = 0 then law0 else law1) children
      end
    end
  in
  go depth

let k = 3

let with_random_tree seed f =
  let rng = Prob.Rng.of_int_seed seed in
  let tree = random_tree ~rng ~k ~depth:(2 + Prob.Rng.int rng 3) in
  f tree

let prop_transcript_mass_one =
  qtest "transcript law has exact mass 1" ~count:100 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          List.for_all
            (fun x -> R.equal R.one (D.mass (Sem.transcript_dist tree x)))
            (Sem.all_bit_inputs k)))

let rec chance_free = function
  | T.Output _ -> true
  | T.Chance _ -> false
  | T.Speak { children; _ } -> Array.for_all chance_free children

let prop_ic_le_entropy =
  qtest "IC <= H(T), IC <= CC on random trees" ~count:60 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          let mu = Protocols.Hard_dist.mu_and ~k in
          let ic = Info.external_ic tree mu in
          let h = Info.transcript_entropy tree mu in
          let cc = float_of_int (T.communication_cost tree) in
          (* public coins inflate H(T) but are free, so H(T) <= CC only
             holds for chance-free trees; IC <= CC always does *)
          ic <= h +. 1e-9
          && ic <= cc +. 1e-9
          && ((not (chance_free tree)) || h <= cc +. 1e-9)))

let prop_per_round_sums_to_ic =
  qtest "chain rule on random trees" ~count:60 QCheck.small_nat (fun seed ->
      with_random_tree seed (fun tree ->
          let mu = Protocols.Hard_dist.mu_and ~k in
          let ic = Info.external_ic tree mu in
          let total =
            Array.fold_left ( +. ) 0. (Info.per_round_information tree mu)
          in
          Float.abs (ic -. total) < 1e-8))

let prop_qdecomp_reconstructs =
  qtest "Lemma 3 factorization on random trees" ~count:50 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          List.for_all
            (fun x ->
              let law = Sem.transcript_dist tree x in
              List.for_all
                (fun (tr, p) ->
                  let q = Q.of_transcript tree ~k tr in
                  R.equal p (Q.transcript_prob q x))
                (D.to_alist law))
            (Sem.all_bit_inputs k)))

let prop_cic_le_entropy =
  qtest "CIC <= H(T) on random trees" ~count:40 QCheck.small_nat (fun seed ->
      with_random_tree seed (fun tree ->
          let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
          let cic = Info.conditional_ic tree mu_aux in
          let h =
            Info.transcript_entropy tree (Protocols.Hard_dist.mu_and ~k)
          in
          -1e-9 <= cic && cic <= h +. 1e-9))

let prop_lemma2_superadditivity =
  qtest "Lemma 2 on random trees" ~count:25 QCheck.small_nat (fun seed ->
      with_random_tree seed (fun tree ->
          let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
          let cic = Info.conditional_ic tree mu_aux in
          let rhs, _ = Lowerbound.Bounds.lemma2_rhs tree mu_aux ~k in
          rhs <= cic +. 1e-8))

let prop_yao_mixture =
  qtest "Yao error mixture exact on random trees" ~count:30 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          let mu = Protocols.Hard_dist.mu_and ~k in
          let randomized, parts =
            Lowerbound.Yao.error_mixture tree ~f:Protocols.Hard_dist.and_fn mu
          in
          let mixture =
            List.fold_left
              (fun acc (w, e) -> R.add acc (R.mul w e))
              R.zero parts
          in
          R.equal randomized mixture))

let prop_expected_bits_le_cc =
  qtest "E[bits] <= CC on random trees" ~count:60 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          let mu = Protocols.Hard_dist.mu_and ~k in
          Sem.expected_bits tree mu
          <= float_of_int (T.communication_cost tree) +. 1e-9))

let prop_map_output_preserves_information =
  qtest "map_output(id-like) preserves IC" ~count:40 QCheck.small_nat
    (fun seed ->
      with_random_tree seed (fun tree ->
          (* injective output relabeling cannot change the transcript law *)
          let relabeled = Proto.Combinators.map_output (fun v -> v + 7) tree in
          let mu = Protocols.Hard_dist.mu_and ~k in
          Float.abs
            (Info.external_ic tree mu -. Info.external_ic relabeled mu)
          < 1e-12))

let suite =
  [
    prop_transcript_mass_one;
    prop_ic_le_entropy;
    prop_per_round_sums_to_ic;
    prop_qdecomp_reconstructs;
    prop_cic_le_entropy;
    prop_lemma2_superadditivity;
    prop_yao_mixture;
    prop_expected_bits_le_cc;
    prop_map_output_preserves_information;
  ]
