(** Tests that the hard distributions have exactly the properties the
    paper's proofs rely on. *)

module H = Protocols.Hard_dist
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

let t_support_has_and_zero () =
  (* Condition (1) of Lemma 1: every input in the support has AND = 0. *)
  List.iter
    (fun k ->
      List.iter
        (fun ((x, _z), _w) ->
          Alcotest.(check int) "AND = 0 on support" 0 (H.and_fn x))
        (D.to_alist (H.mu_and_with_aux ~k)))
    [ 2; 3; 4; 5 ]

let t_forced_zero_at_z () =
  List.iter
    (fun ((x, z), _w) ->
      Alcotest.(check int) "X_Z = 0" 0 x.(z))
    (D.to_alist (H.mu_and_with_aux ~k:4))

let t_conditional_independence () =
  (* Condition (2) of Lemma 1: given Z = z, the inputs are independent
     with Pr[X_i = 0] = 1/k for i <> z. Check the product formula holds
     exactly for every support point. *)
  let k = 4 in
  let mu = H.mu_and_with_aux ~k in
  for z = 0 to k - 1 do
    let cond = D.condition_exn mu (fun (_, z') -> z' = z) in
    List.iter
      (fun ((x, _), w) ->
        let expected = ref R.one in
        Array.iteri
          (fun i b ->
            if i <> z then
              expected :=
                R.mul !expected
                  (if b = 0 then R.of_ints 1 k else R.of_ints (k - 1) k))
          x;
        check_rational ~msg:"product form" !expected w)
      (D.to_alist cond)
  done

let t_pairwise_independence_given_z () =
  (* direct check: joint of (X_1, X_2) given Z = 0 factorizes *)
  let k = 4 in
  let mu = H.mu_and_with_aux ~k in
  let cond = D.condition_exn mu (fun (_, z) -> z = 0) in
  let pair = D.map (fun (x, _) -> (x.(1), x.(2))) cond in
  let module J = Prob.Joint.Exact_w in
  Alcotest.(check bool) "independent" true (J.independent pair)

let t_marginal_zero_probability () =
  (* For i <> Z the zero probability is 1/k; overall,
     Pr[X_i = 0] = Pr[Z=i] + Pr[Z<>i]/k = 1/k + (k-1)/k^2. *)
  let k = 5 in
  let mu = H.mu_and ~k in
  let expected =
    R.add (R.of_ints 1 k) (R.mul (R.of_ints (k - 1) k) (R.of_ints 1 k))
  in
  for i = 0 to k - 1 do
    check_rational
      ~msg:(Printf.sprintf "player %d" i)
      expected
      (D.prob (mu) (fun x -> x.(i) = 0))
  done

let t_slice_counts () =
  let k = 5 in
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "slice %d size" c)
        (Exact.Bigint.to_int_exn (Exact.Bigint.binomial k c))
        (List.length (H.slice ~k ~c)))
    [ 0; 1; 2; 3; 4; 5 ]

let t_slice_mass_two_zeroes_constant () =
  (* The paper conditions on exactly two zeros, which must have constant
     probability. Pr[exactly 2 zeros] = (k-1) * (1/k) * ((k-1)/k)^(k-2):
     the forced zero plus exactly one more. *)
  List.iter
    (fun k ->
      let expected =
        R.mul
          (R.mul_int (R.of_ints 1 k) (k - 1))
          (R.pow (R.of_ints (k - 1) k) (k - 2))
      in
      check_rational ~msg:(Printf.sprintf "k=%d" k) expected
        (H.slice_mass ~k ~c:2))
    [ 2; 3; 4; 5; 6 ];
  (* and it converges to 1/e as k grows, staying above 0.25 *)
  let m = R.to_float (H.slice_mass ~k:8 ~c:2) in
  check_ge ~msg:"constant mass" m 0.25

let t_mass_one () =
  List.iter
    (fun k ->
      check_rational ~msg:"mu mass" R.one (D.mass (H.mu_and_with_aux ~k)))
    [ 2; 3; 4; 5; 6 ]

let t_uniform_on_slice () =
  let k = 4 in
  let d = H.mu_on_slice ~k ~c:2 in
  let expected = R.of_ints 1 (Exact.Bigint.to_int_exn (Exact.Bigint.binomial k 2)) in
  List.iter
    (fun (_, w) -> check_rational ~msg:"uniform" expected w)
    (D.to_alist d)

let t_lemma6_distribution () =
  let k = 4 in
  let eps' = R.of_ints 1 5 in
  let mu = H.mu_lemma6 ~k ~eps' in
  check_rational ~msg:"all ones mass" eps'
    (D.prob mu (fun x -> Array.for_all (fun b -> b = 1) x));
  check_rational ~msg:"single zero each" (R.of_ints 1 5)
    (D.prob mu (fun x -> x.(2) = 0));
  check_rational ~msg:"mass" R.one (D.mass mu)

let t_disj_product_structure () =
  (* mu^n: coordinates are iid copies of mu *)
  let n = 2 and k = 3 in
  let mu = H.mu_disj_with_aux ~n ~k in
  check_rational ~msg:"mass" R.one (D.mass mu);
  (* every coordinate column must be in mu's support: AND of column = 0 *)
  List.iter
    (fun ((x, z), _w) ->
      Alcotest.(check int) "z length" n (Array.length z);
      for j = 0 to n - 1 do
        let col = Array.init k (fun i -> x.(i).(j)) in
        Alcotest.(check int) "column AND = 0" 0 (H.and_fn col);
        Alcotest.(check int) "forced zero" 0 x.(z.(j)).(j)
      done)
    (D.to_alist mu);
  (* marginal of coordinate 0 equals mu_and *)
  let marg0 =
    D.map (fun (x, _) -> Array.init k (fun i -> x.(i).(0))) mu
  in
  let expected = H.mu_and ~k in
  List.iter
    (fun (v, w) -> check_rational ~msg:"marginal" w (D.prob_of marg0 v))
    (D.to_alist expected)

let t_disj_fn () =
  Alcotest.(check int) "disjoint" 1
    (H.disj_fn [| [| 1; 0 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "intersecting" 0
    (H.disj_fn [| [| 1; 1 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "empty universe" 1 (H.disj_fn [| [||]; [||] |])

let t_parameterized_family () =
  (* every member of the p_zero family satisfies Lemma 1's conditions *)
  let k = 4 in
  List.iter
    (fun p_zero ->
      let mu = H.mu_and_with_aux_p ~k ~p_zero in
      check_rational ~msg:"mass" R.one (D.mass mu);
      List.iter
        (fun ((x, z), _) ->
          Alcotest.(check int) "AND = 0" 0 (H.and_fn x);
          Alcotest.(check int) "forced zero" 0 x.(z))
        (D.to_alist mu))
    [ R.zero; R.of_ints 1 16; R.of_ints 1 4; R.half; R.one ];
  (* the paper's instance is the 1/k member *)
  let a = H.mu_and_with_aux ~k in
  let b = H.mu_and_with_aux_p ~k ~p_zero:(R.of_ints 1 k) in
  List.iter
    (fun (v, w) -> check_rational ~msg:"same law" w (D.prob_of b v))
    (D.to_alist a)

let t_parameterized_out_of_range () =
  Alcotest.check_raises "p_zero > 1"
    (Invalid_argument "Hard_dist.mu_and_with_aux_p: p_zero out of range")
    (fun () -> ignore (H.mu_and_with_aux_p ~k:3 ~p_zero:(R.of_int 2)))

let suite =
  [
    quick "support has AND = 0 (Lemma 1 cond 1)" t_support_has_and_zero;
    quick "forced zero at Z" t_forced_zero_at_z;
    quick "conditional independence (Lemma 1 cond 2)" t_conditional_independence;
    quick "pairwise independence given Z" t_pairwise_independence_given_z;
    quick "marginal zero probability" t_marginal_zero_probability;
    quick "slice sizes" t_slice_counts;
    quick "two-zero slice has constant mass" t_slice_mass_two_zeroes_constant;
    quick "total mass one" t_mass_one;
    quick "uniform on slice" t_uniform_on_slice;
    quick "Lemma 6 distribution" t_lemma6_distribution;
    quick "mu^n product structure" t_disj_product_structure;
    quick "disj_fn reference" t_disj_fn;
    quick "parameterized hard family (Lemma 1 conditions)" t_parameterized_family;
    quick "parameterized family range check" t_parameterized_out_of_range;
  ]
