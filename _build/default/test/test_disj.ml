(** Correctness and cost tests for the disjointness protocols
    (Section 5 batched protocol + baselines), including the exhaustive
    comparison against brute force and the bit-accounting invariants. *)

module C = Protocols.Disj_common
module Batched = Protocols.Disj_batched
module Naive = Protocols.Disj_naive
module Trivial = Protocols.Disj_trivial
open Test_util

let t_reference_semantics () =
  let inst = C.make ~n:3 [| [| true; false; true |]; [| true; true; false |] |] in
  Alcotest.(check bool) "intersect at 0" false (C.disjoint inst);
  Alcotest.(check (list int)) "intersection" [ 0 ] (C.intersection inst);
  let inst2 = C.make ~n:2 [| [| true; false |]; [| false; true |] |] in
  Alcotest.(check bool) "disjoint" true (C.disjoint inst2)

let exhaustive ~n ~k solve name =
  quick
    (Printf.sprintf "%s exhaustive n=%d k=%d" name n k)
    (fun () ->
      List.iter
        (fun inst ->
          let truth = C.disjoint inst in
          let r = solve inst in
          if r.C.answer <> truth then
            Alcotest.failf "%s wrong on an instance (truth %b)" name truth)
        (C.enumerate ~n ~k))

let batched_result inst = (Batched.solve inst).Batched.result
let batched_naive_enc inst =
  (Batched.solve ~encoding:Batched.NaiveFixed inst).Batched.result
let batched_low_threshold inst =
  (Batched.solve ~threshold:1 inst).Batched.result
let batched_high_threshold inst =
  (Batched.solve ~threshold:1_000_000 inst).Batched.result

let t_random_large_instances () =
  let rng = Prob.Rng.of_int_seed 2024 in
  for _ = 1 to 30 do
    let n = 1 + Prob.Rng.int rng 300 in
    let k = 2 + Prob.Rng.int rng 12 in
    let inst =
      match Prob.Rng.int rng 4 with
      | 0 -> C.random_dense rng ~n ~k ~density:0.7
      | 1 -> C.random_disjoint_single_zero rng ~n ~k
      | 2 -> C.random_intersecting rng ~n ~k ~witnesses:(1 + Prob.Rng.int rng 3)
      | _ -> C.random_dense rng ~n ~k ~density:0.95
    in
    let truth = C.disjoint inst in
    List.iter
      (fun (name, solve) ->
        let r = solve inst in
        if r.C.answer <> truth then
          Alcotest.failf "%s wrong at n=%d k=%d" name n k)
      [
        ("batched", batched_result);
        ("batched/naive-enc", batched_naive_enc);
        ("batched/threshold-1", batched_low_threshold);
        ("batched/threshold-max", batched_high_threshold);
        ("naive", Naive.solve);
        ("trivial", Trivial.solve);
      ]
  done

let t_edge_instances () =
  List.iter
    (fun (name, inst) ->
      let truth = C.disjoint inst in
      List.iter
        (fun (pname, solve) ->
          let r = solve inst in
          if r.C.answer <> truth then
            Alcotest.failf "%s wrong on %s" pname name)
        [ ("batched", batched_result); ("naive", Naive.solve);
          ("trivial", Trivial.solve) ])
    [
      ("all full", C.all_full ~n:10 ~k:4);
      ("all empty", C.all_empty ~n:10 ~k:4);
      ("last empty", C.last_player_empty ~n:10 ~k:4);
      ("k=1 full", C.all_full ~n:5 ~k:1);
      ("k=1 empty", C.all_empty ~n:5 ~k:1);
      ("n=1 disjoint", C.make ~n:1 [| [| true |]; [| false |] |]);
      ("n=1 intersecting", C.make ~n:1 [| [| true |]; [| true |] |]);
    ]

let t_batched_cost_bound () =
  (* measured bits <= constant * (n log k + k) on disjoint single-zero
     instances — the protocol's worst natural case *)
  let rng = Prob.Rng.of_int_seed 5 in
  List.iter
    (fun (n, k) ->
      let inst = C.random_disjoint_single_zero rng ~n ~k in
      let r = batched_result inst in
      let model = Batched.cost_model ~n ~k in
      check_le
        ~msg:(Printf.sprintf "n=%d k=%d bits=%d" n k r.C.bits)
        (float_of_int r.C.bits) (3. *. model))
    [ (256, 4); (1024, 8); (4096, 16); (1024, 32); (512, 64) ]

let t_batched_beats_naive_large_n () =
  let rng = Prob.Rng.of_int_seed 6 in
  let inst = C.random_disjoint_single_zero rng ~n:8192 ~k:8 in
  let b = batched_result inst in
  let nv = Naive.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < naive %d" b.C.bits nv.C.bits)
    true (b.C.bits < nv.C.bits)

let t_nondisjoint_early_exit_cheap () =
  (* all-full instance: one pass cycle and out, O(k) bits *)
  let r = batched_result (C.all_full ~n:10_000 ~k:16) in
  Alcotest.(check bool) "answer non-disjoint" false r.C.answer;
  check_le ~msg:"O(k) bits" (float_of_int r.C.bits) 64.

let t_trace_accounting () =
  let rng = Prob.Rng.of_int_seed 7 in
  let inst = C.random_disjoint_single_zero rng ~n:2048 ~k:8 in
  let run = Batched.solve inst in
  (* per-cycle bits sum to the total *)
  let sum =
    List.fold_left (fun acc t -> acc + t.Batched.bits_in_cycle) 0 run.Batched.trace
  in
  Alcotest.(check int) "trace sums to total" run.Batched.result.C.bits sum;
  (* z_start strictly decreases over high cycles *)
  let rec check_decreasing = function
    | a :: (b :: _ as rest) ->
        if b.Batched.z_start >= a.Batched.z_start then
          Alcotest.fail "z must shrink";
        check_decreasing rest
    | _ -> ()
  in
  check_decreasing run.Batched.trace;
  (* board accounting matches the result *)
  Alcotest.(check int) "board bits" run.Batched.result.C.bits
    (Blackboard.Board.total_bits run.Batched.board)

let t_encoding_ablation_combinatorial_wins () =
  (* the combinatorial subset code must not lose to per-coordinate
     fixed-width encoding on big batches *)
  let rng = Prob.Rng.of_int_seed 8 in
  let inst = C.random_disjoint_single_zero rng ~n:8192 ~k:8 in
  let comb = batched_result inst in
  let naive_enc = batched_naive_enc inst in
  Alcotest.(check bool)
    (Printf.sprintf "comb %d <= naive-enc %d" comb.C.bits naive_enc.C.bits)
    true
    (comb.C.bits <= naive_enc.C.bits)

let t_naive_cost_shape () =
  let rng = Prob.Rng.of_int_seed 9 in
  let inst = C.random_disjoint_single_zero rng ~n:4096 ~k:8 in
  let r = Naive.solve inst in
  check_le ~msg:"naive <= 2(n log n + k + n)"
    (float_of_int r.C.bits)
    (2. *. (Naive.cost_model ~n:4096 ~k:8 +. 4096.))

let t_trivial_cost_exact () =
  let inst = C.all_full ~n:100 ~k:7 in
  let r = Trivial.solve inst in
  Alcotest.(check int) "exactly nk bits" 700 r.C.bits

let t_pass_cycle_soundness () =
  (* the protocol may output "non-disjoint" after a full pass cycle only
     because pigeonhole guarantees a disjoint instance always has a
     player with >= ceil(z/k) new zeros. Construct the tightest case:
     every player holds exactly ceil(z/k) - 1 zeros (so all pass), which
     forces a non-disjoint instance — some coordinate must be all-ones.
     The protocol must answer non-disjoint, and does so in one cycle. *)
  let k = 4 in
  let n = k * k (* z = k^2 puts us exactly at the batch threshold *) in
  let m = (n + k - 1) / k in
  let sets = Array.init k (fun _ -> Array.make n true) in
  (* give player j zeros at coordinates j*(m-1) .. j*(m-1)+m-2 *)
  Array.iteri
    (fun j row ->
      for t = 0 to m - 2 do
        row.((j * (m - 1)) + t) <- false
      done)
    sets;
  let inst = Protocols.Disj_common.make ~n sets in
  Alcotest.(check bool) "instance is non-disjoint by pigeonhole" false
    (Protocols.Disj_common.disjoint inst);
  let run = Protocols.Disj_batched.solve inst in
  Alcotest.(check bool) "protocol answers non-disjoint" false
    run.Protocols.Disj_batched.result.C.answer;
  Alcotest.(check int) "single all-pass cycle" 1
    run.Protocols.Disj_batched.result.C.cycles;
  (* exactly k pass bits *)
  Alcotest.(check int) "k bits" k run.Protocols.Disj_batched.result.C.bits

let prop_random_instances_agree =
  qtest "all protocols agree with brute force" ~count:60
    (QCheck.pair (QCheck.int_range 1 40) (QCheck.int_range 1 6))
    (fun (n, k) ->
      let rng = Prob.Rng.of_int_seed ((n * 1000) + k) in
      let inst = C.random_dense rng ~n ~k ~density:0.6 in
      let truth = C.disjoint inst in
      batched_result inst |> fun r1 ->
      r1.C.answer = truth
      && (Naive.solve inst).C.answer = truth
      && (Trivial.solve inst).C.answer = truth
      && (batched_low_threshold inst).C.answer = truth)

let prop_intersection_vs_disjoint =
  qtest "intersection witnesses the answer" ~count:100
    (QCheck.pair (QCheck.int_range 1 30) (QCheck.int_range 1 5))
    (fun (n, k) ->
      let rng = Prob.Rng.of_int_seed ((n * 31) + k) in
      let inst = C.random_dense rng ~n ~k ~density:0.5 in
      C.disjoint inst = (C.intersection inst = []))

let suite =
  [
    quick "reference semantics" t_reference_semantics;
    exhaustive ~n:2 ~k:2 batched_result "batched";
    exhaustive ~n:3 ~k:2 batched_result "batched";
    exhaustive ~n:2 ~k:3 batched_result "batched";
    exhaustive ~n:3 ~k:3 batched_result "batched";
    exhaustive ~n:1 ~k:4 batched_result "batched";
    exhaustive ~n:3 ~k:3 batched_naive_enc "batched/naive-enc";
    exhaustive ~n:3 ~k:3 batched_low_threshold "batched/threshold-1";
    exhaustive ~n:3 ~k:3 Naive.solve "naive";
    exhaustive ~n:3 ~k:3 Trivial.solve "trivial";
    slow "random large instances" t_random_large_instances;
    quick "edge instances" t_edge_instances;
    slow "batched cost bound" t_batched_cost_bound;
    slow "batched beats naive at large n" t_batched_beats_naive_large_n;
    quick "non-disjoint early exit is cheap" t_nondisjoint_early_exit_cheap;
    quick "trace accounting" t_trace_accounting;
    slow "encoding ablation" t_encoding_ablation_combinatorial_wins;
    quick "naive cost shape" t_naive_cost_shape;
    quick "trivial cost exact" t_trivial_cost_exact;
    quick "pass-cycle soundness (pigeonhole edge)" t_pass_cycle_soundness;
    prop_random_instances_agree;
    prop_intersection_vs_disjoint;
  ]
