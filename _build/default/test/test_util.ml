(** Shared helpers for the test suites. *)

let check_float ~msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_close ~msg ?(eps = 1e-9) expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_le ~msg ?(slack = 1e-9) a b =
  if a > b +. slack then
    Alcotest.failf "%s: expected %.12g <= %.12g" msg a b

let check_ge ~msg ?(slack = 1e-9) a b = check_le ~msg ~slack b a

let check_rational ~msg expected actual =
  if not (Exact.Rational.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Exact.Rational.to_string expected)
      (Exact.Rational.to_string actual)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* Generators. *)
let small_int_gen = QCheck.int_range (-1000) 1000
let nat_gen = QCheck.int_range 0 1_000_000

let bigint_pair_gen =
  QCheck.pair (QCheck.int_range (-1_000_000) 1_000_000)
    (QCheck.int_range (-1_000_000) 1_000_000)

(* A random float distribution over [0, n) values. *)
let float_dist_gen =
  QCheck.map
    (fun weights ->
      let weights = List.map (fun w -> Float.abs w +. 0.01) weights in
      Prob.Dist.of_weighted (List.mapi (fun i w -> (i, w)) weights))
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) (QCheck.float_bound_exclusive 10.))

(* A random exact-rational distribution. *)
let exact_dist_gen =
  QCheck.map
    (fun weights ->
      let weights =
        List.map (fun (a, b) -> Exact.Rational.of_ints (1 + abs a) (1 + abs b)) weights
      in
      Prob.Dist_exact.of_weighted (List.mapi (fun i w -> (i, w)) weights))
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6)
       (QCheck.pair (QCheck.int_range 0 20) (QCheck.int_range 0 20)))
