(** Tests for the arithmetic coder and the one-shot compression story. *)

module A = Coding.Arith
module W = Coding.Bitbuf.Writer
module Rd = Coding.Bitbuf.Reader
open Test_util

let roundtrip freq_seq symbols =
  let w = W.create () in
  let enc = A.Encoder.create w in
  List.iter2 (fun freqs s -> A.Encoder.encode enc ~freqs s) freq_seq symbols;
  A.Encoder.finish enc;
  let dec = A.Decoder.create (Rd.of_writer w) in
  let decoded = List.map (fun freqs -> A.Decoder.decode dec ~freqs) freq_seq in
  (decoded, W.length w)

let t_roundtrip_uniform () =
  let freqs = [| 1; 1; 1; 1 |] in
  let symbols = [ 0; 3; 1; 2; 2; 0; 3; 3; 1; 0 ] in
  let decoded, bits = roundtrip (List.map (fun _ -> freqs) symbols) symbols in
  Alcotest.(check (list int)) "roundtrip" symbols decoded;
  (* uniform over 4: 2 bits/symbol + small flush *)
  check_le ~msg:"near entropy" (float_of_int bits) (2. *. 10. +. 8.)

let t_roundtrip_skewed () =
  (* highly skewed: long runs of the likely symbol cost < 1 bit each *)
  let freqs = [| 990; 10 |] in
  let symbols = List.init 200 (fun i -> if i mod 50 = 49 then 1 else 0) in
  let decoded, bits = roundtrip (List.map (fun _ -> freqs) symbols) symbols in
  Alcotest.(check (list int)) "roundtrip" symbols decoded;
  (* entropy ~ 200 * h(0.02+) ~ 30 bits; allow generous slack *)
  check_le ~msg:"beats 1 bit/symbol" (float_of_int bits) 80.

let t_roundtrip_adaptive_tables () =
  (* per-symbol changing models, as the transcript coder uses *)
  let rng = Prob.Rng.of_int_seed 12 in
  let steps =
    List.init 300 (fun _ ->
        let arity = 2 + Prob.Rng.int rng 4 in
        let freqs = Array.init arity (fun _ -> 1 + Prob.Rng.int rng 100) in
        let total = Array.fold_left ( + ) 0 freqs in
        (* sample from the table itself *)
        let target = Prob.Rng.int rng total in
        let rec pick i acc =
          if acc + freqs.(i) > target then i else pick (i + 1) (acc + freqs.(i))
        in
        (freqs, pick 0 0))
  in
  let decoded, _ = roundtrip (List.map fst steps) (List.map snd steps) in
  Alcotest.(check (list int)) "adaptive roundtrip" (List.map snd steps) decoded

let t_single_symbol_cost () =
  (* one near-certain symbol still costs a few bits: the flush — the
     mechanism behind the one-shot gap *)
  let freqs = [| 16000; 16 |] in
  let decoded, bits = roundtrip [ freqs ] [ 0 ] in
  Alcotest.(check (list int)) "decodes" [ 0 ] decoded;
  Alcotest.(check bool) "flush costs >= 1 bit" true (bits >= 1);
  check_le ~msg:"but O(1)" (float_of_int bits) 4.

let t_freqs_of_probs () =
  let f = A.freqs_of_probs [| 0.5; 0.5 |] in
  Alcotest.(check int) "symmetric" f.(0) f.(1);
  let f = A.freqs_of_probs [| 0.999; 0.0; 0.001 |] in
  Alcotest.(check bool) "zero prob stays encodable" true (f.(1) >= 1);
  Alcotest.(check bool) "bounded total" true (Array.fold_left ( + ) 0 f <= 1 lsl 16)

let t_bad_inputs () =
  let w = W.create () in
  let enc = A.Encoder.create w in
  Alcotest.check_raises "bad symbol" (Invalid_argument "Arith: bad symbol")
    (fun () -> A.Encoder.encode enc ~freqs:[| 1; 1 |] 2);
  Alcotest.check_raises "zero frequency"
    (Invalid_argument "Arith: zero frequency") (fun () ->
      A.Encoder.encode enc ~freqs:[| 1; 0 |] 0)

let prop_random_roundtrip =
  qtest "random streams roundtrip" ~count:150 QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed (seed + 777) in
      let len = 1 + Prob.Rng.int rng 60 in
      let steps =
        List.init len (fun _ ->
            let arity = 2 + Prob.Rng.int rng 5 in
            let freqs = Array.init arity (fun _ -> 1 + Prob.Rng.int rng 64) in
            (freqs, Prob.Rng.int rng arity))
      in
      let decoded, _ = roundtrip (List.map fst steps) (List.map snd steps) in
      decoded = List.map snd steps)

(* --- one-shot compression story --- *)

let t_oneshot_decodes () =
  let k = 5 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let inputs = Array.make k 1 in
  let inter = Compress.Oneshot.interactive ~seed:3 ~tree ~mu ~inputs in
  let omni = Compress.Oneshot.omniscient ~seed:3 ~tree ~mu ~inputs in
  Alcotest.(check bool) "interactive decodes" true inter.Compress.Oneshot.decoded_ok;
  Alcotest.(check bool) "omniscient decodes" true omni.Compress.Oneshot.decoded_ok;
  Alcotest.(check int) "k messages on 1^k" k inter.Compress.Oneshot.messages

let t_oneshot_gap () =
  (* the measured Section-6 gap: interactive pays Omega(1) per message
     (Theta(k) on the all-ones input), omniscient reaches H(T)+O(1) *)
  let k = 10 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let inputs = Array.make k 1 in
  let inter = Compress.Oneshot.interactive ~seed:5 ~tree ~mu ~inputs in
  let omni = Compress.Oneshot.omniscient ~seed:5 ~tree ~mu ~inputs in
  check_ge ~msg:"interactive pays per message"
    (float_of_int inter.Compress.Oneshot.bits)
    (float_of_int k);
  (* on 1^k the transcript has probability ~ (1-1/k)^(k(k-1)) under mu's
     posterior walk; the omniscient cost is its surprisal + O(1), far
     below k for large k; at k = 10 it is already well below *)
  Alcotest.(check bool)
    (Printf.sprintf "omniscient %d < interactive %d" omni.Compress.Oneshot.bits
       inter.Compress.Oneshot.bits)
    true
    (omni.Compress.Oneshot.bits < inter.Compress.Oneshot.bits)

let t_oneshot_expected_vs_entropy () =
  let k = 6 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let h = Proto.Information.transcript_entropy tree mu in
  let omni_mean, ok =
    Compress.Oneshot.expected_bits Compress.Oneshot.omniscient ~seed:7 ~tree
      ~mu ~samples:300
  in
  Alcotest.(check bool) "all decoded" true ok;
  (* omniscient expected bits ~ H(T) + quantization + flush *)
  check_ge ~msg:"above entropy" (omni_mean +. 0.2) h;
  check_le ~msg:"within H(T) + 4" omni_mean (h +. 4.)

let suite =
  [
    quick "roundtrip uniform" t_roundtrip_uniform;
    quick "roundtrip skewed" t_roundtrip_skewed;
    quick "roundtrip adaptive tables" t_roundtrip_adaptive_tables;
    quick "single-symbol flush cost" t_single_symbol_cost;
    quick "freqs_of_probs" t_freqs_of_probs;
    quick "bad inputs rejected" t_bad_inputs;
    prop_random_roundtrip;
    quick "one-shot coders decode" t_oneshot_decodes;
    quick "one-shot gap (interactive vs omniscient)" t_oneshot_gap;
    slow "omniscient reaches transcript entropy" t_oneshot_expected_vs_entropy;
  ]
