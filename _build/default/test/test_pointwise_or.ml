(** Tests for the pointwise-OR protocol. *)

module P = Protocols.Pointwise_or
module C = Protocols.Disj_common
open Test_util

let check_instance inst =
  let expected = P.reference inst in
  let r = P.solve inst in
  if r.P.output <> expected then Alcotest.fail "wrong OR vector";
  let t = P.solve_trivial inst in
  if t.P.output <> expected then Alcotest.fail "trivial wrong"

let t_exhaustive () =
  List.iter check_instance (C.enumerate ~n:3 ~k:3);
  List.iter check_instance (C.enumerate ~n:2 ~k:2);
  List.iter check_instance (C.enumerate ~n:1 ~k:4)

let t_edges () =
  check_instance (C.all_full ~n:50 ~k:5);
  check_instance (C.all_empty ~n:50 ~k:5);
  check_instance (C.last_player_empty ~n:50 ~k:5);
  check_instance (C.all_full ~n:5 ~k:1)

let t_all_empty_cheap () =
  (* nothing to announce: one pass cycle, O(k) bits *)
  let r = P.solve (C.all_empty ~n:100_000 ~k:32) in
  Alcotest.(check bool) "all zero" true (Array.for_all not r.P.output);
  check_le ~msg:"O(k) bits" (float_of_int r.P.bits) 64.

let t_sparse_cost () =
  (* few ones: cost ~ ones * log k, far below trivial nk *)
  let rng = Prob.Rng.of_int_seed 17 in
  let n = 8192 and k = 16 in
  let sets = Array.init k (fun _ -> Array.make n false) in
  for _ = 1 to 200 do
    sets.(Prob.Rng.int rng k).(Prob.Rng.int rng n) <- true
  done;
  let inst = C.make ~n sets in
  let ones = Array.length (Array.of_list (List.filter (fun b -> b) (Array.to_list (P.reference inst)))) in
  let r = P.solve inst in
  Alcotest.(check bool) "correct" true (r.P.output = P.reference inst);
  check_le ~msg:"cheap on sparse inputs"
    (float_of_int r.P.bits)
    (4. *. P.cost_model ~ones ~k +. 200.)

let t_dense_beats_trivial_on_large_k () =
  let rng = Prob.Rng.of_int_seed 5 in
  let n = 4096 and k = 64 in
  (* each coordinate owned by exactly one player: n ones total *)
  let sets = Array.init k (fun _ -> Array.make n false) in
  for j = 0 to n - 1 do
    sets.(Prob.Rng.int rng k).(j) <- true
  done;
  let inst = C.make ~n sets in
  let r = P.solve inst in
  let t = P.solve_trivial inst in
  Alcotest.(check bool) "correct" true (r.P.output = P.reference inst);
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < trivial %d" r.P.bits t.P.bits)
    true
    (r.P.bits < t.P.bits)

let pack_or inst =
  Array.fold_left
    (fun acc b -> (2 * acc) + if b then 1 else 0)
    0 (P.reference inst)

let t_exact_tree_computes_or () =
  let n = 2 and k = 3 in
  let tree = Protocols.Disj_trees.pointwise_or_broadcast ~n ~k in
  List.iter
    (fun inst ->
      let x = C.to_bit_vectors inst in
      match Prob.Dist_exact.support (Proto.Semantics.output_dist tree x) with
      | [ v ] -> Alcotest.(check int) "packed OR" (pack_or inst) v
      | _ -> Alcotest.fail "deterministic")
    (C.enumerate ~n ~k)

let t_information_floor () =
  (* every exact pointwise-OR protocol reveals at least H(Y): check the
     witness tree against the output entropy under several input laws *)
  let n = 2 and k = 2 in
  let tree = Protocols.Disj_trees.pointwise_or_broadcast ~n ~k in
  List.iter
    (fun (name, mu) ->
      let ic = Proto.Information.external_ic tree mu in
      let output_law =
        Prob.Dist_exact.bind mu (fun x ->
            Proto.Semantics.output_dist tree x)
      in
      let h_y = Infotheory.Measures.Exact_w.entropy output_law in
      check_ge ~msg:(name ^ ": IC >= H(Y)") ic (h_y -. 1e-9))
    [
      ( "uniform",
        Prob.Dist_exact.iid k
          (Prob.Dist_exact.uniform [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]) );
      ("hard-like", Protocols.Hard_dist.mu_disj ~n ~k);
    ]

let prop_random_agree =
  qtest "pointwise-OR agrees with reference" ~count:80
    (QCheck.pair (QCheck.int_range 1 60) (QCheck.int_range 1 6))
    (fun (n, k) ->
      let rng = Prob.Rng.of_int_seed ((n * 131) + k) in
      let inst = C.random_dense rng ~n ~k ~density:0.3 in
      let r = P.solve inst in
      r.P.output = P.reference inst)

let suite =
  [
    quick "exhaustive small instances" t_exhaustive;
    quick "edge instances" t_edges;
    quick "all-empty is O(k)" t_all_empty_cheap;
    quick "sparse cost shape" t_sparse_cost;
    quick "beats trivial at large k" t_dense_beats_trivial_on_large_k;
    quick "exact tree computes OR" t_exact_tree_computes_or;
    quick "information floor IC >= H(Y)" t_information_floor;
    prop_random_agree;
  ]
