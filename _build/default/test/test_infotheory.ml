(** Tests for entropy, divergence and mutual information. *)

module D = Prob.Dist
module M = Infotheory.Measures.Float
module Me = Infotheory.Measures.Exact_w
module Fn = Infotheory.Fn
open Test_util

let t_entropy_uniform () =
  check_float ~msg:"H(uniform 8)" 3. (M.entropy (D.uniform [ 0; 1; 2; 3; 4; 5; 6; 7 ]));
  check_float ~msg:"H(point)" 0. (M.entropy (D.return 0));
  check_float ~msg:"H(fair coin)" 1. (M.entropy (D.bernoulli 0.5))

let t_binary_entropy () =
  check_float ~msg:"h(1/2)" 1. (Fn.binary_entropy 0.5);
  check_float ~msg:"h(0)" 0. (Fn.binary_entropy 0.);
  check_float ~msg:"h(1)" 0. (Fn.binary_entropy 1.);
  check_close ~msg:"h(1/4)" ~eps:1e-9 0.8112781244591328 (Fn.binary_entropy 0.25)

let t_kl_basics () =
  let p = D.bernoulli 0.5 and q = D.bernoulli 0.25 in
  check_float ~msg:"D(p||p) = 0" 0. (M.kl p p);
  check_close ~msg:"D matches binary_kl" ~eps:1e-12 (Fn.binary_kl 0.5 0.25)
    (M.kl p q);
  Alcotest.(check bool) "D >= 0" true (M.kl p q >= 0.)

let t_kl_support_violation () =
  let p = D.uniform [ 0; 1 ] and q = D.return 0 in
  Alcotest.(check bool) "infinite" true (Float.is_integer (M.kl p q) = false || M.kl p q = infinity);
  Alcotest.(check bool) "is inf" true (M.kl p q = infinity)

let t_mi_independent () =
  let j = D.product (D.bernoulli 0.3) (D.bernoulli 0.6) in
  check_float ~msg:"I = 0 for independent" ~eps:1e-12 0.
    (M.mutual_information j)

let t_mi_identical () =
  (* Y = X: I(X;Y) = H(X) *)
  let j = D.map (fun x -> (x, x)) (D.uniform [ 0; 1; 2; 3 ]) in
  check_float ~msg:"I(X;X) = H(X)" 2. (M.mutual_information j)

let t_mi_symmetry () =
  let j =
    D.of_weighted [ ((0, 0), 0.4); ((0, 1), 0.1); ((1, 0), 0.2); ((1, 1), 0.3) ]
  in
  let swapped = D.map (fun (a, b) -> (b, a)) j in
  check_close ~msg:"I symmetric" ~eps:1e-12 (M.mutual_information j)
    (M.mutual_information swapped)

let t_mi_equals_expected_divergence () =
  let j =
    D.of_weighted [ ((0, 0), 0.4); ((0, 1), 0.1); ((1, 0), 0.2); ((1, 1), 0.3) ]
  in
  check_close ~msg:"eq. (1) of the paper" ~eps:1e-12 (M.mutual_information j)
    (M.mi_as_expected_divergence j)

let t_conditional_entropy () =
  (* H(X|Y) for Y = X is 0; for independent it's H(X). *)
  let j_same = D.map (fun x -> (x, x)) (D.uniform [ 0; 1; 2; 3 ]) in
  check_float ~msg:"H(X|X) = 0" ~eps:1e-12 0. (M.conditional_entropy j_same);
  let j_ind = D.product (D.uniform [ 0; 1; 2; 3 ]) (D.bernoulli 0.5) in
  check_float ~msg:"H(X|Y) = H(X)" ~eps:1e-12 2. (M.conditional_entropy j_ind)

let t_cmi_conditioning_breaks_dependence () =
  (* X = Z, Y = Z: I(X;Y) = H(Z) but I(X;Y|Z) = 0. *)
  let j = D.map (fun z -> (z, z, z)) (D.uniform [ 0; 1; 2; 3 ]) in
  check_float ~msg:"I(X;Y|Z) = 0" ~eps:1e-12 0.
    (M.conditional_mutual_information j);
  let pair = D.map (fun (z, _, _) -> (z, z)) j in
  check_float ~msg:"I(X;Y) = 2" 2. (M.mutual_information pair)

let t_cmi_conditioning_creates_dependence () =
  (* X, Y independent fair bits, Z = X xor Y: I(X;Y) = 0 but
     I(X;Y|Z) = 1. *)
  let j =
    D.bind (D.bernoulli 0.5) (fun x ->
        D.map (fun y ->
            ((if x then 1 else 0), (if y then 1 else 0),
             if x <> y then 1 else 0))
          (D.bernoulli 0.5))
  in
  check_float ~msg:"I(X;Y|X xor Y) = 1" ~eps:1e-12 1.
    (M.conditional_mutual_information j)

let t_entropy_additive_product () =
  let a = D.bernoulli 0.3 and b = D.uniform [ 0; 1; 2 ] in
  check_close ~msg:"H(A,B) = H(A)+H(B)" ~eps:1e-12
    (M.entropy a +. M.entropy b)
    (M.entropy (D.product a b))

let t_posterior_surprise_bound () =
  (* eq. (3)-(4): exact binary divergence >= p log k - H(p). *)
  List.iter
    (fun (p, k) ->
      let exact = Fn.binary_kl p (1. /. float_of_int k) in
      let bound = Fn.posterior_surprise_bound ~p ~k in
      check_ge ~msg:(Printf.sprintf "p=%.2f k=%d" p k) exact bound)
    [ (0.5, 8); (0.9, 16); (0.3, 4); (0.99, 1024); (0.5, 2) ]

let t_exact_measures_match_float () =
  let de =
    Prob.Dist_exact.of_weighted
      [ (0, Exact.Rational.of_ints 1 3); (1, Exact.Rational.of_ints 2 3) ]
  in
  let df = D.of_weighted [ (0, 1. /. 3.); (1, 2. /. 3.) ] in
  check_close ~msg:"entropies agree" ~eps:1e-9 (M.entropy df) (Me.entropy de)

let t_kahan () =
  let xs = List.init 10000 (fun _ -> 0.1) in
  check_close ~msg:"kahan sum" ~eps:1e-9 1000. (Fn.kahan_sum xs)

let joint_gen =
  QCheck.map
    (fun weights ->
      let weights = List.map (fun w -> Float.abs w +. 0.01) weights in
      D.of_weighted
        (List.mapi (fun i w -> ((i mod 3, i mod 2), w)) weights))
    (QCheck.list_of_size (QCheck.Gen.return 6)
       (QCheck.float_bound_exclusive 10.))

let prop_mi_nonneg =
  qtest "I >= 0" joint_gen (fun j -> M.mutual_information j >= -1e-9)

let prop_mi_le_entropies =
  qtest "I <= min(H(A), H(B))" joint_gen (fun j ->
      let i = M.mutual_information j in
      i <= M.entropy (D.map fst j) +. 1e-9
      && i <= M.entropy (D.map snd j) +. 1e-9)

let prop_chain_rule =
  qtest "H(A,B) = H(B) + H(A|B)" joint_gen (fun j ->
      Float.abs (M.chain_rule_residual j) < 1e-9)

let prop_kl_nonneg =
  qtest "D(p||q) >= 0 (Gibbs)" (QCheck.pair float_dist_gen float_dist_gen)
    (fun (p, q) ->
      (* restrict q to cover p's support by mixing *)
      let q =
        D.of_weighted
          (List.map (fun (v, w) -> (v, (0.5 *. w) +. 0.001)) (D.to_alist p)
          @ List.map (fun (v, w) -> (v, 0.5 *. w)) (D.to_alist q))
      in
      M.kl p q >= -1e-9)

let suite =
  [
    quick "entropy of standard laws" t_entropy_uniform;
    quick "binary entropy" t_binary_entropy;
    quick "KL basics" t_kl_basics;
    quick "KL support violation" t_kl_support_violation;
    quick "MI of independent" t_mi_independent;
    quick "MI of identical" t_mi_identical;
    quick "MI symmetry" t_mi_symmetry;
    quick "MI = expected divergence (eq. 1)" t_mi_equals_expected_divergence;
    quick "conditional entropy" t_conditional_entropy;
    quick "CMI: conditioning removes dependence" t_cmi_conditioning_breaks_dependence;
    quick "CMI: conditioning creates dependence" t_cmi_conditioning_creates_dependence;
    quick "entropy additive on products" t_entropy_additive_product;
    quick "posterior surprise bound (eq. 3-4)" t_posterior_surprise_bound;
    quick "exact and float measures agree" t_exact_measures_match_float;
    quick "kahan summation" t_kahan;
    prop_mi_nonneg;
    prop_mi_le_entropies;
    prop_chain_rule;
    prop_kl_nonneg;
  ]
