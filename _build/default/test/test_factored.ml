(** Tests for the analytic (factored) Lemma-7 cost simulator and its
    agreement with the literal point process. *)

module FS = Compress.Factored_sampler
module Am = Compress.Amortized
open Test_util

let t_sent_distribution () =
  (* the sampled joint symbol must be the product of the etas *)
  let etas = [| [| 0.75; 0.25 |]; [| 0.5; 0.5 |] |] in
  let nus = [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  let counts = Hashtbl.create 4 in
  let trials = 40_000 in
  let rng = Prob.Rng.of_int_seed 9 in
  for _ = 1 to trials do
    let round = Prob.Rng.split rng in
    let w = Coding.Bitbuf.Writer.create () in
    let res = FS.transmit ~rng:round ~etas ~nus w in
    let key = (res.FS.sent.(0), res.FS.sent.(1)) in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  List.iter
    (fun ((a, b), expected) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts (a, b)) in
      check_close
        ~msg:(Printf.sprintf "P[%d,%d]" a b)
        ~eps:0.02 expected
        (float_of_int c /. float_of_int trials))
    [ ((0, 0), 0.375); ((0, 1), 0.375); ((1, 0), 0.125); ((1, 1), 0.125) ]

let mean_cost_literal ~eta ~nu ~trials =
  let total = ref 0 in
  let rng = Prob.Rng.of_int_seed 5 in
  for _ = 1 to trials do
    let round = Prob.Rng.split rng in
    let w = Coding.Bitbuf.Writer.create () in
    let res = Compress.Point_sampler.transmit ~rng:round ~eta ~nu w in
    total := !total + res.Compress.Point_sampler.bits
  done;
  float_of_int !total /. float_of_int trials

let mean_cost_factored ~etas ~nus ~trials =
  let total = ref 0 in
  let rng = Prob.Rng.of_int_seed 5 in
  for _ = 1 to trials do
    let round = Prob.Rng.split rng in
    let w = Coding.Bitbuf.Writer.create () in
    let res = FS.transmit ~rng:round ~etas ~nus w in
    total := !total + res.FS.bits
  done;
  float_of_int !total /. float_of_int trials

let t_cost_matches_literal_single () =
  (* one copy, universe 8: both simulators see the same (eta, nu) *)
  let eta = [| 0.6; 0.2; 0.05; 0.05; 0.025; 0.025; 0.025; 0.025 |] in
  let nu = Array.make 8 0.125 in
  let lit = mean_cost_literal ~eta ~nu ~trials:2000 in
  let fac = mean_cost_factored ~etas:[| eta |] ~nus:[| nu |] ~trials:2000 in
  check_close ~msg:(Printf.sprintf "literal %.2f vs factored %.2f" lit fac)
    ~eps:0.8 lit fac

let t_cost_matches_literal_product () =
  (* 6 binary copies: product universe 64, still literal-feasible *)
  let etas = Array.make 6 [| 0.8; 0.2 |] in
  let nus = Array.make 6 [| 0.4; 0.6 |] in
  (* build the literal product arrays *)
  let u = 64 in
  let eta = Array.make u 0. and nu = Array.make u 0. in
  for code = 0 to u - 1 do
    let pe = ref 1. and pn = ref 1. in
    for c = 0 to 5 do
      let b = (code lsr c) land 1 in
      pe := !pe *. etas.(c).(b);
      pn := !pn *. nus.(c).(b)
    done;
    eta.(code) <- !pe;
    nu.(code) <- !pn
  done;
  let lit = mean_cost_literal ~eta ~nu ~trials:1000 in
  let fac = mean_cost_factored ~etas ~nus ~trials:1000 in
  check_close ~msg:(Printf.sprintf "literal %.2f vs factored %.2f" lit fac)
    ~eps:1.2 lit fac

let t_amortized_factored_vs_literal () =
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  let literal =
    mean
      (List.init 6 (fun s ->
           (fst (Am.compress_random ~seed:(s + 1) ~tree ~mu ~copies:12 ()))
             .Am.per_copy_bits))
  in
  let factored =
    mean
      (List.init 6 (fun s ->
           (fst
              (Am.compress_random_factored ~seed:(s + 1) ~tree ~mu ~copies:12
                 ()))
             .Am.per_copy_bits))
  in
  check_close
    ~msg:(Printf.sprintf "literal %.2f vs factored %.2f" literal factored)
    ~eps:0.6 literal factored



let t_factored_large_copies_above_ic () =
  (* information is a lower bound: per-copy cost must stay (just) above
     IC even at many copies *)
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  let run, _ = Am.compress_random_factored ~seed:3 ~tree ~mu ~copies:256 () in
  check_ge ~msg:"per-copy >= IC - slack" run.Am.per_copy_bits (ic -. 0.25);
  check_le ~msg:"per-copy close to IC" run.Am.per_copy_bits (ic +. 1.0)

let t_factored_outputs_correct () =
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let run, inputs =
    Am.compress_random_factored ~seed:11 ~tree ~mu ~copies:64 ()
  in
  Array.iteri
    (fun c x ->
      Alcotest.(check int)
        (Printf.sprintf "copy %d" c)
        (Protocols.Hard_dist.and_fn x)
        run.Am.outputs.(c))
    inputs

let t_factored_abort_framing () =
  let etas = [| [| 0.5; 0.5 |] |] and nus = [| [| 0.5; 0.5 |] |] in
  let rng = Prob.Rng.of_int_seed 4 in
  let w = Coding.Bitbuf.Writer.create () in
  (* max_blocks cannot be forced directly; eps = 0.99 gives the smallest
     block budget, so run many rounds and just assert framing sanity *)
  let res = FS.transmit ~rng ~etas ~nus ~eps:0.5 w in
  Alcotest.(check bool) "bits positive" true (res.FS.bits > 0);
  Alcotest.(check int) "bits accounted" res.FS.bits (Coding.Bitbuf.Writer.length w)

let suite =
  [
    slow "sent symbols are product-eta distributed" t_sent_distribution;
    slow "cost matches literal (single copy)" t_cost_matches_literal_single;
    slow "cost matches literal (6-copy product)" t_cost_matches_literal_product;
    slow "amortized: factored matches literal at 12 copies"
      t_amortized_factored_vs_literal;
    slow "large copies stay above IC" t_factored_large_copies_above_ic;
    quick "factored outputs correct" t_factored_outputs_correct;
    quick "framing sanity" t_factored_abort_framing;
  ]
