(** Tests for the blackboard runtime. *)

module B = Blackboard.Board
open Test_util

let writer_of_bits bits =
  let w = Coding.Bitbuf.Writer.create () in
  List.iter (Coding.Bitbuf.Writer.add_bit w) bits;
  w

let t_accounting () =
  let b = B.create ~k:3 in
  B.post b ~player:0 ~label:"a" (writer_of_bits [ true; false ]);
  B.post b ~player:1 (writer_of_bits [ true ]);
  B.post b ~player:0 (writer_of_bits [ false; false; false ]);
  Alcotest.(check int) "total" 6 (B.total_bits b);
  Alcotest.(check int) "writes" 3 (B.write_count b);
  Alcotest.(check int) "by player 0" 5 (B.bits_by b 0);
  Alcotest.(check int) "by player 1" 1 (B.bits_by b 1);
  Alcotest.(check int) "by player 2" 0 (B.bits_by b 2)

let t_order_and_labels () =
  let b = B.create ~k:2 in
  B.post b ~player:0 ~label:"first" (writer_of_bits [ true ]);
  B.post b ~player:1 ~label:"second" (writer_of_bits [ false ]);
  (match B.writes b with
  | [ w1; w2 ] ->
      Alcotest.(check string) "label 1" "first" w1.B.label;
      Alcotest.(check string) "label 2" "second" w2.B.label;
      Alcotest.(check int) "player order" 0 w1.B.player
  | _ -> Alcotest.fail "two writes expected");
  match B.last_write b with
  | Some w -> Alcotest.(check string) "last" "second" w.B.label
  | None -> Alcotest.fail "last exists"

let t_reread_write () =
  let b = B.create ~k:1 in
  let w = Coding.Bitbuf.Writer.create () in
  Coding.Intcode.write_gamma w 42;
  B.post b ~player:0 w;
  match B.last_write b with
  | None -> Alcotest.fail "write exists"
  | Some wr ->
      let r = B.reader_of_write wr in
      Alcotest.(check int) "decoded" 42 (Coding.Intcode.read_gamma r)

let t_bad_player () =
  let b = B.create ~k:2 in
  Alcotest.check_raises "player out of range"
    (Invalid_argument "Board.post: bad player") (fun () ->
      B.post b ~player:2 (writer_of_bits [ true ]))

let t_private_rngs_distinct () =
  let rngs = Blackboard.Runtime.private_rngs ~seed:1 ~k:4 in
  let draws = Array.map Prob.Rng.next_int64 rngs in
  let distinct =
    Array.to_list draws |> List.sort_uniq Int64.compare |> List.length
  in
  Alcotest.(check int) "all distinct" 4 distinct;
  (* reproducible *)
  let rngs' = Blackboard.Runtime.private_rngs ~seed:1 ~k:4 in
  Array.iteri
    (fun i r ->
      Alcotest.(check int64) "reproducible" draws.(i) (Prob.Rng.next_int64 r) |> ignore)
    rngs' |> ignore

let t_public_rng_differs_from_private () =
  let public = Blackboard.Runtime.public_rng ~seed:1 in
  let private0 = (Blackboard.Runtime.private_rngs ~seed:1 ~k:1).(0) in
  Alcotest.(check bool) "public <> private" true
    (not (Int64.equal (Prob.Rng.next_int64 public) (Prob.Rng.next_int64 private0)))

let t_turn_robin () =
  let visits = ref [] in
  let r =
    Blackboard.Runtime.turn_robin ~k:5 (fun i ->
        visits := i :: !visits;
        if i = 3 then Some "hit" else None)
  in
  Alcotest.(check (option string)) "found" (Some "hit") r;
  Alcotest.(check (list int)) "visited prefix" [ 0; 1; 2; 3 ] (List.rev !visits);
  let r2 = Blackboard.Runtime.turn_robin ~k:3 (fun _ -> None) in
  Alcotest.(check (option string)) "none" None r2

let suite =
  [
    quick "bit accounting" t_accounting;
    quick "order and labels" t_order_and_labels;
    quick "re-read a write" t_reread_write;
    quick "bad player rejected" t_bad_player;
    quick "private rngs distinct and reproducible" t_private_rngs_distinct;
    quick "public rng independent" t_public_rng_differs_from_private;
    quick "turn robin" t_turn_robin;
  ]
