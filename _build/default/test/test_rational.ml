(** Unit and property tests for exact rationals. *)

module R = Exact.Rational
module B = Exact.Bigint
open Test_util

let t_canonical () =
  check_rational ~msg:"2/4 = 1/2" R.half (R.of_ints 2 4);
  check_rational ~msg:"-2/-4 = 1/2" R.half (R.of_ints (-2) (-4));
  check_rational ~msg:"3/-6 = -1/2" (R.of_ints (-1) 2) (R.of_ints 3 (-6));
  Alcotest.(check string) "den positive" "-1/2" (R.to_string (R.of_ints 1 (-2)));
  Alcotest.(check string) "integer prints plain" "7" (R.to_string (R.of_int 7))

let t_arith () =
  check_rational ~msg:"1/2 + 1/3" (R.of_ints 5 6)
    (R.add R.half (R.of_ints 1 3));
  check_rational ~msg:"1/2 * 2/3" (R.of_ints 1 3)
    (R.mul R.half (R.of_ints 2 3));
  check_rational ~msg:"1/2 - 1/2" R.zero (R.sub R.half R.half);
  check_rational ~msg:"(1/2) / (1/4)" (R.of_int 2)
    (R.div R.half (R.of_ints 1 4));
  check_rational ~msg:"pow (2/3)^3" (R.of_ints 8 27) (R.pow (R.of_ints 2 3) 3);
  check_rational ~msg:"pow (2/3)^-2" (R.of_ints 9 4)
    (R.pow (R.of_ints 2 3) (-2))

let t_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.compare (R.of_ints 1 3) R.half < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true
    (R.compare (R.of_ints (-1) 2) (R.of_ints 1 3) < 0);
  Alcotest.(check int) "sign neg" (-1) (R.sign (R.of_ints (-3) 7));
  Alcotest.(check int) "sign zero" 0 (R.sign R.zero)

let t_zero_den () =
  Alcotest.check_raises "den zero" Division_by_zero (fun () ->
      ignore (R.of_ints 1 0));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (R.inv R.zero))

let t_of_float_dyadic () =
  check_rational ~msg:"0.5" R.half (R.of_float_dyadic 0.5);
  check_rational ~msg:"0.25" (R.of_ints 1 4) (R.of_float_dyadic 0.25);
  check_rational ~msg:"3.0" (R.of_int 3) (R.of_float_dyadic 3.0);
  check_rational ~msg:"-1.75" (R.of_ints (-7) 4) (R.of_float_dyadic (-1.75));
  check_rational ~msg:"0" R.zero (R.of_float_dyadic 0.);
  (* 0.1 is not exactly 1/10 in binary; the dyadic value must roundtrip. *)
  check_float ~msg:"dyadic roundtrips float" 0.1
    (R.to_float (R.of_float_dyadic 0.1))

let t_log2 () =
  check_float ~msg:"log2 8" 3. (R.log2 (R.of_int 8));
  check_float ~msg:"log2 1/4" (-2.) (R.log2 (R.of_ints 1 4));
  (* a value far below float range: (1/2)^2000 *)
  check_float ~msg:"log2 tiny" (-2000.) (R.log2 (R.pow R.half 2000));
  check_float ~msg:"log2 huge" 3000. (R.log2 (R.of_bigint (B.pow B.two 3000)))

let t_sum () =
  check_rational ~msg:"sum thirds" R.one
    (R.sum [ R.of_ints 1 3; R.of_ints 1 3; R.of_ints 1 3 ])

let rat_gen =
  QCheck.map
    (fun (a, b) -> R.of_ints a (1 + abs b))
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range 0 1000))

let prop_add_comm =
  qtest "addition commutes" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
      R.equal (R.add a b) (R.add b a))

let prop_add_assoc =
  qtest "addition associates" (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) -> R.equal (R.add a (R.add b c)) (R.add (R.add a b) c))

let prop_mul_distributes =
  qtest "multiplication distributes" (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)))

let prop_inv_involution =
  qtest "inv is an involution" rat_gen (fun a ->
      QCheck.assume (not (R.is_zero a));
      R.equal a (R.inv (R.inv a)))

let prop_canonical_gcd =
  qtest "canonical form is reduced" rat_gen (fun a ->
      R.is_zero a
      || B.equal B.one (B.gcd (R.num a) (R.den a)))

let prop_compare_consistent_with_float =
  qtest "compare agrees with float compare"
    (QCheck.pair rat_gen rat_gen)
    (fun (a, b) ->
      let c = R.compare a b in
      let fa = R.to_float a and fb = R.to_float b in
      (* floats of small rationals are faithful enough for ordering
         unless the values are equal *)
      if R.equal a b then c = 0
      else (c < 0) = (fa < fb) || Float.abs (fa -. fb) < 1e-12)

let suite =
  [
    quick "canonical form" t_canonical;
    quick "arithmetic" t_arith;
    quick "comparisons" t_compare;
    quick "zero denominators" t_zero_den;
    quick "of_float_dyadic" t_of_float_dyadic;
    quick "log2" t_log2;
    quick "sum" t_sum;
    prop_add_comm;
    prop_add_assoc;
    prop_mul_distributes;
    prop_inv_involution;
    prop_canonical_gcd;
    prop_compare_consistent_with_float;
  ]
