(** Tests for the deterministic PRNG. *)

module Rng = Prob.Rng
open Test_util

let t_deterministic () =
  let a = Rng.of_int_seed 1 and b = Rng.of_int_seed 1 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d equal" i)
      (Rng.next_int64 a) (Rng.next_int64 b)
  done

let t_seeds_differ () =
  let a = Rng.of_int_seed 1 and b = Rng.of_int_seed 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next_int64 a) (Rng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let t_copy_independent () =
  let a = Rng.of_int_seed 5 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  let va = Rng.next_int64 a in
  let vb = Rng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  (* advancing the copy does not affect the original *)
  ignore (Rng.next_int64 b);
  let c = Rng.copy a in
  Alcotest.(check int64) "original unaffected" (Rng.next_int64 a)
    (Rng.next_int64 c)

let t_split_independent () =
  let master1 = Rng.of_int_seed 9 and master2 = Rng.of_int_seed 9 in
  let c1 = Rng.split master1 and c2 = Rng.split master2 in
  Alcotest.(check int64) "splits deterministic" (Rng.next_int64 c1)
    (Rng.next_int64 c2);
  let c3 = Rng.split master1 in
  Alcotest.(check bool) "second split differs" true
    (not (Int64.equal (Rng.next_int64 c1) (Rng.next_int64 c3)))

let t_int_range () =
  let rng = Rng.of_int_seed 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let t_int_bad_bound () =
  let rng = Rng.of_int_seed 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let t_float_range () =
  let rng = Rng.of_int_seed 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    if v < 0. || v >= 1. then Alcotest.failf "float out of range: %f" v
  done

let t_uniformity_chi2 () =
  (* Crude uniformity: 10 buckets, 100k draws; chi-square statistic with
     9 dof should be far below 100. *)
  let rng = Rng.of_int_seed 1234 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 10. in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. buckets
  in
  check_le ~msg:"chi-square" chi2 60.

let t_shuffle_permutes () =
  let rng = Rng.of_int_seed 8 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let t_bernoulli_mean () =
  let rng = Rng.of_int_seed 21 in
  let n = 50_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr count
  done;
  let mean = float_of_int !count /. float_of_int n in
  check_close ~msg:"bernoulli mean" ~eps:0.02 0.3 mean

let suite =
  [
    quick "deterministic streams" t_deterministic;
    quick "seeds differ" t_seeds_differ;
    quick "copy semantics" t_copy_independent;
    quick "split semantics" t_split_independent;
    quick "int range" t_int_range;
    quick "int bad bound" t_int_bad_bound;
    quick "float range" t_float_range;
    slow "uniformity (chi-square)" t_uniformity_chi2;
    quick "shuffle permutes" t_shuffle_permutes;
    slow "bernoulli mean" t_bernoulli_mean;
  ]
