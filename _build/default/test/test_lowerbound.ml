(** Tests for the lower-bound machinery: transcript classification
    (Section 4.1), Lemma 2, Lemma 6, and the Lemma-1 direct-sum
    embedding. *)

module Tr = Lowerbound.Transcripts
module Bd = Lowerbound.Bounds
module Fl = Lowerbound.Fooling
module Ds = Lowerbound.Direct_sum
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

(* --- transcript classification --- *)

let t_masses_partition () =
  let k = 5 in
  let tree = Protocols.And_protocols.noisy_sequential ~k ~noise:(R.of_ints 1 20) in
  let rep = Tr.analyze tree ~k ~c_constant:4. in
  (* B0 + B1 + L = all of pi_2's mass *)
  check_close ~msg:"partition" ~eps:1e-9 1.
    (rep.Tr.mass_b0 +. rep.Tr.mass_b1 +. rep.Tr.mass_l);
  check_le ~msg:"L' <= L" rep.Tr.mass_l' rep.Tr.mass_l;
  check_ge ~msg:"masses nonneg" rep.Tr.mass_b0 0.

let t_exact_protocol_all_good () =
  (* a zero-error protocol has no B1 mass and points perfectly *)
  let k = 6 in
  let rep = Tr.analyze (Protocols.And_protocols.sequential k) ~k ~c_constant:8. in
  check_close ~msg:"no B1" ~eps:1e-12 0. rep.Tr.mass_b1;
  check_close ~msg:"L is everything" ~eps:1e-12 1. rep.Tr.mass_l;
  Alcotest.(check bool) "perfect pointing" true
    (rep.Tr.min_max_alpha_on_l' = infinity)

let t_lemma5_shape_noisy () =
  (* Lemma 5 on a low-error randomized protocol: L' carries most of
     pi_2's mass and every L' transcript points at a player with
     alpha = Omega(k). *)
  let k = 6 in
  let tree = Protocols.And_protocols.noisy_sequential ~k ~noise:(R.of_ints 1 50) in
  let rep = Tr.analyze tree ~k ~c_constant:4. in
  check_ge ~msg:"L' mass large" rep.Tr.mass_l' 0.5;
  check_ge ~msg:"alpha = Omega(k)" rep.Tr.min_max_alpha_on_l'
    (float_of_int k)

let t_high_error_protocol_fails_lemma5_hypothesis () =
  (* the constant protocol "output 0" has zero information; its only
     transcript is empty with alpha_i = 1 for all i — no pointing. The
     error on 1^k is 1, so Lemma 5's hypothesis (small error) fails,
     which shows up as B0 carrying all of pi_2's mass. *)
  let k = 5 in
  let rep =
    Tr.analyze (Protocols.And_protocols.constant ~k 0) ~k ~c_constant:4.
  in
  check_close ~msg:"all mass in B0" ~eps:1e-12 1. rep.Tr.mass_b0

let t_entries_posterior_consistency () =
  let k = 4 in
  let tree = Protocols.And_protocols.noisy_sequential ~k ~noise:(R.of_ints 1 10) in
  let rep = Tr.analyze tree ~k ~c_constant:2. in
  List.iter
    (fun e ->
      (* eq. (5): posterior = alpha/(alpha+k-1), so a large max alpha
         forces a large best posterior *)
      if e.Tr.max_alpha = infinity then
        check_ge ~msg:"posterior 1" e.Tr.posterior_best (1. -. 1e-9)
      else begin
        let expected = e.Tr.max_alpha /. (e.Tr.max_alpha +. float_of_int (k - 1)) in
        check_ge ~msg:"posterior >= alpha/(alpha+k-1)" e.Tr.posterior_best
          (expected -. 1e-9)
      end)
    rep.Tr.entries

(* --- Lemma 2 and eq.(4) --- *)

let t_lemma2_superadditivity () =
  List.iter
    (fun (k, tree) ->
      let mu = Protocols.Hard_dist.mu_and_with_aux ~k in
      let cic = Proto.Information.conditional_ic tree mu in
      let rhs, per = Bd.lemma2_rhs tree mu ~k in
      check_ge ~msg:(Printf.sprintf "lemma 2 k=%d" k) (cic +. 1e-9) rhs;
      Array.iter (fun c -> check_ge ~msg:"per-player nonneg" c (-1e-12)) per)
    [
      (3, Protocols.And_protocols.sequential 3);
      (4, Protocols.And_protocols.sequential 4);
      (3, Protocols.And_protocols.noisy_sequential ~k:3 ~noise:(R.of_ints 1 8));
      (4, Protocols.And_protocols.broadcast_all 4);
    ]

let t_eq4_chain () =
  List.iter
    (fun (p, k) ->
      let exact, middle, crude = Bd.eq4_chain ~p ~k in
      check_ge ~msg:"exact >= middle" exact (middle -. 1e-12);
      check_ge ~msg:"middle >= crude" middle (crude -. 1e-12))
    [ (0.5, 4); (0.5, 64); (0.9, 16); (0.3, 1024); (0.99, 8) ]

let t_cic_grows_with_k () =
  let cics =
    List.map (fun k -> Bd.cic_hard (Protocols.And_protocols.sequential k) ~k)
      [ 2; 3; 4; 5; 6; 7 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b +. 1e-9 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "CIC increasing in k" true (increasing cics);
  (* Theorem 1 shape: CIC = Omega(log k); check ratio bounded below *)
  List.iteri
    (fun i k ->
      let ratio = List.nth cics i /. Float.log2 (float_of_int k) in
      check_ge ~msg:(Printf.sprintf "ratio at k=%d" k) ratio 0.4)
    [ 2; 3; 4; 5; 6; 7 ]

let t_ic_gap_section6 () =
  (* the compression gap: IC = O(log k) while CC = k *)
  List.iter
    (fun k ->
      let tree = Protocols.And_protocols.sequential k in
      let ic = Bd.ic_hard tree ~k in
      check_le ~msg:"IC <= 2 log k + 2" ic
        ((2. *. Float.log2 (float_of_int k)) +. 2.);
      Alcotest.(check int) "CC = k" k (Proto.Tree.communication_cost tree))
    [ 2; 4; 6; 8; 10 ]

(* --- Lemma 6 / fooling --- *)

let t_deterministic_detection () =
  Alcotest.(check bool) "sequential deterministic" true
    (Fl.deterministic (Protocols.And_protocols.sequential 4));
  Alcotest.(check bool) "noisy not deterministic" false
    (Fl.deterministic
       (Protocols.And_protocols.noisy_sequential ~k:4 ~noise:(R.of_ints 1 10)))

let t_speakers_on_ones () =
  Alcotest.(check (list int)) "all speak on 1^k" [ 0; 1; 2; 3 ]
    (Fl.speakers_on_ones (Protocols.And_protocols.sequential 4) ~k:4);
  Alcotest.(check (list int)) "halt at zero" [ 0 ]
    (Fl.speakers_on (Protocols.And_protocols.sequential 4) [| 0; 1; 1; 1 |])

let t_lemma6_exact_error_dominates_prediction () =
  let k = 8 in
  let eps' = 0.125 in
  List.iter
    (fun m ->
      let m', predicted, exact = Fl.truncated_row ~k ~m ~eps' in
      Alcotest.(check int) "m echoed" m m';
      check_ge ~msg:(Printf.sprintf "m=%d" m) (exact +. 1e-9) predicted)
    [ 0; 1; 2; 4; 6; 8 ]

let t_lemma6_full_protocol_no_error () =
  let k = 6 in
  let err =
    Fl.lemma6_error (Protocols.And_protocols.sequential k) ~k
      ~eps':(R.of_ints 1 5)
  in
  check_rational ~msg:"exact protocol errs never" R.zero err

let t_lemma6_quantitative () =
  (* fewer than (1 - eps/(1-eps')) k speakers => error > eps.
     Take eps = 0.2, eps' = 0.25: threshold is (1 - 0.2/0.75) k = 0.733 k.
     With k = 9 and m = 6 speakers (< 6.6), error must exceed 0.2. *)
  let _, _, exact = Fl.truncated_row ~k:9 ~m:6 ~eps':0.25 in
  check_ge ~msg:"error above eps" exact 0.2

(* --- direct sum --- *)

let t_embedding_solves_and () =
  (* the embedded protocol must compute AND with zero error, since the
     underlying DISJ protocol is exact *)
  let n = 2 and k = 3 in
  let disj_tree = Protocols.Disj_trees.sequential ~n ~k in
  for j = 0 to n - 1 do
    let and_tree = Ds.embed ~disj_tree ~n ~k ~j in
    let err =
      Proto.Semantics.worst_case_error and_tree ~f:Protocols.Hard_dist.and_fn
        (Proto.Semantics.all_bit_inputs k)
    in
    check_rational ~msg:(Printf.sprintf "coordinate %d" j) R.zero err
  done

let t_direct_sum_inequality () =
  (* sum_j CIC(embed_j) <= CIC_{mu^n}(DISJ) *)
  List.iter
    (fun (n, k) ->
      let disj_tree = Protocols.Disj_trees.sequential ~n ~k in
      let total, per = Ds.direct_sum_check ~disj_tree ~n ~k in
      let sum = Array.fold_left ( +. ) 0. per in
      check_le ~msg:(Printf.sprintf "n=%d k=%d" n k) sum (total +. 1e-6))
    [ (1, 3); (2, 2); (2, 3); (3, 2) ]

let t_embedding_cic_positive () =
  let n = 2 and k = 3 in
  let disj_tree = Protocols.Disj_trees.sequential ~n ~k in
  let cic = Ds.embedded_cic ~disj_tree ~n ~k ~j:0 in
  check_ge ~msg:"embedding carries information" cic 0.1

let t_disj_tree_correct () =
  let n = 3 and k = 3 in
  let tree = Protocols.Disj_trees.sequential ~n ~k in
  List.iter
    (fun inst ->
      let x = Protocols.Disj_common.to_bit_vectors inst in
      let expected = Protocols.Hard_dist.disj_fn x in
      match D.support (Proto.Semantics.output_dist tree x) with
      | [ v ] -> Alcotest.(check int) "disj tree output" expected v
      | _ -> Alcotest.fail "deterministic")
    (Protocols.Disj_common.enumerate ~n ~k)

let t_broadcast_disj_tree_correct () =
  let n = 2 and k = 2 in
  let tree = Protocols.Disj_trees.broadcast_all ~n ~k in
  List.iter
    (fun inst ->
      let x = Protocols.Disj_common.to_bit_vectors inst in
      let expected = Protocols.Hard_dist.disj_fn x in
      match D.support (Proto.Semantics.output_dist tree x) with
      | [ v ] -> Alcotest.(check int) "broadcast disj output" expected v
      | _ -> Alcotest.fail "deterministic")
    (Protocols.Disj_common.enumerate ~n ~k)

let suite =
  [
    quick "pi_2 masses partition" t_masses_partition;
    quick "zero-error protocol: all transcripts good" t_exact_protocol_all_good;
    slow "Lemma 5 shape on noisy protocol" t_lemma5_shape_noisy;
    quick "useless protocol fails hypothesis" t_high_error_protocol_fails_lemma5_hypothesis;
    quick "posterior consistency (eq. 5)" t_entries_posterior_consistency;
    slow "Lemma 2 superadditivity" t_lemma2_superadditivity;
    quick "eq. (4) chain" t_eq4_chain;
    slow "CIC grows like log k (Theorem 1 shape)" t_cic_grows_with_k;
    quick "Section 6 gap: IC small, CC = k" t_ic_gap_section6;
    quick "determinism detection" t_deterministic_detection;
    quick "speakers on inputs" t_speakers_on_ones;
    quick "Lemma 6: exact error dominates prediction" t_lemma6_exact_error_dominates_prediction;
    quick "Lemma 6: exact protocol" t_lemma6_full_protocol_no_error;
    quick "Lemma 6: quantitative" t_lemma6_quantitative;
    slow "embedding solves AND" t_embedding_solves_and;
    slow "direct-sum inequality (Lemma 1)" t_direct_sum_inequality;
    quick "embedding CIC positive" t_embedding_cic_positive;
    slow "DISJ tree correct (exhaustive)" t_disj_tree_correct;
    quick "broadcast DISJ tree correct" t_broadcast_disj_tree_correct;
  ]
