(** Tests for the Lemma-7 point sampler, the observer, and the
    Theorem-3 amortized compression. *)

module PS = Compress.Point_sampler
module Obs = Compress.Observer
module Am = Compress.Amortized
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

let transmit_and_decode ~seed ~eta ~nu ~eps =
  let rng = Prob.Rng.of_int_seed seed in
  let round = Prob.Rng.split rng in
  let dec = Prob.Rng.copy round in
  let w = Coding.Bitbuf.Writer.create () in
  let res = PS.transmit ~rng:round ~eta ~nu ~eps w in
  let reader = Coding.Bitbuf.Reader.of_writer w in
  let decoded =
    PS.decode ~rng:dec ~nu ~u:(Array.length eta)
      ~max_blocks:(PS.default_max_blocks eps)
      reader
  in
  (res, decoded, Coding.Bitbuf.Writer.length w)

let t_agreement () =
  let eta = [| 0.7; 0.1; 0.1; 0.1 |] in
  let nu = [| 0.25; 0.25; 0.25; 0.25 |] in
  for seed = 0 to 499 do
    let res, decoded, total = transmit_and_decode ~seed ~eta ~nu ~eps:0.01 in
    Alcotest.(check int) "decoder agrees" res.PS.sent decoded;
    Alcotest.(check int) "bits accounted" res.PS.bits total
  done

let t_sample_distribution () =
  (* the sent symbol must be eta-distributed *)
  let eta = [| 0.5; 0.25; 0.125; 0.125 |] in
  let nu = [| 0.1; 0.2; 0.3; 0.4 |] in
  let counts = Array.make 4 0 in
  let trials = 20_000 in
  for seed = 0 to trials - 1 do
    let res, _, _ = transmit_and_decode ~seed ~eta ~nu ~eps:0.05 in
    counts.(res.PS.sent) <- counts.(res.PS.sent) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close
        ~msg:(Printf.sprintf "freq of %d" i)
        ~eps:0.02 eta.(i)
        (float_of_int c /. float_of_int trials))
    counts

let t_point_mass_cheap () =
  (* eta = nu = point mass: cost should be tiny and constant *)
  let eta = [| 1.; 0. |] and nu = [| 1.; 0. |] in
  let res, decoded, _ = transmit_and_decode ~seed:1 ~eta ~nu ~eps:0.01 in
  Alcotest.(check int) "symbol 0" 0 res.PS.sent;
  Alcotest.(check int) "decoded" 0 decoded;
  check_le ~msg:"few bits" (float_of_int res.PS.bits) 8.

let t_cost_tracks_divergence () =
  (* sweep divergences; measured mean bits must stay within the model's
     envelope and grow with D *)
  let u = 64 in
  let nu = Array.make u (1. /. float_of_int u) in
  let avg_bits_for p0 =
    (* eta concentrates mass p0 on symbol 0 *)
    let rest = (1. -. p0) /. float_of_int (u - 1) in
    let eta = Array.init u (fun i -> if i = 0 then p0 else rest) in
    let total = ref 0 in
    let trials = 600 in
    for seed = 0 to trials - 1 do
      let res, _, _ = transmit_and_decode ~seed ~eta ~nu ~eps:0.01 in
      total := !total + res.PS.bits
    done;
    let d =
      Infotheory.Measures.Float.kl
        (Prob.Dist.of_weighted (Array.to_list (Array.mapi (fun i p -> (i, p)) eta)))
        (Prob.Dist.uniform (List.init u (fun i -> i)))
    in
    (float_of_int !total /. float_of_int trials, d)
  in
  let low, d_low = avg_bits_for 0.1 in
  let high, d_high = avg_bits_for 0.95 in
  Alcotest.(check bool) "divergences ordered" true (d_low < d_high);
  Alcotest.(check bool)
    (Printf.sprintf "cost grows with D (%.2f @D=%.2f vs %.2f @D=%.2f)" low
       d_low high d_high)
    true (low < high);
  (* envelope: D + O(log D + log 1/eps) with a generous constant *)
  check_le ~msg:"within model envelope" high
    (d_high +. (4. *. Float.log2 (d_high +. 2.)) +. 14.)

let t_abort_path () =
  (* force aborts with max_blocks = 0: fallback must still agree *)
  let eta = [| 0.5; 0.5 |] and nu = [| 0.5; 0.5 |] in
  let rng = Prob.Rng.of_int_seed 3 in
  let round = Prob.Rng.split rng in
  let dec = Prob.Rng.copy round in
  let w = Coding.Bitbuf.Writer.create () in
  let res = PS.transmit ~rng:round ~eta ~nu ~max_blocks:0 w in
  Alcotest.(check bool) "aborted" true res.PS.aborted;
  let decoded =
    PS.decode ~rng:dec ~nu ~u:2 ~max_blocks:0 (Coding.Bitbuf.Reader.of_writer w)
  in
  Alcotest.(check int) "fallback agrees" res.PS.sent decoded

let t_domination_violation () =
  let eta = [| 1.; 0. |] and nu = [| 0.; 1. |] in
  let rng = Prob.Rng.of_int_seed 4 in
  let w = Coding.Bitbuf.Writer.create () in
  Alcotest.check_raises "eta not dominated"
    (Invalid_argument "Point_sampler.transmit: eta not dominated by nu")
    (fun () -> ignore (PS.transmit ~rng ~eta ~nu w))

let t_negative_log_ratio () =
  (* eta below nu at the sampled point: s <= 0, the scaled prior shrinks
     and P' gets small — the footnote-4 branch *)
  let eta = [| 0.2; 0.8 |] and nu = [| 0.9; 0.1 |] in
  let saw_negative = ref false in
  for seed = 0 to 199 do
    let res, decoded, _ = transmit_and_decode ~seed ~eta ~nu ~eps:0.01 in
    Alcotest.(check int) "agrees" res.PS.sent decoded;
    if res.PS.log_ratio < 0 then saw_negative := true
  done;
  Alcotest.(check bool) "negative s exercised" true !saw_negative

let t_skewed_nu () =
  (* non-uniform prior: cost still tracks the divergence *)
  let eta = [| 0.9; 0.05; 0.03; 0.02 |] in
  let nu = [| 0.02; 0.03; 0.05; 0.9 |] in
  let total = ref 0 in
  let trials = 400 in
  for seed = 0 to trials - 1 do
    let res, decoded, _ = transmit_and_decode ~seed ~eta ~nu ~eps:0.01 in
    Alcotest.(check int) "agrees" res.PS.sent decoded;
    total := !total + res.PS.bits
  done;
  let d =
    Infotheory.Measures.Float.kl
      (Prob.Dist.of_weighted (Array.to_list (Array.mapi (fun i p -> (i, p)) eta)))
      (Prob.Dist.of_weighted (Array.to_list (Array.mapi (fun i p -> (i, p)) nu)))
  in
  let mean = float_of_int !total /. float_of_int trials in
  check_ge ~msg:"cost >= D - slack" mean (d -. 2.);
  check_le ~msg:"cost bounded" mean (d +. 14.)

let t_amortized_with_chance_nodes () =
  (* a protocol containing public coins must flow through the
     compressor's settle_chance path *)
  let k = 3 in
  let tree =
    Proto.Combinators.xor_output_with_coin (Protocols.And_protocols.sequential k)
  in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let run, _ = Am.compress_random ~seed:13 ~tree ~mu ~copies:4 () in
  Alcotest.(check bool) "agreed" true run.Am.agreed;
  Alcotest.(check bool) "ran" true (run.Am.total_bits > 0)

let t_oneshot_exact_matches_sampled () =
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let exact =
    Compress.Oneshot.expected_bits_exact ~single_stream:true ~tree ~mu
  in
  let sampled, ok =
    Compress.Oneshot.expected_bits Compress.Oneshot.omniscient ~seed:4 ~tree
      ~mu ~samples:800
  in
  Alcotest.(check bool) "decoded" true ok;
  check_close ~msg:(Printf.sprintf "exact %.3f vs sampled %.3f" exact sampled)
    ~eps:0.5 exact sampled

(* --- observer --- *)

let t_observer_prior_is_mixture () =
  let k = 3 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let o = Obs.create tree mu in
  match Obs.speak_view o with
  | None -> Alcotest.fail "at a speak node"
  | Some (speaker, arity, nu) ->
      Alcotest.(check int) "speaker 0" 0 speaker;
      Alcotest.(check int) "binary" 2 arity;
      (* prior of message 0 = Pr[X_0 = 0] under mu *)
      let p0 = R.to_float (D.prob mu (fun x -> x.(0) = 0)) in
      check_close ~msg:"nu(0) = Pr[X_0=0]" ~eps:1e-12 p0 nu.(0)

let t_observer_posterior_update () =
  let k = 3 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let o = Obs.create tree mu in
  (* player 0 writes 1; now player 1 speaks, and the prior of its bit
     must be the conditional Pr[X_1 = 0 | X_0 = 1] *)
  let o = Obs.advance_msg o 1 in
  match Obs.speak_view o with
  | None -> Alcotest.fail "speak node"
  | Some (speaker, _, nu) ->
      Alcotest.(check int) "speaker 1" 1 speaker;
      let cond = D.condition_exn mu (fun x -> x.(0) = 1) in
      let expected = R.to_float (D.prob cond (fun x -> x.(1) = 0)) in
      check_close ~msg:"posterior prior" ~eps:1e-12 expected nu.(0)

let t_observer_finish () =
  let tree = Protocols.And_protocols.sequential 2 in
  let mu = Protocols.Hard_dist.mu_and ~k:2 in
  let o = Obs.create tree mu in
  let o = Obs.advance_msg o 0 in
  Alcotest.(check bool) "finished" true (Obs.finished o);
  Alcotest.(check int) "output 0" 0 (Obs.output_exn o)

let t_observer_eta_deterministic () =
  let tree = Protocols.And_protocols.sequential 2 in
  let mu = Protocols.Hard_dist.mu_and ~k:2 in
  let o = Obs.create tree mu in
  let eta = Obs.speaker_eta o 0 in
  Alcotest.(check (array (float 1e-12))) "point mass on 0" [| 1.; 0. |] eta

(* --- amortized --- *)

let t_amortized_outputs_correct () =
  (* sequential AND is deterministic: compressed outputs must equal the
     true AND of each copy's input *)
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let run, inputs = Am.compress_random ~seed:3 ~tree ~mu ~copies:8 () in
  Alcotest.(check bool) "decoders agreed" true run.Am.agreed;
  Array.iteri
    (fun c x ->
      Alcotest.(check int)
        (Printf.sprintf "copy %d output" c)
        (Protocols.Hard_dist.and_fn x)
        run.Am.outputs.(c))
    inputs

let t_amortized_per_copy_decreases () =
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let cost copies =
    let run, _ = Am.compress_random ~seed:5 ~tree ~mu ~copies () in
    run.Am.per_copy_bits
  in
  let c1 = cost 1 and c8 = cost 8 in
  Alcotest.(check bool)
    (Printf.sprintf "per-copy decreases (%.2f -> %.2f)" c1 c8)
    true (c8 < c1)

let t_amortized_approaches_ic () =
  let k = 3 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  (* average several seeds at 12 copies; must be within IC + overhead,
     where overhead <= rounds * ~12 bits / copies *)
  let total = ref 0. in
  let seeds = 5 in
  for s = 1 to seeds do
    let run, _ = Am.compress_random ~seed:s ~tree ~mu ~copies:12 () in
    total := !total +. run.Am.per_copy_bits
  done;
  let mean = !total /. float_of_int seeds in
  check_le ~msg:(Printf.sprintf "per-copy %.2f near IC %.2f" mean ic) mean
    (ic +. 4.)

let t_amortized_randomized_protocol () =
  (* the compressor must also handle genuinely randomized messages *)
  let k = 3 in
  let tree =
    Protocols.And_protocols.noisy_sequential ~k ~noise:(R.of_ints 1 10)
  in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let run, _ = Am.compress_random ~seed:7 ~tree ~mu ~copies:6 () in
  Alcotest.(check bool) "agreed" true run.Am.agreed;
  Alcotest.(check bool) "bits positive" true (run.Am.total_bits > 0)

let t_amortized_deterministic_repro () =
  let k = 3 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let r1, i1 = Am.compress_random ~seed:11 ~tree ~mu ~copies:4 () in
  let r2, i2 = Am.compress_random ~seed:11 ~tree ~mu ~copies:4 () in
  Alcotest.(check int) "same bits" r1.Am.total_bits r2.Am.total_bits;
  Alcotest.(check bool) "same inputs" true (i1 = i2)

let t_mixed_radix () =
  let arities = [| 2; 3; 2 |] in
  for code = 0 to 11 do
    let values = Am.mixed_radix_decode arities code in
    Alcotest.(check int) "roundtrip" code (Am.mixed_radix_encode arities values)
  done

let suite =
  [
    slow "sampler agreement (500 seeds)" t_agreement;
    slow "sampler output is eta-distributed" t_sample_distribution;
    quick "point-mass transmission is cheap" t_point_mass_cheap;
    slow "cost tracks divergence" t_cost_tracks_divergence;
    quick "abort fallback agrees" t_abort_path;
    slow "negative log-ratio branch" t_negative_log_ratio;
    slow "skewed prior" t_skewed_nu;
    quick "amortized through chance nodes" t_amortized_with_chance_nodes;
    slow "one-shot: exact expectation matches sampling" t_oneshot_exact_matches_sampled;
    quick "domination violation detected" t_domination_violation;
    quick "observer prior is the mixture" t_observer_prior_is_mixture;
    quick "observer posterior update" t_observer_posterior_update;
    quick "observer finish/output" t_observer_finish;
    quick "observer eta (deterministic)" t_observer_eta_deterministic;
    quick "amortized outputs correct" t_amortized_outputs_correct;
    slow "amortized per-copy decreases" t_amortized_per_copy_decreases;
    slow "amortized approaches IC" t_amortized_approaches_ic;
    quick "amortized with randomized protocol" t_amortized_randomized_protocol;
    quick "amortized reproducible" t_amortized_deterministic_repro;
    quick "mixed radix codec" t_mixed_radix;
  ]
