(** Tests for the Huffman coder. *)

module H = Coding.Huffman
module W = Coding.Bitbuf.Writer
module Rd = Coding.Bitbuf.Reader
open Test_util

let entropy probs =
  Array.fold_left (fun acc p -> acc -. Infotheory.Fn.xlog2x p) 0. probs

let t_dyadic_optimal () =
  (* dyadic probabilities: Huffman hits the entropy exactly *)
  let probs = [| 0.5; 0.25; 0.125; 0.125 |] in
  let code = H.build probs in
  check_float ~msg:"E[len] = H" (entropy probs) (H.expected_length code probs);
  Alcotest.(check (array int)) "lengths" [| 1; 2; 3; 3 |] (H.code_lengths code)

let t_within_h_plus_one () =
  List.iter
    (fun probs ->
      let code = H.build probs in
      let e = H.expected_length code probs in
      let h = entropy probs in
      check_ge ~msg:"E[len] >= H" e (h -. 1e-9);
      check_le ~msg:"E[len] < H + 1" e (h +. 1.))
    [
      [| 0.9; 0.1 |];
      [| 0.4; 0.3; 0.2; 0.1 |];
      Array.make 7 (1. /. 7.);
      [| 0.01; 0.01; 0.98 |];
    ]

let t_kraft_complete () =
  List.iter
    (fun probs ->
      check_float ~msg:"kraft = 1" 1. (H.kraft_sum (H.build probs)))
    [ [| 0.5; 0.5 |]; [| 0.4; 0.3; 0.2; 0.1 |]; Array.make 9 (1. /. 9.) ]

let t_roundtrip () =
  let probs = [| 0.4; 0.3; 0.2; 0.1 |] in
  let code = H.build probs in
  let symbols = [ 0; 1; 2; 3; 3; 2; 1; 0; 0; 0; 1 ] in
  let w = W.create () in
  List.iter (H.encode code w) symbols;
  let r = Rd.of_writer w in
  List.iter
    (fun s -> Alcotest.(check int) "roundtrip" s (H.decode code r))
    symbols;
  Alcotest.(check int) "stream fully consumed" 0 (Rd.remaining r)

let t_single_symbol () =
  let code = H.build [| 1.0 |] in
  Alcotest.(check (array int)) "empty codeword" [| 0 |] (H.code_lengths code)

let t_prefix_free () =
  let code = H.build [| 0.3; 0.25; 0.2; 0.15; 0.1 |] in
  let words =
    Array.to_list (H.code_lengths code) |> List.length |> fun _ ->
    List.init 5 (fun i ->
        let w = W.create () in
        H.encode code w i;
        W.to_string w)
  in
  List.iteri
    (fun i wi ->
      List.iteri
        (fun j wj ->
          if i <> j && String.length wi <= String.length wj then
            if String.sub wj 0 (String.length wi) = wi then
              Alcotest.failf "%s is a prefix of %s" wi wj)
        words)
    words

let prop_roundtrip_random =
  qtest "random alphabets roundtrip" ~count:100 QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed (seed + 99) in
      let n = 2 + Prob.Rng.int rng 12 in
      let probs = Array.init n (fun _ -> 0.01 +. Prob.Rng.float rng) in
      let z = Array.fold_left ( +. ) 0. probs in
      let probs = Array.map (fun p -> p /. z) probs in
      let code = H.build probs in
      let symbols = List.init 50 (fun _ -> Prob.Rng.int rng n) in
      let w = W.create () in
      List.iter (H.encode code w) symbols;
      let r = Rd.of_writer w in
      List.for_all (fun s -> H.decode code r = s) symbols
      && Float.abs (H.kraft_sum code -. 1.) < 1e-9)

let suite =
  [
    quick "dyadic probabilities are optimal" t_dyadic_optimal;
    quick "within [H, H+1)" t_within_h_plus_one;
    quick "Kraft sum is 1" t_kraft_complete;
    quick "roundtrip" t_roundtrip;
    quick "single-symbol alphabet" t_single_symbol;
    quick "prefix-free" t_prefix_free;
    prop_roundtrip_random;
  ]
