test/test_combinators.ml: Alcotest Array Exact List Lowerbound Printf Prob Proto Protocols Test_util
