test/test_lowerbound.ml: Alcotest Array Exact Float List Lowerbound Printf Prob Proto Protocols Test_util
