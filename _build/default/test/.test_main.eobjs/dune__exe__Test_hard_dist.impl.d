test/test_hard_dist.ml: Alcotest Array Exact List Printf Prob Protocols Test_util
