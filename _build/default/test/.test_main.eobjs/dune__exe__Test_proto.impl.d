test/test_proto.ml: Alcotest Array Exact Infotheory List Printf Prob Proto Protocols Test_util
