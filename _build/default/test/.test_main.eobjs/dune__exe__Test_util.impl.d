test/test_util.ml: Alcotest Exact Float List Prob QCheck QCheck_alcotest
