test/test_dist.ml: Alcotest Exact Float Option Prob QCheck Test_util
