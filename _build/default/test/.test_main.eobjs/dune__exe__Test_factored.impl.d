test/test_factored.ml: Alcotest Array Coding Compress Hashtbl List Option Printf Prob Proto Protocols Test_util
