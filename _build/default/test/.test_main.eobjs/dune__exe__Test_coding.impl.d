test/test_coding.ml: Alcotest Array Coding Exact Float List Printf Prob QCheck Test_util
