test/test_bigint.ml: Alcotest Exact List Printf QCheck String Test_util
