test/test_rational.ml: Alcotest Exact Float QCheck Test_util
