test/test_huffman.ml: Alcotest Array Coding Float Infotheory List Prob QCheck String Test_util
