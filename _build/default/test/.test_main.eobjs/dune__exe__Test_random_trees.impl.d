test/test_random_trees.ml: Array Exact Float List Lowerbound Prob Proto Protocols QCheck Test_util
