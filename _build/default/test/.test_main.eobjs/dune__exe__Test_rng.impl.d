test/test_rng.ml: Alcotest Array Int64 Printf Prob Test_util
