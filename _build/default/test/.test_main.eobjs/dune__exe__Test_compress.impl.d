test/test_compress.ml: Alcotest Array Coding Compress Exact Float Infotheory List Printf Prob Proto Protocols Test_util
