test/test_disj.ml: Alcotest Array Blackboard List Printf Prob Protocols QCheck Test_util
