test/test_board.ml: Alcotest Array Blackboard Coding Int64 List Prob Test_util
