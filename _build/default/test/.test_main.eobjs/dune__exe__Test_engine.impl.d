test/test_engine.ml: Alcotest Array Blackboard Coding List Printf Prob Proto Protocols Test_util
