test/test_infotheory.ml: Alcotest Exact Float Infotheory List Printf Prob QCheck Test_util
