test/test_pointwise_or.ml: Alcotest Array Infotheory List Printf Prob Proto Protocols QCheck Test_util
