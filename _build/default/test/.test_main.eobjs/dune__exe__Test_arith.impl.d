test/test_arith.ml: Alcotest Array Coding Compress List Printf Prob Proto Protocols QCheck Test_util
