lib/infotheory/measures.mli: Prob
