lib/infotheory/measures.ml: Fn List Prob
