lib/infotheory/fn.ml: Float List
