(** Scalar information-theoretic helpers (all logarithms base 2). *)

let log2 = Float.log2

(** [xlog2x 0 = 0] by the usual convention [0 log 0 = 0]. *)
let xlog2x x = if x <= 0. then 0. else x *. log2 x

(** Binary entropy [H(p) = -p log p - (1-p) log (1-p)]. *)
let binary_entropy p =
  if p < 0. || p > 1. then invalid_arg "Fn.binary_entropy";
  -.xlog2x p -. xlog2x (1. -. p)

(** Binary KL divergence [D(p || q)] between Bernoulli parameters. *)
let binary_kl p q =
  if p < 0. || p > 1. || q < 0. || q > 1. then invalid_arg "Fn.binary_kl";
  let term a b =
    if a <= 0. then 0. else if b <= 0. then infinity else a *. log2 (a /. b)
  in
  term p q +. term (1. -. p) (1. -. q)

(** The lower bound of eq. (3)-(4) in the paper: if a bit has prior
    [Pr[0] = 1/k] and posterior [Pr[0] = p], the divergence between
    posterior and prior is at least [p log k - H(p) >= p log k - 1]. *)
let posterior_surprise_bound ~p ~k =
  (p *. log2 (float_of_int k)) -. binary_entropy p

(** Numerically safe sum: Kahan compensated summation, used when adding
    many tiny divergence contributions. *)
let kahan_sum xs =
  let sum = ref 0. and c = ref 0. in
  List.iter
    (fun x ->
      let y = x -. !c in
      let t = !sum +. y in
      c := t -. !sum -. y;
      sum := t)
    xs;
  !sum
