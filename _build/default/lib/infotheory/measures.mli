(** Entropy, divergence and mutual information over finite
    distributions, generic in the weight semifield.

    Probabilities may be float or exact-rational (see {!Prob.Weight});
    information quantities are always floats (bits). The exact instance
    is what the protocol semantics uses: probabilities stay exact and
    only the final logarithms are floating point. *)

module Make (W : Prob.Weight.S) : sig
  module D : module type of Prob.Dist_core.Make (W)

  val entropy : 'a D.t -> float
  (** Shannon entropy in bits (Definition 1). *)

  val kl : 'a D.t -> 'a D.t -> float
  (** [kl p q] is [D(p || q)] (Definition 4); [infinity] if [p]'s
      support escapes [q]'s. *)

  val cross_entropy : 'a D.t -> 'a D.t -> float

  val conditional_entropy : ('a * 'b) D.t -> float
  (** [H(A | B)] for a joint law of [(a, b)] (Definition 2). *)

  val mutual_information : ('a * 'b) D.t -> float
  (** [I(A ; B)] (Definition 3). *)

  val conditional_mutual_information : ('a * 'b * 'c) D.t -> float
  (** [I(A ; B | C)] for a joint law of [(a, b, c)] (Definition 3). *)

  val mi_as_expected_divergence : ('a * 'b) D.t -> float
  (** Eq. (1) of the paper: [I(A;B) = E_b D(law(A|B=b) || law(A))].
      Equals {!mutual_information}; exposed so tests confirm the
      identity. *)

  val chain_rule_residual : ('a * 'b) D.t -> float
  (** [H(A,B) - H(B) - H(A|B)]; zero up to float noise. *)
end

module Float : module type of Make (Prob.Weight.Float)
module Exact_w : module type of Make (Prob.Weight.Exact)
