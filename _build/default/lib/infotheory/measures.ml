(** Entropy, divergence and mutual information over finite
    distributions, generic in the weight semifield.

    Probabilities may be float or exact-rational (see {!Prob.Weight});
    the resulting information quantities are always floats (bits). The
    exact instance matters for the protocol semantics: transcript
    probabilities there are exact, and only the final logarithms are
    floating point. *)

module Make (W : Prob.Weight.S) = struct
  module D = Prob.Dist_core.Make (W)

  let entropy d =
    Fn.kahan_sum
      (List.map (fun (_, w) -> -.Fn.xlog2x (W.to_float w)) (D.to_alist d))

  (** [kl p q] is [D(p || q)] in bits; [infinity] if the support of [p]
      is not contained in the support of [q]. *)
  let kl p q =
    Fn.kahan_sum
      (List.map
         (fun (v, wp) ->
           let fp = W.to_float wp in
           let fq = W.to_float (D.prob_of q v) in
           if fp <= 0. then 0.
           else if fq <= 0. then infinity
           else fp *. Fn.log2 (fp /. fq))
         (D.to_alist p))

  let cross_entropy p q = entropy p +. kl p q

  (** [conditional_entropy j] is [H(A | B)] for a joint law of [(a, b)]. *)
  let conditional_entropy j =
    let mb = D.map snd j in
    Fn.kahan_sum
      (List.map
         (fun (b, wb) ->
           match D.condition j (fun (_, b') -> b' = b) with
           | None -> 0.
           | Some cond -> W.to_float wb *. entropy (D.map fst cond))
         (D.to_alist mb))

  (** [mutual_information j] is [I(A ; B)] for a joint law of [(a, b)]. *)
  let mutual_information j =
    let ma = D.map fst j and mb = D.map snd j in
    Fn.kahan_sum
      (List.map
         (fun ((a, b), w) ->
           let fw = W.to_float w in
           let pa = W.to_float (D.prob_of ma a) in
           let pb = W.to_float (D.prob_of mb b) in
           if fw <= 0. then 0. else fw *. Fn.log2 (fw /. (pa *. pb)))
         (D.to_alist j))

  (** [conditional_mutual_information j] is [I(A ; B | C)] for a joint
      law of [(a, b, c)]: the [c]-average of the mutual information of
      [(a, b)] given [C = c]. *)
  let conditional_mutual_information j =
    let mc = D.map (fun (_, _, c) -> c) j in
    Fn.kahan_sum
      (List.map
         (fun (c, wc) ->
           match D.condition j (fun (_, _, c') -> c' = c) with
           | None -> 0.
           | Some cond ->
               let ab = D.map (fun (a, b, _) -> (a, b)) cond in
               W.to_float wc *. mutual_information ab)
         (D.to_alist mc))

  (** Mutual information as expected divergence of posterior from prior
      (eq. (1) of the paper): [I(A;B) = E_b D( law(A|B=b) || law(A) )].
      Exposed separately so tests can confirm the identity. *)
  let mi_as_expected_divergence j =
    let ma = D.map fst j and mb = D.map snd j in
    Fn.kahan_sum
      (List.map
         (fun (b, wb) ->
           match D.condition j (fun (_, b') -> b' = b) with
           | None -> 0.
           | Some cond -> W.to_float wb *. kl (D.map fst cond) ma)
         (D.to_alist mb))

  (** Entropy chain rule residual [H(A,B) - H(B) - H(A|B)]; zero up to
      float noise. Used by property tests. *)
  let chain_rule_residual j =
    entropy j -. entropy (D.map snd j) -. conditional_entropy j
end

module Float = Make (Prob.Weight.Float)
module Exact_w = Make (Prob.Weight.Exact)
