(** Exact rational numbers over {!Bigint}.

    Always kept in canonical form: the denominator is positive and
    [gcd (num, den) = 1]. Used for exact transcript probabilities and
    exact error-probability computations in the protocol semantics,
    where accumulated floating-point error would make equality checks
    meaningless. *)

type t

val zero : t
val one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is [num/den] in canonical form.
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val to_float : t -> float
val of_float_dyadic : float -> t
(** Exact dyadic rational equal to the given (finite) float.
    @raise Invalid_argument on nan/infinite input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t
val pow : t -> int -> t
(** [pow x n]; negative [n] inverts. @raise Division_by_zero on [pow zero n]
    with [n < 0]. *)

val sum : t list -> t
val log2 : t -> float
(** Floating-point base-2 logarithm of a positive rational, computed as
    [log2 num - log2 den] to stay accurate for tiny values.
    @raise Invalid_argument on non-positive input. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
