type t = { num : Bigint.t; den : Bigint.t }

let canonical num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let make = canonical
let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let half = { num = Bigint.one; den = Bigint.two }
let of_int n = { num = Bigint.of_int n; den = Bigint.one }
let of_ints a b = canonical (Bigint.of_int a) (Bigint.of_int b)
let of_bigint n = { num = n; den = Bigint.one }
let num x = x.num
let den x = x.den
let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic";
  let mantissa, exponent = Float.frexp f in
  (* mantissa * 2^53 is an exact integer for finite floats *)
  let m = Int64.of_float (mantissa *. 9007199254740992.0) in
  let e = exponent - 53 in
  let mi = Bigint.of_string (Int64.to_string m) in
  if e >= 0 then canonical (Bigint.shift_left mi e) Bigint.one
  else canonical mi (Bigint.shift_left Bigint.one (-e))

let to_string x =
  if Bigint.equal x.den Bigint.one then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

let inv x =
  if is_zero x then raise Division_by_zero;
  canonical x.den x.num

let add a b =
  canonical
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = canonical (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = mul a (inv b)
let mul_int x n = canonical (Bigint.mul_int x.num n) x.den
let div_int x n = canonical x.num (Bigint.mul_int x.den n)

let pow x n =
  if n >= 0 then { num = Bigint.pow x.num n; den = Bigint.pow x.den n }
  else inv { num = Bigint.pow x.num (-n); den = Bigint.pow x.den (-n) }

let sum xs = List.fold_left add zero xs

(* log2 of a Bigint that may exceed float range: split off high bits. *)
let log2_bigint n =
  let bits = Bigint.num_bits n in
  if bits <= 900 then Float.log2 (Bigint.to_float n)
  else
    let shift = bits - 60 in
    let top = Bigint.to_float (Bigint.shift_right n shift) in
    Float.log2 top +. float_of_int shift

let log2 x =
  if sign x <= 0 then invalid_arg "Rational.log2: non-positive";
  log2_bigint x.num -. log2_bigint x.den

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
