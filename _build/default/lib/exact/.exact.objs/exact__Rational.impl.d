lib/exact/rational.ml: Bigint Float Format Int64 List
