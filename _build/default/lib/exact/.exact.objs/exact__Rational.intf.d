lib/exact/rational.mli: Bigint Format
