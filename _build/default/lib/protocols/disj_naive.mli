(** The naive disjointness protocol from the paper's introduction:
    [O(n log n + k)] bits. Players in order write their not-yet-covered
    zero coordinates one at a time at [ceil(log2 n)] bits each (plus a
    count prefix); a player with nothing new writes one bit. Any
    coordinate missing from the board at the end is in the
    intersection. The baseline the Section-5 protocol improves on. *)

val solve : Disj_common.instance -> Disj_common.result

val cost_model : n:int -> k:int -> float
(** [n log2 n + k]. *)
