(** Protocols for one-bit [AND_k], as exact protocol trees.

    The star of Section 6 is the {e sequential} protocol: players write
    their bit in order and the protocol halts at the first zero. Its
    transcript is determined by the index of the first zero (or "none"),
    so its external information cost is [O(log k)] under {e any}
    distribution, while its worst-case communication is [k] bits — the
    [Omega(k / log k)] compression gap. *)

val sequential : int -> int Proto.Tree.t
(** Player [i] writes its bit; halt with output 0 at the first zero;
    output 1 after [k] ones. Zero error, [CC = k]. *)

val broadcast_all : int -> int Proto.Tree.t
(** Every player writes its bit unconditionally: [IC = H(X)], the
    maximally leaky baseline. *)

val one_round : int -> int Proto.Tree.t
(** Alias of {!broadcast_all}. *)

val truncated_sequential : k:int -> m:int -> int Proto.Tree.t
(** Sequential, but only the first [m] players ever speak; outputs 1 if
    they all wrote 1. The Lemma-6 experiment's family: too few speakers
    forces constant error. *)

val noisy_sequential : k:int -> noise:Exact.Rational.t -> int Proto.Tree.t
(** Sequential AND where each player lies with probability
    [noise in [0, 1/2)] (private randomness): a genuinely randomized,
    small-error protocol for the lower-bound machinery and the
    compressor. *)

val two_copy_sequential : int -> int array Proto.Tree.t
(** Two independent copies composed sequentially (players hold two
    bits); output [2*a0 + a1]. With independent inputs across copies,
    [IC] is exactly twice the single-copy cost — the Theorem-4
    additivity witness. *)

val constant : k:int -> int -> 'a Proto.Tree.t
(** Ignores inputs, outputs the given value; the zero-information point. *)

val run_sequential : Blackboard.Board.t -> int array -> int
(** Operational run of {!sequential} with real bit accounting. *)
