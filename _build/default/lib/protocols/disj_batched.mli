(** The Section-5 deterministic protocol for [DISJ_{n,k}]:
    [O(n log k + k)] bits, matching the paper's lower bound.

    While at least [k^2] coordinates are uncovered, a player whose set
    misses at least [ceil(z/k)] uncovered coordinates writes a batch of
    exactly that many, encoded as a subset of the uncovered set via the
    combinatorial number system ([~log(ek)] bits per coordinate); others
    write a pass bit. A full pass cycle certifies non-disjointness (by
    pigeonhole, a disjoint instance always has a player above
    threshold). Below [k^2] uncovered coordinates, one final naive cycle
    finishes. Every message is genuinely encoded to and decoded from the
    blackboard, so the bit counts are real. *)

type encoding =
  | Combinatorial  (** subset code, [ceil(log2 (choose z m))] bits *)
  | NaiveFixed  (** [m] fixed-width coordinates, [m ceil(log2 z)] bits *)

type trace_cycle = {
  cycle : int;
  z_start : int;  (** uncovered coordinates at cycle start *)
  bits_in_cycle : int;
  contributions : int;  (** players that wrote a batch this cycle *)
  phase_high : bool;  (** batch phase vs final naive cycle *)
}

type run = {
  result : Disj_common.result;
  board : Blackboard.Board.t;
  trace : trace_cycle list;  (** oldest cycle first *)
}

val default_threshold : int -> int
(** [k^2], the paper's phase switch. *)

val solve : ?encoding:encoding -> ?threshold:int -> Disj_common.instance -> run
(** Run the protocol. [threshold] overrides the phase switch (for the
    ablation experiments); [encoding] selects the batch encoding. *)

val cost_model : n:int -> k:int -> float
(** The target shape [n log2 k + k] that measurements are tabulated
    against. *)
