(** Protocols for one-bit [AND_k], as exact protocol trees.

    The star of Section 6 is the {e sequential} protocol: players write
    their bit in order and the protocol halts at the first zero. Its
    transcript can be encoded by the index of the first zero (or "none"),
    so its external information cost is [O(log k)] under {e any}
    distribution, while its worst-case communication is [k] bits — the
    [Omega(k / log k)] compression gap. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

(** Sequential AND: player [i] writes its bit; on 0 halt with output 0;
    after all [k] ones output 1. *)
let sequential k =
  if k < 1 then invalid_arg "And_protocols.sequential";
  let rec node i =
    if i = k then T.output 1
    else T.speak_det ~speaker:i ~f:(fun b -> b) [| T.output 0; node (i + 1) |]
  in
  node 0

(** Broadcast-all AND: every player writes its bit unconditionally; the
    transcript is the whole input, so this protocol reveals everything:
    [IC = H(X)]. The maximally-leaky baseline. *)
let broadcast_all k =
  if k < 1 then invalid_arg "And_protocols.broadcast_all";
  (* acc starts at 1 and becomes 0 permanently once a zero is seen *)
  let rec build i acc =
    if i = k then T.output acc
    else
      T.speak_det ~speaker:i ~f:(fun b -> b)
        [| build (i + 1) 0; build (i + 1) acc |]
  in
  build 0 1

(** Sequential AND truncated after the first [m] players: the remaining
    players never speak and the protocol outputs 1 if the first [m] bits
    were all ones. Used by the Lemma 6 experiment: any deterministic
    protocol in which fewer than [(1 - eps/(1-eps'))k] players speak on
    input [1^k] errs with probability more than [eps] under the Lemma 6
    distribution. *)
let truncated_sequential ~k ~m =
  if m < 0 || m > k then invalid_arg "And_protocols.truncated_sequential";
  let rec node i =
    if i = m then T.output 1
    else T.speak_det ~speaker:i ~f:(fun b -> b) [| T.output 0; node (i + 1) |]
  in
  node 0

(** Noisy sequential AND: each player lies about its bit with
    probability [noise] (private randomness). Still halts at the first
    written zero. A protocol with genuinely randomized messages, used to
    exercise the compressor on non-deterministic next-message laws.
    [noise] must be in [\[0, 1/2)]; errors are bounded but nonzero. *)
let noisy_sequential ~k ~noise =
  if R.sign noise < 0 || R.compare noise R.half >= 0 then
    invalid_arg "And_protocols.noisy_sequential: noise in [0, 1/2)";
  let flip b =
    (* writes 1 - b with probability noise *)
    if R.is_zero noise then D.return b
    else D.of_weighted [ (b, R.sub R.one noise); (1 - b, noise) ]
  in
  let rec node i =
    if i = k then T.output 1
    else T.speak ~speaker:i ~emit:flip [| T.output 0; node (i + 1) |]
  in
  node 0

(** Two independent copies of sequential AND, composed sequentially:
    players hold two bits each ([x.(0)], [x.(1)]); copy 0 runs to
    completion (halting at its first zero), then copy 1. The output
    encodes both answers as [2*a0 + a1]. Used by the Theorem-4
    experiment: with independent inputs across copies, the external
    information cost is exactly twice the single-copy cost. *)
let two_copy_sequential k =
  if k < 1 then invalid_arg "And_protocols.two_copy_sequential";
  let copy1 a0 =
    let rec node i =
      if i = k then T.output ((2 * a0) + 1)
      else
        T.speak_det ~speaker:i
          ~f:(fun x -> x.(1))
          [| T.output (2 * a0); node (i + 1) |]
    in
    node 0
  in
  let after_zero = copy1 0 in
  let after_ones = copy1 1 in
  let rec node i =
    if i = k then after_ones
    else
      T.speak_det ~speaker:i ~f:(fun x -> x.(0)) [| after_zero; node (i + 1) |]
  in
  node 0

(** A protocol that ignores its input and outputs a constant — useful in
    tests as the degenerate zero-information point. *)
let constant ~k:_ v = T.output v

(** One-round "all speak simultaneously" is modelled as broadcast_all
    (the blackboard model is sequential, but order does not matter when
    everyone speaks unconditionally). *)
let one_round = broadcast_all

(** Operational (bit-accounted) run of the sequential protocol on a
    blackboard; used for large [k] where trees are beside the point. *)
let run_sequential board inputs =
  let k = Array.length inputs in
  let halted = ref None in
  let i = ref 0 in
  while !halted = None && !i < k do
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w (inputs.(!i) = 1);
    Blackboard.Board.post board ~player:!i ~label:"bit" w;
    if inputs.(!i) = 0 then halted := Some 0;
    incr i
  done;
  match !halted with Some v -> v | None -> 1
