(** Pointwise-OR in the broadcast model.

    The related-work problem of the paper's introduction
    (Phillips-Verbin-Zhang symmetrization, [Omega(n log k)]): every
    player must learn the whole vector [Y^j = OR_i X_i^j]. This module
    gives the matching-shape upper bound with the Section-5 batching
    idea — 1-coordinates are announced in batches encoded as subsets of
    the still-unannounced set, [~log(ek)] bits per coordinate — plus the
    trivial [nk] baseline. A full pass cycle certifies that every
    remaining coordinate has OR 0. *)

type result = {
  output : bool array;  (** the OR vector [Y] *)
  bits : int;
  messages : int;
  cycles : int;
}

val reference : Disj_common.instance -> bool array
(** Ground truth. *)

val solve : Disj_common.instance -> result
val solve_trivial : Disj_common.instance -> result

val cost_model : ones:int -> k:int -> float
(** [t log2 k + k] where [t] is the number of 1-coordinates — only
    those must ever be announced. *)
