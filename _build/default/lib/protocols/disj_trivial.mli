(** The trivial disjointness protocol: every player broadcasts its full
    characteristic vector ([nk] bits total); everyone intersects
    locally. The "no cleverness" baseline. *)

val solve : Disj_common.instance -> Disj_common.result

val cost_model : n:int -> k:int -> float
(** [n * k]. *)
