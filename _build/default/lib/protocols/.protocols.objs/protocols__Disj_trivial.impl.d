lib/protocols/disj_trivial.ml: Array Blackboard Coding Disj_common List
