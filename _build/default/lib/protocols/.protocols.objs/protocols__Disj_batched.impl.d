lib/protocols/disj_batched.ml: Array Blackboard Coding Disj_common Float List
