lib/protocols/hard_dist.mli: Exact Prob
