lib/protocols/pointwise_or.mli: Disj_common
