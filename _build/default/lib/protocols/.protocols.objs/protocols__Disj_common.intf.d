lib/protocols/disj_common.mli: Prob
