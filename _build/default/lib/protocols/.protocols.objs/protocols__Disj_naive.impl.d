lib/protocols/disj_naive.ml: Array Blackboard Coding Disj_common Float List
