lib/protocols/disj_common.ml: Array List Prob
