lib/protocols/disj_trees.mli: Proto
