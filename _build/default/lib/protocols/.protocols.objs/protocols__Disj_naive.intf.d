lib/protocols/disj_naive.mli: Disj_common
