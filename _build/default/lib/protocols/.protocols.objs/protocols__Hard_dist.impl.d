lib/protocols/hard_dist.ml: Array Exact List Prob Proto
