lib/protocols/disj_trivial.mli: Disj_common
