lib/protocols/and_protocols.ml: Array Blackboard Coding Exact Prob Proto
