lib/protocols/pointwise_or.ml: Array Blackboard Coding Disj_common Float List
