lib/protocols/disj_trees.ml: Array Hard_dist List Proto
