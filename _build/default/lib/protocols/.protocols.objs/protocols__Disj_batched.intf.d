lib/protocols/disj_batched.mli: Blackboard Disj_common
