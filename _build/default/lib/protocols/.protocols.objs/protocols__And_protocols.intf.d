lib/protocols/and_protocols.mli: Blackboard Exact Proto
