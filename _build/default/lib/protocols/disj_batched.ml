(** The Section-5 deterministic protocol for [DISJ_{n,k}]:
    [O(n log k + k)] bits, matching the paper's lower bound.

    The players try to certify disjointness by covering every coordinate
    with a zero written on the board. The protocol runs in cycles. While
    the number [z] of uncovered coordinates is at least [k^2], a player
    whose set misses at least [ceil(z/k)] uncovered coordinates writes a
    batch of exactly [ceil(z/k)] of them, encoded as a subset of the
    uncovered set via the combinatorial number system — [ceil(log2
    (choose z m))] bits, i.e. [log(ek)] amortized per coordinate. A
    player with fewer new zeros writes a single "pass" bit. If a whole
    cycle passes, the players can safely output "non-disjoint" (by
    pigeonhole a disjoint instance always has a player above threshold).
    Once [z < k^2], one final cycle writes all remaining new zeros
    naively at [O(log k)] bits each, and the verdict is read off the
    board.

    Every message is genuinely encoded to, and decoded from, the
    blackboard; the shared state (covered set, phase, batch size) is a
    function of the board history, so all players stay synchronized and
    the bit counts are real. *)

type encoding = Combinatorial | NaiveFixed

type trace_cycle = {
  cycle : int;
  z_start : int;  (** uncovered coordinates at cycle start *)
  bits_in_cycle : int;
  contributions : int;  (** players that wrote a batch this cycle *)
  phase_high : bool;
}

type run = {
  result : Disj_common.result;
  board : Blackboard.Board.t;
  trace : trace_cycle list;
}

let default_threshold k = k * k

(** [solve ?encoding ?threshold inst] runs the protocol.
    [threshold] overrides the phase-switch point (default [k^2]) for the
    ablation experiments; [encoding] selects the batch encoding. *)
let solve ?(encoding = Combinatorial) ?threshold inst =
  let open Disj_common in
  let k = k_of inst in
  let n = inst.n in
  let threshold = match threshold with Some t -> t | None -> default_threshold k in
  let board = Blackboard.Board.create ~k in
  let covered = Array.make n false in
  let covered_count = ref 0 in
  let trace = ref [] in
  let mark j =
    if not covered.(j) then begin
      covered.(j) <- true;
      incr covered_count
    end
  in
  let uncovered () =
    let rec go j acc = if j < 0 then acc else go (j - 1) (if covered.(j) then acc else j :: acc) in
    Array.of_list (go (n - 1) [])
  in
  (* Player j's live new zeros among the cycle-start uncovered list,
     returned as positions within [z_list]. *)
  let live_new_zero_positions z_list j =
    let acc = ref [] in
    Array.iteri
      (fun pos c ->
        if (not inst.sets.(j).(c)) && not covered.(c) then acc := pos :: !acc)
      z_list;
    List.rev !acc
  in
  let write_batch ~player ~z_list positions =
    let z = Array.length z_list in
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w true (* contribute flag *);
    (match encoding with
    | Combinatorial -> Coding.Subset_codec.write w ~z positions
    | NaiveFixed ->
        List.iter (fun p -> Coding.Intcode.write_fixed w ~bound:z p) positions);
    Blackboard.Board.post board ~player ~label:"batch" w
  in
  let write_pass ~player =
    let w = Coding.Bitbuf.Writer.create () in
    Coding.Bitbuf.Writer.add_bit w false;
    Blackboard.Board.post board ~player ~label:"pass" w
  in
  (* Other players decode the last write and update the covered set;
     returns the decoded coordinate list. *)
  let decode_last ~z_list ~m =
    match Blackboard.Board.last_write board with
    | None -> assert false
    | Some wr ->
        let r = Blackboard.Board.reader_of_write wr in
        if not (Coding.Bitbuf.Reader.read_bit r) then []
        else begin
          let z = Array.length z_list in
          let positions =
            match encoding with
            | Combinatorial -> Coding.Subset_codec.read r ~z ~m
            | NaiveFixed ->
                List.init m (fun _ -> Coding.Intcode.read_fixed r ~bound:z)
          in
          List.map (fun p -> z_list.(p)) positions
        end
  in
  let high_cycle cycle_idx z_list =
    let z = Array.length z_list in
    let m = (z + k - 1) / k in
    let bits_before = Blackboard.Board.total_bits board in
    let contributions = ref 0 in
    let player = ref 0 in
    while !player < k && !covered_count < n do
      let j = !player in
      let zeros = live_new_zero_positions z_list j in
      if List.length zeros >= m then begin
        let batch = List.filteri (fun idx _ -> idx < m) zeros in
        write_batch ~player:j ~z_list batch;
        incr contributions;
        (* the other players decode the write off the board *)
        List.iter mark (decode_last ~z_list ~m)
      end
      else write_pass ~player:j;
      incr player
    done;
    trace :=
      {
        cycle = cycle_idx;
        z_start = z;
        bits_in_cycle = Blackboard.Board.total_bits board - bits_before;
        contributions = !contributions;
        phase_high = true;
      }
      :: !trace;
    !contributions
  in
  let low_cycle cycle_idx z_list =
    let z = Array.length z_list in
    let bits_before = Blackboard.Board.total_bits board in
    let contributions = ref 0 in
    for j = 0 to k - 1 do
      let zeros = live_new_zero_positions z_list j in
      let w = Coding.Bitbuf.Writer.create () in
      Coding.Intcode.write_gamma0 w (List.length zeros);
      List.iter (fun p -> Coding.Intcode.write_fixed w ~bound:z p) zeros;
      Blackboard.Board.post board ~player:j ~label:"final" w;
      if zeros <> [] then incr contributions;
      (* decode back *)
      (match Blackboard.Board.last_write board with
      | None -> assert false
      | Some wr ->
          let r = Blackboard.Board.reader_of_write wr in
          let count = Coding.Intcode.read_gamma0 r in
          for _ = 1 to count do
            let p = Coding.Intcode.read_fixed r ~bound:z in
            mark z_list.(p)
          done)
    done;
    trace :=
      {
        cycle = cycle_idx;
        z_start = z;
        bits_in_cycle = Blackboard.Board.total_bits board - bits_before;
        contributions = !contributions;
        phase_high = false;
      }
      :: !trace
  in
  let rec loop cycle_idx =
    if !covered_count = n then true
    else begin
      let z_list = uncovered () in
      let z = Array.length z_list in
      if z < threshold || z < k then begin
        low_cycle cycle_idx z_list;
        !covered_count = n
      end
      else begin
        let contributions = high_cycle cycle_idx z_list in
        if !covered_count = n then true
        else if contributions = 0 then false (* full pass cycle *)
        else loop (cycle_idx + 1)
      end
    end
  in
  let answer = loop 0 in
  let trace = List.rev !trace in
  {
    result =
      {
        answer;
        bits = Blackboard.Board.total_bits board;
        messages = Blackboard.Board.write_count board;
        cycles = List.length trace;
      };
    board;
    trace;
  }

(** The paper's cost target for this protocol: [n log2 k + k], the shape
    the measured bit count is compared against in experiment E2. *)
let cost_model ~n ~k =
  (float_of_int n *. Float.log2 (float_of_int (max 2 k))) +. float_of_int k
