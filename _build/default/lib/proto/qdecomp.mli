(** The Lemma-3 decomposition and the Lemma-4 posterior formulas, for
    protocols over single-bit inputs.

    For any transcript [l] of a broadcast protocol,
    [Pr[Pi(X) = l] = common(l) * prod_i q_{i, X_i}(l)], where
    [q_{i,b}(l)] multiplies the emission probabilities of player [i]'s
    messages along [l] when its input bit is [b] and [common(l)]
    collects the input-independent public-coin factors. The ratio
    [alpha_i(l) = q_{i,0}(l) / q_{i,1}(l)] measures how strongly [l]
    "points" at player [i] holding 0; under the Section-4.1 hard
    distribution the posterior is [alpha_i / (alpha_i + k - 1)]
    (Lemma 4). *)

type t = {
  k : int;
  q : Exact.Rational.t array array;  (** [q.(i).(b)] *)
  common : Exact.Rational.t;  (** public-coin factor *)
}

val of_transcript : int Tree.t -> k:int -> Tree.transcript -> t
(** @raise Invalid_argument if the transcript does not follow the tree. *)

val transcript_prob : t -> int array -> Exact.Rational.t
(** Reconstructs [Pr[Pi(X) = l]] for a concrete input — the statement of
    Lemma 3, validated against {!Semantics.transcript_dist} in tests. *)

val alpha : t -> int -> Exact.Rational.t option
(** [alpha t i] is [q_{i,0}/q_{i,1}]; [None] encodes the infinite ratio
    when [q_{i,1} = 0] (posterior 1). *)

val alpha_float : t -> int -> float
(** Like {!alpha} with [infinity] for the infinite ratio. *)

val posterior_zero : t -> int -> Exact.Rational.t option
(** Lemma 4: [Pr[X_i = 0 | Pi = l, Z <> i]] under the hard distribution
    — [q_{i,0} / (q_{i,0} + (k-1) q_{i,1})]. [None] if both [q]s are 0
    (unreachable transcript). *)

val alpha_sum : t -> float
(** [sum_i alpha_i] (eq. 6 bounds it below by [sqrt(C)/2 * k] on good
    transcripts); [infinity] if any ratio is infinite. *)

val max_alpha : t -> float

val alpha_pair_sum : t -> float
(** [sum_{i<j} alpha_i alpha_j] (left side of eq. 7, unnormalized). *)

val alpha_triple_sum : t -> float
(** [sum_{i<j<m} alpha_i alpha_j alpha_m] (right side of eq. 7). *)
