(** Combinators on protocol trees.

    Protocols compose: outputs can be post-processed, inputs adapted,
    and protocols run one after another on the same blackboard — the
    construction behind "solve [n] independent copies" ([T(f^n, eps)] of
    Section 6) and behind reductions between problems. All combinators
    preserve the exact semantics; cost additivity and information
    additivity on independent inputs are exercised by the test suite. *)

val map_output : (int -> int) -> 'a Tree.t -> 'a Tree.t
(** Post-compose the output; transcripts and costs unchanged. *)

val contramap_input : ('b -> 'a) -> 'a Tree.t -> 'b Tree.t
(** Adapt a protocol to richer inputs by projecting each player's input
    (e.g. run a one-bit protocol on one coordinate of a vector). *)

val sequence : 'a Tree.t -> 'a Tree.t -> combine:(int -> int -> int) -> 'a Tree.t
(** [sequence t1 t2 ~combine] runs [t1] to completion, then [t2];
    outputs [combine out1 out2]. Worst-case costs add. *)

val parallel_copies : int Tree.t -> copies:int -> int array Tree.t
(** [parallel_copies base ~copies] solves [copies] instances of a
    one-bit problem on vector inputs (copy [c] reads bit [x.(c)]),
    packing the answers little-endian into the output. With independent
    per-copy inputs its information cost is exactly [copies] times the
    base protocol's — Theorem 4's lower-bound side.
    @raise Invalid_argument outside [1..20] copies. *)

val xor_output_with_coin : 'a Tree.t -> 'a Tree.t
(** Append a free public coin and XOR it into a 0/1 output: randomizes
    the output while provably adding zero information about the inputs
    (a fixture for chance-node semantics and the Yao check). *)
