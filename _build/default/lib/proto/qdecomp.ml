(** The Lemma-3 decomposition and the Lemma-4 posterior formulas.

    For any transcript [l] of a broadcast protocol over single-bit
    inputs, the probability of producing [l] factors as
    [Pr[Pi(X) = l] = common(l) * prod_i q_{i, X_i}(l)], where
    [q_{i,b}(l)] collects the emission probabilities of player [i]'s
    messages along [l] when its input bit is [b], and [common(l)]
    collects the (input-independent) public-coin probabilities.

    The ratio [alpha_i(l) = q_{i,0}(l) / q_{i,1}(l)] measures how
    strongly the transcript "points" at player [i] having input 0; by
    Lemma 4 the posterior [Pr[X_i = 0 | Pi = l, Z <> i]] under the hard
    distribution equals [alpha_i / (alpha_i + k - 1)]. *)

module R = Exact.Rational
module D = Prob.Dist_exact

type t = {
  k : int;
  q : R.t array array;  (** [q.(i).(b)] for player [i], bit [b] *)
  common : R.t;  (** public-coin factor *)
}

(** [of_transcript tree ~k transcript] computes the decomposition by
    walking the tree along the transcript.
    @raise Invalid_argument if the transcript does not follow the tree. *)
let of_transcript tree ~k transcript =
  let q = Array.init k (fun _ -> [| R.one; R.one |]) in
  let common = ref R.one in
  let rec go tree transcript =
    match (tree, transcript) with
    | _, [] -> ()
    | Tree.Speak { speaker; emit; children }, Tree.Msg (s, m) :: rest ->
        if s <> speaker then
          invalid_arg "Qdecomp.of_transcript: speaker mismatch";
        for b = 0 to 1 do
          q.(speaker).(b) <- R.mul q.(speaker).(b) (D.prob_of (emit b) m)
        done;
        go children.(m) rest
    | Tree.Chance { coin; children }, Tree.Coin c :: rest ->
        common := R.mul !common (D.prob_of coin c);
        go children.(c) rest
    | _ -> invalid_arg "Qdecomp.of_transcript: transcript does not match tree"
  in
  go tree transcript;
  { k; q; common = !common }

(** Reconstruct [Pr[Pi(X) = l]] for a concrete bit-vector input — the
    statement of Lemma 3, used by tests to validate the decomposition
    against the direct semantics. *)
let transcript_prob t inputs =
  Array.to_list inputs
  |> List.mapi (fun i b -> t.q.(i).(b))
  |> List.fold_left R.mul t.common

(** [alpha t i] is [q_{i,0} / q_{i,1}]; [None] encodes the infinite
    ratio arising when [q_{i,1} = 0] (the posterior is then 1). *)
let alpha t i =
  if R.is_zero t.q.(i).(1) then None
  else Some (R.div t.q.(i).(0) t.q.(i).(1))

let alpha_float t i =
  match alpha t i with None -> infinity | Some a -> R.to_float a

(** Lemma 4: the posterior probability that [X_i = 0] given the
    transcript and [Z <> i] under the hard distribution of Section 4.1,
    whose per-player prior of zero is [1/k]:
    [q_{i,0} / (q_{i,0} + (k-1) q_{i,1}) = alpha / (alpha + k - 1)]. *)
let posterior_zero t i =
  let q0 = t.q.(i).(0) and q1 = t.q.(i).(1) in
  let den = R.add q0 (R.mul_int q1 (t.k - 1)) in
  if R.is_zero den then None else Some (R.div q0 den)

(** The sum of alpha ratios [sum_i alpha_i(l)] (eq. (6) of the paper
    bounds this from below by [sqrt(C)/2 * k] on good transcripts).
    Returns [infinity] if any ratio is infinite. *)
let alpha_sum t =
  let rec go i acc =
    if i = t.k then acc
    else
      match alpha t i with
      | None -> infinity
      | Some a -> go (i + 1) (acc +. R.to_float a)
  in
  go 0 0.

let max_alpha t =
  let rec go i acc =
    if i = t.k then acc else go (i + 1) (Float.max acc (alpha_float t i))
  in
  go 0 0.

(** Elementary symmetric-style sums used by eq. (7):
    [sum_{i<j} alpha_i alpha_j] and [sum_{i<j<m} alpha_i alpha_j alpha_m].
    Float-valued; [infinity] propagates. *)
let alpha_pair_sum t =
  let a = Array.init t.k (alpha_float t) in
  let s = ref 0. in
  for i = 0 to t.k - 1 do
    for j = i + 1 to t.k - 1 do
      s := !s +. (a.(i) *. a.(j))
    done
  done;
  !s

let alpha_triple_sum t =
  let a = Array.init t.k (alpha_float t) in
  let s = ref 0. in
  for i = 0 to t.k - 1 do
    for j = i + 1 to t.k - 1 do
      for m = j + 1 to t.k - 1 do
        s := !s +. (a.(i) *. a.(j) *. a.(m))
      done
    done
  done;
  !s
