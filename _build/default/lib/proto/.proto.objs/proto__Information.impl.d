lib/proto/information.ml: Array Exact Hashtbl Infotheory List Option Prob Semantics Tree
