lib/proto/qdecomp.mli: Exact Tree
