lib/proto/qdecomp.ml: Array Exact Float List Prob Tree
