lib/proto/combinators.ml: Array Hashtbl Prob Tree
