lib/proto/tree.mli: Format Prob
