lib/proto/tree.ml: Array Coding Exact Format Prob
