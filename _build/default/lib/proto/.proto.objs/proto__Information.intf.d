lib/proto/information.mli: Prob Tree
