lib/proto/semantics.ml: Array Exact List Prob Tree
