lib/proto/semantics.mli: Exact Prob Tree
