lib/proto/combinators.mli: Tree
