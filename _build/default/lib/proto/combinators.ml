(** Combinators on protocol trees.

    Protocols compose: outputs can be post-processed, inputs can be
    adapted, and two protocols can run one after the other on the same
    blackboard — the construction behind "solve [n] independent copies"
    ([T(f^n, eps)] of Section 6) and behind reductions between problems.
    All combinators preserve the exact semantics; their algebraic laws
    (cost additivity, information additivity on independent inputs) are
    exercised by the test suite. *)

(** [map_output f t] applies [f] to the protocol's output; communication
    and transcripts are unchanged. *)
let rec map_output f = function
  | Tree.Output v -> Tree.Output (f v)
  | Tree.Speak { speaker; emit; children } ->
      Tree.Speak { speaker; emit; children = Array.map (map_output f) children }
  | Tree.Chance { coin; children } ->
      Tree.Chance { coin; children = Array.map (map_output f) children }

(** [contramap_input g t] adapts a protocol over inputs ['a] to inputs
    ['b] by pre-composing every message law with [g] — e.g. running a
    one-bit protocol on one coordinate of a vector input. *)
let rec contramap_input g = function
  | Tree.Output v -> Tree.Output v
  | Tree.Speak { speaker; emit; children } ->
      Tree.Speak
        {
          speaker;
          emit = (fun b -> emit (g b));
          children = Array.map (contramap_input g) children;
        }
  | Tree.Chance { coin; children } ->
      Tree.Chance { coin; children = Array.map (contramap_input g) children }

(** [sequence t1 t2 ~combine] runs [t1] to completion, then [t2], and
    outputs [combine out1 out2]. The continuation tree is shared across
    the leaves of [t1], so the construction is linear in
    [size t1 + size t2] per distinct output of [t1]. *)
let sequence t1 t2 ~combine =
  (* memoize the second tree's relabelled copies per out1 value *)
  let tbl = Hashtbl.create 4 in
  let continuation out1 =
    match Hashtbl.find_opt tbl out1 with
    | Some t -> t
    | None ->
        let t = map_output (fun out2 -> combine out1 out2) t2 in
        Hashtbl.add tbl out1 t;
        t
  in
  let rec go = function
    | Tree.Output v -> continuation v
    | Tree.Speak { speaker; emit; children } ->
        Tree.Speak { speaker; emit; children = Array.map go children }
    | Tree.Chance { coin; children } ->
        Tree.Chance { coin; children = Array.map go children }
  in
  go t1

(** [parallel_copies base ~copies] runs [copies] instances of a one-bit
    protocol [base] sequentially on vector inputs (copy [c] reads bit
    [x.(c)]), outputting the results packed little-endian into an int.
    This is the generic [T(f^n)] construction; with independent inputs
    per copy, its information cost is exactly [copies] times the base
    cost (Theorem 4's lower-bound side, tested exactly). *)
let parallel_copies base ~copies =
  if copies < 1 then invalid_arg "Combinators.parallel_copies";
  if copies > 20 then invalid_arg "Combinators.parallel_copies: too many";
  let rec go c =
    let this = contramap_input (fun x -> x.(c)) base in
    if c = copies - 1 then map_output (fun v -> v lsl c) this
    else
      sequence this (go (c + 1)) ~combine:(fun v rest -> (v lsl c) lor rest)
  in
  go 0

(** [xor_output_with_coin t] appends a free public coin flip and XORs it
    into a boolean output — output-randomization that provably adds zero
    information about the inputs (a test fixture for chance-node
    semantics). *)
let xor_output_with_coin t =
  let coin = Prob.Dist_exact.uniform [ 0; 1 ] in
  let rec go = function
    | Tree.Output v ->
        Tree.chance ~coin [| Tree.output v; Tree.output (1 - v) |]
    | Tree.Speak { speaker; emit; children } ->
        Tree.Speak { speaker; emit; children = Array.map go children }
    | Tree.Chance { coin; children } ->
        Tree.Chance { coin; children = Array.map go children }
  in
  go t
