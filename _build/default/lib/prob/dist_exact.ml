(** Exact-rational finite distributions.

    Used by the protocol semantics ({!Proto}) so that transcript
    probabilities, error probabilities, and the Lemma-3 [q]-decomposition
    are computed without rounding; information quantities then take a
    single float logarithm at the end. *)

include Dist_core.Make (Weight.Exact)

let to_float_dist d =
  Dist.of_weighted
    (List.map (fun (v, w) -> (v, Exact.Rational.to_float w)) (to_alist d))

let uniform_of_ratio values =
  (* Uniform with exact 1/n weights. *)
  uniform values

let prob_float d pred = Exact.Rational.to_float (prob d pred)
