(** Deterministic pseudo-random number generation.

    The reproduction never uses [Stdlib.Random]: every randomized
    experiment takes an explicit seed so runs are reproducible, and the
    compression scheme of Section 6 needs {e shared public randomness} —
    all parties deriving the same stream from the same seed — plus
    per-player private streams split off deterministically.

    The core generator is SplitMix64 (Steele, Lea & Flood 2014) used both
    directly and to seed Xoshiro256** (Blackman & Vigna 2018). *)

type t

val create : int64 -> t
(** A fresh generator from a 64-bit seed. *)

val of_int_seed : int -> t
val copy : t -> t

val split : t -> t
(** [split t] deterministically derives an independent generator and
    advances [t]. Used to hand each player a private stream from a
    public seed. *)

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val bits62 : t -> int
(** Uniform 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Rejection-sampled, so
    exactly uniform. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
val bernoulli : t -> float -> bool

(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    an empty array. *)
