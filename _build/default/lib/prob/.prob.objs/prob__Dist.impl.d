lib/prob/dist.ml: Array Dist_core List Rng Weight
