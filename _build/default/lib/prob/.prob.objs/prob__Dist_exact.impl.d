lib/prob/dist_exact.ml: Dist Dist_core Exact List Weight
