lib/prob/joint.ml: Dist_core List Weight
