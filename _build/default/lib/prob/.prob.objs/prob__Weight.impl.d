lib/prob/weight.ml: Exact Float Format
