lib/prob/rng.mli:
