lib/prob/dist.mli: Dist_core Format Rng Weight
