lib/prob/dist_core.ml: Array Float Format Hashtbl List Option Weight
