lib/prob/sampler.mli: Dist Rng
