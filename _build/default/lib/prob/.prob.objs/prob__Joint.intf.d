lib/prob/joint.mli: Dist_core Weight
