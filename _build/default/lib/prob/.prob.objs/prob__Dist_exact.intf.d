lib/prob/dist_exact.mli: Dist Dist_core Exact Format Weight
