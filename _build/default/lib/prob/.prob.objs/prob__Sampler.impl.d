lib/prob/sampler.ml: Array Dist Hashtbl Option Queue Rng
