(** Operations on joint distributions represented as distributions over
    pairs. Generic over the weight semifield via a functor, with
    instances for both float and exact-rational weights. *)

module Make (W : Weight.S) = struct
  module D = Dist_core.Make (W)

  let marginal_fst j = D.map fst j
  let marginal_snd j = D.map snd j

  (** [conditional_snd j x] is the law of the second component given that
      the first equals [x]; [None] if [x] has zero mass. *)
  let conditional_snd j x =
    match D.condition j (fun (a, _) -> a = x) with
    | None -> None
    | Some d -> Some (D.map snd d)

  let conditional_fst j y =
    match D.condition j (fun (_, b) -> b = y) with
    | None -> None
    | Some d -> Some (D.map fst d)

  (** Build a joint law from a marginal on the first component and a
      kernel giving the conditional law of the second. *)
  let of_kernel marginal kernel =
    D.bind marginal (fun x -> D.map (fun y -> (x, y)) (kernel x))

  let swap j = D.map (fun (a, b) -> (b, a)) j

  (** Check independence up to exact weight equality. *)
  let independent j =
    let ma = marginal_fst j and mb = marginal_snd j in
    List.for_all
      (fun (x, _) ->
        List.for_all
          (fun (y, _) ->
            W.equal
              (D.prob_of j (x, y))
              (W.mul (D.prob_of ma x) (D.prob_of mb y)))
          (D.to_alist mb))
      (D.to_alist ma)
end

module Float = Make (Weight.Float)
module Exact_w = Make (Weight.Exact)
