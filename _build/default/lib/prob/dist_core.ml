(** Finite discrete probability distributions, as a functor over the
    weight semifield (see {!Weight}).

    A distribution is a finite list of [(value, weight)] pairs with
    positive weights summing to one. Values are deduplicated with
    polymorphic structural equality (via [Hashtbl]), which is adequate
    for the ground types used throughout this reproduction (ints, bools,
    int arrays, lists and tuples thereof — never functions or cyclic
    values). *)

module Make (W : Weight.S) = struct
  type weight = W.t

  type 'a t = {
    items : ('a * W.t) array;
    (* memoized value -> weight index so that [prob_of] is O(1); built
       lazily because most distributions are tiny and never queried *)
    mutable index : ('a, W.t) Hashtbl.t option;
  }

  let dedupe pairs =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (v, w) ->
        if W.compare w W.zero > 0 then
          match Hashtbl.find_opt tbl v with
          | None ->
              Hashtbl.add tbl v w;
              order := v :: !order
          | Some w0 -> Hashtbl.replace tbl v (W.add w0 w))
      pairs;
    List.rev_map (fun v -> (v, Hashtbl.find tbl v)) !order

  let total pairs = List.fold_left (fun acc (_, w) -> W.add acc w) W.zero pairs

  let of_weighted pairs =
    let pairs = dedupe pairs in
    let z = total pairs in
    if W.compare z W.zero <= 0 then
      invalid_arg "Dist.of_weighted: no positive mass";
    let items =
      if W.equal z W.one then pairs
      else List.map (fun (v, w) -> (v, W.div w z)) pairs
    in
    { items = Array.of_list items; index = None }

  let return v = { items = [| (v, W.one) |]; index = None }

  let to_alist d = Array.to_list d.items
  let support d = Array.to_list (Array.map fst d.items)
  let size d = Array.length d.items

  let is_point d = Array.length d.items = 1

  let prob d pred =
    Array.fold_left
      (fun acc (v, w) -> if pred v then W.add acc w else acc)
      W.zero d.items

  let prob_of d v =
    let index =
      match d.index with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create (Array.length d.items) in
          Array.iter (fun (x, w) -> Hashtbl.replace tbl x w) d.items;
          d.index <- Some tbl;
          tbl
    in
    Option.value ~default:W.zero (Hashtbl.find_opt index v)

  let map f d =
    of_weighted (List.map (fun (v, w) -> (f v, w)) (to_alist d))

  let bind d f =
    let pieces =
      List.concat_map
        (fun (v, w) ->
          List.map (fun (u, wu) -> (u, W.mul w wu)) (to_alist (f v)))
        (to_alist d)
    in
    of_weighted pieces

  let ( let* ) = bind

  let product a b =
    let* x = a in
    let* y = b in
    return (x, y)

  let uniform = function
    | [] -> invalid_arg "Dist.uniform: empty support"
    | vs ->
        let n = List.length vs in
        of_weighted (List.map (fun v -> (v, W.of_int_ratio 1 n)) vs)

  let bernoulli w =
    if W.compare w W.zero < 0 || W.compare w W.one > 0 then
      invalid_arg "Dist.bernoulli: weight out of range";
    if W.equal w W.one then return true
    else if W.equal w W.zero then return false
    else of_weighted [ (true, w); (false, W.sub W.one w) ]

  let condition d pred =
    let kept = List.filter (fun (v, _) -> pred v) (to_alist d) in
    if W.compare (total kept) W.zero <= 0 then None
    else Some (of_weighted kept)

  let condition_exn d pred =
    match condition d pred with
    | Some d -> d
    | None -> invalid_arg "Dist.condition_exn: conditioning on a null event"

  (* n-fold product over an array of distributions; values come out as
     arrays indexed like the input. *)
  let product_array ds =
    let n = Array.length ds in
    let rec go i acc_val acc_w acc =
      if i = n then (Array.of_list (List.rev acc_val), acc_w) :: acc
      else
        Array.fold_left
          (fun acc (v, w) -> go (i + 1) (v :: acc_val) (W.mul acc_w w) acc)
          acc ds.(i).items
    in
    of_weighted (go 0 [] W.one [])

  let iid n d =
    if n < 0 then invalid_arg "Dist.iid";
    product_array (Array.make n d)

  let expectation_with f d =
    Array.fold_left
      (fun acc (v, w) -> acc +. (W.to_float w *. f v))
      0. d.items

  let total_variation a b =
    let vals = List.sort_uniq compare (support a @ support b) in
    let s =
      List.fold_left
        (fun acc v ->
          acc
          +. Float.abs (W.to_float (prob_of a v) -. W.to_float (prob_of b v)))
        0. vals
    in
    s /. 2.

  let mass d = total (to_alist d)

  let pp pp_v fmt d =
    Format.fprintf fmt "@[<v>";
    Array.iteri
      (fun i (v, w) ->
        if i > 0 then Format.fprintf fmt "@,";
        Format.fprintf fmt "%a -> %a" pp_v v W.pp w)
      d.items;
    Format.fprintf fmt "@]"
end
