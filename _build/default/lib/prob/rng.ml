(* SplitMix64 for seeding/splitting + Xoshiro256** as the workhorse. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden = 0x9E3779B97F4A7C15L

let splitmix_next state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let of_int_seed n = create (Int64.of_int n)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (next_int64 t)

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling for exact uniformity. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  let rec go () =
    let v = bits62 t in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
