(** Operations on joint distributions represented as distributions over
    pairs, generic over the weight semifield (instances for float and
    exact-rational weights). *)

module Make (W : Weight.S) : sig
  module D : module type of Dist_core.Make (W)

  val marginal_fst : ('a * 'b) D.t -> 'a D.t
  val marginal_snd : ('a * 'b) D.t -> 'b D.t

  val conditional_snd : ('a * 'b) D.t -> 'a -> 'b D.t option
  (** Law of the second component given the first; [None] on a
      zero-mass value. *)

  val conditional_fst : ('a * 'b) D.t -> 'b -> 'a D.t option

  val of_kernel : 'a D.t -> ('a -> 'b D.t) -> ('a * 'b) D.t
  (** Joint law from a marginal and a conditional kernel. *)

  val swap : ('a * 'b) D.t -> ('b * 'a) D.t

  val independent : ('a * 'b) D.t -> bool
  (** Exact independence check (weight equality, no tolerance). *)
end

module Float : module type of Make (Weight.Float)
module Exact_w : module type of Make (Weight.Exact)
