(** Float-weighted finite distributions (the measurement-scale default).

    See {!Dist_core.Make} for the core operations; this module adds the
    float-only conveniences: expectations, moments, sampling. *)

include Dist_core.Make (Weight.Float)

let expectation d = expectation_with (fun x -> x) d

let variance d =
  let m = expectation d in
  expectation_with (fun x -> (x -. m) ** 2.) d

let of_fun values f = of_weighted (List.map (fun v -> (v, f v)) values)

let categorical weights =
  of_weighted (List.mapi (fun i w -> (i, w)) (Array.to_list weights))

let binomial n p =
  if n < 0 || p < 0. || p > 1. then invalid_arg "Dist.binomial";
  let choose = Array.make (n + 1) 1. in
  for i = 1 to n do
    for j = i - 1 downto 1 do
      choose.(j) <- choose.(j) +. choose.(j - 1)
    done;
    choose.(i) <- 1.
  done;
  of_weighted
    (List.init (n + 1) (fun k ->
         (k, choose.(k) *. (p ** float_of_int k) *. ((1. -. p) ** float_of_int (n - k)))))

let geometric_truncated p n =
  if p <= 0. || p > 1. || n < 1 then invalid_arg "Dist.geometric_truncated";
  of_weighted (List.init n (fun k -> (k, p *. ((1. -. p) ** float_of_int k))))

(* Inverse-CDF sampling; fine for one-off draws. Use {!Sampler} for
   repeated draws from the same distribution. *)
let sample rng d =
  let u = Rng.float rng in
  let items = to_alist d in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev items))
    | (v, w) :: rest ->
        let acc = acc +. w in
        if u < acc then v else go acc rest
  in
  go 0. items

let sample_n rng d n = List.init n (fun _ -> sample rng d)
