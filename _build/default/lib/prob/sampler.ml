(** Efficient repeated sampling from a fixed finite distribution using
    Walker's alias method: O(n) preprocessing, O(1) per draw. Used by the
    blackboard runtime and the Monte-Carlo sides of the experiments. *)

type 'a t = {
  values : 'a array;
  prob : float array; (* acceptance probability per column *)
  alias : int array; (* fallback column *)
}

let create dist =
  let items = Array.of_list (Dist.to_alist dist) in
  let n = Array.length items in
  let values = Array.map fst items in
  let scaled = Array.map (fun (_, w) -> w *. float_of_int n) items in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i s -> if s < 1. then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Queue.add l small else Queue.add l large
  done;
  (* Remaining columns keep acceptance probability 1. *)
  { values; prob; alias }

let draw t rng =
  let n = Array.length t.values in
  let col = Rng.int rng n in
  if Rng.float rng < t.prob.(col) then t.values.(col)
  else t.values.(t.alias.(col))

let draw_n t rng n = Array.init n (fun _ -> draw t rng)

(** Empirical distribution of [n] draws — used in tests to check the
    sampler against the source distribution. *)
let empirical t rng n =
  let counts = Hashtbl.create 16 in
  for _ = 1 to n do
    let v = draw t rng in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Dist.of_weighted
    (Hashtbl.fold (fun v c acc -> (v, float_of_int c) :: acc) counts [])
