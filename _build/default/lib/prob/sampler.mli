(** Constant-time sampling from a fixed finite distribution (Walker's
    alias method): O(n) preprocessing, O(1) per draw. *)

type 'a t

val create : 'a Dist.t -> 'a t
val draw : 'a t -> Rng.t -> 'a
val draw_n : 'a t -> Rng.t -> int -> 'a array

val empirical : 'a t -> Rng.t -> int -> 'a Dist.t
(** Empirical distribution of [n] draws — for validating the sampler
    against its source. *)
