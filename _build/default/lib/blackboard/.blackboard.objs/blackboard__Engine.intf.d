lib/blackboard/engine.mli: Board Coding
