lib/blackboard/engine.ml: Array Board Coding
