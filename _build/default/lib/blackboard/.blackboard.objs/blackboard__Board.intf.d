lib/blackboard/board.mli: Coding Format
