lib/blackboard/board.ml: Array Coding Format List String
