lib/blackboard/runtime.ml: Array Board Prob
