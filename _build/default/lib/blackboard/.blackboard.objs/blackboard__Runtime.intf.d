lib/blackboard/runtime.mli: Board Prob
