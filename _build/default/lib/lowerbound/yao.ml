(** Yao's minimax principle, easy direction, as an executable check.

    Lemma 6 invokes it: to lower-bound worst-case randomized complexity
    it suffices to lower-bound the distributional complexity of
    deterministic protocols. Operationally: fixing the public coins of a
    randomized protocol yields a mixture of deterministic protocols, and
    the randomized protocol's distributional error is the mixture of
    theirs — so {e some} deterministic restriction does at least as well.
    This module enumerates the restrictions and verifies both facts
    exactly on concrete trees.

    (Only public coins are fixed: private randomness inside [emit]
    distributions is part of a player's strategy and is untouched. For
    the "fully deterministic" statement, use trees whose emissions are
    point masses, as Lemma 6 does.) *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

(** All public-coin restrictions of a tree, with their probabilities:
    each result contains no [Chance] nodes. *)
let rec coin_restrictions tree =
  match tree with
  | T.Output _ -> [ (tree, R.one) ]
  | T.Speak { speaker; emit; children } ->
      (* cartesian product of child restrictions *)
      let child_choices = Array.map coin_restrictions children in
      let rec cross i =
        if i = Array.length child_choices then [ ([], R.one) ]
        else
          List.concat_map
            (fun (t, w) ->
              List.map
                (fun (rest, wr) -> (t :: rest, R.mul w wr))
                (cross (i + 1)))
            child_choices.(i)
      in
      List.map
        (fun (children, w) ->
          (T.Speak { speaker; emit; children = Array.of_list children }, w))
        (cross 0)
  | T.Chance { coin; children } ->
      List.concat_map
        (fun (c, w) ->
          List.map
            (fun (t, wt) -> (t, R.mul w wt))
            (coin_restrictions children.(c)))
        (D.to_alist coin)

(** Exact decomposition: the distributional error of [tree] under [mu]
    equals the mixture of its coin-restrictions' errors. Returns
    [(randomized error, weighted restriction errors)]. *)
let error_mixture tree ~f mu =
  let randomized = Proto.Semantics.distributional_error tree ~f mu in
  let parts =
    List.map
      (fun (t, w) -> (w, Proto.Semantics.distributional_error t ~f mu))
      (coin_restrictions tree)
  in
  (randomized, parts)

(** The easy direction itself: the best deterministic restriction's
    distributional error is at most the randomized protocol's. Returns
    [(best restriction error, randomized error)]. *)
let easy_direction tree ~f mu =
  let randomized, parts = error_mixture tree ~f mu in
  let best =
    List.fold_left (fun acc (_, e) -> R.min acc e) R.one parts
  in
  (best, randomized)
