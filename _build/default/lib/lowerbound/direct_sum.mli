(** The direct-sum embedding behind Lemma 1.

    Given a protocol for [DISJ_{n,k}] and a coordinate [j], construct a
    protocol for one-bit [AND_k]: the special players of all other
    coordinates are sampled publicly; each player privately samples its
    bits at the other coordinates from the hard distribution conditioned
    on those values, plants its real bit at coordinate [j], and runs the
    disjointness protocol on the fabricated instance. Every fabricated
    coordinate has a forced zero, so [AND = 1 - DISJ].

    Private sampling is folded into exact message laws by carrying, for
    every player and every value of its real bit, the posterior over its
    fabricated coordinates given its messages so far — so the embedding
    is an ordinary protocol tree and its conditional information cost is
    computed exactly. *)

val embed :
  disj_tree:int array Proto.Tree.t -> n:int -> k:int -> j:int ->
  int Proto.Tree.t
(** @raise Invalid_argument on a bad coordinate. Exponential in [n] and
    [k] (public assignments, fabricated-coordinate supports): intended
    for [n <= 3], [k <= 4]. *)

val embedded_cic : disj_tree:int array Proto.Tree.t -> n:int -> k:int -> j:int -> float
(** [CIC] of the embedding at coordinate [j] under the hard AND
    distribution — the per-coordinate term of the direct sum. *)

val direct_sum_check :
  disj_tree:int array Proto.Tree.t -> n:int -> k:int -> float * float array
(** [(CIC_{mu^n}(disj_tree), per-coordinate embedded CICs)]. Lemma 1 at
    the protocol level: the sum of the latter never exceeds the former
    (equality for coordinate-sequential protocols). *)
