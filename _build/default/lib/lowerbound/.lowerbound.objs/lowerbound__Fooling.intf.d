lib/lowerbound/fooling.mli: Exact Proto
