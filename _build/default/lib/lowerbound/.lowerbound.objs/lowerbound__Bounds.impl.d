lib/lowerbound/bounds.ml: Array Exact Float Infotheory List Prob Proto Protocols
