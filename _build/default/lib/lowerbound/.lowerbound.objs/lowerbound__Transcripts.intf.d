lib/lowerbound/transcripts.mli: Exact Prob Proto
