lib/lowerbound/direct_sum.mli: Proto
