lib/lowerbound/fooling.ml: Array Exact List Prob Proto Protocols
