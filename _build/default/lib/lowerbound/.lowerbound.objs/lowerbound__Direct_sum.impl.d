lib/lowerbound/direct_sum.ml: Array Exact List Prob Proto Protocols
