lib/lowerbound/bounds.mli: Prob Proto
