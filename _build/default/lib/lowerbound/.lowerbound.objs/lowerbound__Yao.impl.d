lib/lowerbound/yao.ml: Array Exact List Prob Proto
