lib/lowerbound/yao.mli: Exact Prob Proto
