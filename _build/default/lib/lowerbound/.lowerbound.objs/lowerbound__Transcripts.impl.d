lib/lowerbound/transcripts.ml: Array Exact Float List Prob Proto Protocols
