(** Yao's minimax principle, easy direction, as an executable check
    (invoked by Lemma 6).

    Fixing the public coins of a randomized protocol yields a mixture of
    deterministic-coin protocols whose distributional errors average to
    the randomized protocol's — so some restriction does at least as
    well. Both facts are verified exactly. Private randomness inside
    message laws is untouched (it is part of a player's strategy); for
    the fully deterministic statement use point-mass trees, as Lemma 6
    does. *)

val coin_restrictions :
  'a Proto.Tree.t -> ('a Proto.Tree.t * Exact.Rational.t) list
(** All public-coin restrictions with their probabilities; each result
    is chance-free. Exponential in the number of chance nodes. *)

val error_mixture :
  'a Proto.Tree.t ->
  f:('a array -> int) ->
  'a array Prob.Dist_exact.t ->
  Exact.Rational.t * (Exact.Rational.t * Exact.Rational.t) list
(** [(randomized distributional error, (weight, error) per restriction)];
    the mixture equals the randomized error exactly. *)

val easy_direction :
  'a Proto.Tree.t ->
  f:('a array -> int) ->
  'a array Prob.Dist_exact.t ->
  Exact.Rational.t * Exact.Rational.t
(** [(best restriction's error, randomized error)] — the former never
    exceeds the latter. *)
