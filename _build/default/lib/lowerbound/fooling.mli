(** The Lemma-6 fooling argument: [CC_eps(AND_k) = Omega(k)].

    For a deterministic protocol, if fewer than [(1 - eps/(1-eps'))k]
    players speak on input [1^k], then under the Lemma-6 distribution
    (all-ones w.p. [eps'], else a single random zero) the protocol errs
    with probability more than [eps]: whenever the zero lands on a
    silent player the transcript — hence the output — collapses to the
    all-ones run. All quantities are computed exactly on protocol
    trees. *)

val deterministic : int Proto.Tree.t -> bool
(** No chance nodes and every message law a point mass (over bit
    inputs). *)

val speakers_on : int Proto.Tree.t -> int array -> int list
(** Ordered speakers on a given input.
    @raise Invalid_argument on a randomized protocol. *)

val speakers_on_ones : int Proto.Tree.t -> k:int -> int list

val lemma6_error :
  int Proto.Tree.t -> k:int -> eps':Exact.Rational.t -> Exact.Rational.t
(** Exact distributional error under the Lemma-6 distribution. *)

val predicted_error_lb : int Proto.Tree.t -> k:int -> eps':float -> float
(** The fooling bound: [(1 - eps')(1 - l/k)] for a protocol answering 1
    on [1^k] with [l] distinct speakers; [eps'] if it answers 0. *)

val truncated_row : k:int -> m:int -> eps':float -> int * float * float
(** Experiment row: [(m, predicted lower bound, exact error)] for the
    [m]-speaker truncated sequential protocol. *)
