(** The "good transcripts" analysis of Section 4.1, run as an exact
    computation on concrete protocols.

    For an [AND_k] protocol tree we compute the transcript laws [pi_2]
    and [pi_3] (conditioned on the input having exactly two / three
    zeros) and classify every reachable transcript into the paper's
    sets: [B_1] (wrong output on two-zero inputs), [B_0] (output 0 but
    not "strongly preferring" two-zero inputs over [1^k]), [L] (good),
    and [L' <= L] (likes two zeros at least half as much as three).
    Lemma 5 says [pi_2(L')] is large and every [l in L'] points at a
    player with [alpha_i(l) = Omega(k)]. *)

type entry = {
  transcript : Proto.Tree.transcript;
  output : int;
  pi2 : Exact.Rational.t;  (** probability under two-zero inputs *)
  pi3 : Exact.Rational.t;
  prob_ones : Exact.Rational.t;  (** probability under [1^k] *)
  max_alpha : float;
  alpha_sum : float;
  posterior_best : float;
      (** best posterior [Pr[X_i = 0 | transcript, Z <> i]] over players *)
  in_l : bool;
  in_l' : bool;
}

type report = {
  k : int;
  c_constant : float;  (** the constant [C] defining [L] *)
  entries : entry list;
  mass_b1 : float;  (** [pi_2(B_1)] *)
  mass_b0 : float;
  mass_l : float;
  mass_l' : float;
  min_max_alpha_on_l' : float;
      (** the Lemma-5 quantity: [min over L' of max_i alpha_i];
          [infinity] when every good transcript pins a player exactly *)
}

val transcript_law_on_slice :
  int Proto.Tree.t -> k:int -> c:int -> Proto.Tree.transcript Prob.Dist_exact.t
(** [pi_c]: the transcript law given the input lies in the slice [X_c]. *)

val analyze : int Proto.Tree.t -> k:int -> c_constant:float -> report
