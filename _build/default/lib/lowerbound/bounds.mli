(** Quantitative checks of the inequality chain of Section 4.1. *)

val lemma2_rhs :
  'a Proto.Tree.t ->
  ('a array * 'd) Prob.Dist_exact.t ->
  k:int ->
  float * float array
(** The right-hand side of Lemma 2 —
    [sum_i E_{l,z} D( mu(X_i | T=l, Z=z) || mu(X_i | Z=z) )] — and its
    per-player terms. Lemma 2: this never exceeds [I(T ; X | Z)]. *)

val posterior_divergence : p:float -> k:int -> float
(** Exact divergence of a Bernoulli([p]) posterior from the [1/k] prior
    (eq. 3). *)

val eq4_chain : p:float -> k:int -> float * float * float
(** [(exact, p log k - H(p), p log k - 1)] — the chain of eq. (4), each
    dominating the next. *)

val cic_hard : int Proto.Tree.t -> k:int -> float
(** [CIC] under the Section-4.1 hard distribution. *)

val ic_hard : int Proto.Tree.t -> k:int -> float
(** External [IC] under the hard distribution's input marginal (the
    Section-6 gap quantity). *)
