(** Quantitative checks of the inequality chain of Section 4.1.

    Lemma 2 (superadditivity): the conditional information cost
    [I(T ; X | Z)] dominates the sum over players of the expected
    divergence of each player's posterior from its prior. Equations
    (3)-(4): a posterior of [p] for an event of prior [1/k] is worth at
    least [p log k - H(p)] bits. Both are computed exactly on concrete
    protocols and distributions. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module M = Infotheory.Measures.Exact_w

(** Per-player expected posterior-vs-prior divergence, conditioned on
    the auxiliary variable: the right-hand side of Lemma 2,
    [sum_i E_{l,z} D( mu(X_i | T=l, Z=z) || mu(X_i | Z=z) )]. *)
let lemma2_rhs tree mu_with_aux ~k =
  (* Joint law of (x, z, t). *)
  let joint = Proto.Semantics.joint_with_aux tree mu_with_aux in
  let lz_law = D.map (fun (_, z, t) -> (z, t)) joint in
  let per_player i =
    List.fold_left
      (fun acc ((z, t), w) ->
        match D.condition joint (fun (_, z', t') -> z' = z && t' = t) with
        | None -> acc
        | Some cond ->
            let posterior = D.map (fun (x, _, _) -> x.(i)) cond in
            let prior =
              D.map
                (fun (x, _) -> x.(i))
                (D.condition_exn mu_with_aux (fun (_, z') -> z' = z))
            in
            acc +. (R.to_float w *. M.kl posterior prior))
      0. (D.to_alist lz_law)
  in
  let per = Array.init k per_player in
  (Array.fold_left ( +. ) 0. per, per)

(** Exact divergence of a Bernoulli posterior [p] from a Bernoulli
    prior [1/k] (probability of the value 0), cf. eq. (3). *)
let posterior_divergence ~p ~k =
  Infotheory.Fn.binary_kl p (1. /. float_of_int k)

(** Check of eq. (4): [posterior_divergence >= p log k - H(p)
    >= p log k - 1]. Returns the triple (exact, middle bound, crude
    bound) so tests and the bench can print the chain. *)
let eq4_chain ~p ~k =
  let exact = posterior_divergence ~p ~k in
  let middle = Infotheory.Fn.posterior_surprise_bound ~p ~k in
  let crude = (p *. Float.log2 (float_of_int k)) -. 1. in
  (exact, middle, crude)

(** The conditional information cost of a protocol under the Section-4.1
    hard distribution — the left-hand side everything is compared to. *)
let cic_hard tree ~k =
  Proto.Information.conditional_ic tree (Protocols.Hard_dist.mu_and_with_aux ~k)

(** External information cost under the hard distribution's input
    marginal (the Section-6 quantity for the compression gap). *)
let ic_hard tree ~k =
  Proto.Information.external_ic tree (Protocols.Hard_dist.mu_and ~k)
