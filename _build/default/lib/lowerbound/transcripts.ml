(** The "good transcripts" analysis of Section 4.1, run as an exact
    computation on concrete protocols.

    For an [AND_k] protocol tree we compute the transcript laws [pi_2]
    and [pi_3] (conditioned on the input having exactly two or three
    zeros), classify every reachable transcript into the paper's sets —
    [B_1] (wrong output on two-zero inputs), [B_0] (output 0 but not
    "strongly preferring" two-zero inputs over [1^k]), [L] (good), and
    [L' <= L] (transcripts that like two zeros at least half as much as
    three) — and report the masses and the per-transcript alpha
    statistics that Lemma 5 is about. *)

module D = Prob.Dist_exact
module R = Exact.Rational

type entry = {
  transcript : Proto.Tree.transcript;
  output : int;
  pi2 : R.t;  (** probability of this transcript under two-zero inputs *)
  pi3 : R.t;
  prob_ones : R.t;  (** probability under the all-ones input *)
  max_alpha : float;
  alpha_sum : float;
  posterior_best : float;
      (** best posterior [Pr[X_i = 0 | transcript, Z <> i]] over players *)
  in_l : bool;
  in_l' : bool;
}

type report = {
  k : int;
  c_constant : float;
  entries : entry list;
  mass_b1 : float;
  mass_b0 : float;
  mass_l : float;
  mass_l' : float;
  min_max_alpha_on_l' : float;
      (** the Lemma-5 quantity: min over L' of max_i alpha_i *)
}

let transcript_law_on_slice tree ~k ~c =
  Proto.Semantics.transcript_law tree (Protocols.Hard_dist.mu_on_slice ~k ~c)

(** [analyze tree ~k ~c_constant] computes the full classification. *)
let analyze tree ~k ~c_constant =
  let pi2_law = transcript_law_on_slice tree ~k ~c:2 in
  let pi3_law = transcript_law_on_slice tree ~k ~c:3 in
  let ones = Array.make k 1 in
  let ones_law = Proto.Semantics.transcript_dist tree ones in
  let all_transcripts =
    List.sort_uniq compare (D.support pi2_law @ D.support pi3_law)
  in
  let entries =
    List.map
      (fun l ->
        let q = Proto.Qdecomp.of_transcript tree ~k l in
        let pi2 = D.prob_of pi2_law l in
        let pi3 = D.prob_of pi3_law l in
        let prob_ones = D.prob_of ones_law l in
        let output = Proto.Tree.output_of tree l in
        let in_l =
          output = 0
          && R.compare pi2
               (R.mul (Exact.Rational.of_float_dyadic c_constant) prob_ones)
             >= 0
        in
        let in_l' = in_l && R.compare pi2 (R.div_int pi3 2) >= 0 in
        let max_alpha = Proto.Qdecomp.max_alpha q in
        let alpha_sum = Proto.Qdecomp.alpha_sum q in
        let posterior_best =
          List.fold_left
            (fun acc i ->
              match Proto.Qdecomp.posterior_zero q i with
              | None -> acc
              | Some p -> Float.max acc (R.to_float p))
            0.
            (List.init k (fun i -> i))
        in
        {
          transcript = l;
          output;
          pi2;
          pi3;
          prob_ones;
          max_alpha;
          alpha_sum;
          posterior_best;
          in_l;
          in_l';
        })
      all_transcripts
  in
  let mass pred =
    List.fold_left
      (fun acc e -> if pred e then acc +. R.to_float e.pi2 else acc)
      0. entries
  in
  let mass_b1 = mass (fun e -> e.output = 1) in
  let mass_l = mass (fun e -> e.in_l) in
  let mass_l' = mass (fun e -> e.in_l') in
  let mass_b0 = mass (fun e -> e.output = 0 && not e.in_l) in
  let min_max_alpha_on_l' =
    List.fold_left
      (fun acc e ->
        if e.in_l' && R.sign e.pi2 > 0 then Float.min acc e.max_alpha
        else acc)
      infinity entries
  in
  {
    k;
    c_constant;
    entries;
    mass_b1;
    mass_b0;
    mass_l;
    mass_l';
    min_max_alpha_on_l';
  }
