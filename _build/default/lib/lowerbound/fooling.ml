(** The Lemma-6 fooling argument: [CC_eps(AND_k) = Omega(k)].

    For a deterministic protocol, look at the players who speak on input
    [1^k]. If fewer than [(1 - eps/(1-eps')) k] players speak, then under
    the Lemma-6 distribution (all-ones w.p. [eps'], otherwise a single
    random zero) the protocol errs with probability more than [eps]:
    whenever the zero lands on a silent player, the transcript — and
    hence the output — is identical to the all-ones run. These functions
    compute each piece exactly on concrete protocol trees. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

(** Whether a bit-input protocol tree is deterministic (all message laws
    are point masses and there are no chance nodes). *)
let rec deterministic = function
  | T.Output _ -> true
  | T.Chance _ -> false
  | T.Speak { emit; children; _ } ->
      D.is_point (emit 0) && D.is_point (emit 1)
      && Array.for_all deterministic children

(** The ordered list of players who speak on a given input (for a
    deterministic tree). *)
let speakers_on tree inputs =
  match D.support (Proto.Semantics.transcript_dist tree inputs) with
  | [ transcript ] ->
      List.filter_map
        (function T.Msg (i, _) -> Some i | T.Coin _ -> None)
        transcript
  | _ -> invalid_arg "Fooling.speakers_on: protocol is randomized"

let speakers_on_ones tree ~k = speakers_on tree (Array.make k 1)

(** Exact distributional error of a protocol for [AND_k] under the
    Lemma-6 distribution with parameter [eps']. *)
let lemma6_error tree ~k ~eps' =
  Proto.Semantics.distributional_error tree ~f:Protocols.Hard_dist.and_fn
    (Protocols.Hard_dist.mu_lemma6 ~k ~eps')

(** The lower bound the lemma predicts for a deterministic protocol that
    answers 1 on [1^k] with [l] distinct speakers:
    [error >= (1 - eps') * (1 - l/k)] (the zero falls on a silent
    player, the transcript collapses to the all-ones one). If the
    protocol answers 0 on [1^k] the error is at least [eps']. *)
let predicted_error_lb tree ~k ~eps' =
  let ones = Array.make k 1 in
  let out_ones =
    match D.support (Proto.Semantics.output_dist tree ones) with
    | [ v ] -> v
    | _ -> invalid_arg "Fooling.predicted_error_lb: randomized protocol"
  in
  if out_ones = 0 then eps'
  else begin
    let distinct =
      List.sort_uniq compare (speakers_on_ones tree ~k) |> List.length
    in
    (1. -. eps') *. (1. -. (float_of_int distinct /. float_of_int k))
  end

(** Experiment row for E3: run the truncated sequential protocol with
    [m] speakers and report (m, predicted error lower bound, exact
    error). The exact error must dominate the prediction. *)
let truncated_row ~k ~m ~eps' =
  let tree = Protocols.And_protocols.truncated_sequential ~k ~m in
  let eps'_r = Exact.Rational.of_float_dyadic eps' in
  let exact = R.to_float (lemma6_error tree ~k ~eps':eps'_r) in
  let predicted = predicted_error_lb tree ~k ~eps' in
  (m, predicted, exact)
