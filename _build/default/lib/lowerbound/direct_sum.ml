(** The direct-sum embedding behind Lemma 1.

    Given a protocol for [DISJ_{n,k}] and a coordinate [j], we construct
    a protocol for one-bit [AND_k]: the special players [Z_{j'}] of all
    other coordinates are sampled {e publicly}; each player then privately
    samples its own bits at the other coordinates from the hard
    distribution conditioned on those [Z] values (so the joint law of the
    fabricated coordinates is exactly [mu^{n-1}]), plants its real bit at
    coordinate [j], and the players run the disjointness protocol on the
    fabricated instance. Because every fabricated coordinate contains a
    forced zero, the instance is disjoint iff coordinate [j] is not
    all-ones, so [AND_k = 1 - DISJ].

    Private sampling is folded into exact message distributions: at each
    node we carry, for every player and every value of its real bit, the
    exact posterior over its fabricated coordinates given the messages it
    has sent so far. The construction therefore yields an ordinary
    protocol tree whose conditional information cost can be computed
    exactly — giving a machine-checked instance of
    [CIC(AND embedding at j) <= CIC_{mu^n}(DISJ) ] summed over [j]. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

(* Fabricated-coordinate codes: bit [t] of the code is the player's bit
   at the [t]-th coordinate different from [j]. *)
let other_coords ~n ~j =
  List.filter (fun c -> c <> j) (List.init n (fun c -> c))

let full_input ~n ~j ~others b code =
  let x = Array.make n 0 in
  x.(j) <- b;
  List.iteri (fun t c -> x.(c) <- (code lsr t) land 1) others;
  x

(* Prior weight of a fabricated-coordinate code for player [i], given
   the public Z-assignment [z_other] (a list aligned with [others]). *)
let code_prior ~k ~others ~z_other ~i code =
  let w = ref R.one in
  List.iteri
    (fun t z ->
      let bit = (code lsr t) land 1 in
      let factor =
        if z = i then if bit = 0 then R.one else R.zero
        else if bit = 0 then R.of_ints 1 k
        else R.of_ints (k - 1) k
      in
      w := R.mul !w factor)
    z_other;
  ignore others;
  !w

(** [embed ~disj_tree ~n ~k ~j] builds the AND_k protocol tree. *)
let embed ~disj_tree ~n ~k ~j =
  if j < 0 || j >= n then invalid_arg "Direct_sum.embed: bad coordinate";
  let others = other_coords ~n ~j in
  let codes = 1 lsl (n - 1) in
  (* Enumerate public Z-assignments for the other coordinates. *)
  let rec z_assignments t =
    if t = n - 1 then [ [] ]
    else
      List.concat_map
        (fun z -> List.map (fun rest -> z :: rest) (z_assignments (t + 1)))
        (List.init k (fun z -> z))
  in
  let assignments = z_assignments 0 in
  let simulate_for z_other =
    (* weights.(i).(b).(code): posterior weight of player i's fabricated
       coordinates when its real bit is b. *)
    let initial_weights =
      Array.init k (fun i ->
          Array.init 2 (fun _ ->
              Array.init codes (fun code ->
                  code_prior ~k ~others ~z_other ~i code)))
    in
    let rec simulate node weights =
      match node with
      | T.Output v -> T.output (1 - v)
      | T.Chance { coin; children } ->
          T.chance ~coin (Array.map (fun c -> simulate c weights) children)
      | T.Speak { speaker = i; emit; children } ->
          let arity = Array.length children in
          (* message weights per bit value *)
          let msg_weight b m =
            let acc = ref R.zero in
            for code = 0 to codes - 1 do
              let w = weights.(i).(b).(code) in
              if not (R.is_zero w) then begin
                let x = full_input ~n ~j ~others b code in
                acc := R.add !acc (R.mul w (D.prob_of (emit x) m))
              end
            done;
            !acc
          in
          let emit' b =
            let pairs = List.init arity (fun m -> (m, msg_weight b m)) in
            if List.for_all (fun (_, w) -> R.is_zero w) pairs then
              (* unreachable for this bit value; emit anything *)
              D.return 0
            else D.of_weighted pairs
          in
          let child m =
            let weights' =
              Array.mapi
                (fun i' per_bit ->
                  if i' <> i then per_bit
                  else
                    Array.mapi
                      (fun b per_code ->
                        Array.mapi
                          (fun code w ->
                            if R.is_zero w then w
                            else
                              let x = full_input ~n ~j ~others b code in
                              R.mul w (D.prob_of (emit x) m))
                          per_code)
                      per_bit)
                weights
            in
            simulate children.(m) weights'
          in
          T.speak ~speaker:i ~emit:emit'
            (Array.init arity child)
    in
    simulate disj_tree initial_weights
  in
  match assignments with
  | [ [] ] ->
      (* n = 1: no public sampling needed *)
      simulate_for []
  | _ ->
      let children = Array.of_list (List.map simulate_for assignments) in
      let coin = D.uniform (List.init (Array.length children) (fun c -> c)) in
      T.chance ~coin children

(** Conditional information cost of the embedding at coordinate [j],
    under the hard AND distribution — the per-coordinate term of the
    direct sum. *)
let embedded_cic ~disj_tree ~n ~k ~j =
  let and_tree = embed ~disj_tree ~n ~k ~j in
  Proto.Information.conditional_ic and_tree
    (Protocols.Hard_dist.mu_and_with_aux ~k)

(** Both sides of (the protocol-level instance of) Lemma 1:
    [sum_j CIC(embed_j)] vs [CIC_{mu^n}(Pi_DISJ)]. The former must not
    exceed the latter (up to float noise). *)
let direct_sum_check ~disj_tree ~n ~k =
  let total =
    Proto.Information.conditional_ic disj_tree
      (Protocols.Hard_dist.mu_disj_with_aux ~n ~k)
  in
  let per_coord =
    Array.init n (fun j -> embedded_cic ~disj_tree ~n ~k ~j)
  in
  (total, per_coord)
