(** Binary arithmetic (range) coding with adaptive per-symbol models.

    Classic Witten-Neal-Cleary integer coder with 32-bit registers. The
    model is supplied per symbol as an integer frequency table (the
    caller adapts it between symbols; encoder and decoder must supply
    identical tables, which in this repository both derive from the
    observer posterior of {!Compress.Observer}).

    Used by the one-shot compression experiment: a {e single stream}
    over a whole transcript reaches the transcript entropy [H(T)] plus
    O(1) — but requires one encoder who knows every message, which is
    exactly what the broadcast model forbids; the legal per-message
    variant ({!Sfe}) pays an O(1) flush per message, and the difference
    is the paper's [Omega(k / log k)] one-shot gap, measured. *)

module Encoder : sig
  type t

  val create : Bitbuf.Writer.t -> t

  val encode : t -> freqs:int array -> int -> unit
  (** [encode t ~freqs symbol] appends one symbol under the given
      frequency table (all entries positive, total at most [2^16]).
      @raise Invalid_argument on a bad table or symbol. *)

  val finish : t -> unit
  (** Flush the final interval (at most ~34 bits). Must be called
      exactly once; the encoder must not be reused. *)
end

module Decoder : sig
  type t

  val create : Bitbuf.Reader.t -> t
  (** The reader may be exhausted before decoding ends; missing bits
      read as zeros (standard arithmetic-coding convention). *)

  val decode : t -> freqs:int array -> int
  (** Decode one symbol; the frequency table must match the encoder's. *)
end

val freqs_of_probs : ?total:int -> float array -> int array
(** Quantize a probability vector into positive integer frequencies
    summing to about [total] (default [2^14]); every entry at least 1 so
    any symbol stays encodable. *)
