(** Self-delimiting integer codes.

    The Lemma-7 compression protocol writes a block index (a geometric-ish
    variable, Elias gamma) and a log-ratio (a small signed integer,
    zigzag + gamma); the Section-5 disjointness protocol writes
    fixed-width coordinates. All codes here are exactly invertible and
    their bit costs are what the experiments charge. *)

val fixed_width : int -> int
(** [fixed_width n] is the number of bits needed for values in
    [\[0, n)]: [ceil(log2 n)], and 0 when [n <= 1]. *)

val write_fixed : Bitbuf.Writer.t -> bound:int -> int -> unit
(** Write a value in [\[0, bound)] using [fixed_width bound] bits. *)

val read_fixed : Bitbuf.Reader.t -> bound:int -> int

val write_unary : Bitbuf.Writer.t -> int -> unit
(** [n >= 0] as [n] ones followed by a zero. *)

val read_unary : Bitbuf.Reader.t -> int

val write_gamma : Bitbuf.Writer.t -> int -> unit
(** Elias gamma for [n >= 1]: [2 floor(log2 n) + 1] bits. *)

val read_gamma : Bitbuf.Reader.t -> int

val write_gamma0 : Bitbuf.Writer.t -> int -> unit
(** Gamma shifted to cover [n >= 0]. *)

val read_gamma0 : Bitbuf.Reader.t -> int

val write_delta : Bitbuf.Writer.t -> int -> unit
(** Elias delta for [n >= 1]: asymptotically [log n + 2 log log n]. *)

val read_delta : Bitbuf.Reader.t -> int

val zigzag : int -> int
(** Map signed to unsigned: [0, -1, 1, -2, 2 -> 0, 1, 2, 3, 4]. *)

val unzigzag : int -> int

val write_signed_gamma : Bitbuf.Writer.t -> int -> unit
(** Any signed integer via zigzag + gamma0. *)

val read_signed_gamma : Bitbuf.Reader.t -> int

val write_rice : Bitbuf.Writer.t -> k:int -> int -> unit
(** Golomb-Rice with parameter [k]: quotient unary, remainder [k] bits. *)

val read_rice : Bitbuf.Reader.t -> k:int -> int

val gamma_cost : int -> int
(** Bit cost of [write_gamma] without writing. *)

val delta_cost : int -> int
