module B = Exact.Bigint

let check_sorted ~z subset =
  let rec go prev = function
    | [] -> ()
    | x :: rest ->
        if x <= prev || x >= z then
          invalid_arg "Subset_codec: not strictly increasing in [0, z)";
        go x rest
  in
  go (-1) subset

(* Colexicographic combinadic: with the subset sorted increasingly as
   c_0 < c_1 < ... < c_{m-1}, the rank is sum_i C(c_i, i+1).

   Computed in one scan over positions, maintaining b = C(c, j) (where
   j-1 elements have been consumed) by small-integer multiply/divide
   steps — O(z) bigint-by-word operations total, instead of m
   from-scratch binomials:
     advance position:  C(c+1, j) = C(c, j) * (c+1) / (c+1-j)
     consume element:   C(c, j+1) = C(c, j) * (c-j) / (j+1)        *)
let rank ~z subset =
  check_sorted ~z subset;
  let rec go c j b rem rank =
    (* b = C(c, j); rem = elements still to consume (ascending) *)
    match rem with
    | [] -> rank
    | e :: rest ->
        if c = e then begin
          let rank = B.add rank b in
          let b' =
            if c < j + 1 then B.zero
            else B.div (B.mul_int b (c - j)) (B.of_int (j + 1))
          in
          go c (j + 1) b' rest rank
        end
        else
          let b' =
            if c + 1 < j then B.zero
            else if c + 1 = j then B.one
            else B.div (B.mul_int b (c + 1)) (B.of_int (c + 1 - j))
          in
          go (c + 1) j b' rem rank
  in
  go 0 1 B.zero subset B.zero

let unrank ~z ~m index =
  if m < 0 || m > z then invalid_arg "Subset_codec.unrank: bad m";
  (* Greedy from the largest element down, maintaining the running
     binomial incrementally (each step is a small-int multiply/divide),
     so the whole unrank is O(z + m) bigint-by-word operations:
       C(c-1, i) = C(c, i) * (c - i) / c        (decrement c)
       C(c, i-1) = C(c, i) * i / (c - i + 1)    (decrement i)  *)
  let rec go i c b rem acc =
    (* Invariant: b = C(c, i), all elements selected so far exceed c. *)
    if B.compare b rem <= 0 then begin
      (* c is the i-th largest element *)
      let rem = B.sub rem b in
      if i = 1 then c :: acc
      else
        let b' = B.div (B.mul_int b i) (B.of_int c) (* C(c-1, i-1) *) in
        go (i - 1) (c - 1) b' rem (c :: acc)
    end
    else
      let b' = B.div (B.mul_int b (c - i)) (B.of_int c) (* C(c-1, i) *) in
      go i (c - 1) b' rem acc
  in
  if m = 0 then [] else go m (z - 1) (B.binomial (z - 1) m) index []

let code_bits ~z ~m =
  let count = B.binomial z m in
  if B.compare count B.one <= 0 then 0
  else B.num_bits (B.sub count B.one)

let write w ~z subset =
  let m = List.length subset in
  let bits = code_bits ~z ~m in
  Bitbuf.Writer.add_bigint_bits w (rank ~z subset) bits

let read r ~z ~m =
  let bits = code_bits ~z ~m in
  unrank ~z ~m (Bitbuf.Reader.read_bigint_bits r bits)
