(** Huffman coding — the classical single-shot baseline.

    The paper's introduction frames its compression question against
    classical one-way transmission: Shannon gives amortized cost
    [H(X)] in the limit, Huffman gives a single message in at most
    [H(X) + 1] bits — so for one-way transmission there is {e no} gap
    between single-shot and amortized cost. Experiment E13 reproduces
    that no-gap baseline with this module and contrasts it with the
    interactive flush tax of E12. *)

type t
(** A prefix code over symbols [0 .. n-1]. *)

val build : float array -> t
(** Optimal prefix code for the given probability vector (zero entries
    allowed; they get some finite codeword).
    @raise Invalid_argument on an empty vector. *)

val code_lengths : t -> int array

val expected_length : t -> float array -> float
(** Expected codeword length under a probability vector (usually the
    one the code was built for); within [\[H, H+1)] for positive
    vectors. *)

val kraft_sum : t -> float
(** [sum 2^-len]; equals 1 for the codes this module builds (every
    Huffman code is complete). *)

val encode : t -> Bitbuf.Writer.t -> int -> unit
val decode : t -> Bitbuf.Reader.t -> int
