(* Witten-Neal-Cleary integer arithmetic coder, 32-bit registers held in
   OCaml ints (63-bit), most-significant-bit-first output. *)

let code_bits = 32
let top = (1 lsl code_bits) - 1
let half = 1 lsl (code_bits - 1)
let quarter = 1 lsl (code_bits - 2)
let three_quarters = half + quarter
let max_total = 1 lsl 16

let check_freqs freqs symbol =
  let n = Array.length freqs in
  if symbol < 0 || symbol >= n then invalid_arg "Arith: bad symbol";
  let total = Array.fold_left ( + ) 0 freqs in
  if total <= 0 || total > max_total then invalid_arg "Arith: bad total";
  Array.iter (fun f -> if f <= 0 then invalid_arg "Arith: zero frequency") freqs;
  total

let cum_range freqs symbol =
  let lo = ref 0 in
  for i = 0 to symbol - 1 do
    lo := !lo + freqs.(i)
  done;
  (!lo, !lo + freqs.(symbol))

module Encoder = struct
  type t = {
    out : Bitbuf.Writer.t;
    mutable low : int;
    mutable high : int;
    mutable pending : int;
    mutable finished : bool;
  }

  let create out = { out; low = 0; high = top; pending = 0; finished = false }

  let emit t bit =
    Bitbuf.Writer.add_bit t.out bit;
    for _ = 1 to t.pending do
      Bitbuf.Writer.add_bit t.out (not bit)
    done;
    t.pending <- 0

  let encode t ~freqs symbol =
    if t.finished then invalid_arg "Arith.Encoder: already finished";
    let total = check_freqs freqs symbol in
    let cum_lo, cum_hi = cum_range freqs symbol in
    let range = t.high - t.low + 1 in
    t.high <- t.low + (range * cum_hi / total) - 1;
    t.low <- t.low + (range * cum_lo / total);
    let continue = ref true in
    while !continue do
      if t.high < half then begin
        emit t false;
        t.low <- t.low * 2;
        t.high <- (t.high * 2) + 1
      end
      else if t.low >= half then begin
        emit t true;
        t.low <- (t.low - half) * 2;
        t.high <- ((t.high - half) * 2) + 1
      end
      else if t.low >= quarter && t.high < three_quarters then begin
        t.pending <- t.pending + 1;
        t.low <- (t.low - quarter) * 2;
        t.high <- ((t.high - quarter) * 2) + 1
      end
      else continue := false
    done

  let finish t =
    if t.finished then invalid_arg "Arith.Encoder: already finished";
    t.finished <- true;
    (* disambiguate the final interval: emit the quarter bit *)
    t.pending <- t.pending + 1;
    if t.low < quarter then emit t false else emit t true
end

module Decoder = struct
  type t = {
    input : Bitbuf.Reader.t;
    mutable low : int;
    mutable high : int;
    mutable value : int;
  }

  let next_bit input =
    if Bitbuf.Reader.remaining input > 0 then Bitbuf.Reader.read_bit input
    else false

  let create input =
    let value = ref 0 in
    for _ = 1 to code_bits do
      value := (!value * 2) lor if next_bit input then 1 else 0
    done;
    { input; low = 0; high = top; value = !value }

  let decode t ~freqs =
    let total = Array.fold_left ( + ) 0 freqs in
    let range = t.high - t.low + 1 in
    (* scaled position of value within [low, high] *)
    let scaled = (((t.value - t.low + 1) * total) - 1) / range in
    (* find the symbol whose cumulative interval contains it *)
    let symbol = ref 0 in
    let cum = ref 0 in
    while !cum + freqs.(!symbol) <= scaled do
      cum := !cum + freqs.(!symbol);
      incr symbol
    done;
    let cum_lo = !cum and cum_hi = !cum + freqs.(!symbol) in
    t.high <- t.low + (range * cum_hi / total) - 1;
    t.low <- t.low + (range * cum_lo / total);
    let continue = ref true in
    while !continue do
      if t.high < half then begin
        t.low <- t.low * 2;
        t.high <- (t.high * 2) + 1;
        t.value <- (t.value * 2) lor if next_bit t.input then 1 else 0
      end
      else if t.low >= half then begin
        t.low <- (t.low - half) * 2;
        t.high <- ((t.high - half) * 2) + 1;
        t.value <-
          (((t.value - half) * 2) lor if next_bit t.input then 1 else 0)
      end
      else if t.low >= quarter && t.high < three_quarters then begin
        t.low <- (t.low - quarter) * 2;
        t.high <- ((t.high - quarter) * 2) + 1;
        t.value <-
          (((t.value - quarter) * 2) lor if next_bit t.input then 1 else 0)
      end
      else continue := false
    done;
    !symbol
end

let freqs_of_probs ?(total = 1 lsl 14) probs =
  let n = Array.length probs in
  if n = 0 then invalid_arg "Arith.freqs_of_probs";
  let raw =
    Array.map
      (fun p -> max 1 (int_of_float (Float.round (p *. float_of_int total))))
      probs
  in
  (* keep the sum within bounds *)
  let sum = Array.fold_left ( + ) 0 raw in
  if sum > max_total then begin
    let scale = float_of_int (max_total - n) /. float_of_int sum in
    Array.map (fun f -> max 1 (int_of_float (float_of_int f *. scale))) raw
  end
  else raw
