lib/coding/arith.mli: Bitbuf
