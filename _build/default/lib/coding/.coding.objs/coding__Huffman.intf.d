lib/coding/huffman.mli: Bitbuf
