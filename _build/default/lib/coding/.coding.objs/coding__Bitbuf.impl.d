lib/coding/bitbuf.ml: Array Bytes Char Exact List String
