lib/coding/intcode.ml: Bitbuf
