lib/coding/intcode.mli: Bitbuf
