lib/coding/bitbuf.mli: Exact
