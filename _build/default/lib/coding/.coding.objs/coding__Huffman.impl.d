lib/coding/huffman.ml: Array Bitbuf Float List
