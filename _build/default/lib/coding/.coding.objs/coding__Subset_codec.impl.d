lib/coding/subset_codec.ml: Bitbuf Exact List
