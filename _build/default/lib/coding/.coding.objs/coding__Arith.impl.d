lib/coding/arith.ml: Array Bitbuf Float
