lib/coding/subset_codec.mli: Bitbuf Exact
