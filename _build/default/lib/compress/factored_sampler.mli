(** Cost-faithful simulation of the Lemma-7 sampler over {e product}
    universes too large to enumerate.

    The literal point process needs about [|U|] public points per round;
    with [n] parallel binary-message copies [|U| = 2^n], so the literal
    simulator stops being runnable around 20 copies. The communicated
    values, however, have closed-form laws that are sampled directly:
    the joint symbol is a product sample [x_c ~ eta_c]; the log-ratio is
    [s = ceil(sum_c log2 (eta_c/nu_c))]; the block index is geometric
    with per-block acceptance [1 - (1-1/u)^u]; and [|P'|] is
    [1 + Poisson(2^min(s, log2 u))] — the Poisson mean is exact for a
    product prior because [sum_{x'} nu(x') = 1]. The agreement of this
    simulator with the literal one at sizes where both run is a unit
    test; the large-copy Theorem-3 experiment (E6c) runs on this one. *)

type result = {
  sent : int array;  (** per-copy message symbols, jointly [prod eta_c] *)
  bits : int;
  aborted : bool;
  log_ratio : int;
}

val sample_from : Prob.Rng.t -> float array -> int
(** Draw from a probability vector by inverse CDF (shared by the
    simulators and the one-shot coder). *)

val transmit :
  rng:Prob.Rng.t ->
  etas:float array array ->
  nus:float array array ->
  ?eps:float ->
  ?mc_samples:int ->
  Coding.Bitbuf.Writer.t ->
  result
(** Simulate one joint transmission for copies with per-copy laws
    [etas.(c)] against observer priors [nus.(c)]. The written bits use
    the literal protocol's framing, so the accounting is comparable.
    @raise Invalid_argument on shape mismatch or domination failure. *)
