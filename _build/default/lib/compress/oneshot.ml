(** One-shot transcript compression — and why it cannot work in the
    broadcast model (Section 6, the [Omega(k / log k)] gap), measured.

    Every party can compute the external observer's next-message prior
    [nu] (footnote 3), so a natural one-shot scheme is entropy coding:
    each speaker arithmetic-codes its message against [nu]. Two
    variants:

    - {e interactive} (a legal broadcast protocol): each message is
      coded and {e flushed} on the board so the other players can decode
      it before the protocol continues. The flush costs O(1) bits per
      message, so a protocol with many low-information messages — the
      sequential [AND_k], whose [k] messages carry [O(log k)] bits in
      total — still pays [Theta(k)]. This is the mechanism behind the
      impossibility: fractional bits cannot be pooled across speakers.
    - {e omniscient} (not a legal protocol): a single encoder who knows
      the whole transcript codes it as one arithmetic stream, reaching
      [H(T) + O(1)] bits — which for deterministic protocols equals
      [IC + O(1)]. The gap between the two variants is the paper's gap.

    Both variants are decoded and verified against the true message
    sequence. *)

module D = Prob.Dist_exact

type run = {
  bits : int;
  messages : int;
  decoded_ok : bool;  (** decoder reproduced the exact message sequence *)
}

(* Execute the protocol on [inputs], sampling randomized messages and
   public coins from [rng]; return the per-round (nu, message) pairs by
   driving an observer alongside. *)
let execute ~rng ~tree ~mu ~inputs =
  let events = ref [] in
  let obs = ref (Observer.create tree mu) in
  let continue = ref true in
  while !continue do
    match Observer.chance_view !obs with
    | Some law ->
        let c = Factored_sampler.sample_from rng law in
        obs := Observer.advance_coin !obs c
    | None -> (
        match Observer.speak_view !obs with
        | Some (speaker, _, nu) ->
            let eta = Observer.speaker_eta !obs inputs.(speaker) in
            let m = Factored_sampler.sample_from rng eta in
            events := (nu, m) :: !events;
            obs := Observer.advance_msg !obs m
        | None -> continue := false)
  done;
  List.rev !events

(** Interactive per-message coding: fresh arithmetic encoder per
    message, flushed immediately — a legal broadcast protocol. *)
let interactive ~seed ~tree ~mu ~inputs =
  let rng = Prob.Rng.of_int_seed seed in
  let events = execute ~rng ~tree ~mu ~inputs in
  let total = ref 0 in
  let ok = ref true in
  List.iter
    (fun (nu, m) ->
      let freqs = Coding.Arith.freqs_of_probs nu in
      let w = Coding.Bitbuf.Writer.create () in
      let enc = Coding.Arith.Encoder.create w in
      Coding.Arith.Encoder.encode enc ~freqs m;
      Coding.Arith.Encoder.finish enc;
      total := !total + Coding.Bitbuf.Writer.length w;
      let dec = Coding.Arith.Decoder.create (Coding.Bitbuf.Reader.of_writer w) in
      if Coding.Arith.Decoder.decode dec ~freqs <> m then ok := false)
    events;
  { bits = !total; messages = List.length events; decoded_ok = !ok }

(** Omniscient single-stream coding: one encoder over the whole
    transcript — reaches [H(T) + O(1)] but is not a broadcast
    protocol. *)
let omniscient ~seed ~tree ~mu ~inputs =
  let rng = Prob.Rng.of_int_seed seed in
  let events = execute ~rng ~tree ~mu ~inputs in
  let w = Coding.Bitbuf.Writer.create () in
  let enc = Coding.Arith.Encoder.create w in
  let tables =
    List.map
      (fun (nu, m) ->
        let freqs = Coding.Arith.freqs_of_probs nu in
        Coding.Arith.Encoder.encode enc ~freqs m;
        (freqs, m))
      events
  in
  Coding.Arith.Encoder.finish enc;
  let dec = Coding.Arith.Decoder.create (Coding.Bitbuf.Reader.of_writer w) in
  let ok =
    List.for_all
      (fun (freqs, m) -> Coding.Arith.Decoder.decode dec ~freqs = m)
      tables
  in
  { bits = Coding.Bitbuf.Writer.length w; messages = List.length events; decoded_ok = ok }

(** Expected bits of either variant under [mu], by averaging over
    sampled inputs. *)
let expected_bits variant ~seed ~tree ~mu ~samples =
  let sampler = Prob.Sampler.create (D.to_float_dist mu) in
  let rng = Prob.Rng.of_int_seed (seed lxor 0x9E3779B9) in
  let total = ref 0 in
  let all_ok = ref true in
  for i = 1 to samples do
    let inputs = Prob.Sampler.draw sampler rng in
    let r = variant ~seed:(seed + (i * 131)) ~tree ~mu ~inputs in
    total := !total + r.bits;
    if not r.decoded_ok then all_ok := false
  done;
  (float_of_int !total /. float_of_int samples, !all_ok)

(* Replay a fixed transcript through an observer, producing the
   (nu, message) event sequence the coders consume. *)
let events_of_transcript ~tree ~mu transcript =
  let obs = ref (Observer.create tree mu) in
  List.filter_map
    (fun event ->
      match event with
      | Proto.Tree.Coin c ->
          obs := Observer.advance_coin !obs c;
          None
      | Proto.Tree.Msg (_, m) ->
          let nu =
            match Observer.speak_view !obs with
            | Some (_, _, nu) -> nu
            | None -> invalid_arg "Oneshot: transcript does not match tree"
          in
          obs := Observer.advance_msg !obs m;
          Some (nu, m))
    transcript

let code_events ~single_stream events =
  if single_stream then begin
    let w = Coding.Bitbuf.Writer.create () in
    let enc = Coding.Arith.Encoder.create w in
    List.iter
      (fun (nu, m) ->
        Coding.Arith.Encoder.encode enc ~freqs:(Coding.Arith.freqs_of_probs nu) m)
      events;
    Coding.Arith.Encoder.finish enc;
    Coding.Bitbuf.Writer.length w
  end
  else
    List.fold_left
      (fun acc (nu, m) ->
        let w = Coding.Bitbuf.Writer.create () in
        let enc = Coding.Arith.Encoder.create w in
        Coding.Arith.Encoder.encode enc
          ~freqs:(Coding.Arith.freqs_of_probs nu) m;
        Coding.Arith.Encoder.finish enc;
        acc + Coding.Bitbuf.Writer.length w)
      0 events

(** Exact expected bits of either variant under [mu]: the coders are
    deterministic given the message sequence, so the expectation is a
    finite sum over the transcript law — no sampling, no seed.
    [single_stream = true] is the omniscient variant, [false] the
    interactive one. *)
let expected_bits_exact ~single_stream ~tree ~mu =
  let law = Proto.Semantics.transcript_law tree mu in
  List.fold_left
    (fun acc (transcript, p) ->
      let events = events_of_transcript ~tree ~mu transcript in
      acc
      +. Exact.Rational.to_float p
         *. float_of_int (code_events ~single_stream events))
    0. (D.to_alist law)
