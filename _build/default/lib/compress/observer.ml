(** The external observer's view of one protocol copy.

    Tracks the exact posterior over the inputs given the transcript so
    far (as an unnormalized weighted support), from which the observer's
    next-message prior [nu] — the footnote-3 prediction — is computed.
    The speaker's true next-message law [eta] depends on its input; both
    are produced here so the compressor can be driven round by round. *)

module D = Prob.Dist_exact
module R = Exact.Rational
module T = Proto.Tree

type 'a t = {
  node : 'a T.t;  (** current position in the protocol tree *)
  weighted : ('a array * R.t) list;  (** unnormalized posterior over inputs *)
}

let create tree mu = { node = tree; weighted = D.to_alist mu }

let finished t = match t.node with T.Output _ -> true | _ -> false

let output_exn t =
  match t.node with
  | T.Output v -> v
  | _ -> invalid_arg "Observer.output_exn: protocol still running"

(** At a [Speak] node: the speaker index, the message arity, and the
    observer's prior [nu] over the next message (normalized, float). *)
let speak_view t =
  match t.node with
  | T.Speak { speaker; emit; children } ->
      let arity = Array.length children in
      let mix = Array.make arity R.zero in
      List.iter
        (fun (x, w) ->
          List.iter
            (fun (m, p) -> mix.(m) <- R.add mix.(m) (R.mul w p))
            (D.to_alist (emit x.(speaker))))
        t.weighted;
      let mass = Array.fold_left R.add R.zero mix in
      let nu = Array.map (fun w -> R.to_float (R.div w mass)) mix in
      Some (speaker, arity, nu)
  | _ -> None

(** The speaker's true law [eta] of the next message given its actual
    input (float vector over the arity). *)
let speaker_eta t input =
  match t.node with
  | T.Speak { emit; children; _ } ->
      let arity = Array.length children in
      let eta = Array.make arity 0. in
      List.iter
        (fun (m, p) -> eta.(m) <- R.to_float p)
        (D.to_alist (emit input));
      eta
  | _ -> invalid_arg "Observer.speaker_eta: not at a Speak node"

(** Advance past a [Speak] node on message [m], updating the posterior
    by the per-input emission likelihood. *)
let advance_msg t m =
  match t.node with
  | T.Speak { speaker; emit; children } ->
      let weighted =
        List.filter_map
          (fun (x, w) ->
            let p = D.prob_of (emit x.(speaker)) m in
            if R.is_zero p then None else Some (x, R.mul w p))
          t.weighted
      in
      { node = children.(m); weighted }
  | _ -> invalid_arg "Observer.advance_msg: not at a Speak node"

(** At a [Chance] node: the public-coin law as floats. *)
let chance_view t =
  match t.node with
  | T.Chance { coin; children } ->
      let arity = Array.length children in
      let law = Array.make arity 0. in
      List.iter (fun (c, p) -> law.(c) <- R.to_float p) (D.to_alist coin);
      Some law
  | _ -> None

let advance_coin t c =
  match t.node with
  | T.Chance { children; _ } -> { t with node = children.(c) }
  | _ -> invalid_arg "Observer.advance_coin: not at a Chance node"
