(** Theorem 3: amortized compression of many parallel copies.

    [n] independent copies of a protocol are run in parallel, round by
    round; the messages of all copies whose current speaker coincides
    are transmitted {e jointly} by one Lemma-7 invocation over the
    product universe. Per-round divergences add up across copies to the
    round's information cost, while the sampler's [O(log ...)] framing
    overhead is paid once per round — which is exactly why the per-copy
    cost converges to [IC_mu(Pi)] as [n] grows.

    Two drivers are provided: the {e literal} one replays the actual
    point process honestly, including an independent decoder
    (product universe capped at [2^20], so a few dozen binary-message
    copies); the {e factored} one ({!Factored_sampler}) samples the
    communicated values from their closed-form laws and scales to
    hundreds of copies. They agree at sizes where both run (a test). *)

type run = {
  copies : int;
  total_bits : int;
  per_copy_bits : float;
  rounds : int;  (** parallel rounds executed *)
  transmissions : int;  (** sampler invocations *)
  aborted : int;  (** transmissions that hit the fallback path *)
  outputs : int array;  (** per-copy protocol outputs *)
  agreed : bool;  (** every literal decoder matched every speaker *)
}

val max_log_u : int
(** Cap on [log2] of a literal transmission's product universe. *)

val mixed_radix_encode : int array -> int array -> int
val mixed_radix_decode : int array -> int -> int array

val compress_parallel :
  ?eps:float ->
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  inputs:'a array array ->
  unit ->
  run
(** Literal compressed run on the given per-copy inputs (each an array
    of per-player inputs).
    @raise Invalid_argument if a transmission's universe exceeds
    [2^max_log_u], or on zero copies. *)

val compress_parallel_factored :
  ?eps:float ->
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  inputs:'a array array ->
  unit ->
  run
(** Cost-faithful factored run; no universe-size limit. [agreed] is
    reported true (there is no literal decoder to cross-check). *)

val draw_inputs :
  seed:int -> mu:'a Prob.Dist_exact.t -> copies:int -> 'a array

val compress_random :
  ?eps:float ->
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  copies:int ->
  unit ->
  run * 'a array array
(** Draw iid inputs from [mu] and run {!compress_parallel}. *)

val compress_random_factored :
  ?eps:float ->
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  copies:int ->
  unit ->
  run * 'a array array
