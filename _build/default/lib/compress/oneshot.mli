(** One-shot transcript compression — and why it cannot work in the
    broadcast model (Section 6, the [Omega(k / log k)] gap), measured.

    Both variants entropy-code each message against the external
    observer's next-message prior [nu] (which every party can compute),
    using the {!Coding.Arith} range coder:

    - {e interactive} — a legal broadcast protocol: each message is
      coded and flushed on the board so everyone can decode it before
      the protocol continues. The flush costs O(1) bits per message, so
      protocols with many low-information messages (sequential [AND_k])
      still pay [Theta(k)].
    - {e omniscient} — a single encoder who knows the whole transcript
      codes it as one stream, reaching [H(T) + O(1)]; not a legal
      protocol. The difference between the two is the paper's one-shot
      gap, made operational. *)

type run = {
  bits : int;
  messages : int;
  decoded_ok : bool;  (** decoder reproduced the exact message sequence *)
}

val interactive :
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  inputs:'a array ->
  run
(** Run the protocol on [inputs] (messages and public coins sampled
    from the seed), coding each message in its own flushed stream. *)

val omniscient :
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  inputs:'a array ->
  run

val expected_bits :
  (seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  inputs:'a array ->
  run) ->
  seed:int ->
  tree:'a Proto.Tree.t ->
  mu:'a array Prob.Dist_exact.t ->
  samples:int ->
  float * bool
(** Monte-Carlo expectation of a variant's bits over inputs drawn from
    [mu]; the boolean is the conjunction of [decoded_ok]. *)

val expected_bits_exact :
  single_stream:bool -> tree:'a Proto.Tree.t -> mu:'a array Prob.Dist_exact.t -> float
(** Exact expectation: the coders are deterministic given the message
    sequence, so this is a finite sum over the transcript law
    ([single_stream = true] is the omniscient variant). *)
