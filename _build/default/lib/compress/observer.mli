(** The external observer's view of one protocol copy.

    Tracks the exact posterior over inputs given the transcript so far,
    from which the observer's next-message prior [nu] — the footnote-3
    prediction of Section 6 — is computed. The speaker's true law [eta]
    depends on its input; both are produced here so the compressor can
    be driven round by round. *)

type 'a t

val create : 'a Proto.Tree.t -> 'a array Prob.Dist_exact.t -> 'a t
val finished : 'a t -> bool

val output_exn : 'a t -> int
(** @raise Invalid_argument while the protocol is still running. *)

val speak_view : 'a t -> (int * int * float array) option
(** At a [Speak] node: [(speaker, arity, nu)] with [nu] the observer's
    normalized next-message prediction; [None] elsewhere. *)

val speaker_eta : 'a t -> 'a -> float array
(** The true next-message law given the speaker's actual input.
    @raise Invalid_argument unless at a [Speak] node. *)

val advance_msg : 'a t -> int -> 'a t
(** Advance past a [Speak] node on a message, updating the posterior by
    the per-input emission likelihood. *)

val chance_view : 'a t -> float array option
(** At a [Chance] node: the public-coin law. *)

val advance_coin : 'a t -> int -> 'a t
