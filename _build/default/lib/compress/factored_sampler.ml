(** Cost-faithful simulation of the Lemma-7 sampler over {e product}
    universes too large to enumerate.

    The literal point process needs about [|U|] public points per round;
    with [n] parallel binary-message copies [|U| = 2^n], so the literal
    simulator ({!Point_sampler}) stops being runnable around 20 copies.
    But the {e communicated values} — block index, log-ratio [s], rank
    width — have simple laws that can be sampled directly:

    - the selected joint symbol is a product sample [x_c ~ eta_c]
      (that is what rejection sampling outputs);
    - [s = ceil(sum_c log2 (eta_c(x_c) / nu_c(x_c)))];
    - the block index is geometric: the per-block acceptance probability
      is [1 - (1 - 1/u)^u] (about [1 - 1/e] for huge [u]);
    - the number of other block points under the scaled prior [2^s nu]
      is [Binomial(u - 1, q)] with [q = E_unif min(1, 2^s nu(x'))] —
      for huge [u] a Poisson with mean [lambda = u*q], which we estimate
      by Monte-Carlo over product-uniform [x'] (computing [u * nu(x')]
      in log-space as [prod_c a_c nu_c(x'_c)] so no astronomical numbers
      appear).

    The resulting per-round bit cost has the same law as the literal
    protocol's up to the Monte-Carlo error in [lambda]; the agreement of
    the two simulators at small sizes is a unit test, and the large-copy
    Theorem-3 experiment (E6c) is run on this one. *)

type result = {
  sent : int array;  (** per-copy message symbols, jointly [prod eta_c] *)
  bits : int;
  aborted : bool;
  log_ratio : int;
}

let sample_from rng (law : float array) =
  let x = ref (Prob.Rng.float rng) in
  let pick = ref (Array.length law - 1) in
  (try
     Array.iteri
       (fun i p ->
         if !x < p then begin
           pick := i;
           raise Exit
         end
         else x := !x -. p)
       law
   with Exit -> ());
  !pick

(* Poisson sampler: Knuth for small means, normal approximation for
   large ones (only the bit-width of the value matters downstream). *)
let poisson rng lambda =
  if lambda <= 0. then 0
  else if lambda < 30. then begin
    let l = Float.exp (-.lambda) in
    let rec go k p =
      let p = p *. Prob.Rng.float rng in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.
  end
  else begin
    (* Box-Muller normal *)
    let u1 = Float.max 1e-12 (Prob.Rng.float rng) in
    let u2 = Prob.Rng.float rng in
    let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
    Stdlib.max 0 (int_of_float (Float.round (lambda +. (Float.sqrt lambda *. z))))
  end

(** [transmit ~rng ~etas ~nus ?eps ?mc_samples writer] simulates one
    joint transmission for copies with per-copy laws [etas.(c)] over
    arity [Array.length etas.(c)], against observer priors [nus.(c)].
    Writes the (simulated) bits into [writer] so the accounting matches
    the literal protocol's framing. *)
let transmit ~rng ~etas ~nus ?(eps = 0.01) ?(mc_samples = 256) writer =
  let copies = Array.length etas in
  if copies = 0 || Array.length nus <> copies then
    invalid_arg "Factored_sampler.transmit";
  let max_blocks = Point_sampler.default_max_blocks eps in
  let bits_before = Coding.Bitbuf.Writer.length writer in
  (* 1. the sample itself *)
  let sent = Array.map (fun eta -> sample_from rng eta) etas in
  (* 2. the log-ratio *)
  let log_ratio =
    let acc = ref 0. in
    Array.iteri
      (fun c x ->
        let e = etas.(c).(x) and n = nus.(c).(x) in
        if n <= 0. then
          invalid_arg "Factored_sampler.transmit: eta not dominated by nu";
        acc := !acc +. Float.log2 (e /. n))
      sent;
    !acc
  in
  let s = int_of_float (Float.ceil log_ratio) in
  (* 3. the block index: per-block acceptance 1 - (1-1/u)^u; log2 u =
     sum of per-copy log-arities *)
  let log2_u =
    Array.fold_left
      (fun acc eta -> acc +. Float.log2 (float_of_int (Array.length eta)))
      0. etas
  in
  let per_block_miss =
    if log2_u > 50. then Float.exp (-1.)
    else begin
      let u = Float.round (Float.pow 2. log2_u) in
      Float.pow (1. -. (1. /. u)) u
    end
  in
  let block =
    let rec go b = if b > max_blocks then None
      else if Prob.Rng.float rng >= per_block_miss then Some b
      else go (b + 1)
    in
    go 1
  in
  match block with
  | None ->
      (* fallback framing: abort marker + plain symbols *)
      Coding.Intcode.write_gamma writer (max_blocks + 1);
      Array.iteri
        (fun c x ->
          Coding.Intcode.write_fixed writer ~bound:(Array.length etas.(c)) x)
        sent;
      {
        sent;
        bits = Coding.Bitbuf.Writer.length writer - bits_before;
        aborted = true;
        log_ratio = s;
      }
  | Some block ->
      (* 4. |P'| = 1 + Poisson(lambda). Without the min(1, .) cap,
         lambda = sum_{x'} 2^s nu(x') = 2^s exactly, because the product
         prior nu sums to 1 over the product universe. The cap can only
         shave mass where nu(x') > 2^-s, so lambda = 2^min(s, log2 u) is
         an exact value in the typical regime and a slight overestimate
         (hence a cost upper bound) in degenerate ones. A Monte-Carlo
         estimate is hopeless here — the summand is lognormal with
         enormous log-variance for many copies — which is why the closed
         form is used. *)
      ignore mc_samples;
      let log2_lambda = Float.min log2_u (float_of_int s) in
      let rank_width =
        if log2_lambda > 20. then
          (* |P'| ~ Poisson(2^log2_lambda) concentrates tightly; the
             width is its log2, no sampling needed (and 2^log2_lambda
             may vastly exceed the float/int range) *)
          int_of_float (Float.ceil log2_lambda)
        else
          Coding.Intcode.fixed_width
            (1 + poisson rng (Float.pow 2. log2_lambda))
      in
      Coding.Intcode.write_gamma writer block;
      Coding.Intcode.write_signed_gamma writer s;
      (* rank payload: content is irrelevant to the cost simulation *)
      for _ = 1 to rank_width do
        Coding.Bitbuf.Writer.add_bit writer false
      done;
      {
        sent;
        bits = Coding.Bitbuf.Writer.length writer - bits_before;
        aborted = false;
        log_ratio = s;
      }
