(** The Lemma-7 one-round sampling protocol ("point sampling").

    The speaker knows the true next-message law [eta]; everyone knows
    the observer prior [nu] and shares public randomness. The speaker
    rejection-samples a point under [eta] from the public stream and
    transmits (i) the block index of the accepted point, Elias-gamma;
    (ii) the rounded log-ratio [s = ceil(log2 (eta(x)/nu(x)))], signed
    gamma (possibly negative, cf. footnote 4); (iii) the rank of the
    point inside [P'] — the block's points under the scaled prior
    [2^s nu] — fixed-width, since every receiver reconstructs [P']
    itself. Expected cost: [D(eta||nu) + O(log D + log 1/eps)].

    If no acceptance occurs within [max_blocks] blocks (probability
    about [e^-max_blocks] — the [eps]), the speaker writes the sample
    verbatim: agreement is then perfect and [eps] shows up only in the
    cost, the variant convenient for experiments. *)

type result = {
  sent : int;  (** the speaker's sample, distributed per [eta] *)
  received : int;  (** what the observers decoded *)
  bits : int;
  aborted : bool;  (** fallback path taken *)
  block : int;  (** block index written (0 on abort) *)
  log_ratio : int;  (** the value [s] written (0 on abort) *)
}

val default_max_blocks : float -> int
(** Block budget for a failure budget [eps]. *)

val transmit :
  rng:Prob.Rng.t ->
  eta:float array ->
  nu:float array ->
  ?eps:float ->
  ?max_blocks:int ->
  Coding.Bitbuf.Writer.t ->
  result
(** One round. [rng] must be a fresh shared stream for this round (use
    {!Prob.Rng.split} on the public generator; give the decoder a
    {!Prob.Rng.copy}). Requires [nu > 0] wherever [eta > 0].
    @raise Invalid_argument on length mismatch or domination failure. *)

val decode :
  rng:Prob.Rng.t ->
  nu:float array ->
  u:int ->
  max_blocks:int ->
  Coding.Bitbuf.Reader.t ->
  int
(** What the non-speaking players run: replay the public stream, read
    the three fields, reconstruct [P'], return the symbol. Must be given
    an equal-state copy of the round's [rng]. *)

val cost_model : divergence:float -> eps:float -> float
(** The Lemma-7 shape [D + log2(D+2) + log2(1/eps)] that measurements
    are tabulated against. *)
