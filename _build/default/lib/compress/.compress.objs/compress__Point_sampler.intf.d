lib/compress/point_sampler.mli: Coding Prob
