lib/compress/point_sampler.ml: Array Coding Float List Prob
