lib/compress/factored_sampler.mli: Coding Prob
