lib/compress/observer.mli: Prob Proto
