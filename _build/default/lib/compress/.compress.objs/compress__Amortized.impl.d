lib/compress/amortized.ml: Array Blackboard Coding Factored_sampler Float Hashtbl List Observer Option Point_sampler Prob Proto
