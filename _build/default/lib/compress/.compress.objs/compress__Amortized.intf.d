lib/compress/amortized.mli: Prob Proto
