lib/compress/oneshot.mli: Prob Proto
