lib/compress/factored_sampler.ml: Array Coding Float Point_sampler Prob Stdlib
