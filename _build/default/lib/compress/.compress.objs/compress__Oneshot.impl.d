lib/compress/oneshot.ml: Array Coding Exact Factored_sampler List Observer Prob Proto
