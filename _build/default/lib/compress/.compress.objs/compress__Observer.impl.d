lib/compress/observer.ml: Array Exact List Prob Proto
