(** Quickstart: build a protocol, run it, and measure everything the
    paper talks about — communication, transcript entropy, external and
    conditional information cost.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  let k = 6 in
  Printf.printf "=== Sequential AND_%d in the broadcast model ===\n\n" k;

  (* The protocol: players write their bit in order, halting at the
     first zero (Section 6 of the paper). *)
  let tree = Protocols.And_protocols.sequential k in
  Printf.printf "worst-case communication CC(Pi) = %d bits\n"
    (Proto.Tree.communication_cost tree);

  (* Run it operationally on a concrete input, on a real blackboard. *)
  let inputs = [| 1; 1; 1; 0; 1; 1 |] in
  let board = Blackboard.Board.create ~k in
  let output = Protocols.And_protocols.run_sequential board inputs in
  Printf.printf "on input %s: output %d, %d bits written\n"
    (String.concat "" (Array.to_list (Array.map string_of_int inputs)))
    output
    (Blackboard.Board.total_bits board);
  Format.printf "%a@." Blackboard.Board.pp board;

  (* The same protocol as an exact semantic object: transcript law,
     error, information costs under the paper's hard distribution. *)
  let mu = Protocols.Hard_dist.mu_and ~k in
  let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
  let err =
    Proto.Semantics.worst_case_error tree ~f:Protocols.Hard_dist.and_fn
      (Proto.Semantics.all_bit_inputs k)
  in
  Printf.printf "\nworst-case error (exact rational): %s\n"
    (Exact.Rational.to_string err);
  Printf.printf "external information cost  IC_mu(Pi)  = %.4f bits\n"
    (Proto.Information.external_ic tree mu);
  Printf.printf "conditional information    CIC_mu(Pi) = %.4f bits\n"
    (Proto.Information.conditional_ic tree mu_aux);
  Printf.printf "transcript entropy         H(T)       = %.4f bits\n"
    (Proto.Information.transcript_entropy tree mu);
  Printf.printf "log2(k) for reference                 = %.4f bits\n"
    (Float.log2 (float_of_int k));
  Printf.printf
    "\nThe gap CC = %d vs IC = O(log k) is the Section-6 compression gap.\n"
    (Proto.Tree.communication_cost tree)
