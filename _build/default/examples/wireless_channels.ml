(** Example: single-hop wireless spectrum coordination.

    The paper notes the broadcast model "can be viewed as an abstract
    model of single-hop wireless networks". Here [k] radios each sense
    which of [n] channels are free at their location; a channel is
    usable for the whole cell only if it is free at {e every} radio.
    Deciding whether such a channel exists is exactly the complement of
    set disjointness on the free-channel sets, so the radios run the
    Section-5 protocol over their (low-bandwidth, shared) control
    channel.

    Run with: [dune exec examples/wireless_channels.exe] *)

let () =
  let n = 2048 (* channels *) and k = 24 (* radios *) in
  let rng = Prob.Rng.of_int_seed 77 in
  Printf.printf "=== %d radios, %d channels: find a cell-wide free channel ===\n\n" k n;

  (* Interference map: each channel is busy at a few random radios;
     a handful of channels are free everywhere. *)
  let make_scenario ~free_everywhere =
    let busy_at = Array.init k (fun _ -> Array.make n false) in
    for c = 0 to n - 1 do
      let jammers = 1 + Prob.Rng.int rng 3 in
      for _ = 1 to jammers do
        busy_at.(Prob.Rng.int rng k).(c) <- true
      done
    done;
    List.iter
      (fun c ->
        for r = 0 to k - 1 do
          busy_at.(r).(c) <- false
        done)
      free_everywhere;
    (* each radio's set of free channels *)
    Protocols.Disj_common.make ~n
      (Array.map (Array.map not) busy_at)
  in

  let run name inst =
    let run = Protocols.Disj_batched.solve inst in
    let r = run.Protocols.Disj_batched.result in
    let usable = Protocols.Disj_common.intersection inst in
    Printf.printf "%-28s: %-14s  %6d bits  %2d cycles  (truth: %s)\n" name
      (if r.Protocols.Disj_common.answer then "no free channel"
       else "channel exists")
      r.Protocols.Disj_common.bits r.Protocols.Disj_common.cycles
      (match usable with
      | [] -> "none"
      | cs ->
          Printf.sprintf "%d usable, e.g. #%d" (List.length cs) (List.hd cs));
    assert (r.Protocols.Disj_common.answer = (usable = []))
  in

  run "dense interference" (make_scenario ~free_everywhere:[]);
  run "3 quiet channels" (make_scenario ~free_everywhere:[ 100; 1000; 2000 ]);
  run "1 quiet channel" (make_scenario ~free_everywhere:[ 512 ]);

  (* compare against shipping every radio's full sensing bitmap *)
  Printf.printf
    "\nShipping raw sensing bitmaps would cost n*k = %d bits; the batched\n"
    (n * k);
  Printf.printf
    "protocol certifies the answer in O(n log k + k) — and when a quiet\n";
  Printf.printf
    "channel exists, a full pass-cycle detects it after O(k) bits.\n"
