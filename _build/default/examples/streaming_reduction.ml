(** Example: from broadcast communication to streaming memory — the
    classical reduction the paper's introduction points to (Alon,
    Matias & Szegedy).

    A one-pass streaming algorithm using [S] bits of memory yields a
    [k]-party broadcast protocol: the stream is split among the players,
    player 1 runs the algorithm on its part and writes the memory state
    on the blackboard, player 2 resumes from that state, and so on — a
    total of [(k-1) * S] bits. Deciding whether the maximum frequency
    [F_inf] of a stream of [k] sets reaches [k] is exactly set
    disjointness, so the paper's [Omega(n log k + k)] bound forces
    [S >= Omega((n log k) / k)] for exact one-pass [F_inf].

    This example runs the reduction for real: an exact [F_inf] streaming
    algorithm (a counter table — essentially memory-optimal for the
    exact problem) is serialized through the blackboard with the
    library's own codecs, and the induced protocol is checked against
    ground truth and tabulated against the lower bound.

    Run with: [dune exec examples/streaming_reduction.exe] *)

(* A one-pass streaming algorithm with serializable state. *)
type 'state algorithm = {
  name : string;
  init : n:int -> k:int -> 'state;
  update : 'state -> int -> unit;  (** consume one stream element *)
  frequency_reaches : 'state -> int -> bool;
      (** does some element have frequency >= the threshold? *)
  serialize : 'state -> Coding.Bitbuf.Writer.t;
  deserialize : n:int -> k:int -> Coding.Bitbuf.Reader.t -> 'state;
}

(* Exact F_inf: a full table of per-element counters, each in
   [0..k] stored in ceil(log2 (k+1)) bits — n log k memory, which is
   what the lower bound says cannot be substantially beaten. *)
let counter_table : int array algorithm =
  {
    name = "exact counter table";
    init = (fun ~n ~k -> ignore k; Array.make n 0);
    update = (fun st e -> st.(e) <- st.(e) + 1);
    frequency_reaches = (fun st t -> Array.exists (fun c -> c >= t) st);
    serialize =
      (fun st ->
        let w = Coding.Bitbuf.Writer.create () in
        Array.iter (fun c -> Coding.Intcode.write_gamma0 w c) st;
        w);
    deserialize =
      (fun ~n ~k:_ r ->
        Array.init n (fun _ -> Coding.Intcode.read_gamma0 r));
  }

(* The induced broadcast protocol: split the stream by player, relay
   the serialized state on the blackboard. *)
let induced_protocol algo (inst : Protocols.Disj_common.instance) =
  let k = Protocols.Disj_common.k_of inst in
  let n = inst.Protocols.Disj_common.n in
  let board = Blackboard.Board.create ~k in
  let state = ref (algo.init ~n ~k) in
  for player = 0 to k - 1 do
    (* player resumes from the board (except player 0) *)
    if player > 0 then begin
      match Blackboard.Board.last_write board with
      | None -> assert false
      | Some wr ->
          state :=
            algo.deserialize ~n ~k (Blackboard.Board.reader_of_write wr)
    end;
    (* stream this player's elements *)
    Array.iteri
      (fun e present -> if present then algo.update !state e)
      inst.Protocols.Disj_common.sets.(player);
    (* post the state for the next player (the last player posts a
       single answer bit instead) *)
    if player < k - 1 then
      Blackboard.Board.post board ~player ~label:"state" (algo.serialize !state)
    else begin
      let w = Coding.Bitbuf.Writer.create () in
      Coding.Bitbuf.Writer.add_bit w (algo.frequency_reaches !state k);
      Blackboard.Board.post board ~player ~label:"answer" w
    end
  done;
  let non_disjoint = algo.frequency_reaches !state k in
  (not non_disjoint, Blackboard.Board.total_bits board)

let () =
  Printf.printf
    "=== Streaming memory lower bounds from broadcast communication ===\n\n";
  Printf.printf
    "Reduction: one-pass S-bit streaming algorithm for exact F_inf\n";
  Printf.printf
    "  => (k-1)*S + 1 bits of broadcast communication for DISJ_{n,k}\n";
  Printf.printf
    "  => S >= (n log2 k + k - 1) / (k - 1) by the paper's lower bound.\n\n";
  let algo = counter_table in
  Printf.printf "%8s %4s | %12s %14s | %10s %8s\n" "n" "k" "comm (bits)"
    "S = state bits" "S bound" "correct";
  List.iter
    (fun (n, k) ->
      let rng = Prob.Rng.of_int_seed ((n * 5) + k) in
      let inst =
        if k mod 2 = 0 then
          Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k
        else Protocols.Disj_common.random_intersecting rng ~n ~k ~witnesses:1
      in
      let truth = Protocols.Disj_common.disjoint inst in
      let answer, bits = induced_protocol algo inst in
      let state_bits = bits / (k - 1) in
      let bound =
        ((float_of_int n *. Float.log2 (float_of_int k)) +. float_of_int k)
        /. float_of_int (k - 1)
      in
      Printf.printf "%8d %4d | %12d %14d | %10.0f %8b\n" n k bits state_bits
        (Float.ceil bound) (answer = truth))
    [ (256, 4); (256, 8); (1024, 8); (1024, 16); (4096, 16); (4096, 64) ];
  Printf.printf
    "\nThe '%s' algorithm's relayed state costs about n bits per hop\n"
    algo.name;
  Printf.printf
    "(gamma-coded counters, mostly zero/one), comfortably above the\n";
  Printf.printf
    "per-hop floor (n log2 k + k)/(k-1) that the DISJ bound imposes —\n";
  Printf.printf
    "no exact one-pass F_inf algorithm can relay asymptotically less.\n"
