(** Example: set disjointness at scale — the Section-5 protocol against
    the baselines on a realistic workload.

    Scenario: [k] servers each hold a set of object ids (a shard of a
    distributed store); an auditor wants to know whether some object is
    replicated on {e every} server (i.e., whether the shards' sets
    intersect). This is exactly multi-party set disjointness over the
    id universe.

    Run with: [dune exec examples/disjointness_scaling.exe] *)

let run_one ~n ~k ~seed =
  let rng = Prob.Rng.of_int_seed seed in
  let inst = Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k in
  let batched = (Protocols.Disj_batched.solve inst).Protocols.Disj_batched.result in
  let naive = Protocols.Disj_naive.solve inst in
  let trivial = Protocols.Disj_trivial.solve inst in
  (batched, naive, trivial)

let () =
  Printf.printf
    "=== Auditing %s across k servers: is any object on all of them? ===\n\n"
    "replicated objects";
  Printf.printf "%8s %6s | %10s %10s %10s | %s\n" "objects" "k" "batched"
    "naive" "trivial" "winner";
  List.iter
    (fun (n, k) ->
      let b, nv, tv = run_one ~n ~k ~seed:((n * 17) + k) in
      let open Protocols.Disj_common in
      let winner =
        List.sort compare
          [ (b.bits, "batched"); (nv.bits, "naive"); (tv.bits, "trivial") ]
        |> List.hd |> snd
      in
      Printf.printf "%8d %6d | %10d %10d %10d | %s\n" n k b.bits nv.bits
        tv.bits winner)
    [
      (512, 8); (512, 64);
      (4096, 8); (4096, 64);
      (32768, 8); (32768, 64); (32768, 512);
    ];
  Printf.printf
    "\nThe batched protocol (Theorem 2) pays ~log2(k) bits per object id\n";
  Printf.printf
    "instead of the naive log2(n): at n = 32768, k = 8 that is 3 bits vs 15.\n";

  (* Show the witness-finding side: a non-disjoint instance. *)
  let rng = Prob.Rng.of_int_seed 1 in
  let inst =
    Protocols.Disj_common.random_intersecting rng ~n:1000 ~k:16 ~witnesses:2
  in
  let r = (Protocols.Disj_batched.solve inst).Protocols.Disj_batched.result in
  Printf.printf
    "\nNon-disjoint instance (n=1000, k=16, 2 planted witnesses):\n";
  Printf.printf "protocol says disjoint = %b in %d bits over %d cycles;\n"
    r.Protocols.Disj_common.answer r.Protocols.Disj_common.bits
    r.Protocols.Disj_common.cycles;
  Printf.printf "ground-truth replicated objects: %s\n"
    (String.concat ", "
       (List.map string_of_int (Protocols.Disj_common.intersection inst)))
