(** Example: interactive compression, end to end.

    Walks through one round of the Lemma-7 point-sampling protocol with
    a small universe so every step is visible (the behavioural analogue
    of the paper's Figure 1), then compresses many parallel copies of a
    protocol and shows the per-copy cost marching down to the external
    information cost (Theorem 3).

    Run with: [dune exec examples/compression_demo.exe] *)

let () =
  Printf.printf "=== One round of the Lemma-7 sampling protocol ===\n\n";
  (* Speaker's true next-message law eta vs the observers' prior nu. *)
  let eta = [| 0.70; 0.10; 0.15; 0.05 |] in
  let nu = [| 0.25; 0.25; 0.25; 0.25 |] in
  let d =
    Array.to_list eta
    |> List.mapi (fun i p ->
           if p > 0. then p *. Float.log2 (p /. nu.(i)) else 0.)
    |> List.fold_left ( +. ) 0.
  in
  Printf.printf "eta = [%s], nu = uniform, D(eta||nu) = %.3f bits\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.2f") eta)))
    d;
  let rng = Prob.Rng.of_int_seed 2015 in
  let round = Prob.Rng.split rng in
  let decoder_rng = Prob.Rng.copy round in
  let w = Coding.Bitbuf.Writer.create () in
  let res = Compress.Point_sampler.transmit ~rng:round ~eta ~nu ~eps:0.01 w in
  Printf.printf "speaker selected symbol %d (block %d, log-ratio s = %d)\n"
    res.Compress.Point_sampler.sent res.Compress.Point_sampler.block
    res.Compress.Point_sampler.log_ratio;
  Printf.printf "bits on the board: %s  (%d bits)\n"
    (Coding.Bitbuf.Writer.to_string w)
    res.Compress.Point_sampler.bits;
  let decoded =
    Compress.Point_sampler.decode ~rng:decoder_rng ~nu ~u:4
      ~max_blocks:(Compress.Point_sampler.default_max_blocks 0.01)
      (Coding.Bitbuf.Reader.of_writer w)
  in
  Printf.printf "observers decoded symbol %d — %s\n\n" decoded
    (if decoded = res.Compress.Point_sampler.sent then "agreement"
     else "DISAGREEMENT");

  Printf.printf "=== Theorem 3: amortized compression of AND_4 ===\n\n";
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  let cc = Proto.Tree.communication_cost tree in
  Printf.printf "protocol: sequential AND_%d; CC = %d bits, IC = %.3f bits\n\n"
    k cc ic;
  Printf.printf "%8s %14s %12s\n" "copies" "per-copy bits" "vs IC";
  List.iter
    (fun copies ->
      let run, _ =
        Compress.Amortized.compress_random ~seed:7 ~tree ~mu ~copies ()
      in
      Printf.printf "%8d %14.2f %+12.2f\n" copies
        run.Compress.Amortized.per_copy_bits
        (run.Compress.Amortized.per_copy_bits -. ic))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "\nOne copy costs far more than the protocol itself (%d bits) — the\n" cc;
  Printf.printf
    "Section-6 gap says one-shot compression cannot work. Amortized, the\n";
  Printf.printf "overhead is paid once per round, and per-copy cost -> IC.\n"
