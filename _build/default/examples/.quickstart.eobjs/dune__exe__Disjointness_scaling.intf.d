examples/disjointness_scaling.mli:
