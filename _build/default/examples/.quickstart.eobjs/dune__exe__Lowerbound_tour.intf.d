examples/lowerbound_tour.mli:
