examples/compression_demo.mli:
