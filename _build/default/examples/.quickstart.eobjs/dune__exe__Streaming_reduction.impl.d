examples/streaming_reduction.ml: Array Blackboard Coding Float List Printf Prob Protocols
