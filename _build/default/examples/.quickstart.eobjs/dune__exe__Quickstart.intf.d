examples/quickstart.mli:
