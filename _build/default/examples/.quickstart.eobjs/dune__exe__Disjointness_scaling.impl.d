examples/disjointness_scaling.ml: List Printf Prob Protocols String
