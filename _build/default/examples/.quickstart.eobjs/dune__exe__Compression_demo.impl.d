examples/compression_demo.ml: Array Coding Compress Float List Printf Prob Proto Protocols String
