examples/lowerbound_tour.ml: Array Exact Float List Lowerbound Printf Proto Protocols String
