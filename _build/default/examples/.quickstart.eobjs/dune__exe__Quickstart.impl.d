examples/quickstart.ml: Array Blackboard Exact Float Format Printf Proto Protocols String
