examples/streaming_reduction.mli:
