examples/wireless_channels.ml: Array List Printf Prob Protocols
