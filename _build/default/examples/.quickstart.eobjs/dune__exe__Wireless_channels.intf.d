examples/wireless_channels.mli:
