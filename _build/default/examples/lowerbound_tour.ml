(** Example: the Section-2 story, step by step.

    The paper's high-level overview says: any protocol that computes
    [AND_k] with small error must, on most transcripts, "point to" a
    player whose input is probably 0 — and since that player's identity
    is worth [log k] bits, the protocol must reveal [Omega(log k)] bits
    of information. This example walks a concrete protocol through every
    step of that argument with exact numbers.

    Run with: [dune exec examples/lowerbound_tour.exe] *)

let () =
  let k = 6 in
  let noise = Exact.Rational.of_ints 1 50 in
  let tree = Protocols.And_protocols.noisy_sequential ~k ~noise in
  Printf.printf
    "=== The lower-bound machinery on noisy sequential AND_%d (2%% noise) ===\n\n"
    k;

  (* Step 1: the hard distribution. *)
  Printf.printf "Step 1 — the hard distribution mu (Section 4.1):\n";
  Printf.printf
    "  a uniformly random player Z gets 0; everyone else gets 0 w.p. 1/k.\n";
  Printf.printf "  Pr[exactly two zeros] = %s ~ %.3f (constant in k)\n\n"
    (Exact.Rational.to_string (Protocols.Hard_dist.slice_mass ~k ~c:2))
    (Exact.Rational.to_float (Protocols.Hard_dist.slice_mass ~k ~c:2));

  (* Step 2: good transcripts. *)
  let rep = Lowerbound.Transcripts.analyze tree ~k ~c_constant:4. in
  Printf.printf "Step 2 — classify transcripts by their behaviour on two-zero inputs:\n";
  Printf.printf "  pi2(B1) (wrong output)            = %.4f\n" rep.Lowerbound.Transcripts.mass_b1;
  Printf.printf "  pi2(B0) (don't prefer two zeros)  = %.4f\n" rep.Lowerbound.Transcripts.mass_b0;
  Printf.printf "  pi2(L)  (good)                    = %.4f\n" rep.Lowerbound.Transcripts.mass_l;
  Printf.printf "  pi2(L') (also don't like 3 zeros) = %.4f\n\n" rep.Lowerbound.Transcripts.mass_l';

  (* Step 3: pointing. *)
  Printf.printf "Step 3 — every good transcript points at a zero-holder (Lemma 5):\n";
  let good =
    List.filter (fun e -> e.Lowerbound.Transcripts.in_l')
      rep.Lowerbound.Transcripts.entries
  in
  List.iteri
    (fun i e ->
      if i < 5 then
        Printf.printf "  %-28s  max alpha = %-8s posterior Pr[X_i=0] = %.3f\n"
          (Proto.Tree.transcript_to_string e.Lowerbound.Transcripts.transcript)
          (if e.Lowerbound.Transcripts.max_alpha = infinity then "inf"
           else Printf.sprintf "%.1f" e.Lowerbound.Transcripts.max_alpha)
          e.Lowerbound.Transcripts.posterior_best)
    good;
  Printf.printf "  (prior was only 1/k = %.3f — the observer is 'very surprised')\n\n"
    (1. /. float_of_int k);

  (* Step 4: surprise is worth log k bits. *)
  Printf.printf "Step 4 — eq. (3)-(4): a posterior of p from a prior of 1/k is worth\n";
  let p = 0.9 in
  let exact, middle, crude = Lowerbound.Bounds.eq4_chain ~p ~k in
  Printf.printf
    "  D(posterior || prior) = %.4f  >=  p lg k - H(p) = %.4f  >=  p lg k - 1 = %.4f\n\n"
    exact middle crude;

  (* Step 5: sum over players (Lemma 2) and compare with the protocol's CIC. *)
  let mu_aux = Protocols.Hard_dist.mu_and_with_aux ~k in
  let cic = Proto.Information.conditional_ic tree mu_aux in
  let rhs, per = Lowerbound.Bounds.lemma2_rhs tree mu_aux ~k in
  Printf.printf "Step 5 — Lemma 2: I(T;X|Z) >= sum_i E D(posterior_i || prior_i):\n";
  Printf.printf "  CIC = I(T;X|Z) = %.4f bits\n" cic;
  Printf.printf "  sum of per-player divergences = %.4f bits\n" rhs;
  Printf.printf "  per player: [%s]\n" (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") per)));
  Printf.printf "  log2 k = %.4f — the Omega(log k) of Theorem 1\n\n"
    (Float.log2 (float_of_int k));

  (* Step 6: direct sum lifts it to DISJ. *)
  Printf.printf "Step 6 — Lemma 1 (direct sum) lifts AND to DISJ: on the sequential\n";
  let n = 2 and k' = 3 in
  let disj_tree = Protocols.Disj_trees.sequential ~n ~k:k' in
  let total, per = Lowerbound.Direct_sum.direct_sum_check ~disj_tree ~n ~k:k' in
  Printf.printf "  DISJ_{%d,%d} protocol: CIC = %.4f; embedded per-coordinate ANDs\n"
    n k' total;
  Printf.printf "  contribute [%s] — summing to %.4f. Hence CIC(DISJ) >= n * CIC(AND),\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") per)))
    (Array.fold_left ( +. ) 0. per);
  Printf.printf "  and with Lemma 6's Omega(k), CC(DISJ_{n,k}) = Omega(n log k + k).\n"
