(** E9 — the Section-4.1 machinery, run exactly: good-transcript masses
    (Lemma 5), the alpha-sum inequality (eq. 6), the pointing property,
    Lemma-2 superadditivity, the eq.(4) chain, and the Lemma-1
    direct-sum embedding. *)

let run () =
  Exp_util.heading "E9a"
    "Lemma 5: good-transcript masses and pointing (noisy sequential AND)";
  let noise = Exact.Rational.of_ints 1 50 in
  let c_constant = 4. in
  let rows =
    List.map
      (fun k ->
        let tree = Protocols.And_protocols.noisy_sequential ~k ~noise in
        let rep = Lowerbound.Transcripts.analyze tree ~k ~c_constant in
        let minmax = rep.Lowerbound.Transcripts.min_max_alpha_on_l' in
        Exp_util.
          [
            I k;
            F2 rep.Lowerbound.Transcripts.mass_b1;
            F2 rep.Lowerbound.Transcripts.mass_b0;
            F2 rep.Lowerbound.Transcripts.mass_l;
            F2 rep.Lowerbound.Transcripts.mass_l';
            (if minmax = infinity then S "inf" else F2 minmax);
            (if minmax = infinity then S "inf"
             else F2 (minmax /. float_of_int k));
          ])
      [ 3; 4; 5; 6; 7; 8 ]
  in
  Exp_util.table
    ~header:
      [ "k"; "pi2(B1)"; "pi2(B0)"; "pi2(L)"; "pi2(L')";
        "min max_i alpha"; "alpha/k" ]
    rows;
  Exp_util.note "protocol error rate per player: %.2f; C = %.0f"
    (Exact.Rational.to_float noise) c_constant;
  Exp_util.note
    "Expected (Lemma 5): pi2(L') = Omega(1) and every L' transcript points at a";
  Exp_util.note "player with alpha = Omega(k) — the alpha/k column is bounded below.";

  Exp_util.heading "E9b" "eq. (6): alpha sums on good transcripts (k = 6)";
  let k = 6 in
  let tree = Protocols.And_protocols.noisy_sequential ~k ~noise in
  let rep = Lowerbound.Transcripts.analyze tree ~k ~c_constant in
  let good =
    List.filter
      (fun e -> e.Lowerbound.Transcripts.in_l')
      rep.Lowerbound.Transcripts.entries
  in
  let finite_sums =
    List.filter_map
      (fun e ->
        let s = e.Lowerbound.Transcripts.alpha_sum in
        if s = infinity then None else Some s)
      good
  in
  let bound = Float.sqrt c_constant /. 2. *. float_of_int k in
  Exp_util.table
    ~header:[ "quantity"; "value" ]
    Exp_util.
      [
        [ S "|L'| transcripts"; I (List.length good) ];
        [ S "with infinite alpha-sum"; I (List.length good - List.length finite_sums) ];
        [ S "min finite alpha-sum";
          (match finite_sums with
          | [] -> S "-"
          | _ -> F2 (List.fold_left Float.min infinity finite_sums)) ];
        [ S "eq.(6) bound sqrt(C)/2 * k"; F2 bound ];
      ];
  Exp_util.note
    "Expected: every L' transcript has alpha-sum >= sqrt(C)/2 * k (eq. 6).";

  Exp_util.heading "E9c" "Lemma 2 superadditivity and the eq.(4) chain";
  let rows =
    List.map
      (fun k ->
        let tree = Protocols.And_protocols.noisy_sequential ~k ~noise in
        let mu = Protocols.Hard_dist.mu_and_with_aux ~k in
        let cic = Proto.Information.conditional_ic tree mu in
        let rhs, _ = Lowerbound.Bounds.lemma2_rhs tree mu ~k in
        Exp_util.[ I k; F cic; F rhs; B (cic +. 1e-9 >= rhs) ])
      [ 3; 4; 5; 6 ]
  in
  Exp_util.table
    ~header:[ "k"; "I(T;X|Z)"; "sum_i E D(post_i||prior_i)"; "holds" ]
    rows;
  let rows =
    List.map
      (fun (p, k) ->
        let exact, middle, crude = Lowerbound.Bounds.eq4_chain ~p ~k in
        Exp_util.[ F2 p; I k; F exact; F middle; F crude ])
      [ (0.5, 16); (0.9, 64); (0.99, 1024) ]
  in
  Exp_util.table
    ~header:[ "p"; "k"; "exact D"; "p lg k - H(p)"; "p lg k - 1" ]
    rows;

  Exp_util.heading "E9d" "Lemma 1: direct-sum embedding on a DISJ protocol";
  let rows =
    List.map
      (fun (n, k) ->
        let disj_tree = Protocols.Disj_trees.sequential ~n ~k in
        let total, per = Lowerbound.Direct_sum.direct_sum_check ~disj_tree ~n ~k in
        let sum = Array.fold_left ( +. ) 0. per in
        Exp_util.
          [
            I n;
            I k;
            F total;
            F sum;
            S
              (String.concat " "
                 (Array.to_list (Array.map (Printf.sprintf "%.3f") per)));
            B (sum <= total +. 1e-6);
          ])
      [ (1, 3); (2, 2); (2, 3); (3, 2); (2, 4) ]
  in
  Exp_util.table
    ~header:
      [ "n"; "k"; "CIC(DISJ)"; "sum_j CIC(embed_j)"; "per-coordinate"; "holds" ]
    rows;
  Exp_util.note
    "Expected: sum over coordinates of the embedded AND protocols' CIC never";
  Exp_util.note
    "exceeds the DISJ protocol's CIC — the additive decomposition behind Cor. 1."
