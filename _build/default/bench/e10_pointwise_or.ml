(** E10 — pointwise-OR (the related-work problem of
    Phillips-Verbin-Zhang, discussed in the paper's introduction):
    [Omega(n log k)] lower bound by symmetrization; we give the
    matching-shape upper bound with the Section-5 batching idea and
    measure it against the trivial [nk]-bit baseline.

    Cost is tabulated against [t log2 k + k] where [t] is the number of
    1-coordinates of the output — only those must ever be announced. *)

let run () =
  Exp_util.heading "E10"
    "Pointwise-OR: batched announcement vs trivial broadcast";
  let rows =
    List.map
      (fun (n, k, owners) ->
        (* each coordinate receives [owners] random 1s (owners = 0
           leaves the coordinate silent) *)
        let rng = Prob.Rng.of_int_seed ((n * 3) + k + owners) in
        let sets = Array.init k (fun _ -> Array.make n false) in
        let t = ref 0 in
        for j = 0 to n - 1 do
          if owners > 0 then begin
            incr t;
            for _ = 1 to owners do
              sets.(Prob.Rng.int rng k).(j) <- true
            done
          end
        done;
        let inst = Protocols.Disj_common.make ~n sets in
        let r = Protocols.Pointwise_or.solve inst in
        let trivial = Protocols.Pointwise_or.solve_trivial inst in
        assert (r.Protocols.Pointwise_or.output
                = Protocols.Pointwise_or.reference inst);
        let model = Protocols.Pointwise_or.cost_model ~ones:!t ~k in
        Exp_util.
          [
            I n;
            I k;
            I !t;
            I r.Protocols.Pointwise_or.bits;
            I trivial.Protocols.Pointwise_or.bits;
            F2 (float_of_int r.Protocols.Pointwise_or.bits /. model);
          ])
      [
        (4096, 16, 1); (4096, 16, 3); (4096, 64, 1);
        (16384, 16, 1); (16384, 64, 1); (16384, 256, 1);
        (16384, 16, 0);
      ]
  in
  Exp_util.table
    ~header:[ "n"; "k"; "ones t"; "batched"; "trivial nk"; "batched/(t lg k + k)" ]
    rows;
  Exp_util.note
    "Expected: measured/(t log k + k) is an O(1) constant — matching the";
  Exp_util.note
    "Omega(n log k) symmetrization lower bound's shape when t = Theta(n);";
  Exp_util.note "the all-zero row (t = 0) certifies in O(k) bits."
