(** E6 — Theorem 3: amortized compression approaches the external
    information cost.

    We run [n] parallel copies of the sequential [AND_k] protocol through
    the Lemma-7 compressor (one joint transmission per round, product
    universe), and report the measured per-copy bits against the exact
    [IC_mu(Pi)]. The series must decrease toward IC as the number of
    copies grows — while a single copy costs {e more} than just running
    the protocol (the E5 gap in action: one-shot compression does not
    pay). *)

let series ~tree ~mu ~ic ~copies_list ~seeds =
  List.map
    (fun copies ->
      let per =
        List.init seeds (fun s ->
            let run, _ =
              Compress.Amortized.compress_random ~seed:(s + 1) ~tree ~mu ~copies ()
            in
            assert run.Compress.Amortized.agreed;
            run.Compress.Amortized.per_copy_bits)
      in
      let avg = Exp_util.mean per in
      Exp_util.
        [ I copies; F2 avg; F2 ic; F2 (avg -. ic); F2 (avg /. ic) ])
    copies_list

let run () =
  Exp_util.heading "E6"
    "Theorem 3: per-copy cost of compressed parallel copies tends to IC";
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  Exp_util.note "protocol: sequential AND_%d, CC = %d bits, exact IC = %.4f bits" k
    (Proto.Tree.communication_cost tree)
    ic;
  Exp_util.table
    ~header:[ "copies n"; "per-copy bits"; "IC"; "overhead"; "ratio" ]
    (series ~tree ~mu ~ic ~copies_list:[ 1; 2; 4; 8; 12; 16 ] ~seeds:8);
  Exp_util.note
    "Expected: overhead ~ r * O(log(n IC) + log 1/eps) / n -> 0; note copies=1 costs";
  Exp_util.note
    "far more than CC — one-shot compression cannot work (E5), amortized does.";

  Exp_util.heading "E6b" "Theorem 3 with a randomized protocol (noisy AND_3)";
  let k = 3 in
  let tree =
    Protocols.And_protocols.noisy_sequential ~k ~noise:(Exact.Rational.of_ints 1 10)
  in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  Exp_util.note "exact IC = %.4f bits (below the deterministic variant: noise hides input)" ic;
  Exp_util.table
    ~header:[ "copies n"; "per-copy bits"; "IC"; "overhead"; "ratio" ]
    (series ~tree ~mu ~ic ~copies_list:[ 1; 2; 4; 8; 16 ] ~seeds:8);

  Exp_util.heading "E6c"
    "Theorem 3 at scale: the analytic (factored) simulator up to 512 copies";
  let k = 4 in
  let tree = Protocols.And_protocols.sequential k in
  let mu = Protocols.Hard_dist.mu_and ~k in
  let ic = Proto.Information.external_ic tree mu in
  (* cross-check the two simulators where both run *)
  let literal_16 =
    Exp_util.mean
      (List.init 8 (fun s ->
           let run, _ =
             Compress.Amortized.compress_random ~seed:(s + 1) ~tree ~mu
               ~copies:16 ()
           in
           run.Compress.Amortized.per_copy_bits))
  in
  let factored copies seeds =
    Exp_util.mean
      (List.init seeds (fun s ->
           let run, _ =
             Compress.Amortized.compress_random_factored ~seed:(s + 1) ~tree
               ~mu ~copies ()
           in
           run.Compress.Amortized.per_copy_bits))
  in
  Exp_util.note
    "cross-check at 16 copies: literal %.2f vs factored %.2f bits/copy"
    literal_16 (factored 16 8);
  let rows =
    List.map
      (fun copies ->
        let avg = factored copies 6 in
        Exp_util.[ I copies; F2 avg; F2 ic; F2 (avg -. ic) ])
      [ 16; 32; 64; 128; 256; 512 ]
  in
  Exp_util.table
    ~header:[ "copies n"; "per-copy bits (analytic)"; "IC"; "overhead" ]
    rows;
  Exp_util.note
    "Expected: the overhead column vanishes like r * O(log n)/n — the full";
  Exp_util.note "Theorem-3 limit, beyond the reach of the literal point process."
