(** E13 — the classical one-way baseline the introduction frames the
    paper against: for noiseless transmission there is {e no} gap
    between single-shot and amortized compression.

    - Huffman (single-shot): one copy of [X] in at most [H(X) + 1] bits.
    - Shannon/arithmetic (amortized): blocks of [B] iid copies at
      [H(X) + O(1/B)] bits per copy.

    Contrast with E12: in the interactive broadcast setting the
    single-shot cost can exceed the information by [Omega(k / log k)],
    while amortization (Theorem 3) still reaches it. *)

let sources =
  [
    ("Bernoulli 1/8 (bit)", [| 0.125; 0.875 |]);
    ("geometric-ish 8", Array.init 8 (fun i -> Float.pow 0.5 (float_of_int (i + 1))));
    ("uniform 5", Array.make 5 0.2);
    ( "zipf 16",
      let raw = Array.init 16 (fun i -> 1. /. float_of_int (i + 1)) in
      let z = Array.fold_left ( +. ) 0. raw in
      Array.map (fun x -> x /. z) raw );
  ]

let normalize probs =
  let z = Array.fold_left ( +. ) 0. probs in
  Array.map (fun p -> p /. z) probs

let entropy probs =
  Array.fold_left
    (fun acc p -> acc -. Infotheory.Fn.xlog2x p)
    0. probs

(* amortized: encode blocks of B iid symbols with one arithmetic stream,
   average per-symbol cost over many blocks *)
let amortized_per_symbol ~probs ~block ~blocks ~seed =
  let freqs = Coding.Arith.freqs_of_probs probs in
  let rng = Prob.Rng.of_int_seed seed in
  let dist =
    Prob.Dist.of_weighted (Array.to_list (Array.mapi (fun i p -> (i, p)) probs))
  in
  let sampler = Prob.Sampler.create dist in
  let total = ref 0 in
  for _ = 1 to blocks do
    let w = Coding.Bitbuf.Writer.create () in
    let enc = Coding.Arith.Encoder.create w in
    let symbols = Array.init block (fun _ -> Prob.Sampler.draw sampler rng) in
    Array.iter (fun s -> Coding.Arith.Encoder.encode enc ~freqs s) symbols;
    Coding.Arith.Encoder.finish enc;
    (* verify decodability *)
    let dec = Coding.Arith.Decoder.create (Coding.Bitbuf.Reader.of_writer w) in
    Array.iter
      (fun s -> assert (Coding.Arith.Decoder.decode dec ~freqs = s))
      symbols;
    total := !total + Coding.Bitbuf.Writer.length w
  done;
  float_of_int !total /. float_of_int (blocks * block)

let run () =
  Exp_util.heading "E13"
    "Classical one-way transmission: single-shot ~ amortized (no gap)";
  let rows =
    List.map
      (fun (name, probs) ->
        let probs = normalize probs in
        let h = entropy probs in
        let huff = Coding.Huffman.build probs in
        let single = Coding.Huffman.expected_length huff probs in
        let amort1 = amortized_per_symbol ~probs ~block:1 ~blocks:400 ~seed:3 in
        let amort64 = amortized_per_symbol ~probs ~block:64 ~blocks:60 ~seed:3 in
        Exp_util.
          [
            S name;
            F2 h;
            F2 single;
            F2 (single -. h);
            F2 amort1;
            F2 amort64;
          ])
      sources
  in
  Exp_util.table
    ~header:
      [ "source"; "H(X)"; "Huffman E[len]"; "redundancy";
        "arith B=1"; "arith B=64" ]
    rows;
  Exp_util.note
    "Expected (Huffman 1952 / Shannon 1948, as quoted in the introduction):";
  Exp_util.note
    "single-shot cost within [H, H+1); amortized per-symbol -> H as the block";
  Exp_util.note
    "grows. One-way transmission has no single-shot gap — the broadcast model";
  Exp_util.note "does (E5, E12); amortization restores it (E6, Theorem 3)."
