(** E12 — why one-shot compression fails in the broadcast model: the
    flush tax, measured.

    Both variants entropy-code the transcript of sequential [AND_k]
    against the observer prior. The {e interactive} variant (a legal
    protocol) must flush each message so the others can read it before
    the protocol continues — O(1) bits per message, so [Theta(k)] on the
    all-ones input even though the whole transcript carries only
    [O(log k)] bits of information. The {e omniscient} variant (one
    stream, not a legal protocol) reaches [H(T) + O(1)]. Their ratio is
    the Section-6 [Omega(k / log k)] gap made operational. *)

let run () =
  Exp_util.heading "E12"
    "One-shot compression: interactive flush tax vs omniscient entropy coding";
  let rows =
    List.map
      (fun k ->
        let tree = Protocols.And_protocols.sequential k in
        (* full-support product analogue of the hard distribution: each
           player holds 0 with probability 1/k independently (the hard
           mu itself excludes 1^k from its support, which would make the
           all-ones column about coding zero-probability events instead
           of about the flush tax) *)
        let mu =
          Prob.Dist_exact.iid k
            (Prob.Dist_exact.of_weighted
               [ (0, Exact.Rational.of_ints 1 k);
                 (1, Exact.Rational.of_ints (k - 1) k) ])
        in
        let h = Proto.Information.transcript_entropy tree mu in
        let ic = Proto.Information.external_ic tree mu in
        let inter =
          Compress.Oneshot.expected_bits_exact ~single_stream:false ~tree ~mu
        in
        let omni =
          Compress.Oneshot.expected_bits_exact ~single_stream:true ~tree ~mu
        in
        (* worst case: the all-ones input, where all k players speak *)
        let ones = Array.make k 1 in
        let inter_ones =
          (Compress.Oneshot.interactive ~seed:2 ~tree ~mu ~inputs:ones)
            .Compress.Oneshot.bits
        in
        Exp_util.
          [
            I k;
            I k (* plain CC *);
            F2 ic;
            F2 h;
            F2 omni;
            F2 inter;
            I inter_ones;
          ])
      [ 2; 4; 6; 8; 10; 12 ]
  in
  Exp_util.table
    ~header:
      [ "k"; "CC"; "IC"; "H(T)"; "omniscient E[bits]"; "interactive E[bits]";
        "interactive on 1^k" ]
    rows;
  Exp_util.note
    "Expected: omniscient ~ H(T) + O(1) = O(log k) — but it needs a single";
  Exp_util.note
    "encoder who knows all messages, which the broadcast model forbids.";
  Exp_util.note
    "The legal interactive variant pays ~3 bits *per message* (the flush),";
  Exp_util.note
    "so on 1^k it costs ~3k: worse than the uncompressed protocol. Fractional";
  Exp_util.note
    "bits cannot be pooled across speakers — the mechanism behind the";
  Exp_util.note "Omega(k / log k) one-shot gap of Section 6."
