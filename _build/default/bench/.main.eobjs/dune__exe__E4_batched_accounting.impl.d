bench/e4_batched_accounting.ml: Exp_util List Prob Protocols
