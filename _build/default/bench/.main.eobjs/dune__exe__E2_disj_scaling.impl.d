bench/e2_disj_scaling.ml: Exp_util List Prob Protocols
