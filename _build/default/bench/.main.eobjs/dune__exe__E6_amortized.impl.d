bench/e6_amortized.ml: Compress Exact Exp_util List Proto Protocols
