bench/e12_oneshot.ml: Array Compress Exact Exp_util List Prob Proto Protocols
