bench/e13_oneway_baseline.ml: Array Coding Exp_util Float Infotheory List Prob
