bench/micro.ml: Analyze Array Bechamel Benchmark Coding Compress Exact Exp_util Hashtbl Instance List Measure Printf Prob Proto Protocols Staged String Test Time Toolkit
