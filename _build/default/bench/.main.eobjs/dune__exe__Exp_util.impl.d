bench/exp_util.ml: Float List Printf String
