bench/e11_internal_external.ml: Exact Exp_util Float List Prob Proto Protocols
