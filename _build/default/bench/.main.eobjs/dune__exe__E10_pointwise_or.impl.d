bench/e10_pointwise_or.ml: Array Exp_util List Prob Protocols
