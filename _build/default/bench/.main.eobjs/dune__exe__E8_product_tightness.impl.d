bench/e8_product_tightness.ml: Compress Exact Exp_util List Prob Proto Protocols
