bench/e5_compression_gap.ml: Exp_util Float List Prob Proto Protocols
