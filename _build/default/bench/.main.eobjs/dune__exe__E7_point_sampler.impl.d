bench/e7_point_sampler.ml: Array Coding Compress Exp_util Float List Prob
