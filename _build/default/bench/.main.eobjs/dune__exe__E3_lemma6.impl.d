bench/e3_lemma6.ml: Exp_util List Lowerbound
