bench/e9_machinery.ml: Array Exact Exp_util Float List Lowerbound Printf Proto Protocols String
