bench/e1_and_information.ml: Exact Exp_util Float List Proto Protocols
