bench/main.mli:
