(** E8 — Theorem 4: for product input distributions the amortized bound
    is tight — [lim D(T(f^n,eps))/n = IC_mu(f, eps)].

    The upper-bound direction is Theorem 3 (measured: the compressed
    per-copy cost converges to IC from above). The lower-bound direction
    is information-theoretic: the per-copy cost of {e any} protocol for
    [n] copies is at least [IC_{mu^n}/n >= IC_mu] when [mu] is a
    product distribution (the direct-sum step with an empty auxiliary
    variable). We verify the information side exactly — the IC of the
    parallel protocol on [n] copies equals [n] times the single-copy IC
    — and show the measured sandwich. *)

let run () =
  Exp_util.heading "E8"
    "Theorem 4: tight amortized compression for product distributions";
  let k = 3 in
  let tree = Protocols.And_protocols.sequential k in
  (* product distribution: iid fair bits per player *)
  let mu =
    Prob.Dist_exact.iid k
      (Prob.Dist_exact.of_weighted
         [ (0, Exact.Rational.of_ints 1 2); (1, Exact.Rational.of_ints 1 2) ])
  in
  let ic = Proto.Information.external_ic tree mu in
  Exp_util.note "mu = uniform product over {0,1}^%d; exact IC_mu = %.4f bits" k ic;

  (* Exact additivity: IC of the 2-copy composed protocol under mu^2. *)
  let two_copy_tree = Protocols.And_protocols.two_copy_sequential k in
  let mu2 =
    Prob.Dist_exact.iid k
      (Prob.Dist_exact.uniform [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ])
  in
  let ic2 = Proto.Information.external_ic two_copy_tree mu2 in
  Exp_util.table
    ~header:[ "quantity"; "value"; "expected" ]
    Exp_util.
      [
        [ S "IC_mu(Pi)"; F ic; S "-" ];
        [ S "IC_{mu^2}(Pi^2)"; F ic2; F (2. *. ic) ];
        [ S "IC_{mu^2}/2"; F (ic2 /. 2.); F ic ];
      ];
  Exp_util.note
    "Expected: exact additivity IC(Pi^n) = n IC(Pi) on product distributions —";
  Exp_util.note "the information lower bound for the amortized cost.";

  (* Measured upper side: compression toward IC. *)
  let rows =
    List.map
      (fun copies ->
        let per =
          List.init 8 (fun s ->
              let run, _ =
                Compress.Amortized.compress_random ~seed:(s + 3) ~tree ~mu
                  ~copies ()
              in
              run.Compress.Amortized.per_copy_bits)
        in
        let avg = Exp_util.mean per in
        Exp_util.[ I copies; F2 avg; F2 ic; F2 ((avg -. ic) /. ic) ])
      [ 1; 2; 4; 8; 16 ]
  in
  Exp_util.heading "E8b" "Measured per-copy cost (upper side of the sandwich)";
  Exp_util.table
    ~header:[ "copies n"; "per-copy bits"; "IC (lower bound)"; "rel. overhead" ]
    rows;
  Exp_util.note
    "Expected: per-copy >= IC always (lower side, exact), and -> IC as n grows."
