(** E4 — Theorem 2: correctness and per-cycle accounting of the
    Section-5 protocol.

    One run is traced cycle by cycle (uncovered coordinates, bits spent,
    contributors) to exhibit the geometric decay of the uncovered set —
    the mechanism behind the [O(n log k + k)] total. A second table
    confirms zero errors over exhaustive small instances plus randomized
    large ones, with the measured constant against [n log2 k + k]. *)

let run () =
  Exp_util.heading "E4" "Theorem 2: per-cycle trace of the batched protocol";
  let n = 16384 and k = 32 in
  let rng = Prob.Rng.of_int_seed 99 in
  let inst = Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k in
  let run = Protocols.Disj_batched.solve inst in
  let rows =
    List.map
      (fun t ->
        Exp_util.
          [
            I t.Protocols.Disj_batched.cycle;
            S (if t.Protocols.Disj_batched.phase_high then "batch" else "final");
            I t.Protocols.Disj_batched.z_start;
            I t.Protocols.Disj_batched.contributions;
            I t.Protocols.Disj_batched.bits_in_cycle;
            F2
              (float_of_int t.Protocols.Disj_batched.bits_in_cycle
              /. float_of_int (max 1 t.Protocols.Disj_batched.z_start));
          ])
      run.Protocols.Disj_batched.trace
  in
  Exp_util.table
    ~header:[ "cycle"; "phase"; "uncovered z"; "contributors"; "bits"; "bits/z" ]
    rows;
  Exp_util.note "answer = %b (instance is disjoint); total bits = %d; n lg k + k = %.0f."
    run.Protocols.Disj_batched.result.Protocols.Disj_common.answer
    run.Protocols.Disj_batched.result.Protocols.Disj_common.bits
    (Protocols.Disj_batched.cost_model ~n ~k);
  Exp_util.note
    "Expected: z decays geometrically (factor ~ (1 - c/k) per cycle is the worst case;";
  Exp_util.note
    "here every coordinate has a zero so a few cycles suffice), amortized bits/coordinate ~ log(ek).";

  Exp_util.heading "E4b" "Theorem 2: correctness sweep (0 errors expected)";
  let exhaustive_errors =
    List.fold_left
      (fun acc (n, k) ->
        List.fold_left
          (fun acc inst ->
            let truth = Protocols.Disj_common.disjoint inst in
            let r = (Protocols.Disj_batched.solve inst).Protocols.Disj_batched.result in
            if r.Protocols.Disj_common.answer <> truth then acc + 1 else acc)
          acc
          (Protocols.Disj_common.enumerate ~n ~k))
      0
      [ (2, 2); (3, 2); (2, 3); (3, 3); (1, 4) ]
  in
  let rng = Prob.Rng.of_int_seed 123 in
  let random_errors = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let n = 1 + Prob.Rng.int rng 500 and k = 1 + Prob.Rng.int rng 20 in
    let inst =
      match Prob.Rng.int rng 3 with
      | 0 -> Protocols.Disj_common.random_dense rng ~n ~k ~density:0.8
      | 1 -> Protocols.Disj_common.random_disjoint_single_zero rng ~n ~k
      | _ -> Protocols.Disj_common.random_intersecting rng ~n ~k ~witnesses:1
    in
    let truth = Protocols.Disj_common.disjoint inst in
    let r = (Protocols.Disj_batched.solve inst).Protocols.Disj_batched.result in
    if r.Protocols.Disj_common.answer <> truth then incr random_errors
  done;
  Exp_util.table
    ~header:[ "check"; "instances"; "errors" ]
    Exp_util.
      [
        [ S "exhaustive (nk <= 9)"; I (16 + 64 + 64 + 512 + 16); I exhaustive_errors ];
        [ S "randomized (n<=500, k<=20)"; I trials; I !random_errors ];
      ]
