(** E11 — internal vs external information (two players).

    Section 6 compresses to {e external} information and remarks that
    (a) for two players external information is bounded below by
    internal information — so the paper's amortized result does not
    improve on Braverman-Rao for [k = 2] — and (b) the internal notion
    does not extend to the broadcast model beyond two players. This
    experiment computes both quantities exactly for [k = 2] protocols
    over several distributions: [internal <= external] throughout, with
    equality exactly on product distributions. *)

module D = Prob.Dist_exact
module R = Exact.Rational

let distributions =
  [
    ("product uniform", D.iid 2 (D.uniform [ 0; 1 ]), true);
    ( "product biased 1/4",
      D.iid 2 (D.of_weighted [ (0, R.of_ints 1 4); (1, R.of_ints 3 4) ]),
      true );
    ("hard mu (Sec 4.1)", Protocols.Hard_dist.mu_and ~k:2, false);
    ( "correlated 80/20",
      D.of_weighted
        [
          ([| 0; 0 |], R.of_ints 2 5);
          ([| 1; 1 |], R.of_ints 2 5);
          ([| 0; 1 |], R.of_ints 1 10);
          ([| 1; 0 |], R.of_ints 1 10);
        ],
      false );
    ("perfectly correlated", D.uniform [ [| 0; 0 |]; [| 1; 1 |] ], false);
  ]

let protocols =
  [
    ("sequential AND_2", Protocols.And_protocols.sequential 2);
    ("broadcast-all", Protocols.And_protocols.broadcast_all 2);
    ( "noisy 1/10",
      Protocols.And_protocols.noisy_sequential ~k:2 ~noise:(R.of_ints 1 10) );
  ]

let run () =
  Exp_util.heading "E11"
    "Two players: internal vs external information cost (Section 6 remark)";
  let rows =
    List.concat_map
      (fun (pname, tree) ->
        List.map
          (fun (dname, mu, is_product) ->
            let internal = Proto.Information.internal_ic_two_party tree mu in
            let external_ = Proto.Information.external_ic tree mu in
            Exp_util.
              [
                S pname;
                S dname;
                F internal;
                F external_;
                B (internal <= external_ +. 1e-9);
                B
                  ((not is_product)
                  || Float.abs (internal -. external_) < 1e-9);
              ])
          distributions)
      protocols
  in
  Exp_util.table
    ~header:
      [ "protocol"; "distribution"; "internal"; "external"; "int<=ext";
        "eq on product" ]
    rows;
  Exp_util.note
    "Expected: internal <= external always; equality iff the distribution is a";
  Exp_util.note
    "product (so compressing to external, as the paper does for general k,";
  Exp_util.note "matches Braverman-Rao only on product distributions at k = 2)."
