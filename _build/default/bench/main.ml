(** Experiment harness: regenerates every quantitative claim of
    Braverman & Oshman (PODC 2015) as a printed table (see DESIGN.md's
    experiment index and EXPERIMENTS.md for paper-vs-measured), then
    runs the bechamel micro-benchmarks.

    Usage: [main.exe] runs everything; [main.exe E2 E7] runs a subset;
    [main.exe --list] lists experiment ids. *)

let experiments =
  [
    ("E1", E1_and_information.run);
    ("E2", E2_disj_scaling.run);
    ("E2-ABL", E2_disj_scaling.run_ablations);
    ("E3", E3_lemma6.run);
    ("E4", E4_batched_accounting.run);
    ("E5", E5_compression_gap.run);
    ("E6", E6_amortized.run);
    ("E7", E7_point_sampler.run);
    ("E8", E8_product_tightness.run);
    ("E9", E9_machinery.run);
    ("E10", E10_pointwise_or.run);
    ("E11", E11_internal_external.run);
    ("E12", E12_oneshot.run);
    ("E13", E13_oneway_baseline.run);
    ("MICRO", Micro.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--list" ] -> List.iter (fun (id, _) -> print_endline id) experiments
  | [] ->
      Printf.printf
        "Reproduction: On Information Complexity in the Broadcast Model \
         (Braverman & Oshman, PODC 2015)\n";
      List.iter (fun (_, run) -> run ()) experiments
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt (String.uppercase_ascii id) experiments with
          | Some run -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" id;
              exit 1)
        ids
