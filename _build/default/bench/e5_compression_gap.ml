(** E5 — Section 6: the [Omega(k / log k)] gap between external
    information and communication.

    The sequential [AND_k] protocol has external information cost
    [O(log k)] under every distribution (its transcript is determined by
    the index of the first zero), yet its worst-case communication is
    [k] bits, and by Lemma 6 {e any} correct protocol communicates
    [Omega(k)]. We tabulate the exact IC (under the hard distribution
    and under the uniform one), the transcript entropy, the
    communication cost, and the gap ratio. *)

let run () =
  Exp_util.heading "E5"
    "Compression gap: IC(AND_k) = O(log k) vs CC(AND_k) = Omega(k) (Section 6)";
  let rows =
    List.map
      (fun k ->
        let tree = Protocols.And_protocols.sequential k in
        let mu_hard = Protocols.Hard_dist.mu_and ~k in
        let mu_unif =
          Prob.Dist_exact.uniform (Proto.Semantics.all_bit_inputs k)
        in
        let ic_hard = Proto.Information.external_ic tree mu_hard in
        let ic_unif = Proto.Information.external_ic tree mu_unif in
        let h = Proto.Information.transcript_entropy tree mu_hard in
        let cc = Proto.Tree.communication_cost tree in
        let bound = Float.log2 (float_of_int k) +. 1. in
        Exp_util.
          [
            I k;
            F ic_hard;
            F ic_unif;
            F h;
            F2 bound;
            I cc;
            F2 (float_of_int cc /. ic_hard);
          ])
      [ 2; 3; 4; 6; 8; 10; 12 ]
  in
  Exp_util.table
    ~header:
      [ "k"; "IC (hard mu)"; "IC (uniform)"; "H(T)"; "lg k + 1"; "CC"; "CC/IC" ]
    rows;
  Exp_util.note
    "Expected: IC <= H(T) <= log2(k+1) + O(1) under every mu, CC = k, so the gap";
  Exp_util.note
    "CC/IC grows like k / log k — single-shot compression to external IC is impossible";
  Exp_util.note
    "for k > 2 (contrast with the two-party result of Barak et al. [3])."
