(** Tests for finite distributions (float and exact-rational) and the
    alias-method sampler. *)

module D = Prob.Dist
module De = Prob.Dist_exact
module R = Exact.Rational
open Test_util

let t_normalization () =
  let d = D.of_weighted [ (0, 2.); (1, 6.) ] in
  check_float ~msg:"p0" 0.25 (D.prob_of d 0);
  check_float ~msg:"p1" 0.75 (D.prob_of d 1)

let t_dedupe () =
  let d = D.of_weighted [ (0, 1.); (0, 1.); (1, 2.) ] in
  check_float ~msg:"merged mass" 0.5 (D.prob_of d 0);
  Alcotest.(check int) "support size" 2 (D.size d)

let t_zero_weights_dropped () =
  let d = D.of_weighted [ (0, 1.); (1, 0.); (2, -3.) ] in
  Alcotest.(check int) "only positive kept" 1 (D.size d)

let t_empty_rejected () =
  Alcotest.check_raises "no mass"
    (Invalid_argument "Dist.of_weighted: no positive mass") (fun () ->
      ignore (D.of_weighted [ (0, 0.) ]))

let t_return () =
  let d = D.return 42 in
  Alcotest.(check bool) "point" true (D.is_point d);
  check_float ~msg:"mass" 1. (D.prob_of d 42)

let t_map_merges () =
  let d = D.uniform [ 0; 1; 2; 3 ] in
  let e = D.map (fun x -> x mod 2) d in
  check_float ~msg:"even" 0.5 (D.prob_of e 0);
  Alcotest.(check int) "two values" 2 (D.size e)

let t_bind () =
  (* two-stage experiment: flip, then biased flip *)
  let d =
    D.bind (D.bernoulli 0.5) (fun b ->
        if b then D.bernoulli 0.8 else D.bernoulli 0.2)
  in
  check_float ~msg:"total true" 0.5 (D.prob_of d true)

let t_monad_left_identity () =
  let f x = D.uniform [ x; x + 1 ] in
  let lhs = D.bind (D.return 5) f in
  check_float ~msg:"left identity" 0. (D.total_variation lhs (f 5))

let t_monad_assoc () =
  let m = D.uniform [ 0; 1 ] in
  let f x = D.uniform [ x; x + 1 ] in
  let g x = D.uniform [ x * 2; (x * 2) + 1 ] in
  let lhs = D.bind (D.bind m f) g in
  let rhs = D.bind m (fun x -> D.bind (f x) g) in
  check_float ~msg:"associativity" ~eps:1e-12 0. (D.total_variation lhs rhs)

let t_product () =
  let d = D.product (D.bernoulli 0.5) (D.bernoulli 0.25) in
  check_float ~msg:"(t,t)" 0.125 (D.prob_of d (true, true));
  check_float ~msg:"(f,f)" 0.375 (D.prob_of d (false, false))

let t_iid () =
  let d = D.iid 3 (D.bernoulli 0.5) in
  Alcotest.(check int) "support 8" 8 (D.size d);
  check_float ~msg:"each 1/8" 0.125 (D.prob_of d [| true; false; true |])

let t_condition () =
  let d = D.uniform [ 0; 1; 2; 3; 4; 5 ] in
  match D.condition d (fun x -> x mod 2 = 0) with
  | None -> Alcotest.fail "conditioning should succeed"
  | Some e ->
      check_float ~msg:"p0 given even" (1. /. 3.) (D.prob_of e 0);
      Alcotest.(check (option unit)) "null event" None
        (Option.map ignore (D.condition d (fun x -> x > 10)))

let t_expectation_variance () =
  let d = D.uniform [ 1.; 2.; 3. ] in
  check_float ~msg:"mean" 2. (D.expectation d);
  check_float ~msg:"variance" (2. /. 3.) (D.variance d)

let t_binomial_law () =
  let d = D.binomial 4 0.5 in
  check_float ~msg:"P[X=2]" 0.375 (D.prob_of d 2);
  check_float ~msg:"P[X=0]" 0.0625 (D.prob_of d 0)

let t_exact_weights () =
  let d = De.of_weighted [ (0, R.of_ints 1 3); (1, R.of_ints 2 3) ] in
  check_rational ~msg:"exact p0" (R.of_ints 1 3) (De.prob_of d 0);
  check_rational ~msg:"exact mass" R.one (De.mass d)

let t_exact_iid_mass () =
  (* iid of exact distributions keeps exact total mass 1 *)
  let d = De.iid 4 (De.of_weighted [ (0, R.of_ints 1 7); (1, R.of_ints 6 7) ]) in
  check_rational ~msg:"mass 1" R.one (De.mass d);
  check_rational ~msg:"corner" (R.pow (R.of_ints 1 7) 4)
    (De.prob_of d [| 0; 0; 0; 0 |])

let t_joint_ops () =
  let module J = Prob.Joint.Float in
  let j =
    D.of_weighted [ ((0, 'a'), 0.25); ((0, 'b'), 0.25); ((1, 'a'), 0.5) ]
  in
  check_float ~msg:"marginal fst" 0.5 (D.prob_of (J.marginal_fst j) 0);
  (match J.conditional_snd j 0 with
  | None -> Alcotest.fail "conditional exists"
  | Some c -> check_float ~msg:"P[b|0]" 0.5 (D.prob_of c 'b'));
  Alcotest.(check bool) "not independent" false (J.independent j);
  let indep = D.product (D.bernoulli 0.3) (D.bernoulli 0.7) in
  Alcotest.(check bool) "product independent" true (J.independent indep)

let t_kernel () =
  let module J = Prob.Joint.Float in
  let j =
    J.of_kernel (D.bernoulli 0.5) (fun b ->
        if b then D.return 1 else D.uniform [ 0; 1 ])
  in
  check_float ~msg:"P[(true,1)]" 0.5 (D.prob_of j (true, 1));
  check_float ~msg:"P[(false,0)]" 0.25 (D.prob_of j (false, 0))

let t_sampler_matches_dist () =
  let d = D.of_weighted [ (0, 0.5); (1, 0.3); (2, 0.2) ] in
  let s = Prob.Sampler.create d in
  let rng = Prob.Rng.of_int_seed 77 in
  let emp = Prob.Sampler.empirical s rng 100_000 in
  check_le ~msg:"TV to source" (D.total_variation d emp) 0.01

let t_sampler_point_mass () =
  let s = Prob.Sampler.create (D.return 9) in
  let rng = Prob.Rng.of_int_seed 1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always 9" 9 (Prob.Sampler.draw s rng)
  done

let prop_mass_one =
  qtest "float dist mass is 1" float_dist_gen (fun d ->
      Float.abs (D.mass d -. 1.) < 1e-9)

let prop_exact_mass_one =
  qtest "exact dist mass is exactly 1" exact_dist_gen (fun d ->
      R.equal R.one (De.mass d))

let prop_map_preserves_mass =
  qtest "map preserves mass" float_dist_gen (fun d ->
      Float.abs (D.mass (D.map (fun x -> x mod 3) d) -. 1.) < 1e-9)

let prop_tv_symmetric =
  qtest "TV symmetric" (QCheck.pair float_dist_gen float_dist_gen)
    (fun (a, b) ->
      Float.abs (D.total_variation a b -. D.total_variation b a) < 1e-12)

let prop_tv_triangle =
  qtest "TV triangle inequality"
    (QCheck.triple float_dist_gen float_dist_gen float_dist_gen)
    (fun (a, b, c) ->
      D.total_variation a c
      <= D.total_variation a b +. D.total_variation b c +. 1e-12)

(* --- unsafe-fast monadic ops: must equal the generic ones ---------- *)
(* [map_injective]/[bind_disjoint] skip dedupe and renormalization under
   preconditions the callers prove; on inputs satisfying them the result
   must be identical to [map]/[bind] — same items, same weights, same
   order (downstream float folds are order-sensitive). *)

let exact_alist_equal a b =
  let la = De.to_alist a and lb = De.to_alist b in
  List.length la = List.length lb
  && List.for_all2 (fun (v, w) (v', w') -> v = v' && R.equal w w') la lb

let prop_map_injective_matches_map =
  qtest "map_injective = map for injective f" exact_dist_gen (fun d ->
      exact_alist_equal
        (De.map (fun x -> (x * 7) + 1) d)
        (De.map_injective (fun x -> (x * 7) + 1) d))

let prop_bind_disjoint_matches_bind =
  qtest "bind_disjoint = bind for disjoint continuations" exact_dist_gen
    (fun d ->
      (* tagging by the source value keeps supports pairwise disjoint *)
      let f v = De.uniform [ (v, 0); (v, 1); (v, 2) ] in
      exact_alist_equal (De.bind d f) (De.bind_disjoint d f))

let t_map_injective_keeps_order () =
  let d = De.of_weighted [ (3, R.half); (1, R.of_ints 1 3); (2, R.of_ints 1 6) ] in
  Alcotest.(check (list int)) "support order preserved" [ 30; 10; 20 ]
    (De.support (De.map_injective (fun x -> 10 * x) d))

let suite =
  [
    quick "normalization" t_normalization;
    quick "dedupe" t_dedupe;
    quick "zero weights dropped" t_zero_weights_dropped;
    quick "empty rejected" t_empty_rejected;
    quick "return" t_return;
    quick "map merges" t_map_merges;
    quick "bind" t_bind;
    quick "monad left identity" t_monad_left_identity;
    quick "monad associativity" t_monad_assoc;
    quick "product" t_product;
    quick "iid" t_iid;
    quick "condition" t_condition;
    quick "expectation/variance" t_expectation_variance;
    quick "binomial" t_binomial_law;
    quick "exact weights" t_exact_weights;
    quick "exact iid mass" t_exact_iid_mass;
    quick "joint operations" t_joint_ops;
    quick "kernel construction" t_kernel;
    slow "sampler matches distribution" t_sampler_matches_dist;
    quick "sampler point mass" t_sampler_point_mass;
    prop_mass_one;
    prop_exact_mass_one;
    prop_map_preserves_mass;
    prop_tv_symmetric;
    prop_tv_triangle;
    prop_map_injective_matches_map;
    prop_bind_disjoint_matches_bind;
    quick "map_injective keeps order" t_map_injective_keeps_order;
  ]
