let () =
  Alcotest.run "broadcast-information-complexity"
    [
      ("bigint", Test_bigint.suite);
      ("rational", Test_rational.suite);
      ("rng", Test_rng.suite);
      ("dist", Test_dist.suite);
      ("infotheory", Test_infotheory.suite);
      ("coding", Test_coding.suite);
      ("bitvec", Test_bitvec.suite);
      ("arith", Test_arith.suite);
      ("huffman", Test_huffman.suite);
      ("board", Test_board.suite);
      ("engine", Test_engine.suite);
      ("netsim", Test_netsim.suite);
      ("proto", Test_proto.suite);
      ("hard-dist", Test_hard_dist.suite);
      ("disjointness", Test_disj.suite);
      ("pointwise-or", Test_pointwise_or.suite);
      ("compress", Test_compress.suite);
      ("factored-sampler", Test_factored.suite);
      ("lowerbound", Test_lowerbound.suite);
      ("combinators", Test_combinators.suite);
      ("random-trees", Test_random_trees.suite);
      ("symmetry", Test_symmetry.suite);
      ("compile", Test_compile.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("depgraph", Test_depgraph.suite);
      ("infoflow", Test_infoflow.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
    ]
