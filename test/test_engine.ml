(** Tests for the blackboard state-machine engine, including
    engine-hosted reimplementations checked against the direct
    protocols. *)

module E = Blackboard.Engine
module B = Blackboard.Board
open Test_util

let bit_writer b =
  let w = Coding.Bitbuf.Writer.create () in
  Coding.Bitbuf.Writer.add_bit w b;
  w

(* Sequential AND as an engine protocol: the schedule reads the board
   (stop after a 0 or after k writes), players just write their bit. *)
let engine_sequential_and inputs =
  let k = Array.length inputs in
  let zero = Coding.Bitvec.of_string "0" in
  let schedule board =
    match B.last_write board with
    | Some w when Coding.Bitvec.equal w.B.vec zero -> None
    (* someone wrote 0 *)
    | _ -> if B.write_count board >= k then None else Some (B.write_count board)
  in
  let players =
    Array.map
      (fun bit -> { E.speak = (fun _ -> bit_writer (bit = 1)); observe = (fun _ -> ()) })
      inputs
  in
  let outcome = E.run ~k ~schedule ~players () in
  let answer =
    match B.last_write outcome.E.board with
    | Some w when Coding.Bitvec.equal w.B.vec zero -> 0
    | _ -> 1
  in
  (answer, outcome)

let t_engine_and_matches_direct () =
  List.iter
    (fun inputs ->
      let expected = Protocols.Hard_dist.and_fn inputs in
      let answer, outcome = engine_sequential_and inputs in
      Alcotest.(check int) "answer" expected answer;
      (* bits must match the direct runtime implementation *)
      let board = B.create ~k:(Array.length inputs) in
      let direct = Protocols.And_protocols.run_sequential board inputs in
      Alcotest.(check int) "direct answer" expected direct;
      Alcotest.(check int) "same bits" (B.total_bits board)
        (B.total_bits outcome.E.board))
    (Proto.Semantics.all_bit_inputs 4)

let t_engine_observe_called () =
  let seen = Array.make 3 0 in
  let players =
    Array.init 3 (fun i ->
        {
          E.speak = (fun _ -> bit_writer true);
          observe = (fun _ -> seen.(i) <- seen.(i) + 1);
        })
  in
  let outcome = E.run ~k:3 ~schedule:(E.one_pass ~k:3) ~players () in
  Alcotest.(check int) "three writes" 3 outcome.E.writes;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "player %d observed all" i) 3 c)
    seen

let t_engine_round_robin () =
  let order = ref [] in
  let players =
    Array.init 3 (fun i ->
        {
          E.speak =
            (fun _ ->
              order := i :: !order;
              bit_writer false);
          observe = (fun _ -> ());
        })
  in
  let outcome =
    E.run ~k:3 ~schedule:(E.round_robin_n_writes ~k:3 ~total:7) ~players ()
  in
  Alcotest.(check int) "seven writes" 7 outcome.E.writes;
  Alcotest.(check (list int)) "cyclic order" [ 0; 1; 2; 0; 1; 2; 0 ]
    (List.rev !order)

let t_engine_runaway_protection () =
  let players =
    [| { E.speak = (fun _ -> bit_writer true); observe = (fun _ -> ()) } |]
  in
  Alcotest.check_raises "runaway"
    (Invalid_argument "Engine.run: max_writes exceeded") (fun () ->
      ignore (E.run ~k:1 ~schedule:(fun _ -> Some 0) ~players ~max_writes:10 ()))

let t_engine_bad_speaker () =
  let players =
    [| { E.speak = (fun _ -> bit_writer true); observe = (fun _ -> ()) } |]
  in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Engine.run: bad speaker index") (fun () ->
      ignore (E.run ~k:1 ~schedule:(fun _ -> Some 5) ~players ()))

let t_engine_size_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Engine.run: player array size mismatch") (fun () ->
      ignore (E.run ~k:2 ~schedule:(fun _ -> None) ~players:[||] ()))

(* The same three conditions as typed data: run_result reports what run
   raises, so drivers can turn schedule bugs into clean diagnostics. *)
let t_engine_run_result_errors () =
  let players =
    [| { E.speak = (fun _ -> bit_writer true); observe = (fun _ -> ()) } |]
  in
  (match E.run_result ~k:1 ~schedule:(fun _ -> Some 0) ~players ~max_writes:10 () with
  | Error (E.Runaway { max_writes }) ->
      Alcotest.(check int) "runaway budget" 10 max_writes
  | _ -> Alcotest.fail "expected Runaway");
  (match E.run_result ~k:1 ~schedule:(fun _ -> Some 5) ~players () with
  | Error (E.Bad_speaker { index; k; at_write }) ->
      Alcotest.(check int) "index" 5 index;
      Alcotest.(check int) "k" 1 k;
      Alcotest.(check int) "at first write" 0 at_write
  | _ -> Alcotest.fail "expected Bad_speaker");
  (match E.run_result ~k:2 ~schedule:(fun _ -> None) ~players:[||] () with
  | Error (E.Size_mismatch { expected; got }) ->
      Alcotest.(check int) "expected" 2 expected;
      Alcotest.(check int) "got" 0 got
  | _ -> Alcotest.fail "expected Size_mismatch");
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("diagnostic non-empty: " ^ E.error_message e)
        true
        (String.length (E.error_message e) > 0))
    [
      E.Runaway { max_writes = 10 };
      E.Bad_speaker { index = 5; k = 1; at_write = 0 };
      E.Size_mismatch { expected = 2; got = 0 };
    ]

let t_engine_run_result_ok_matches_run () =
  let mk () =
    Array.init 3 (fun _ ->
        { E.speak = (fun _ -> bit_writer true); observe = (fun _ -> ()) })
  in
  let a = E.run ~k:3 ~schedule:(E.one_pass ~k:3) ~players:(mk ()) () in
  match E.run_result ~k:3 ~schedule:(E.one_pass ~k:3) ~players:(mk ()) () with
  | Ok b ->
      Alcotest.(check int) "same writes" a.E.writes b.E.writes;
      Alcotest.(check bool) "same board" true (B.equal a.E.board b.E.board)
  | Error e -> Alcotest.fail (E.error_message e)

(* Naive DISJ reimplemented on the engine: schedule-driven one pass,
   each player writes its new zeros; everyone tracks covered via
   observe. Checked against the direct implementation. *)
let engine_naive_disj inst =
  let open Protocols.Disj_common in
  let k = k_of inst in
  let n = inst.n in
  (* per-player covered views, updated only through observe *)
  let covered = Array.init k (fun _ -> Array.make n false) in
  let decode_into cov board =
    match B.last_write board with
    | None -> ()
    | Some wr ->
        let r = B.reader_of_write wr in
        if Coding.Bitbuf.Reader.read_bit r then begin
          let count = Coding.Intcode.read_gamma r in
          for _ = 1 to count do
            let c = Coding.Intcode.read_fixed r ~bound:n in
            cov.(c) <- true
          done
        end
  in
  let players =
    Array.init k (fun j ->
        {
          E.speak =
            (fun _ ->
              let zeros =
                List.filter
                  (fun c -> (not inst.sets.(j).(c)) && not covered.(j).(c))
                  (List.init n (fun c -> c))
              in
              let w = Coding.Bitbuf.Writer.create () in
              (match zeros with
              | [] -> Coding.Bitbuf.Writer.add_bit w false
              | _ ->
                  Coding.Bitbuf.Writer.add_bit w true;
                  Coding.Intcode.write_gamma w (List.length zeros);
                  List.iter
                    (fun c -> Coding.Intcode.write_fixed w ~bound:n c)
                    zeros);
              w);
          observe = (fun board -> decode_into covered.(j) board);
        })
  in
  let outcome = E.run ~k ~schedule:(E.one_pass ~k) ~players () in
  let answer = Array.for_all (fun b -> b) covered.(0) in
  (answer, B.total_bits outcome.E.board)

let t_engine_disj_matches_direct () =
  let rng = Prob.Rng.of_int_seed 33 in
  for _ = 1 to 20 do
    let n = 1 + Prob.Rng.int rng 40 and k = 1 + Prob.Rng.int rng 5 in
    let inst = Protocols.Disj_common.random_dense rng ~n ~k ~density:0.6 in
    let answer, bits = engine_naive_disj inst in
    let direct = Protocols.Disj_naive.solve inst in
    Alcotest.(check bool) "same answer" direct.Protocols.Disj_common.answer answer;
    Alcotest.(check int) "same bits" direct.Protocols.Disj_common.bits bits
  done

let suite =
  [
    quick "engine AND matches direct" t_engine_and_matches_direct;
    quick "observe called on every write" t_engine_observe_called;
    quick "round-robin schedule" t_engine_round_robin;
    quick "runaway protection" t_engine_runaway_protection;
    quick "bad speaker rejected" t_engine_bad_speaker;
    quick "player array size checked" t_engine_size_mismatch;
    quick "run_result: typed errors" t_engine_run_result_errors;
    quick "run_result: Ok agrees with run" t_engine_run_result_ok_matches_run;
    quick "engine naive DISJ matches direct" t_engine_disj_matches_direct;
  ]
