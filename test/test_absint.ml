(** Tests for proto-verify: the abstract interpreter ({!Analysis.Absint}),
    the zero-error certifier ({!Analysis.Certify}), the registry
    differential verifier ({!Protocols.Verify_registry}), and the
    {!Analysis.Path} edge cases the diagnostics machinery leans on.

    The refutation tests build deliberately-wrong AND trees and check
    that the returned counterexample is a {e real} falsifying input by
    replaying it through the operational semantics. *)

module Ab = Analysis.Absint
module Cert = Analysis.Certify
module P = Analysis.Path
module Rep = Analysis.Report
module V = Protocols.Verify_registry
module Reg = Protocols.Registry
module T = Proto.Tree
module Sem = Proto.Semantics
module D = Prob.Dist_exact
module J = Obs.Jsonw
open Test_util

let bit_domain = [| 0; 1 |]
let seq k = Protocols.And_protocols.sequential k
let out = T.output
let id b = b

let check_interval ~msg (lo, hi) (iv : Ab.interval) =
  if iv.Ab.lo <> lo || iv.Ab.hi <> hi then
    Alcotest.failf "%s: expected [%d, %d], got %s" msg lo hi
      (Ab.interval_to_string iv)

(* --- Path edge cases ---------------------------------------------- *)

let t_path_root () =
  Alcotest.(check string) "root renders" "root" (P.to_string P.root);
  Alcotest.(check int) "root depth" 0 (P.depth P.root);
  Alcotest.(check (list int)) "root steps" [] (P.to_list P.root)

let t_path_build () =
  let p = P.child (P.child P.root 2) 0 in
  Alcotest.(check string) "nested path" "root/2/0" (P.to_string p);
  Alcotest.(check int) "depth" 2 (P.depth p);
  (* to_list is root-first even though the representation is reversed *)
  Alcotest.(check (list int)) "root-first steps" [ 2; 0 ] (P.to_list p)

let t_path_compare () =
  let p steps = List.fold_left P.child P.root steps in
  Alcotest.(check bool) "root before any child" true
    (P.compare P.root (p [ 0 ]) < 0);
  (* Numeric, not string, order on each step: 2 < 10. *)
  Alcotest.(check bool) "root/2 < root/10" true
    (P.compare (p [ 2 ]) (p [ 10 ]) < 0);
  Alcotest.(check bool) "prefix before extension" true
    (P.compare (p [ 1 ]) (p [ 1; 0 ]) < 0);
  Alcotest.(check int) "equal paths" 0 (P.compare (p [ 3; 1 ]) (p [ 3; 1 ]));
  let sorted =
    List.sort_uniq P.compare [ p [ 10 ]; p [ 2 ]; p [ 2 ]; P.root; p [ 2; 0 ] ]
  in
  Alcotest.(check (list string))
    "sort_uniq is pre-order with dedup"
    [ "root"; "root/2"; "root/2/0"; "root/10" ]
    (List.map P.to_string sorted)

(* --- Absint: cost intervals and the output map -------------------- *)

let t_absint_sequential_and () =
  let s = Ab.analyze ~domain:bit_domain (seq 3) in
  (* x_0 = 0 halts after 1 bit; all-ones costs k = 3. *)
  check_interval ~msg:"AND_3 cost" (1, 3) s.Ab.cost;
  Alcotest.(check int) "struct max = CC" 3 s.Ab.struct_max;
  Alcotest.(check bool) "deterministic" true s.Ab.deterministic;
  Alcotest.(check bool) "not widened" false s.Ab.widened;
  Alcotest.(check int) "no law failures" 0 s.Ab.law_failures;
  Alcotest.(check int) "players inferred" 3 s.Ab.players;
  Alcotest.(check (list string)) "no dead branches" []
    (List.map P.to_string s.Ab.dead);
  (* Halt-at-first-zero has one leaf per prefix plus the all-ones leaf. *)
  Alcotest.(check int) "4 leaves" 4 (List.length s.Ab.leaves);
  (* The rectangles partition the 2^3 input profiles. *)
  Alcotest.(check int) "leaves cover every profile" 8
    (List.fold_left
       (fun acc l -> acc + Ab.rect_profiles l.Ab.rect)
       0 s.Ab.leaves)

let t_absint_dead_branch () =
  (* Constant emit: child 1 is unreachable, so its subtree's bit never
     gets charged and the certified max drops below the structural CC. *)
  let t =
    T.speak_det ~speaker:0
      ~f:(fun _ -> 0)
      [| out 0; T.speak_det ~speaker:1 ~f:id [| out 0; out 1 |] |]
  in
  let s = Ab.analyze ~domain:bit_domain t in
  Alcotest.(check (list string))
    "child 1 proven dead" [ "root/1" ]
    (List.map P.to_string s.Ab.dead);
  check_interval ~msg:"only the first bit reachable" (1, 1) s.Ab.cost;
  Alcotest.(check int) "structural CC still 2" 2 s.Ab.struct_max;
  Alcotest.(check bool) "certified max below CC" true
    (s.Ab.cost.Ab.hi < Proto.Tree.communication_cost t)

let t_absint_input_contradiction () =
  (* Speaker 0 echoes its bit twice. After it says 1 the rectangle pins
     x_0 = 1, so the second node's child 0 contradicts the transcript:
     proven dead, and the output 99 leaf never appears in the map. *)
  let t =
    T.speak_det ~speaker:0 ~f:id
      [| out 0; T.speak_det ~speaker:0 ~f:id [| out 99; out 1 |] |]
  in
  let s = Ab.analyze ~domain:bit_domain t in
  Alcotest.(check (list string))
    "contradictory branch proven dead" [ "root/1/0" ]
    (List.map P.to_string s.Ab.dead);
  check_interval ~msg:"both real paths chargeable" (1, 2) s.Ab.cost;
  Alcotest.(check bool) "still deterministic" true s.Ab.deterministic;
  let outputs = List.map (fun l -> l.Ab.output) s.Ab.leaves in
  Alcotest.(check bool) "no unreachable output in the map" false
    (List.mem 99 outputs);
  Alcotest.(check int) "profiles conserved" 2
    (List.fold_left
       (fun acc l -> acc + Ab.rect_profiles l.Ab.rect)
       0 s.Ab.leaves)

let t_absint_widening () =
  let s = Ab.analyze ~budget:1 ~domain:bit_domain (seq 3) in
  Alcotest.(check bool) "widened" true s.Ab.widened;
  Alcotest.(check bool) "widenings counted" true (s.Ab.widenings > 0);
  Alcotest.(check bool) "widened is never deterministic" false
    s.Ab.deterministic;
  (* Widened bounds stay sound: every real path cost is inside. *)
  Alcotest.(check bool) "hi clamped to structural CC" true
    (s.Ab.cost.Ab.hi <= s.Ab.struct_max);
  List.iter
    (fun cost ->
      Alcotest.(check bool)
        (Printf.sprintf "path cost %d covered" cost)
        true
        (Ab.mem_interval cost s.Ab.cost))
    [ 1; 2; 3 ]

let t_absint_bad_args () =
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Absint.analyze: empty domain") (fun () ->
      ignore (Ab.analyze ~domain:[||] (out 0)));
  Alcotest.check_raises "non-positive budget"
    (Invalid_argument "Absint.analyze: budget must be positive") (fun () ->
      ignore (Ab.analyze ~budget:0 ~domain:bit_domain (out 0)))

(* --- Certify: certificates and counterexamples -------------------- *)

let t_certify_and_correct () =
  let c =
    Cert.certify ~spec:Protocols.Hard_dist.and_fn ~domain:bit_domain (seq 3)
  in
  (match c.Cert.outcome with
  | Cert.Certified -> ()
  | o -> Alcotest.failf "expected certified, got %s" (Cert.outcome_label o));
  Alcotest.(check int) "every profile checked exactly once" 8
    c.Cert.checked_profiles;
  Alcotest.(check int) "exit 0" 0 (Cert.exit_code c.Cert.outcome)

(* Sequential AND_2 with the all-ones leaf deliberately flipped to 0. *)
let wrong_and_tree =
  T.speak_det ~speaker:0 ~f:id
    [| out 0; T.speak_det ~speaker:1 ~f:id [| out 0; out 0 |] |]

let t_certify_and_refuted () =
  let spec = Protocols.Hard_dist.and_fn in
  let c = Cert.certify ~spec ~domain:bit_domain wrong_and_tree in
  match c.Cert.outcome with
  | Cert.Refuted cex ->
      Alcotest.(check int) "exit 1" 1 (Cert.exit_code c.Cert.outcome);
      (* The counterexample must be a real falsifying input: decode it
         and replay it through the operational semantics. *)
      let inputs = Cert.inputs_of_counterexample ~domain:bit_domain cex in
      Alcotest.(check (array int)) "the all-ones profile" [| 1; 1 |] inputs;
      Alcotest.(check int) "spec on it" cex.Cert.expected (spec inputs);
      (match D.support (Sem.output_dist wrong_and_tree inputs) with
      | [ v ] -> Alcotest.(check int) "replayed output" cex.Cert.actual v
      | _ -> Alcotest.fail "wrong tree should still be deterministic");
      Alcotest.(check bool) "it actually falsifies" true
        (cex.Cert.expected <> cex.Cert.actual);
      Alcotest.(check string) "at the flipped leaf" "root/1/1"
        (P.to_string cex.Cert.at_leaf)
  | o -> Alcotest.failf "expected refuted, got %s" (Cert.outcome_label o)

let t_certify_randomized_inconclusive () =
  let t =
    T.chance ~coin:(D.uniform [ 0; 1 ]) [| out 0; out 1 |]
  in
  let c = Cert.certify ~spec:(fun _ -> 0) ~domain:bit_domain t in
  (match c.Cert.outcome with
  | Cert.Inconclusive _ -> ()
  | o -> Alcotest.failf "expected inconclusive, got %s" (Cert.outcome_label o));
  Alcotest.(check int) "exit 3" 3 (Cert.exit_code c.Cert.outcome)

let t_certify_budget_inconclusive () =
  let c =
    Cert.certify ~budget:1 ~spec:Protocols.Hard_dist.and_fn
      ~domain:bit_domain (seq 3)
  in
  match c.Cert.outcome with
  | Cert.Inconclusive _ -> Alcotest.(check bool) "widened" true c.Cert.summary.Ab.widened
  | o -> Alcotest.failf "expected inconclusive, got %s" (Cert.outcome_label o)

(* --- Verify_registry: the differential sweep ---------------------- *)

let t_verify_registry_sweep () =
  let results = V.verify_all () in
  Alcotest.(check bool) "sweep covers the registry" true
    (List.length results >= 12);
  Alcotest.(check int) "whole registry verifies clean" 0 (V.exit_code results);
  List.iter
    (fun r ->
      let name = Reg.name r.V.entry in
      if Rep.has_errors r.V.report then
        Alcotest.failf "%s has verify errors: %s" name
          (Rep.to_string r.V.report);
      Alcotest.(check bool)
        (name ^ ": executed run inside certified interval")
        true
        (Ab.mem_interval r.V.observed_bits r.V.summary.Ab.cost);
      if Reg.has_spec r.V.entry then
        match r.V.outcome with
        | Some Cert.Certified -> ()
        | o -> Alcotest.failf "%s: expected certified, got %s" name
                 (V.outcome_label o))
    results

let t_verify_batched_bound () =
  let entry =
    match Reg.find "disj/batched-tree" with
    | Some e -> e
    | None -> Alcotest.fail "disj/batched-tree not registered"
  in
  let r = V.verify_entry entry in
  Alcotest.(check (option int))
    "certified worst case equals the declared Theorem-2 bound" (Some 6)
    (Some r.V.summary.Ab.cost.Ab.hi);
  Alcotest.(check (option int)) "declared bound" (Some 6)
    (Reg.declared_cost entry)

let t_verify_refutes_wrong_entry () =
  (* Built ad hoc, NOT registered: registration is global state and
     would poison the sweep above. *)
  let entry =
    Reg.entry ~name:"test/wrong-and" ~players:2 ~declared_cost:2
      ~spec:Protocols.Hard_dist.and_fn ~domain:bit_domain
      (lazy wrong_and_tree)
  in
  let r = V.verify_entry entry in
  Alcotest.(check int) "refutation exits 1" 1 (V.exit_code [ r ]);
  Alcotest.(check bool) "verify-spec error" true
    (List.exists
       (fun d -> d.Rep.rule = V.id_spec && d.Rep.severity = Rep.Error)
       (Rep.to_list r.V.report));
  match r.V.outcome with
  | Some (Cert.Refuted cex) ->
      let inputs = Cert.inputs_of_counterexample ~domain:bit_domain cex in
      Alcotest.(check int) "counterexample really falsifies"
        cex.Cert.expected
        (Protocols.Hard_dist.and_fn inputs);
      Alcotest.(check bool) "outputs differ" true
        (cex.Cert.expected <> cex.Cert.actual)
  | o -> Alcotest.failf "expected refuted, got %s" (V.outcome_label o)

let t_verify_flags_wrong_declared () =
  let entry =
    Reg.entry ~name:"test/wrong-bound" ~players:2 ~declared_cost:5
      ~spec:Protocols.Hard_dist.and_fn ~domain:bit_domain (lazy (seq 2))
  in
  let r = V.verify_entry entry in
  Alcotest.(check bool) "verify-declared-bound error" true
    (List.exists
       (fun d -> d.Rep.rule = V.id_declared_bound && d.Rep.severity = Rep.Error)
       (Rep.to_list r.V.report));
  Alcotest.(check int) "exits 1" 1 (V.exit_code [ r ])

(* --- Baseline suppression ----------------------------------------- *)

let t_baseline_parse () =
  let good =
    J.obj
      [
        ("schema", J.String V.baseline_schema);
        ( "suppress",
          J.list
            [
              J.obj
                [
                  ("protocol", J.String "p");
                  ("rule", J.String "verify-spec");
                  ("reason", J.String "extra fields are fine");
                ];
            ] );
      ]
  in
  (match V.baseline_of_json good with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "good baseline rejected: %s" e);
  (match V.baseline_of_json (J.obj [ ("schema", J.String "nope/v0") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match
    V.baseline_of_json
      (J.obj
         [
           ("schema", J.String V.baseline_schema);
           ("suppress", J.list [ J.obj [ ("protocol", J.String "p") ] ]);
         ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "suppress item without rule accepted"

let t_baseline_suppresses () =
  let entry =
    Reg.entry ~name:"test/wrong-bound" ~players:2 ~declared_cost:5
      ~spec:Protocols.Hard_dist.and_fn ~domain:bit_domain (lazy (seq 2))
  in
  let baseline =
    match
      V.baseline_of_json
        (J.obj
           [
             ("schema", J.String V.baseline_schema);
             ( "suppress",
               J.list
                 [
                   J.obj
                     [
                       ("protocol", J.String "*");
                       ("rule", J.String V.id_declared_bound);
                     ];
                 ] );
           ])
    with
    | Ok b -> b
    | Error e -> Alcotest.failf "baseline parse: %s" e
  in
  let r = V.verify_entry ~baseline entry in
  Alcotest.(check int) "one diagnostic suppressed" 1 r.V.suppressed;
  Alcotest.(check bool) "no longer an error" false (Rep.has_errors r.V.report);
  Alcotest.(check int) "stops gating" 0 (V.exit_code [ r ]);
  (* Demoted, not dropped: still visible and annotated. *)
  Alcotest.(check bool) "finding survives as info" true
    (List.exists
       (fun d ->
         d.Rep.rule = V.id_declared_bound
         && d.Rep.severity = Rep.Info
         && String.length d.Rep.message > 0)
       (Rep.to_list r.V.report))

let suite =
  [
    quick "path: root" t_path_root;
    quick "path: build and render" t_path_build;
    quick "path: pre-order compare" t_path_compare;
    quick "absint: sequential AND interval and map" t_absint_sequential_and;
    quick "absint: dead branch drops certified max" t_absint_dead_branch;
    quick "absint: input contradiction proven dead"
      t_absint_input_contradiction;
    quick "absint: widening stays sound" t_absint_widening;
    quick "absint: argument validation" t_absint_bad_args;
    quick "certify: correct AND certified" t_certify_and_correct;
    quick "certify: wrong AND refuted with real input" t_certify_and_refuted;
    quick "certify: randomized tree inconclusive"
      t_certify_randomized_inconclusive;
    quick "certify: budget cut inconclusive" t_certify_budget_inconclusive;
    quick "verify: registry sweep certifies clean" t_verify_registry_sweep;
    quick "verify: batched DISJ matches declared bound" t_verify_batched_bound;
    quick "verify: seeded-wrong entry refuted" t_verify_refutes_wrong_entry;
    quick "verify: wrong declared bound flagged" t_verify_flags_wrong_declared;
    quick "baseline: parse and validation" t_baseline_parse;
    quick "baseline: demotes without dropping" t_baseline_suppresses;
  ]
