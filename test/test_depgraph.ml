(** Slot-dependency analysis ({!Analysis.Depgraph}): read-sets,
    output relevance, wave partitions, certificate withholding, the
    structural soundness bridge to {!Netsim.Hbcheck}, and the
    [redundant-slot] lint rule derived from the read-sets. *)

module Dg = Analysis.Depgraph
module Hb = Netsim.Hbcheck
module T = Proto.Tree
module D = Prob.Dist_exact
module Reg = Protocols.Registry
open Test_util

let bit_domain = [| 0; 1 |]

let cert_of dg =
  {
    Hb.slots = dg.Dg.slots;
    reads = Array.map Array.of_list dg.Dg.reads;
    waves = dg.Dg.waves;
  }

let check_reads ~msg dg expected =
  Alcotest.(check (array (list int)))
    msg expected dg.Dg.reads

(* ---- sequential chain: every slot depends on every earlier one ---- *)

let t_sequential_chain () =
  let dg =
    Dg.analyze ~domain:bit_domain (Protocols.And_protocols.sequential 3)
  in
  Alcotest.(check int) "slots" 3 dg.Dg.slots;
  check_reads ~msg:"chain reads" dg [| []; [ 0 ]; [ 0; 1 ] |];
  Alcotest.(check (array int)) "singleton waves" [| 0; 1; 2 |] dg.Dg.waves;
  Alcotest.(check bool) "certified" true (Dg.certificate dg <> None);
  Alcotest.(check (array (list int)))
    "speakers" [| [ 0 ]; [ 1 ]; [ 2 ] |] dg.Dg.speakers

(* ---- broadcast-all: unconditional fixed speakers, one wave ---- *)

let t_broadcast_one_wave () =
  let dg =
    Dg.analyze ~domain:bit_domain (Protocols.And_protocols.broadcast_all 4)
  in
  Alcotest.(check int) "slots" 4 dg.Dg.slots;
  check_reads ~msg:"no reads" dg [| []; []; []; [] |];
  Alcotest.(check (array int)) "one wave" [| 0 |] dg.Dg.waves;
  Alcotest.(check (array bool))
    "every bit can flip the AND" [| true; true; true; true |]
    dg.Dg.output_relevant

(* ---- proven-dead sibling branches do not create edges ---- *)

(* Child 1 of slot 0 leads to a different speaker at slot 1, which would
   force sequentiality — but under [emit = const 0] that branch is
   proven dead, so the dependency is pruned and both slots share a
   wave. The same tree under [emit = id] keeps both branches live and
   must stay sequential. *)
let pruning_tree emit =
  T.speak ~speaker:0 ~emit
    [|
      T.speak_det ~speaker:1 ~f:(fun b -> b) [| T.output 0; T.output 1 |];
      T.speak_det ~speaker:2 ~f:(fun b -> b) [| T.output 1; T.output 0 |];
    |]

let t_dead_branch_pruned () =
  let dg = Dg.analyze ~domain:bit_domain (pruning_tree (fun _ -> D.return 0)) in
  check_reads ~msg:"pruned" dg [| []; [] |];
  Alcotest.(check (array int)) "one wave" [| 0 |] dg.Dg.waves;
  let dg = Dg.analyze ~domain:bit_domain (pruning_tree D.return) in
  check_reads ~msg:"live divergence" dg [| []; [ 0 ] |];
  Alcotest.(check (array int)) "sequential" [| 0; 1 |] dg.Dg.waves

(* ---- public coins are free and, when equal across branches, do not
   force dependencies; the chain structure still does ---- *)

let t_coin_chain () =
  let tree =
    Proto.Combinators.xor_output_with_coin
      (Protocols.And_protocols.sequential 3)
  in
  let dg = Dg.analyze ~domain:bit_domain tree in
  Alcotest.(check int) "coins cost no slots" 3 dg.Dg.slots;
  Alcotest.(check int) "still fully sequential" 3 (Dg.wave_count dg);
  Alcotest.(check bool) "certified" true (Dg.certificate dg <> None)

(* ---- misbehaving laws withhold the certificate ---- *)

let t_law_failure_no_certificate () =
  let tree =
    T.Speak
      {
        speaker = 0;
        emit = (fun b -> if b = 1 then failwith "boom" else D.return 0);
        children = [| T.output 0; T.output 1 |];
      }
  in
  let dg = Dg.analyze ~domain:bit_domain tree in
  Alcotest.(check bool) "law failures seen" true (dg.Dg.law_failures > 0);
  Alcotest.(check bool) "no certificate" true (Dg.certificate dg = None)

let t_widened_no_certificate () =
  let dg =
    Dg.analyze ~budget:2 ~domain:bit_domain
      (Protocols.And_protocols.sequential 5)
  in
  Alcotest.(check bool) "widened" true dg.Dg.widened;
  Alcotest.(check bool) "no certificate" true (Dg.certificate dg = None)

(* ---- shared subtrees short-circuit: identical continuations cannot
   expose the branching symbol ---- *)

let t_physically_shared_children () =
  let shared = T.speak_det ~speaker:1 ~f:(fun b -> b) [| T.output 0; T.output 1 |] in
  let tree = T.speak_det ~speaker:0 ~f:(fun b -> b) [| shared; shared |] in
  let dg = Dg.analyze ~domain:bit_domain tree in
  check_reads ~msg:"slot 1 ignores slot 0" dg [| []; [] |];
  Alcotest.(check (array int)) "one wave" [| 0 |] dg.Dg.waves;
  Alcotest.(check bool)
    "slot 0 is provably redundant" false dg.Dg.output_relevant.(0)

(* ---- every registry certificate passes the netsim validator ---- *)

let t_registry_certificates () =
  List.iter
    (fun (Reg.Entry e as entry) ->
      let name = Reg.name entry in
      let dg =
        Dg.analyze ~players:e.players ~domain:e.domain
          (Lazy.force e.tree)
      in
      (match Dg.certificate dg with
      | None -> Alcotest.failf "%s: no pipelining certificate" name
      | Some _ -> ());
      (match Hb.validate_cert (cert_of dg) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: invalid certificate: %s" name m);
      if Dg.wave_count dg > dg.Dg.slots then
        Alcotest.failf "%s: more waves than slots" name)
    (Reg.all ())

(* The one-pass broadcast-style entries pipeline down to a single wave;
   the adaptive halt-at-first-zero chains provably cannot (every slot
   decides whether its successor exists), which the analysis must
   report honestly as one wave per slot. *)
let t_registry_wave_shapes () =
  let waves_of name =
    let (Reg.Entry e) = Option.get (Reg.find name) in
    let dg =
      Dg.analyze ~players:e.players ~domain:e.domain
        (Lazy.force e.tree)
    in
    (dg.Dg.slots, Dg.wave_count dg)
  in
  List.iter
    (fun (name, slots) ->
      Alcotest.(check (pair int int))
        (name ^ " collapses to one wave") (slots, 1) (waves_of name))
    [ ("disj/trivial-tree", 3); ("or/pointwise-tree", 3);
      ("and/broadcast-all", 4) ];
  List.iter
    (fun name ->
      let slots, waves = waves_of name in
      Alcotest.(check int) (name ^ " is fully sequential") slots waves)
    [ "and/sequential"; "and/truncated"; "disj/naive-tree" ]

(* ---- Hbcheck: the dynamic oracle itself ---- *)

let t_hbcheck_validate_rejects () =
  let bad =
    { Hb.slots = 2; reads = [| [||]; [| 0 |] |]; waves = [| 0 |] }
  in
  (match Hb.validate_cert bad with
  | Ok () -> Alcotest.fail "read inside own wave must be rejected"
  | Error _ -> ());
  let bad = { Hb.slots = 2; reads = [| [||]; [| 1 |] |]; waves = [| 0; 1 |] } in
  (match Hb.validate_cert bad with
  | Ok () -> Alcotest.fail "self-read must be rejected"
  | Error _ -> ());
  match Hb.validate_cert (Hb.sequential_cert ~slots:5) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "sequential cert must validate: %s" m

let t_hbcheck_race_detection () =
  let cert = Hb.sequential_cert ~slots:2 in
  let hb = Hb.create cert ~k:3 in
  (* Launch slot 1 before slot 0 delivered at its speaker: a race. *)
  Hb.note_launch hb ~slot:0 ~speaker:0;
  Hb.note_launch hb ~slot:1 ~speaker:1;
  Alcotest.(check bool) "race recorded" false (Hb.ok hb);
  (match Hb.races hb with
  | [ { Hb.slot = 1; speaker = 1; missing = 0 } ] -> ()
  | _ -> Alcotest.fail "expected exactly the slot-1-reads-slot-0 race");
  (try
     Hb.check hb;
     Alcotest.fail "check must hard-error"
   with Failure m ->
     Alcotest.(check bool) "names hbcheck" true
       (String.length m >= 7 && String.sub m 0 7 = "hbcheck"));
  (* Same schedule with the delivery in between: clean. *)
  let hb = Hb.create cert ~k:3 in
  Hb.note_launch hb ~slot:0 ~speaker:0;
  for p = 0 to 2 do
    Hb.note_deliver hb ~slot:0 ~player:p
  done;
  Hb.note_launch hb ~slot:1 ~speaker:1;
  Alcotest.(check bool) "no race" true (Hb.ok hb);
  Hb.check hb

(* ---- redundant-slot lint rule (9) ---- *)

let t_redundant_slot_positive () =
  (* Slot 0's value is read by nothing and both outputs agree: waste. *)
  let tree = T.speak_det ~speaker:0 ~f:(fun b -> b) [| T.output 7; T.output 7 |] in
  let report = Analysis.Rules.redundant_slot ~domain:bit_domain tree in
  Alcotest.(check int)
    "one warning" 1
    (Analysis.Report.count_severity Analysis.Report.Warning report)

let t_redundant_slot_negative () =
  List.iter
    (fun tree ->
      let report = Analysis.Rules.redundant_slot ~domain:bit_domain tree in
      Alcotest.(check bool) "clean" true (Analysis.Report.is_clean report))
    [
      Protocols.And_protocols.sequential 3;
      Protocols.And_protocols.broadcast_all 3;
    ];
  (* Silent (not warning) when the analysis cannot trust its read-sets. *)
  let report =
    Analysis.Rules.redundant_slot ~budget:2 ~domain:bit_domain
      (Protocols.And_protocols.sequential 5)
  in
  Alcotest.(check bool) "silent when widened" true
    (Analysis.Report.is_clean report)

let t_registry_stays_clean () =
  List.iter
    (fun (Reg.Entry e as entry) ->
      let report =
        Analysis.Rules.redundant_slot ~players:e.players
          ~domain:e.domain (Lazy.force e.tree)
      in
      if not (Analysis.Report.is_clean report) then
        Alcotest.failf "%s: registry entry flagged redundant" (Reg.name entry))
    (Reg.all ())

(* ---- qcheck: wave partitions are always structurally sound ---- *)

let t_qcheck_waves_sound =
  qtest ~count:60 "random-entry depgraph certificates validate"
    QCheck.(int_range 0 11)
    (fun i ->
      let entries = Array.of_list (Reg.all ()) in
      let (Reg.Entry e) = entries.(i mod Array.length entries) in
      let dg =
        Dg.analyze ~players:e.players ~domain:e.domain
          (Lazy.force e.tree)
      in
      match Hb.validate_cert (cert_of dg) with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    quick "sequential-chain" t_sequential_chain;
    quick "broadcast-one-wave" t_broadcast_one_wave;
    quick "dead-branch-pruned" t_dead_branch_pruned;
    quick "coin-chain" t_coin_chain;
    quick "law-failure-no-certificate" t_law_failure_no_certificate;
    quick "widened-no-certificate" t_widened_no_certificate;
    quick "physically-shared-children" t_physically_shared_children;
    quick "registry-certificates" t_registry_certificates;
    quick "registry-wave-shapes" t_registry_wave_shapes;
    quick "hbcheck-validate" t_hbcheck_validate_rejects;
    quick "hbcheck-races" t_hbcheck_race_detection;
    quick "redundant-slot-positive" t_redundant_slot_positive;
    quick "redundant-slot-negative" t_redundant_slot_negative;
    quick "redundant-slot-registry-clean" t_registry_stays_clean;
    t_qcheck_waves_sound;
  ]
