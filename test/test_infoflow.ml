(** Differential tests of the static information-cost certifier:
    every certified [[lo, hi]] bracket must contain the exact
    enumerated information cost — by {e exact rational comparison}
    whenever the exact IC is itself rational (width-zero certificates
    over dyadic transcript laws), and by a float sandwich with 1e-9
    slack otherwise — on every enumerable registry entry and on random
    trees; plus pinned analytic values (sequential AND_k certifies to
    exactly [2 - 2^(1-k)], above the Filmus-Hatami-Li-You two-party
    AND constant), the Braverman-Weinstein engine's strict positivity,
    and the cross-check that surfaces an inconsistent engine. *)

module R = Exact.Rational
module F = Analysis.Infoflow
module C = Analysis.Certify
module Rep = Analysis.Report
module T = Proto.Tree
module Sem = Proto.Semantics
module Info = Proto.Information
module D = Prob.Dist_exact
module Reg = Protocols.Registry
module V = Protocols.Verify_registry
module Disc = Lowerbound.Discrepancy
open Test_util

let bit_domain = [| 0; 1 |]
let seq k = Protocols.And_protocols.sequential k

(* ------------------------------------------------------------------ *)
(* Exact reference: enumerated IC, rational when the laws are dyadic   *)
(* ------------------------------------------------------------------ *)

(* [Sum_i m_i log2 (1/m_i)] exactly, when every positive mass is a
   power of two (the certified log interval then has width zero);
   [None] as soon as one mass would need an irrational logarithm. *)
let exact_entropy masses =
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> None
      | Some h ->
          if R.sign m = 0 then Some h
          else
            let lo, hi = Infotheory.Rlog.log2_bounds (R.inv m) in
            if R.equal lo hi then Some (R.add h (R.mul m lo)) else None)
    (Some R.zero) masses

let rec index_profiles d k =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun p -> List.init d (fun v -> v :: p))
      (index_profiles d (k - 1))

(* Exact rational [I(T; X) = H(T) - E_x H(T | X = x)] under the
   uniform product distribution, by brute enumeration of all
   [d^k] profiles; [None] when some transcript mass is not a power of
   two (the IC is then irrational and only a float reference exists). *)
let exact_ic_rational ~players ~domain tree =
  let d = Array.length domain in
  let mu_x = R.inv (R.of_int d |> fun r -> R.pow r players) in
  let marginal : (T.transcript, R.t) Hashtbl.t = Hashtbl.create 64 in
  let cond_entropies =
    List.map
      (fun idxs ->
        let inputs =
          Array.map (fun ix -> domain.(ix)) (Array.of_list idxs)
        in
        let td = Sem.transcript_dist tree inputs in
        List.iter
          (fun (t, w) ->
            let prev =
              Option.value ~default:R.zero (Hashtbl.find_opt marginal t)
            in
            Hashtbl.replace marginal t (R.add prev (R.mul mu_x w)))
          (D.to_alist td);
        exact_entropy (List.map snd (D.to_alist td)))
      (index_profiles d players)
  in
  let marginal_masses = Hashtbl.fold (fun _ m acc -> m :: acc) marginal [] in
  match exact_entropy marginal_masses with
  | None -> None
  | Some h_t ->
      List.fold_left
        (fun acc he ->
          match (acc, he) with
          | Some acc, Some he -> Some (R.sub acc (R.mul mu_x he))
          | _ -> None)
        (Some h_t) cond_entropies

let check_containment ~msg ~players ~domain tree (b : F.bound) =
  match exact_ic_rational ~players ~domain tree with
  | Some exact ->
      if R.compare b.F.lo exact > 0 || R.compare exact b.F.hi > 0 then
        Alcotest.failf "%s: exact IC %s outside certified [%s, %s]" msg
          (R.to_string exact) (R.to_string b.F.lo) (R.to_string b.F.hi);
      (* Width-zero certificates claim the IC exactly — hold them to
         exact rational equality, not mere containment. *)
      if R.equal b.F.lo b.F.hi then
        check_rational ~msg:(msg ^ ": width-0 claims IC exactly") exact
          b.F.lo
  | None ->
      let unif = D.uniform (Array.to_list domain) in
      let mu = D.product_array (Array.make players unif) in
      let exact = Info.external_ic tree mu in
      check_le ~msg:(msg ^ ": lo <= exact") (R.to_float b.F.lo) exact;
      check_le ~msg:(msg ^ ": exact <= hi") exact (R.to_float b.F.hi)

(* ------------------------------------------------------------------ *)
(* Pinned analytic values                                              *)
(* ------------------------------------------------------------------ *)

(* Sequential AND_k under uniform bits: the transcript partition is
   {stop after round j} for j < k plus the all-ones path, with dyadic
   masses 2^-j — the exact external IC is 2 - 2^(1-k). *)
let t_and_k_exact () =
  for k = 2 to 6 do
    let a = F.analyze ~domain:bit_domain (seq k) in
    Alcotest.(check bool) "sound" true a.F.sound;
    Alcotest.(check bool) "deterministic" true a.F.deterministic;
    let expected = R.sub (R.of_int 2) (R.pow R.half (k - 1)) in
    check_rational
      ~msg:(Printf.sprintf "AND_%d external lo" k)
      expected a.F.external_ic.F.lo;
    check_rational
      ~msg:(Printf.sprintf "AND_%d external hi" k)
      expected a.F.external_ic.F.hi;
    check_rational
      ~msg:(Printf.sprintf "AND_%d internal = (k-1) x external" k)
      (R.mul_int expected (k - 1))
      a.F.internal_ic.F.lo
  done

(* Filmus-Hatami-Li-You: the (limit) external information complexity
   of two-party AND under the uniform distribution is ~1.4923 bits —
   strictly below what the sequential one-shot protocol pays (3/2), as
   interactivity saves information. Our certified lower edge for the
   protocol must sit above the function's complexity. *)
let t_fhly_and_constant () =
  let a = F.analyze ~domain:bit_domain (seq 2) in
  let fhly = R.of_ints 14923 10000 in
  Alcotest.(check bool)
    "seq AND_2 certified lo (3/2) exceeds FHLY ~1.4923" true
    (R.compare a.F.external_ic.F.lo fhly > 0)

(* ------------------------------------------------------------------ *)
(* Registry sweep: containment on every enumerable entry               *)
(* ------------------------------------------------------------------ *)

let ic_engine ~zero_error_spec flow = Disc.engine ~zero_error_spec flow

let t_registry_containment () =
  List.iter
    (fun (Reg.Entry e as entry) ->
      let enumerable =
        (* d^k profiles, each walking the tree: keep the sweep exact
           but bounded *)
        let d = Array.length e.domain in
        let rec pow acc i =
          if i = 0 then acc
          else if acc > 4096 then acc
          else pow (acc * d) (i - 1)
        in
        pow 1 e.players <= 4096
      in
      if enumerable then begin
        let r = V.verify_entry ~ic:true ~ic_engine entry in
        match r.V.ic with
        | Some (C.Ic_certified c) ->
            let tree = Lazy.force e.tree in
            check_containment ~msg:(Reg.name entry) ~players:e.players
              ~domain:e.domain tree c.C.ic_external;
            (* internal = (k-1) x external, exactly *)
            check_rational
              ~msg:(Reg.name entry ^ ": internal lo")
              (R.mul_int c.C.ic_external.F.lo (e.players - 1))
              c.C.ic_internal.F.lo;
            check_rational
              ~msg:(Reg.name entry ^ ": internal hi")
              (R.mul_int c.C.ic_external.F.hi (e.players - 1))
              c.C.ic_internal.F.hi;
            (* every injected engine bound is sound: within [0, hi] *)
            List.iter
              (fun (name, b) ->
                Alcotest.(check bool)
                  (Reg.name entry ^ ": engine " ^ name ^ " nonnegative")
                  true (R.sign b >= 0);
                Alcotest.(check bool)
                  (Reg.name entry ^ ": engine " ^ name ^ " below hi")
                  true
                  (R.compare b c.C.ic_external.F.hi <= 0))
              c.C.lower_bounds;
            (* the certificate rides the report as an Info diagnostic *)
            Alcotest.(check bool)
              (Reg.name entry ^ ": verify-ic-interval emitted")
              true
              (List.exists
                 (fun d -> d.Rep.rule = V.id_ic_interval)
                 (Rep.to_list r.V.report))
        | Some (C.Ic_inconclusive { reason; _ }) ->
            Alcotest.failf "%s: expected ic-certified, got inconclusive: %s"
              (Reg.name entry) reason
        | None -> Alcotest.failf "%s: ic requested but absent" (Reg.name entry)
      end)
    (Reg.all ())

(* ------------------------------------------------------------------ *)
(* Braverman-Weinstein engine                                          *)
(* ------------------------------------------------------------------ *)

(* For AND_k the largest monochromatic product rectangle under uniform
   bits is {x_1 = 0} x {0,1}^(k-1) of mass exactly 1/2, so the
   protocol-independent bound is exactly 1 bit — non-trivial and
   strictly positive. *)
let t_discrepancy_strictly_positive () =
  let f profile = Array.fold_left (fun a b -> a land b) 1 profile in
  for k = 2 to 4 do
    let mu = F.uniform_mu 2 in
    (match Disc.mono_bound ~players:k ~domain_size:2 ~mu ~f () with
    | Some b ->
        check_rational
          ~msg:(Printf.sprintf "AND_%d mono-rectangle bound is exactly 1" k)
          R.one b
    | None -> Alcotest.fail "mono sweep should fit the work cap");
    match Disc.disc_bound ~players:k ~domain_size:2 ~mu ~f () with
    | Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "AND_%d discrepancy bound strictly positive" k)
          true (R.sign b > 0)
    | None -> Alcotest.fail "disc sweep should fit the work cap"
  done;
  (* and through the full pipeline: certify with the engine, lower
     edge still the exact IC (the engine never degrades a certificate) *)
  match
    C.certify_ic
      ~lower:(fun flow ->
        Disc.engine
          ~zero_error_spec:
            (Some (fun p -> Array.fold_left (fun a b -> a land b) 1 p))
          flow)
      ~domain:bit_domain (seq 3)
  with
  | C.Ic_certified c ->
      check_rational ~msg:"AND_3 with engine: lo unchanged"
        (R.of_ints 7 4) c.C.ic_external.F.lo;
      Alcotest.(check bool) "engine contributed bounds" true
        (List.length c.C.lower_bounds >= 2)
  | C.Ic_inconclusive { reason; _ } ->
      Alcotest.failf "AND_3 should certify: %s" reason

(* An engine claiming more than the sound upper bound is a soundness
   bug somewhere: the certifier must surface the inconsistency, never
   silently max it away. *)
let t_inconsistent_engine_surfaces () =
  match
    C.certify_ic
      ~lower:(fun flow -> [ ("bogus", R.of_int (flow.F.struct_max + 1)) ])
      ~domain:bit_domain (seq 3)
  with
  | C.Ic_inconclusive { inconsistent = true; reason; _ } ->
      Alcotest.(check bool) "reason names the engine" true
        (String.length reason > 0)
  | C.Ic_inconclusive { inconsistent = false; _ } ->
      Alcotest.fail "must be flagged inconsistent"
  | C.Ic_certified _ -> Alcotest.fail "must not certify against a crossing"

(* ------------------------------------------------------------------ *)
(* Random-tree differential property                                   *)
(* ------------------------------------------------------------------ *)

let k = 3

let prop_random_containment =
  qtest "static bracket contains exact IC on random trees" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed (0x1CF10 + seed) in
      let tree =
        Test_random_trees.random_tree ~rng ~k ~depth:(2 + Prob.Rng.int rng 3)
      in
      let a = F.analyze ~domain:bit_domain tree in
      if not a.F.sound then true (* nothing claimed, nothing to check *)
      else begin
        check_containment ~msg:"random tree" ~players:k ~domain:bit_domain
          tree a.F.external_ic;
        (* expected charged bits dominate the information, and the
           entropy bound is itself an upper bound the final hi folded *)
        Alcotest.(check bool) "hi <= E[bits]" true
          (R.compare a.F.external_ic.F.hi a.F.expected_bits <= 0);
        Alcotest.(check bool) "hi <= entropy bound" true
          (R.compare a.F.external_ic.F.hi a.F.entropy_hi <= 0);
        Alcotest.(check bool) "total mass is 1" true
          (R.equal R.one a.F.total_mass);
        true
      end)

(* For two players the static internal bracket must agree with the
   exactly-enumerated two-party internal cost (which equals the
   external cost under product distributions). *)
let prop_internal_two_party =
  qtest "internal bracket matches enumerated two-party IC" ~count:40
    QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed (0x2CF10 + seed) in
      let tree =
        Test_random_trees.random_tree ~rng ~k:2
          ~depth:(2 + Prob.Rng.int rng 2)
      in
      let a = F.analyze ~players:2 ~domain:bit_domain tree in
      if not a.F.sound then true
      else begin
        let unif = D.uniform [ 0; 1 ] in
        let mu = D.product_array [| unif; unif |] in
        let exact = Info.internal_ic_two_party tree mu in
        check_le ~msg:"internal lo <= exact"
          (R.to_float a.F.internal_ic.F.lo)
          exact;
        check_le ~msg:"exact <= internal hi" exact
          (R.to_float a.F.internal_ic.F.hi);
        true
      end)

(* ------------------------------------------------------------------ *)
(* Input validation                                                    *)
(* ------------------------------------------------------------------ *)

let t_mu_validation () =
  let bad_sum () =
    ignore (F.analyze ~mu:[| R.half; R.of_ints 1 4 |] ~domain:bit_domain (seq 2))
  in
  (match bad_sum () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mu summing to 3/4 must be rejected");
  let bad_len () =
    ignore (F.analyze ~mu:[| R.one |] ~domain:bit_domain (seq 2))
  in
  match bad_len () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mu of wrong length must be rejected"

let suite =
  [
    quick "sequential AND_k certifies to exactly 2 - 2^(1-k)" t_and_k_exact;
    quick "certified lo sits above the FHLY AND constant"
      t_fhly_and_constant;
    quick "registry: every entry's bracket contains the exact IC"
      t_registry_containment;
    quick "BW engine: strictly positive, exact on AND"
      t_discrepancy_strictly_positive;
    quick "inconsistent lower bound surfaces, never certifies"
      t_inconsistent_engine_surfaces;
    prop_random_containment;
    prop_internal_two_party;
    quick "mu validation" t_mu_validation;
  ]
