(** Differential tests of the flat VM ({!Proto.Compile}) against the
    tree interpreter: the compiled scalar evaluator must consume the
    rng stream draw-for-draw like the reference walker, the bit-sliced
    batch evaluator must agree lane-for-lane on deterministic trees,
    and the registry run paths must produce byte-identical boards. *)

module T = Proto.Tree
module C = Proto.Compile
module Sem = Proto.Semantics
module D = Prob.Dist_exact
module R = Exact.Rational
open Test_util

let k = 3
let bit_domain = [| 0; 1 |]

(* Reference walker with the exact sampling discipline of
   [Registry.run_on_board]: a fresh sampler per visited node, one draw
   per node, recording (speaker, arity, msg) per message. The compiled
   [exec] must match it event-for-event from the same rng seed. *)
let reference_walk tree ~inputs ~rng =
  let events = ref [] in
  let sample law =
    Prob.Sampler.draw (Prob.Sampler.create (D.to_float_dist law)) rng
  in
  let rec walk = function
    | T.Output v -> v
    | T.Speak { speaker; emit; children } ->
        let msg = sample (emit inputs.(speaker)) in
        events := (speaker, Array.length children, msg) :: !events;
        walk children.(msg)
    | T.Chance { coin; children } -> walk children.(sample coin)
  in
  let out = walk tree in
  (out, List.rev !events)

let compiled_walk p ~input_indices ~rng =
  let events = ref [] in
  let on_msg ~speaker ~arity ~width:_ ~msg =
    events := (speaker, arity, msg) :: !events
  in
  let sample s = Prob.Sampler.draw s rng in
  let out = C.exec ~on_msg p ~sample ~input_indices in
  (out, List.rev !events)

let prop_scalar_differential =
  qtest "compiled exec == reference walker, draw for draw" ~count:150
    QCheck.small_nat (fun seed ->
      Test_random_trees.with_random_tree seed (fun tree ->
          let p = C.compile ~players:k ~domain:bit_domain tree in
          List.for_all
            (fun x ->
              let input_indices = x in
              let inputs = input_indices in
              List.for_all
                (fun run_seed ->
                  let r1 = Prob.Rng.of_int_seed run_seed in
                  let r2 = Prob.Rng.of_int_seed run_seed in
                  reference_walk tree ~inputs ~rng:r1
                  = compiled_walk p ~input_indices ~rng:r2)
                [ 1; 42; 9000 + seed ])
            (Sem.all_bit_inputs k)))

(* Deterministic random trees: point-mass emissions, no chance nodes. *)
let random_det_tree ~rng ~k ~depth =
  let rec go depth =
    if depth = 0 || Prob.Rng.int rng 4 = 0 then T.output (Prob.Rng.int rng 2)
    else begin
      let arity = 2 + Prob.Rng.int rng 2 in
      let children = Array.init arity (fun _ -> go (depth - 1)) in
      let speaker = Prob.Rng.int rng k in
      let m0 = Prob.Rng.int rng arity and m1 = Prob.Rng.int rng arity in
      T.speak_det ~speaker ~f:(fun b -> if b = 0 then m0 else m1) children
    end
  in
  go depth

let dummy_sample _ = Alcotest.fail "deterministic exec must still sample"

let det_exec p ~input_indices =
  (* Deterministic programs still draw once per node (to keep the rng
     stream aligned with the randomized path), so give exec a real
     rng here rather than [dummy_sample]. *)
  ignore dummy_sample;
  let rng = Prob.Rng.of_int_seed 7 in
  C.exec p ~sample:(fun s -> Prob.Sampler.draw s rng) ~input_indices

let prop_batch_lanes =
  qtest "exec_batch lanes == scalar exec, transcripts and bits too"
    ~count:150 QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed seed in
      let tree = random_det_tree ~rng ~k ~depth:(2 + Prob.Rng.int rng 3) in
      let p = C.compile ~players:k ~domain:bit_domain tree in
      if not (C.deterministic p) then false
      else begin
        let profiles = Array.of_list (Sem.all_bit_inputs k) in
        let b = C.exec_batch p ~input_indices:profiles in
        let outs = C.outputs b in
        Array.length outs = Array.length profiles
        && Array.for_all Fun.id
             (Array.mapi
                (fun lane prof ->
                  let scalar = det_exec p ~input_indices:prof in
                  let tr = C.lane_transcript p b lane in
                  scalar = outs.(lane)
                  && T.output_of tree tr = outs.(lane)
                  && T.transcript_bits tree tr = C.lane_bits p b lane)
                profiles)
      end)

let prop_sweep_matches_batch =
  qtest "exec_sweep == lane-by-lane outputs, any length" ~count:80
    QCheck.small_nat (fun seed ->
      let rng = Prob.Rng.of_int_seed seed in
      let tree = random_det_tree ~rng ~k ~depth:3 in
      let p = C.compile ~players:k ~domain:bit_domain tree in
      (* 100 profiles forces two chunks through the 62-lane slicer *)
      let profiles =
        Array.init 100 (fun _ ->
            Array.init k (fun _ -> Prob.Rng.int rng 2))
      in
      let swept = C.exec_sweep p ~input_indices:profiles in
      swept
      = Array.map (fun prof -> det_exec p ~input_indices:prof) profiles)

(* Registry differential: tree and compiled engines must produce
   byte-identical boards on every entry, every seed. *)
let registry_boards_identical () =
  List.iter
    (fun entry ->
      let name = Protocols.Registry.name entry in
      List.iter
        (fun seed ->
          let r1 = Protocols.Registry.run_on_board entry ~seed in
          let r2 = Protocols.Registry.run_on_board_compiled entry ~seed in
          if not (Blackboard.Board.equal r1.board r2.board) then
            Alcotest.failf "%s seed %d: boards differ" name seed;
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d output" name seed)
            r1.output r2.output;
          Alcotest.(check (array int))
            (Printf.sprintf "%s seed %d inputs" name seed)
            r1.input_indices r2.input_indices;
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d rounds" name seed)
            r1.msg_rounds r2.msg_rounds)
        [ 0; 1; 2; 3; 4 ])
    (Protocols.Registry.all ())

let registry_sweep_matches_spec () =
  List.iter
    (fun entry ->
      let p = Protocols.Registry.compiled entry in
      if C.deterministic p && Protocols.Registry.has_spec entry then begin
        let name = Protocols.Registry.name entry in
        let players = Protocols.Registry.players entry in
        let dsize = C.domain_size p in
        (* all input profiles, mixed-radix enumeration *)
        let total =
          int_of_float (float_of_int dsize ** float_of_int players)
        in
        let profiles =
          Array.init total (fun i ->
              let v = ref i in
              Array.init players (fun _ ->
                  let d = !v mod dsize in
                  v := !v / dsize;
                  d))
        in
        let swept = C.exec_sweep p ~input_indices:profiles in
        Array.iteri
          (fun i prof ->
            match
              Protocols.Registry.spec_output entry ~input_indices:prof
            with
            | Some expect ->
                if swept.(i) <> expect then
                  Alcotest.failf "%s: sweep disagrees with spec at %d" name i
            | None -> ())
          profiles
      end)
    (Protocols.Registry.all ())

(* Pinned bytecode golden: the flat program for and/sequential at
   k = 5. Catches accidental changes to node numbering, law interning
   or the disassembly format. *)
let golden_and_sequential () =
  match Protocols.Registry.find "and/sequential" with
  | None -> Alcotest.fail "and/sequential not registered"
  | Some entry ->
      let p = Protocols.Registry.compiled entry in
      let expected =
        "players=5 domain=2 nodes=11 root=n10 det=true\n\
         n10: speak p0 w1 [0->L0 1->L1] kids[n0 n9]\n\
         n9: speak p1 w1 [0->L0 1->L1] kids[n1 n8]\n\
         n8: speak p2 w1 [0->L0 1->L1] kids[n2 n7]\n\
         n7: speak p3 w1 [0->L0 1->L1] kids[n3 n6]\n\
         n6: speak p4 w1 [0->L0 1->L1] kids[n4 n5]\n\
         n5: out 1\n\
         n4: out 0\n\
         n3: out 0\n\
         n2: out 0\n\
         n1: out 0\n\
         n0: out 0\n\
         L0: {0:1}\n\
         L1: {1:1}\n"
      in
      Alcotest.(check string) "pinned disassembly" expected (C.disassemble p)

let batch_rejects_randomized () =
  match Protocols.Registry.find "and/noisy" with
  | None -> Alcotest.fail "and/noisy not registered"
  | Some entry ->
      let p = Protocols.Registry.compiled entry in
      Alcotest.(check bool) "noisy not deterministic" false
        (C.deterministic p);
      Alcotest.check_raises "exec_batch rejects"
        (Invalid_argument "Compile.exec_batch: deterministic programs only")
        (fun () ->
          ignore (C.exec_batch p ~input_indices:[| [| 0; 0; 0; 0 |] |]))

let suite =
  [
    prop_scalar_differential;
    prop_batch_lanes;
    prop_sweep_matches_batch;
    quick "registry: compiled boards byte-identical" registry_boards_identical;
    quick "registry: batched sweep matches specs" registry_sweep_matches_spec;
    quick "golden: and/sequential bytecode pinned" golden_and_sequential;
    quick "exec_batch rejects randomized programs" batch_rejects_randomized;
  ]
